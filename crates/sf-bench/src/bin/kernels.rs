//! Kernel benchmark baseline: seed-serial vs optimized-serial vs parallel
//! timings for batched GEMM, LayerNorm, softmax, and fused attention at
//! AlphaFold-like shapes. Writes `BENCH_kernels.json` in the working
//! directory (override with `--out PATH`; pick threads with `--threads N`
//! or `SF_THREADS`).

use std::process::ExitCode;

use scalefold::kernel_bench::{run, BenchScale};

fn main() -> ExitCode {
    sf_bench::banner("Kernel baseline");

    let mut threads = 0usize; // 0 = auto (SF_THREADS / core count)
    let mut out = String::from("BENCH_kernels.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => {
                    threads = n;
                    i += 2;
                }
                _ => {
                    eprintln!("error: --threads expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.get(i + 1) {
                Some(path) => {
                    out = path.clone();
                    i += 2;
                }
                None => {
                    eprintln!("error: --out expects a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}` (expected --threads N, --out PATH)");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = run(threads, BenchScale::Full);
    println!("{}", report.to_table());
    match std::fs::write(&out, report.to_json()) {
        Ok(()) => {
            println!("wrote {out} ({} threads)", report.threads);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: failed to write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}
