//! Time-to-train accounting: initialization, training, and evaluation —
//! synchronous (on the training nodes) or asynchronous (offloaded to
//! dedicated nodes), with the CPU-DRAM evaluation-data cache (§3.4).

use serde::{Deserialize, Serialize};

/// Where evaluation input data is read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalDataSource {
    /// Parallel filesystem — slow per-sample loads.
    Disk,
    /// Pre-cached in CPU DRAM (ScaleFold's optimization).
    DramCache,
}

impl EvalDataSource {
    /// Per-sample load time, seconds.
    pub fn load_s(self) -> f64 {
        match self {
            EvalDataSource::Disk => 0.25,
            EvalDataSource::DramCache => 0.005,
        }
    }
}

/// Evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Validation samples per evaluation pass (MLPerf OpenFold: 180).
    pub num_samples: usize,
    /// Evaluate every this many training steps.
    pub every_steps: u64,
    /// Model-inference time per sample on the eval nodes, seconds.
    pub per_sample_s: f64,
    /// GPUs serving evaluation (shared with or separate from training).
    pub eval_gpus: usize,
    /// Data source.
    pub source: EvalDataSource,
    /// Offload evaluation to dedicated nodes (training never pauses).
    pub asynchronous: bool,
}

impl EvalConfig {
    /// MLPerf HPC v3.0 OpenFold-style evaluation (180 validation samples),
    /// synchronous on the training nodes, reading from disk.
    pub fn mlperf_sync() -> Self {
        EvalConfig {
            num_samples: 180,
            every_steps: 25,
            per_sample_s: 2.4,
            eval_gpus: 32,
            source: EvalDataSource::Disk,
            asynchronous: false,
        }
    }

    /// ScaleFold: asynchronous evaluation on 32 dedicated GPUs with the
    /// DRAM cache.
    pub fn scalefold_async() -> Self {
        EvalConfig {
            asynchronous: true,
            source: EvalDataSource::DramCache,
            ..EvalConfig::mlperf_sync()
        }
    }

    /// Wall-clock duration of one evaluation pass.
    pub fn pass_duration_s(&self) -> f64 {
        let per_sample = self.per_sample_s + self.source.load_s();
        (self.num_samples as f64 / self.eval_gpus.max(1) as f64).ceil() * per_sample
    }
}

/// Models the one-time initialization cost of a run (the paper's "~2
/// minutes initialization and compilation"): torch.compile autotuning +
/// CUDA-graph captures for every recycling shape + NCCL communicator
/// bring-up (grows logarithmically with the rank count).
pub fn init_time_s(eager_step_s: f64, recycle_variants: usize, total_ranks: usize) -> f64 {
    // torch.compile: tens of kernels x seconds-scale Triton autotuning.
    let compile_s = 75.0;
    // One eager capture pass per recycling shape.
    let capture_s = recycle_variants as f64 * eager_step_s;
    // NCCL init: tree setup across the fleet.
    let nccl_s = 2.0 * (total_ranks.max(2) as f64).log2();
    compile_s + capture_s + nccl_s
}

/// A full training-run timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainTimeline {
    /// One-time initialization + compilation overhead, seconds (the paper's
    /// "~2 minutes initialization and compilation").
    pub init_s: f64,
    /// Training steps to convergence.
    pub steps: u64,
    /// Mean step time, seconds.
    pub step_s: f64,
    /// Evaluation configuration.
    pub eval: EvalConfig,
}

/// The time-to-train breakdown (the paper's Figure 9 bars).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeToTrain {
    /// Initialization share, seconds.
    pub init_s: f64,
    /// Pure training share, seconds.
    pub train_s: f64,
    /// Evaluation share blocking training, seconds (0 when async and eval
    /// keeps up).
    pub eval_s: f64,
    /// Total, seconds.
    pub total_s: f64,
    /// True if asynchronous evaluation could NOT keep up with training
    /// (eval pass longer than the interval between evals) — the paper's
    /// "evaluation time must be smaller than training time" constraint.
    pub eval_is_bottleneck: bool,
}

impl TrainTimeline {
    /// Computes the time-to-train breakdown.
    pub fn time_to_train(&self) -> TimeToTrain {
        let train_s = self.steps as f64 * self.step_s;
        let passes = (self.steps / self.eval.every_steps.max(1)) as f64;
        let pass = self.eval.pass_duration_s();
        let interval_s = self.eval.every_steps as f64 * self.step_s;
        if self.eval.asynchronous {
            let bottleneck = pass > interval_s;
            // Async eval blocks nothing unless it cannot keep up; then the
            // final straggling passes delay the result signal.
            let eval_s = if bottleneck {
                passes * (pass - interval_s)
            } else {
                0.0
            };
            TimeToTrain {
                init_s: self.init_s,
                train_s,
                eval_s,
                total_s: self.init_s + train_s + eval_s,
                eval_is_bottleneck: bottleneck,
            }
        } else {
            let eval_s = passes * pass;
            TimeToTrain {
                init_s: self.init_s,
                train_s,
                eval_s,
                total_s: self.init_s + train_s + eval_s,
                eval_is_bottleneck: false,
            }
        }
    }

    /// Evaluation share of total time (the paper: grows from 22% to 43% as
    /// the step time is optimized, before async eval removes it).
    pub fn eval_fraction(&self) -> f64 {
        let t = self.time_to_train();
        if t.total_s == 0.0 {
            0.0
        } else {
            t.eval_s / t.total_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(step_s: f64, eval: EvalConfig) -> TrainTimeline {
        TrainTimeline {
            init_s: 120.0,
            steps: 400,
            step_s,
            eval,
        }
    }

    #[test]
    fn sync_eval_share_grows_as_steps_shrink() {
        // Figure 9's first observation: optimizing step time inflates the
        // evaluation share (22% -> 43% in the paper).
        let slow = timeline(2.0, EvalConfig::mlperf_sync()).eval_fraction();
        let fast = timeline(0.65, EvalConfig::mlperf_sync()).eval_fraction();
        assert!(fast > slow, "fast {fast:.2} vs slow {slow:.2}");
        assert!((0.1..0.6).contains(&slow), "slow share {slow:.2}");
        assert!((0.25..0.75).contains(&fast), "fast share {fast:.2}");
    }

    #[test]
    fn async_eval_removes_eval_time() {
        let sync = timeline(0.65, EvalConfig::mlperf_sync()).time_to_train();
        let asy = timeline(0.65, EvalConfig::scalefold_async()).time_to_train();
        assert!(asy.total_s < sync.total_s);
        assert_eq!(asy.eval_s, 0.0);
        assert!(!asy.eval_is_bottleneck);
    }

    #[test]
    fn async_eval_without_cache_can_bottleneck() {
        // Async but reading from disk: a pass may outlast the interval.
        let mut eval = EvalConfig::scalefold_async();
        eval.source = EvalDataSource::Disk;
        eval.eval_gpus = 8;
        let t = timeline(0.3, eval).time_to_train();
        assert!(t.eval_is_bottleneck);
        assert!(t.eval_s > 0.0);
    }

    #[test]
    fn dram_cache_shortens_eval_pass() {
        let disk = EvalConfig {
            source: EvalDataSource::Disk,
            ..EvalConfig::mlperf_sync()
        };
        let dram = EvalConfig {
            source: EvalDataSource::DramCache,
            ..EvalConfig::mlperf_sync()
        };
        assert!(dram.pass_duration_s() < disk.pass_duration_s());
    }

    #[test]
    fn init_time_lands_near_two_minutes_at_paper_scale() {
        // 2080 ranks, ~4 s eager step, 4 recycling shapes -> ~Figure 9's
        // "~2 minutes initialization and compilation".
        let t = init_time_s(4.0, 4, 2080);
        assert!((90.0..180.0).contains(&t), "init {t:.0} s");
        // More ranks and more shapes can only increase it.
        assert!(init_time_s(4.0, 4, 4160) > t);
        assert!(init_time_s(4.0, 8, 2080) > t);
    }

    #[test]
    fn totals_add_up() {
        let t = timeline(1.0, EvalConfig::mlperf_sync()).time_to_train();
        assert!((t.total_s - (t.init_s + t.train_s + t.eval_s)).abs() < 1e-9);
    }
}
