//! Reverse-mode automatic differentiation for the ScaleFold reproduction.
//!
//! A [`Graph`] is a classic append-only tape: every operation records a node
//! holding its output value and enough context to compute vector-Jacobian
//! products. [`Graph::backward`] walks the tape in reverse, accumulating
//! gradients.
//!
//! Highlights relevant to the paper:
//!
//! - **Gradient checkpointing** ([`Graph::checkpoint`]): runs a sub-network
//!   without recording intermediates, re-running it during backward — the
//!   memory/compute trade-off OpenFold relies on and DAP lets ScaleFold turn
//!   off (§4.1 "disabling gradient checkpointing ... eliminated
//!   re-computation in backward").
//! - **Fused attention node** ([`Graph::attention`]): single tape node for
//!   the whole MHA-with-pair-bias pattern (recompute-based backward),
//!   mirroring the fused Triton MHA kernel.
//! - **Fused LayerNorm node** ([`Graph::layer_norm`]): single-pass forward,
//!   two-step-reduction backward.
//! - **Activation memory accounting** ([`Graph::activation_bytes`]):
//!   quantifies what checkpointing saves.
//!
//! # Example
//!
//! ```
//! use sf_autograd::Graph;
//! use sf_tensor::Tensor;
//!
//! # fn main() -> Result<(), sf_autograd::AutogradError> {
//! let mut g = Graph::new();
//! let x = g.param(Tensor::from_vec(vec![2.0], &[1])?);
//! let y = g.square(x)?; // y = x^2
//! let loss = g.sum_all(y)?;
//! g.backward(loss)?;
//! assert_eq!(g.grad(x).expect("leaf grad").data(), &[4.0]); // dy/dx = 2x
//! # Ok(())
//! # }
//! ```

mod checkpoint;
pub mod checkpoint_io;
mod graph;
mod op;
mod params;

pub use graph::{Graph, Var};
pub use checkpoint_io::{CheckpointError, Crc32, LatestCheckpoint};
pub use params::ParamStore;

use std::fmt;

/// Error type for autograd operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutogradError {
    /// An underlying tensor operation failed.
    Tensor(sf_tensor::TensorError),
    /// A variable id did not belong to this graph.
    InvalidVar {
        /// The offending variable index.
        index: usize,
        /// Number of nodes currently on the tape.
        len: usize,
    },
    /// `backward` was called on a non-scalar variable.
    NonScalarLoss {
        /// Shape of the offending variable.
        dims: Vec<usize>,
    },
    /// A named parameter was missing from the store.
    UnknownParam(String),
    /// An externally-computed node value (e.g. a collective's output
    /// buffer) did not match the mathematically expected result.
    ExternalValueMismatch {
        /// Shape the tape computed for the node.
        expect_dims: Vec<usize>,
        /// Shape (or bytes, when shapes agree) the external executor
        /// supplied.
        got_dims: Vec<usize>,
    },
}

impl fmt::Display for AutogradError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutogradError::Tensor(e) => write!(f, "tensor error: {e}"),
            AutogradError::InvalidVar { index, len } => {
                write!(f, "variable {index} not in graph of {len} nodes")
            }
            AutogradError::NonScalarLoss { dims } => {
                write!(f, "backward requires a scalar loss, got shape {dims:?}")
            }
            AutogradError::UnknownParam(name) => write!(f, "unknown parameter {name:?}"),
            AutogradError::ExternalValueMismatch { expect_dims, got_dims } => write!(
                f,
                "external value mismatch: expected shape {expect_dims:?}, got {got_dims:?} (or differing bytes)"
            ),
        }
    }
}

impl std::error::Error for AutogradError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutogradError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sf_tensor::TensorError> for AutogradError {
    fn from(e: sf_tensor::TensorError) -> Self {
        AutogradError::Tensor(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T, E = AutogradError> = std::result::Result<T, E>;
