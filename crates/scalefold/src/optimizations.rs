//! The named optimization set of the paper and the graph construction that
//! applies it.

use serde::{Deserialize, Serialize};
use sf_model::ModelConfig;
use sf_opgraph::builder::StepGraph;
use sf_opgraph::fusion;

/// Average forward-only recycling iterations per training step in the
/// OpenFold/MLPerf recipe (uniform 0..3 warm iterations ⇒ mean ~1.5; we use
/// 1 for the costed graphs, matching the profile calibration).
pub const RECYCLE_FWD: usize = 1;

/// Which of ScaleFold's optimizations are enabled (§3 + §3.4).
///
/// `OptimizationSet::none()` is the MLPerf reference model;
/// `OptimizationSet::scalefold()` enables everything. Individual flags
/// correspond to the stages of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizationSet {
    /// Bundle the four pre-attention projections into one GEMM.
    pub gemm_batching: bool,
    /// ScaleFold's non-blocking priority-queue data pipeline.
    pub nonblocking_loader: bool,
    /// Full-bf16 training (storage + tensor cores + comm).
    pub bf16: bool,
    /// Fused FlashAttention-with-pair-bias Triton kernel.
    pub triton_mha: bool,
    /// Fused single-pass LayerNorm Triton kernel.
    pub triton_ln: bool,
    /// Fused Adam + SWA single-kernel optimizer, with gradient clipping
    /// bucketed into the DDP buffers and hidden under communication.
    pub fused_adam_swa: bool,
    /// Dynamic Axial Parallelism degree (1 = off).
    pub dap: usize,
    /// Capture the step in CUDA graphs (with the recycle-keyed cache).
    pub cuda_graph: bool,
    /// Disable gradient checkpointing (possible once DAP frees memory).
    pub no_grad_checkpointing: bool,
    /// Disable the Python garbage collector.
    pub disable_gc: bool,
    /// torch.compile-style automatic elementwise fusion.
    pub torch_compile: bool,
    /// Offload evaluation to dedicated nodes with the DRAM cache.
    pub async_eval: bool,
}

impl OptimizationSet {
    /// The MLPerf reference model: nothing enabled, gradient checkpointing
    /// on (OpenFold's default), eager execution, fp32.
    pub fn none() -> Self {
        OptimizationSet {
            gemm_batching: false,
            nonblocking_loader: false,
            bf16: false,
            triton_mha: false,
            triton_ln: false,
            fused_adam_swa: false,
            dap: 1,
            cuda_graph: false,
            no_grad_checkpointing: false,
            disable_gc: false,
            torch_compile: false,
            async_eval: false,
        }
    }

    /// Everything ScaleFold ships, at DAP-8.
    pub fn scalefold() -> Self {
        OptimizationSet {
            gemm_batching: true,
            nonblocking_loader: true,
            bf16: true,
            triton_mha: true,
            triton_ln: true,
            fused_adam_swa: true,
            dap: 8,
            cuda_graph: true,
            no_grad_checkpointing: true,
            disable_gc: true,
            torch_compile: true,
            async_eval: true,
        }
    }

    /// ScaleFold at a different DAP degree. Gradient checkpointing is
    /// disabled only if the memory model says the full activation set fits
    /// an H100 at this DAP degree (the §4.1 gate).
    pub fn scalefold_dap(dap: usize) -> Self {
        let mut opts = OptimizationSet {
            dap,
            ..OptimizationSet::scalefold()
        };
        opts.no_grad_checkpointing = sf_opgraph::memory::fits_without_checkpointing(
            &ModelConfig::paper(),
            dap,
            opts.bf16,
            &sf_gpusim::DeviceSpec::h100(),
        );
        opts
    }
}

impl Default for OptimizationSet {
    fn default() -> Self {
        OptimizationSet::none()
    }
}

/// Builds the per-step kernel graph for a model configuration under an
/// optimization set, applying the corresponding fusion passes in the
/// paper's order.
pub fn build_graph(cfg: &ModelConfig, opts: &OptimizationSet) -> StepGraph {
    let mut g = if opts.no_grad_checkpointing {
        StepGraph::reference(cfg, RECYCLE_FWD)
    } else {
        StepGraph::reference_checkpointed(cfg, RECYCLE_FWD)
    };
    if opts.gemm_batching {
        g = fusion::batch_gemms(&g).0;
    }
    if opts.triton_mha {
        g = fusion::fuse_mha(&g).0;
    }
    if opts.triton_ln {
        g = fusion::fuse_layer_norm(&g).0;
    }
    if opts.fused_adam_swa {
        g = fusion::fuse_adam_swa(&g).0;
        // Grad clipping moves to the DDP buckets, hidden under comm.
        g = fusion::bucket_grad_clip(&g, true).0;
    }
    if opts.torch_compile {
        g = fusion::auto_fuse_elementwise(&g).0;
    }
    if opts.bf16 {
        g = fusion::to_bf16(&g);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_gpusim::{CpuModel, DeviceSpec};
    use sf_opgraph::profile::step_time;

    #[test]
    fn full_set_is_much_faster_than_reference() {
        let cfg = ModelConfig::paper();
        let dev = DeviceSpec::h100();
        let reference = build_graph(&cfg, &OptimizationSet::none());
        let optimized = build_graph(&cfg, &OptimizationSet::scalefold());
        let t_ref = step_time(&reference, &dev, CpuModel::healthy(), false).total_s;
        let t_opt = step_time(&optimized, &dev, CpuModel::healthy(), true).total_s;
        // Before DAP/cluster effects, node-local optimizations alone should
        // give a healthy multiple.
        assert!(
            t_ref / t_opt > 2.0,
            "ref {t_ref:.2}s vs optimized {t_opt:.2}s"
        );
    }

    #[test]
    fn each_flag_contributes_nonnegative_speedup() {
        let cfg = ModelConfig::paper();
        let dev = DeviceSpec::h100();
        let time = |o: &OptimizationSet| {
            let g = build_graph(&cfg, o);
            step_time(&g, &dev, CpuModel::healthy(), o.cuda_graph).total_s
        };
        let mut opts = OptimizationSet::none();
        let mut last = time(&opts);
        type Flag = (&'static str, fn(&mut OptimizationSet));
        let flags: [Flag; 8] = [
            ("gemm_batching", |o| o.gemm_batching = true),
            ("bf16", |o| o.bf16 = true),
            ("triton_mha", |o| o.triton_mha = true),
            ("triton_ln", |o| o.triton_ln = true),
            ("fused_adam_swa", |o| o.fused_adam_swa = true),
            ("no_ckpt", |o| o.no_grad_checkpointing = true),
            ("torch_compile", |o| o.torch_compile = true),
            ("cuda_graph", |o| o.cuda_graph = true),
        ];
        for (name, apply) in flags {
            apply(&mut opts);
            let t = time(&opts);
            assert!(
                t <= last * 1.02,
                "{name} made the step slower: {last:.3} -> {t:.3}"
            );
            last = t;
        }
    }

    #[test]
    fn dap_requires_memory_for_no_ckpt() {
        let o1 = OptimizationSet::scalefold_dap(1);
        assert!(!o1.no_grad_checkpointing);
        let o8 = OptimizationSet::scalefold_dap(8);
        assert!(o8.no_grad_checkpointing);
    }

    #[test]
    fn bf16_shrinks_graph_traffic() {
        let cfg = ModelConfig::paper();
        let base = build_graph(&cfg, &OptimizationSet::none());
        let bf16 = build_graph(
            &cfg,
            &OptimizationSet {
                bf16: true,
                ..OptimizationSet::none()
            },
        );
        let bytes = |g: &StepGraph| g.ops.iter().map(|o| o.kernel.bytes).sum::<f64>();
        let factor = sf_opgraph::fusion::BF16_BYTES_FACTOR;
        assert!((bytes(&bf16) - factor * bytes(&base)).abs() < 1e-6 * bytes(&base));
    }
}
