//! End-to-end fault drill: one run that survives a panicking data worker,
//! a NaN-gradient step, and a corrupted checkpoint — the acceptance test
//! for the fault-tolerance subsystem.

use scalefold::{RecoveryEvent, Trainer, TrainerConfig};
use sf_faults::{corrupt, FaultPlan};

fn drill_cfg() -> TrainerConfig {
    let mut cfg = TrainerConfig::tiny();
    cfg.model.evoformer_blocks = 1;
    cfg.model.extra_msa_blocks = 0;
    cfg.model.template_blocks = 0;
    cfg.model.n_templates = 1;
    cfg.model.structure_layers = 1;
    cfg.dataset_len = 6;
    cfg.loader_workers = 2;
    cfg
}

#[test]
fn training_survives_worker_panic_nan_grads_and_corrupt_checkpoint() {
    let dir = std::env::temp_dir().join(format!("sf_fault_drill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // One permanently poisoned sample, one NaN-poisoned optimizer step.
    let plan = FaultPlan::none().with_worker_panic(2).with_nan_grad(1);
    let mut trainer = Trainer::with_faults(drill_cfg(), plan);

    // More steps than one epoch has healthy samples (5 of 6), so the run
    // must consume the poisoned sample's failure before finishing.
    let steps = 7;
    let reports = trainer.train(steps);

    // Training completed despite the data fault...
    assert_eq!(reports.len(), steps as usize, "run must complete");
    assert!(
        trainer
            .recovery_log()
            .iter()
            .any(|e| matches!(e, RecoveryEvent::DataFault { .. })),
        "worker panic must be logged: {:?}",
        trainer.recovery_log()
    );
    // ...and exactly the poisoned step was skipped.
    let skipped: Vec<u64> = reports.iter().filter(|r| r.skipped).map(|r| r.step).collect();
    assert_eq!(skipped, vec![2], "exactly optimizer step 1 (report 2) skips");
    assert!(reports.iter().filter(|r| !r.skipped).all(|r| r.grad_norm.is_finite()));

    // Checkpoint, train on, checkpoint again, then corrupt the newest
    // file: recovery must fall back to the older, valid one.
    let older = trainer.save_checkpoint_step(&dir).expect("save older");
    let weights_at_older: Vec<(String, Vec<f32>)> = trainer
        .store()
        .names()
        .into_iter()
        .map(|n| {
            let t = trainer.store().get(&n).expect("param").data().to_vec();
            (n, t)
        })
        .collect();
    let _ = trainer.train(1);
    let newer = trainer.save_checkpoint_step(&dir).expect("save newer");
    assert_ne!(older, newer);
    let len = corrupt::file_len(&newer).expect("len");
    corrupt::flip_bit(&newer, (len * 3 / 4) as usize, 0).expect("flip");

    let mut recovered = Trainer::new(drill_cfg());
    let summary = recovered
        .resume_latest(&dir)
        .expect("resume must not error")
        .expect("a valid checkpoint exists");
    assert_eq!(summary.path, older, "must fall back past the corrupt newest file");
    assert_eq!(summary.skipped.len(), 1, "the corrupt file is reported");
    assert_eq!(summary.step, Some(7));
    assert_eq!(recovered.step_count(), 7);

    // Bit-exact restoration of the older checkpoint's weights.
    for (name, data) in &weights_at_older {
        assert_eq!(
            recovered.store().get(name).expect("param").data(),
            data.as_slice(),
            "restored weights must be bit-exact: {name}"
        );
    }

    // The injector saw both scheduled faults actually fire.
    let log = trainer.injector().log();
    assert!(log.iter().any(|e| matches!(e, sf_faults::FaultEvent::InjectedPanic { dataset_index: 2, .. })));
    assert!(log.iter().any(|e| matches!(e, sf_faults::FaultEvent::InjectedNanGrad { step: 1 })));

    let _ = std::fs::remove_dir_all(&dir);
}
