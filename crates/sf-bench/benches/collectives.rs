//! Microbenchmarks of the functional ring collectives (the algorithms the
//! cluster simulator prices), across rank counts and payload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sf_cluster::collective::{all_gather, all_to_all, ring_all_reduce};
use std::hint::black_box;

fn make_buffers(n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|r| (0..len).map(|i| (r * 31 + i) as f32 * 0.01).collect())
        .collect()
}

fn bench_ring_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_all_reduce");
    group.sample_size(20);
    for &ranks in &[4usize, 8, 16] {
        let len = 16 * 1024;
        group.bench_with_input(BenchmarkId::new("ranks", ranks), &ranks, |b, &n| {
            b.iter_batched(
                || make_buffers(n, len),
                |mut buffers| {
                    black_box(ring_all_reduce(&mut buffers));
                    buffers
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_gather_and_a2a(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_a2a");
    group.sample_size(20);
    let n = 8usize;
    let shards = make_buffers(n, 8 * 1024);
    group.bench_function("all_gather_8x8k", |b| {
        b.iter(|| black_box(all_gather(black_box(&shards))))
    });
    let inputs = make_buffers(n, n * 1024);
    group.bench_function("all_to_all_8x8k", |b| {
        b.iter(|| black_box(all_to_all(black_box(&inputs))))
    });
    group.finish();
}

criterion_group!(benches, bench_ring_all_reduce, bench_gather_and_a2a);
criterion_main!(benches);
