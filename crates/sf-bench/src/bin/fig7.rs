//! Regenerates Figure 7: step time vs OpenFold / FastFold and DAP scaling.
fn main() {
    sf_bench::banner("Figure 7: step time vs baselines");
    println!("{}", scalefold::experiments::fig7());
}
