//! CUDA-stream timeline: the interaction of a CPU launch cursor with the GPU
//! execution cursor.
//!
//! This is where the paper's "CPU overhead" factor lives: AlphaFold
//! launches over 150,000 kernels per step, so when kernels are short (DAP
//! shrinks them) or the CPU is slow (background processes, Python GC), the
//! GPU starves waiting for launches.

use crate::device::DeviceSpec;
use crate::kernel::Kernel;
use serde::{Deserialize, Serialize};

/// CPU-side condition of the launching process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Multiplier on per-kernel launch cost (1.0 = healthy host). Background
    /// CPU peaks and GC pauses raise it.
    pub launch_slowdown: f64,
    /// Extra CPU time per step from Python garbage collection, seconds
    /// (eliminated by `gc.disable()` in the paper).
    pub gc_pause_s: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            launch_slowdown: 1.0,
            gc_pause_s: 0.0,
        }
    }
}

impl CpuModel {
    /// A healthy host.
    pub fn healthy() -> Self {
        CpuModel::default()
    }

    /// A host with background processes stealing cycles (the paper's
    /// "cluster machine CPU peaks"): launches take `slowdown`× longer.
    pub fn contended(slowdown: f64) -> Self {
        CpuModel {
            launch_slowdown: slowdown,
            gc_pause_s: 0.0,
        }
    }
}

/// Result of executing a kernel sequence on a stream.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamStats {
    /// Wall-clock time of the whole sequence, seconds.
    pub total_s: f64,
    /// Pure GPU busy time, seconds.
    pub gpu_busy_s: f64,
    /// Time the GPU sat idle waiting for launches (+ GC pauses), seconds —
    /// the exposed CPU overhead.
    pub cpu_exposed_s: f64,
    /// Number of kernels executed.
    pub kernels: usize,
}

/// A single in-order execution stream.
#[derive(Debug, Clone)]
pub struct Stream {
    device: DeviceSpec,
    cpu: CpuModel,
}

impl Stream {
    /// Creates a stream on `device` with host condition `cpu`.
    pub fn new(device: DeviceSpec, cpu: CpuModel) -> Self {
        Stream { device, cpu }
    }

    /// The device spec.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The host condition.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// Executes kernels in **eager mode**: each kernel costs a CPU launch;
    /// the GPU starts a kernel only after both (a) the previous kernel
    /// finished and (b) its launch was issued.
    pub fn run_eager(&self, kernels: &[Kernel]) -> StreamStats {
        let launch = self.device.kernel_launch_us * 1e-6 * self.cpu.launch_slowdown;
        let mut cpu_t = self.cpu.gc_pause_s; // GC pause delays the first launch
        let mut gpu_t = 0.0f64;
        let mut busy = 0.0f64;
        for k in kernels {
            cpu_t += launch;
            let start = gpu_t.max(cpu_t);
            let d = k.duration_s(&self.device);
            gpu_t = start + d;
            busy += d;
        }
        StreamStats {
            total_s: gpu_t,
            gpu_busy_s: busy,
            cpu_exposed_s: gpu_t - busy,
            kernels: kernels.len(),
        }
    }

    /// Like [`Stream::run_eager`], but with host **synchronization points**:
    /// at each index in `syncs`, the CPU waits for the GPU to drain before
    /// issuing further launches (data-dependent control flow, `.item()`
    /// reads, gradient-norm checks). Sync points prevent the CPU from
    /// building up run-ahead slack, which is what exposes launch overhead on
    /// stretches of tiny kernels.
    pub fn run_eager_with_syncs(&self, kernels: &[Kernel], syncs: &[usize]) -> StreamStats {
        let launch = self.device.kernel_launch_us * 1e-6 * self.cpu.launch_slowdown;
        let mut cpu_t = self.cpu.gc_pause_s;
        let mut gpu_t = 0.0f64;
        let mut busy = 0.0f64;
        let mut sync_iter = syncs.iter().peekable();
        for (i, k) in kernels.iter().enumerate() {
            while sync_iter.peek().is_some_and(|&&s| s <= i) {
                sync_iter.next();
                cpu_t = cpu_t.max(gpu_t);
            }
            cpu_t += launch;
            let start = gpu_t.max(cpu_t);
            let d = k.duration_s(&self.device);
            gpu_t = start + d;
            busy += d;
        }
        StreamStats {
            total_s: gpu_t,
            gpu_busy_s: busy,
            cpu_exposed_s: gpu_t - busy,
            kernels: kernels.len(),
        }
    }

    /// Executes kernels as a **captured CUDA graph replay**: one launch for
    /// the whole sequence, kernels back-to-back. CPU condition no longer
    /// matters beyond the single launch — the robustness the paper wants.
    pub fn run_graph(&self, kernels: &[Kernel]) -> StreamStats {
        let launch = self.device.graph_launch_us * 1e-6 * self.cpu.launch_slowdown;
        let busy: f64 = kernels.iter().map(|k| k.duration_s(&self.device)).sum();
        StreamStats {
            total_s: launch + busy,
            gpu_busy_s: busy,
            cpu_exposed_s: launch,
            kernels: kernels.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernels(n: usize) -> Vec<Kernel> {
        (0..n).map(|i| Kernel::memory(format!("k{i}"), 1e5, 64)).collect()
    }

    #[test]
    fn eager_large_kernels_hide_launches() {
        let s = Stream::new(DeviceSpec::a100(), CpuModel::healthy());
        let big: Vec<Kernel> = (0..10).map(|i| Kernel::memory(format!("k{i}"), 1e9, 4096)).collect();
        let stats = s.run_eager(&big);
        // Launch cost is tiny relative to ms-scale kernels.
        assert!(stats.cpu_exposed_s < 0.05 * stats.total_s);
    }

    #[test]
    fn eager_tiny_kernels_expose_cpu() {
        let s = Stream::new(DeviceSpec::a100(), CpuModel::healthy());
        let stats = s.run_eager(&tiny_kernels(1000));
        // Tiny kernels: launch-bound.
        assert!(
            stats.cpu_exposed_s > 0.2 * stats.total_s,
            "exposed {} total {}",
            stats.cpu_exposed_s,
            stats.total_s
        );
    }

    #[test]
    fn graph_removes_launch_overhead() {
        let s = Stream::new(DeviceSpec::a100(), CpuModel::healthy());
        let ks = tiny_kernels(1000);
        let eager = s.run_eager(&ks);
        let graph = s.run_graph(&ks);
        assert!(graph.total_s < eager.total_s);
        assert!(graph.cpu_exposed_s < 1e-4);
        // GPU busy time identical (same kernels).
        assert!((graph.gpu_busy_s - eager.gpu_busy_s).abs() < 1e-9);
    }

    #[test]
    fn cpu_contention_hurts_eager_not_graph() {
        let ks = tiny_kernels(500);
        let healthy = Stream::new(DeviceSpec::h100(), CpuModel::healthy());
        let contended = Stream::new(DeviceSpec::h100(), CpuModel::contended(4.0));
        let e_h = healthy.run_eager(&ks).total_s;
        let e_c = contended.run_eager(&ks).total_s;
        assert!(e_c > 1.5 * e_h, "contended eager {e_c} vs healthy {e_h}");
        let g_h = healthy.run_graph(&ks).total_s;
        let g_c = contended.run_graph(&ks).total_s;
        // Graph replay: contention affects only one launch — negligible.
        assert!((g_c - g_h) / g_h < 0.05);
    }

    #[test]
    fn gc_pause_adds_to_eager_time() {
        let ks = tiny_kernels(10);
        let no_gc = Stream::new(DeviceSpec::h100(), CpuModel::healthy());
        let with_gc = Stream::new(
            DeviceSpec::h100(),
            CpuModel {
                launch_slowdown: 1.0,
                gc_pause_s: 0.1,
            },
        );
        let d = with_gc.run_eager(&ks).total_s - no_gc.run_eager(&ks).total_s;
        assert!((d - 0.1).abs() < 1e-6);
    }

    #[test]
    fn empty_sequence_is_free() {
        let s = Stream::new(DeviceSpec::a100(), CpuModel::healthy());
        let stats = s.run_eager(&[]);
        assert_eq!(stats.total_s, 0.0);
        assert_eq!(stats.kernels, 0);
    }
}
