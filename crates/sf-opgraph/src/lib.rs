//! Operator graph of one AlphaFold training step.
//!
//! This crate generates the full kernel sequence of a training step from a
//! [`sf_model::ModelConfig`] (forward, backward, and optimizer phases),
//! classifies the kernels per the paper's Table 1 taxonomy, applies
//! ScaleFold's fusion passes, and costs the result on an
//! [`sf_gpusim::DeviceSpec`]:
//!
//! - [`builder`]: expands every model module into its kernels (GEMMs,
//!   layer norms, softmaxes, elementwise glue, transposes/copies), then the
//!   backward pass (~2× kernels) and the training subroutines (per-tensor
//!   Adam / SWA / gradient-clip kernels — the >4000-tensor kernel storm).
//! - [`fusion`]: the optimization passes —
//!   [`fusion::fuse_layer_norm`], [`fusion::fuse_mha`],
//!   [`fusion::batch_gemms`], [`fusion::fuse_adam_swa`],
//!   [`fusion::bucket_grad_clip`], [`fusion::auto_fuse_elementwise`]
//!   ("torch.compile"), and [`fusion::to_bf16`].
//! - [`profile`]: Table-1 classification, per-module runtime breakdown
//!   (Evoformer / MHA / LN / optimizer shares), and step-time estimation
//!   via the stream model (eager vs CUDA graph).
//! - [`dap`]: Dynamic Axial Parallelism sharding of the parallelizable
//!   kernels, leaving the paper's *serial modules* (data pipeline feed,
//!   structure module) unsharded, plus the DAP communication volume.
//! - [`memory`]: the per-rank footprint model behind the paper's "High
//!   Memory Consumption" challenge — it decides when gradient
//!   checkpointing can be disabled.

pub mod builder;
pub mod dap;
pub mod fusion;
pub mod memory;
pub mod ops;
pub mod profile;

pub use builder::StepGraph;
pub use ops::{ModuleTag, OpKind, OpNode};
pub use profile::{ModuleProfile, Table1};
