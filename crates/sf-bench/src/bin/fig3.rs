//! Regenerates Figure 3: the DAP scalability-barrier decomposition.
fn main() {
    sf_bench::banner("Figure 3: scalability barriers");
    println!("{}", scalefold::experiments::fig3());
}
