//! Featurization: synthetic protein record → model [`FeatureBatch`]
//! (cropping, MSA sampling, BERT-style MSA masking, template features).

use crate::protein::ProteinRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sf_model::config::{ModelConfig, MSA_EXTRA_CHANNELS, NUM_AA_TYPES};
use sf_model::embed::distogram_one_hot;
use sf_model::FeatureBatch;
use sf_tensor::Tensor;

/// Fraction of MSA positions masked for the reconstruction task
/// (AlphaFold uses 15%).
pub const MSA_MASK_FRACTION: f32 = 0.15;

/// Per-position mutation rate used when sampling synthetic MSA rows.
const MSA_MUTATION_RATE: f32 = 0.15;

/// Crops and featurizes a record into a [`FeatureBatch`] matching `cfg`.
///
/// - Crops a random `cfg.n_res` window (all local batches are cropped to the
///   same shape, as in the paper); short records are padded with
///   `residue_mask = 0`.
/// - Samples `cfg.n_seq` clustered and `cfg.n_extra_seq` extra MSA rows by
///   mutating the target sequence (row 0 is the target itself).
/// - Masks [`MSA_MASK_FRACTION`] of clustered-MSA positions, recording
///   reconstruction targets.
/// - Builds template features as the distogram of a noisy copy of the true
///   structure.
#[allow(clippy::needless_range_loop)]
pub fn featurize(record: &ProteinRecord, cfg: &ModelConfig, seed: u64) -> FeatureBatch {
    let mut rng = StdRng::seed_from_u64(seed ^ record.id);
    let n = cfg.n_res;
    let len = record.len();
    let crop_start = if len > n { rng.gen_range(0..=len - n) } else { 0 };
    let valid = len.min(n);

    // Cropped residue types (padded with the unknown type).
    let mut residues = vec![(NUM_AA_TYPES - 1) as u8; n];
    residues[..valid].copy_from_slice(&record.sequence[crop_start..crop_start + valid]);

    let mut residue_mask = Tensor::zeros(&[n]);
    for i in 0..valid {
        residue_mask.data_mut()[i] = 1.0;
    }

    let mut residue_index = Tensor::zeros(&[n]);
    for i in 0..n {
        residue_index.data_mut()[i] = (crop_start + i) as f32;
    }

    // Target one-hot.
    let mut target_feat = Tensor::zeros(&[n, NUM_AA_TYPES]);
    for (i, &aa) in residues.iter().enumerate() {
        target_feat.data_mut()[i * NUM_AA_TYPES + aa as usize] = 1.0;
    }

    // True coordinates (padded region centered at origin, masked out).
    let mut true_coords = Tensor::zeros(&[n, 3]);
    for i in 0..valid {
        for k in 0..3 {
            let v = record.coords.at(&[crop_start + i, k]).expect("in range");
            true_coords.data_mut()[i * 3 + k] = v;
        }
    }

    // Extra MSA first: unmasked, more heavily mutated — and the source of
    // the cluster profiles below.
    let we = cfg.extra_msa_feat_dim();
    let mut extra = Tensor::zeros(&[cfg.n_extra_seq, n, we]);
    let mut profile_counts = vec![0.0f32; n * NUM_AA_TYPES];
    let mut deletion_sums = vec![0.0f32; n];
    for s in 0..cfg.n_extra_seq {
        for i in 0..n {
            let aa = if rng.gen::<f32>() > 2.0 * MSA_MUTATION_RATE {
                residues[i] as usize
            } else {
                rng.gen_range(0..NUM_AA_TYPES)
            };
            extra.data_mut()[(s * n + i) * we + aa] = 1.0;
            profile_counts[i * NUM_AA_TYPES + aa] += 1.0;
            if rng.gen::<f32>() < 0.05 {
                let del = rng.gen_range(0.0..1.0);
                extra.data_mut()[(s * n + i) * we + NUM_AA_TYPES] = 1.0;
                extra.data_mut()[(s * n + i) * we + NUM_AA_TYPES + 1] = del;
                deletion_sums[i] += del;
            }
        }
    }
    // Cluster profile per position: residue-type distribution of the extra
    // sequences (every extra sequence assigned to the single crop cluster),
    // plus the mean deletion value (AlphaFold's cluster features).
    let denom = cfg.n_extra_seq.max(1) as f32;
    let profile: Vec<f32> = profile_counts.iter().map(|c| c / denom).collect();
    let deletion_mean: Vec<f32> = deletion_sums.iter().map(|d| d / denom).collect();

    // Clustered MSA: one-hot + deletions + the shared cluster profile.
    let w = cfg.msa_feat_dim();
    let profile_off = NUM_AA_TYPES + MSA_EXTRA_CHANNELS;
    let mut msa_feat = Tensor::zeros(&[cfg.n_seq, n, w]);
    let mut masked_targets = Tensor::full(&[cfg.n_seq, n], -1.0);
    for s in 0..cfg.n_seq {
        for i in 0..n {
            let true_aa = if s == 0 || rng.gen::<f32>() > MSA_MUTATION_RATE {
                residues[i] as usize
            } else {
                rng.gen_range(0..NUM_AA_TYPES)
            };
            let off = (s * n + i) * w;
            let mask_this = residue_mask.data()[i] > 0.0 && rng.gen::<f32>() < MSA_MASK_FRACTION;
            if mask_this {
                // BERT-style: replace with uniform noise over types; record
                // the reconstruction target.
                masked_targets.data_mut()[s * n + i] = true_aa as f32;
                let noise_aa = rng.gen_range(0..NUM_AA_TYPES);
                msa_feat.data_mut()[off + noise_aa] = 1.0;
            } else {
                msa_feat.data_mut()[off + true_aa] = 1.0;
            }
            // Deletion channels: sparse small values.
            if rng.gen::<f32>() < 0.05 {
                msa_feat.data_mut()[off + NUM_AA_TYPES] = 1.0;
                msa_feat.data_mut()[off + NUM_AA_TYPES + 1] = rng.gen_range(0.0..1.0);
            }
            // Cluster profile channels (masking never hides the profile —
            // that is what makes the reconstruction task solvable).
            for aa in 0..NUM_AA_TYPES {
                msa_feat.data_mut()[off + profile_off + aa] = profile[i * NUM_AA_TYPES + aa];
            }
            msa_feat.data_mut()[off + profile_off + NUM_AA_TYPES] = deletion_mean[i];
        }
    }

    // Templates: distogram of noisy true coordinates (one per template,
    // noise growing with template index — later templates are worse).
    let mut template_slices = Vec::with_capacity(cfg.n_templates);
    for t in 0..cfg.n_templates {
        let noise = Tensor::randn(&[n, 3], seed ^ (t as u64 + 1) ^ record.id)
            .mul_scalar(0.5 + t as f32);
        let noisy = true_coords.add(&noise).expect("same shape");
        template_slices.push(distogram_one_hot(&noisy));
    }
    let refs: Vec<&Tensor> = template_slices.iter().collect();
    let template_feat = if refs.is_empty() {
        Tensor::zeros(&[0, n, n, sf_model::config::DISTOGRAM_BINS])
    } else {
        Tensor::stack(&refs).expect("uniform shapes")
    };

    FeatureBatch {
        target_feat,
        msa_feat,
        extra_msa_feat: extra,
        template_feat,
        true_coords,
        residue_mask,
        masked_msa_targets: masked_targets,
        residue_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protein::SyntheticDataset;

    fn sample() -> (ProteinRecord, ModelConfig) {
        let d = SyntheticDataset::new(21, 10);
        (d.record(0), ModelConfig::tiny())
    }

    #[test]
    fn cluster_profile_is_a_distribution() {
        let (rec, cfg) = sample();
        let b = featurize(&rec, &cfg, 13);
        let w = cfg.msa_feat_dim();
        let off = NUM_AA_TYPES + MSA_EXTRA_CHANNELS;
        for i in 0..cfg.n_res {
            let row: f32 = (0..NUM_AA_TYPES)
                .map(|a| b.msa_feat.data()[i * w + off + a])
                .sum();
            assert!((row - 1.0).abs() < 1e-4, "profile at {i} sums to {row}");
            // Identical across cluster rows (one cluster per crop).
            for s in 1..cfg.n_seq {
                for a in 0..NUM_AA_TYPES {
                    assert_eq!(
                        b.msa_feat.data()[(s * cfg.n_res + i) * w + off + a],
                        b.msa_feat.data()[i * w + off + a]
                    );
                }
            }
        }
    }

    #[test]
    fn featurized_batch_validates() {
        let (rec, cfg) = sample();
        let b = featurize(&rec, &cfg, 1);
        b.validate(&cfg).unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        let (rec, cfg) = sample();
        let a = featurize(&rec, &cfg, 5);
        let b = featurize(&rec, &cfg, 5);
        assert_eq!(a.msa_feat, b.msa_feat);
        assert_eq!(a.true_coords, b.true_coords);
        let c = featurize(&rec, &cfg, 6);
        assert_ne!(a.msa_feat, c.msa_feat);
    }

    #[test]
    fn crop_respects_record_geometry() {
        let (rec, cfg) = sample();
        let b = featurize(&rec, &cfg, 2);
        // First crop residue's coords must appear somewhere in the record.
        let x0 = b.true_coords.at(&[0, 0]).unwrap();
        let found = (0..rec.len()).any(|i| (rec.coords.at(&[i, 0]).unwrap() - x0).abs() < 1e-6);
        assert!(found);
        // Residue index is contiguous.
        for i in 0..cfg.n_res - 1 {
            assert_eq!(
                b.residue_index.data()[i + 1] - b.residue_index.data()[i],
                1.0
            );
        }
    }

    #[test]
    fn some_positions_are_masked() {
        let (rec, cfg) = sample();
        let b = featurize(&rec, &cfg, 3);
        let masked = b
            .masked_msa_targets
            .data()
            .iter()
            .filter(|&&t| t >= 0.0)
            .count();
        let total = cfg.n_seq * cfg.n_res;
        let frac = masked as f32 / total as f32;
        assert!(
            (0.05..0.35).contains(&frac),
            "masked fraction {frac} out of band"
        );
    }

    #[test]
    fn short_record_is_padded_and_masked() {
        let mut cfg = ModelConfig::tiny();
        cfg.n_res = 64; // longer than the shortest possible record? ensure pad
        let rec = ProteinRecord {
            id: 1,
            sequence: vec![0u8; 40],
            msa_depth: 16,
            coords: Tensor::zeros(&[40, 3]),
        };
        let b = featurize(&rec, &cfg, 4);
        assert_eq!(b.residue_mask.sum_all(), 40.0);
        // Padded positions use the unknown type.
        let last = cfg.n_res - 1;
        assert_eq!(
            b.target_feat.at(&[last, NUM_AA_TYPES - 1]).unwrap(),
            1.0
        );
    }

    #[test]
    fn msa_row_zero_tracks_target_where_unmasked() {
        let (rec, cfg) = sample();
        let b = featurize(&rec, &cfg, 7);
        let w = cfg.msa_feat_dim();
        for i in 0..cfg.n_res {
            if b.masked_msa_targets.data()[i] >= 0.0 {
                continue; // masked: one-hot is noise by design
            }
            // Row 0 one-hot must match target_feat.
            for aa in 0..NUM_AA_TYPES {
                assert_eq!(
                    b.msa_feat.data()[i * w + aa],
                    b.target_feat.data()[i * NUM_AA_TYPES + aa],
                    "row0 mismatch at residue {i} type {aa}"
                );
            }
        }
    }
}
