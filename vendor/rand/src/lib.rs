//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the rand 0.8 API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], and [`Rng::gen_bool`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically strong and
//! deterministic, though the exact streams differ from upstream rand
//! (nothing in the workspace depends on upstream's bit-exact output).

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed array.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible from raw bits via `Rng::gen` (the `Standard`
/// distribution of upstream rand, collapsed into one trait).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A type with a uniform sampler over an interval, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
///
/// The two blanket impls (rather than per-type ones) matter: they let the
/// compiler unify an untyped float literal in `gen_range(-0.6..0.6)` with
/// the call site's expected output type, exactly as upstream rand does.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform bits for ints, `[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (upstream uses ChaCha12; the
    /// workspace only relies on determinism and statistical quality, not
    /// upstream's exact streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-3i8..4);
            assert!((-3..4).contains(&y));
            let z = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&z));
            let w = rng.gen_range(0u8..=255);
            let _ = w;
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
