//! Software emulation of the reduced-precision formats the paper evaluates.
//!
//! ScaleFold's §3.4 reports: TF32/AMP-fp16 are only marginally faster, naive
//! fp16 produces NaNs, and full **bfloat16** both converges and yields a
//! 1.24× speedup (OpenFold is memory-bound, so halving bytes moved nearly
//! halves memory-bound kernel time).
//!
//! This module provides bit-accurate [`Bf16`] (round-to-nearest-even) and
//! [`Fp16`] conversions plus tensor-level quantization helpers, letting the
//! CPU-scale trainer demonstrate the same qualitative behaviour: bf16
//! training converges, naive fp16 overflows on AlphaFold-scale logits.

use crate::Tensor;

/// A bfloat16 value: the top 16 bits of an IEEE-754 f32 (8-bit exponent,
/// 7-bit mantissa). Same dynamic range as f32, reduced precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Largest finite bf16 (≈ 3.39e38).
    pub const MAX: Bf16 = Bf16(0x7F7F);

    /// Converts from f32 with round-to-nearest-even (the hardware rounding
    /// mode on NVIDIA GPUs and TPUs).
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Preserve NaN, force a quiet mantissa bit.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits: adding
        // 0x7FFF + lsb carries into bit 16 exactly when the dropped half
        // is > 0.5 ulp, or == 0.5 ulp with an odd kept lsb.
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        Bf16((rounded >> 16) as u16)
    }

    /// Converts back to f32 (exact).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// True for NaN payloads.
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}

impl std::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// An IEEE-754 binary16 value (5-bit exponent, 10-bit mantissa). Narrow
/// dynamic range: overflows above 65504 — which is exactly why naive fp16
/// AlphaFold training NaNs out (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Fp16(u16);

impl Fp16 {
    /// Largest finite fp16 (65504).
    pub const MAX_F32: f32 = 65504.0;

    /// Converts from f32 with round-to-nearest-even; overflows to ±inf.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN.
            let payload = if mant != 0 { 0x0200 } else { 0 };
            return Fp16(sign | 0x7C00 | payload);
        }
        let unbiased = exp - 127;
        if unbiased > 15 {
            return Fp16(sign | 0x7C00); // overflow -> inf
        }
        if unbiased >= -14 {
            // Normal range: keep 10 mantissa bits with RNE.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let shift = 13;
            let kept = (mant >> shift) as u16;
            let rem = mant & ((1 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | half_exp | kept;
            if rem > halfway || (rem == halfway && (kept & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exponent: correct
            }
            return Fp16(out);
        }
        if unbiased >= -25 {
            // Subnormal: value = kept * 2^-24, kept = round(full * 2^(unbiased+1)).
            let shift = (-unbiased - 1) as u32; // 14..=24
            let full = mant | 0x0080_0000;
            let mut kept = (full >> shift) as u16;
            let rem = full & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            if rem > halfway || (rem == halfway && (kept & 1) == 1) {
                kept = kept.wrapping_add(1); // may carry into min normal: correct
            }
            return Fp16(sign | kept);
        }
        Fp16(sign) // underflow to zero
    }

    /// Converts back to f32.
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 as u32) & 0x8000) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;
        let bits = if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13)
        } else if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: normalize.
                let mut e = -14i32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// True if the value is infinite.
    pub fn is_infinite(self) -> bool {
        self.to_f32().is_infinite()
    }

    /// True for NaN payloads.
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }
}

impl From<f32> for Fp16 {
    fn from(x: f32) -> Self {
        Fp16::from_f32(x)
    }
}

impl From<Fp16> for f32 {
    fn from(x: Fp16) -> Self {
        x.to_f32()
    }
}

impl std::fmt::Display for Fp16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Numeric precision policy applied to activations during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// Full f32 (the MLPerf reference default).
    #[default]
    F32,
    /// bfloat16 storage: activations rounded through [`Bf16`] after each op.
    Bf16,
    /// Naive float16 storage — included to demonstrate the NaN failure mode.
    Fp16,
}

impl Precision {
    /// Rounds a tensor through this precision's storage format.
    pub fn quantize(self, t: &Tensor) -> Tensor {
        match self {
            Precision::F32 => t.clone(),
            Precision::Bf16 => t.map(|x| Bf16::from_f32(x).to_f32()),
            Precision::Fp16 => t.map(|x| Fp16::from_f32(x).to_f32()),
        }
    }

    /// Bytes per element in this format (used by the roofline model).
    pub fn bytes_per_element(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::Bf16 | Precision::Fp16 => 2,
        }
    }
}

impl Fp16 {
    /// Constructs from a raw bit pattern (test/interop helper).
    pub fn from_bits_raw(bits: u16) -> Self {
        Fp16(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_round_trip_exact_values() {
        for &x in &[0.0f32, 1.0, -1.0, 0.5, 2.0, -0.25, 1.5e30, -3.0e-30] {
            let b = Bf16::from_f32(x);
            // Values with ≤7 mantissa bits round-trip exactly.
            if x.to_bits() & 0xFFFF == 0 {
                assert_eq!(b.to_f32(), x);
            }
        }
        assert_eq!(Bf16::from_f32(1.0).to_f32(), 1.0);
        assert_eq!(Bf16::from_f32(-2.5).to_f32(), -2.5);
    }

    #[test]
    fn bf16_relative_error_bound() {
        // bf16 has 8 significand bits -> relative error <= 2^-8.
        for i in 0..1000 {
            let x = (i as f32 * 0.37 + 0.01) * if i % 2 == 0 { 1.0 } else { -1.0 };
            let r = Bf16::from_f32(x).to_f32();
            assert!(((r - x) / x).abs() <= 1.0 / 256.0, "{x} -> {r}");
        }
    }

    #[test]
    fn bf16_round_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next value;
        // RNE keeps the even (lower) one.
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(halfway).to_bits(), 0x3F80);
        // Just above halfway rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(above).to_bits(), 0x3F81);
    }

    #[test]
    fn bf16_preserves_nan_and_inf() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert_eq!(Bf16::from_f32(f32::INFINITY), Bf16::INFINITY);
        assert_eq!(Bf16::from_f32(f32::NEG_INFINITY).to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn bf16_huge_dynamic_range() {
        // bf16 represents 1e38 — fp16 cannot.
        assert!(Bf16::from_f32(1.0e38).to_f32().is_finite());
        assert!(Fp16::from_f32(1.0e38).is_infinite());
    }

    #[test]
    fn fp16_round_trip_exact_values() {
        for &x in &[0.0f32, 1.0, -1.0, 0.5, 65504.0, 6.1035156e-5, 2048.0] {
            assert_eq!(Fp16::from_f32(x).to_f32(), x, "{x}");
        }
    }

    #[test]
    fn fp16_overflow_to_inf() {
        assert!(Fp16::from_f32(70000.0).is_infinite());
        assert!(Fp16::from_f32(-70000.0).is_infinite());
        assert!(!Fp16::from_f32(65504.0).is_infinite());
    }

    #[test]
    fn fp16_subnormals() {
        let tiny = 5.96e-8f32; // smallest fp16 subnormal ≈ 5.96e-8
        let r = Fp16::from_f32(tiny).to_f32();
        assert!(r > 0.0 && (r - tiny).abs() / tiny < 0.5);
        assert_eq!(Fp16::from_f32(1e-12).to_f32(), 0.0); // underflow
    }

    #[test]
    fn fp16_nan() {
        assert!(Fp16::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn precision_quantize_tensor() {
        let t = Tensor::from_vec(vec![1.0, 1.0e5, 1.0e38], &[3]).unwrap();
        let bf = Precision::Bf16.quantize(&t);
        assert!(!bf.has_non_finite());
        let fp = Precision::Fp16.quantize(&t);
        // fp16 overflows on 1e5 and 1e38 — the paper's naive-fp16 NaN story.
        assert!(fp.has_non_finite());
        assert_eq!(Precision::F32.quantize(&t), t);
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::F32.bytes_per_element(), 4);
        assert_eq!(Precision::Bf16.bytes_per_element(), 2);
    }

    #[test]
    fn exhaustive_fp16_round_trip_via_bits() {
        // Every finite fp16 bit pattern must survive fp16 -> f32 -> fp16.
        for bits in 0u16..=0xFFFF {
            let h = Fp16::from_bits_raw(bits);
            let f = h.to_f32();
            if f.is_nan() {
                continue;
            }
            let back = Fp16::from_f32(f);
            assert_eq!(back.0, bits, "bits {bits:#06x} -> {f} -> {:#06x}", back.0);
        }
    }
}
