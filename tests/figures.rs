//! Shape checks for every reproduced table and figure: orderings, rough
//! ratios, and crossovers must match the paper (absolute values are
//! simulator-scale; see EXPERIMENTS.md).

use scalefold::experiments;

#[test]
fn table1_reproduces_kernel_breakdown_shape() {
    let r = experiments::table1();
    // Memory-bound work dominates runtime and calls (paper: 65% / 97,749).
    assert!(r.table.memory_pct > r.table.math_pct);
    assert!(r.table.memory_pct > 50.0);
    assert!(r.table.memory_calls > 3 * r.table.math_calls);
    // >150k operators per step (we accept >100k).
    assert!(r.table.total_calls() > 100_000);
    // Math calls land near the paper's 18,147.
    assert!((10_000..30_000).contains(&r.table.math_calls));
    // MHA and LN are the two dominant patterns (34% / 14%).
    assert!(r.profile.mha_pct > r.profile.layernorm_pct);
    assert!(r.profile.mha_pct > 20.0);
    assert!((5.0..25.0).contains(&r.profile.layernorm_pct));
    // Reference A100 step in the right magnitude (paper: 6.76 s).
    assert!((4.0..14.0).contains(&r.a100_step_s));
}

#[test]
fn fig3_breakdown_shape() {
    let r = experiments::fig3();
    assert_eq!(r.rows.len(), 3);
    for row in &r.rows {
        // Actual always exceeds ideal; all components non-negative.
        assert!(row.actual_s > row.ideal_s);
        assert!(row.cpu_overhead_s >= 0.0);
        assert!(row.imbalance_s >= 0.0);
    }
    // Imbalance share grows with DAP degree (the paper's key observation).
    let share = |i: usize| r.rows[i].imbalance_s / r.rows[i].actual_s;
    assert!(share(2) > share(0), "dap8 {} vs dap2 {}", share(2), share(0));
    // Baseline speedups plateau: DAP-8 is within 35% of DAP-4 (paper: both
    // ~1.57x).
    let s4 = r.speedups[1].1;
    let s8 = r.speedups[2].1;
    assert!((s8 - s4).abs() / s4 < 0.35, "s4 {s4:.2} s8 {s8:.2}");
}

#[test]
fn fig4_prep_time_distribution_shape() {
    let r = experiments::fig4(2000);
    let min = r.sorted_s.first().copied().expect("nonempty");
    let max = r.sorted_s.last().copied().expect("nonempty");
    // Roughly three orders of magnitude spread.
    assert!(max / min > 100.0, "spread {min:.3}..{max:.3}");
    // ~10% slow batches.
    assert!((0.02..0.30).contains(&r.slow_fraction));
}

#[test]
fn fig7_step_time_orderings() {
    let r = experiments::fig7();
    // A100: OpenFold > FastFold > ScaleFold (paper: 6.19 / 2.49 / 1.88).
    assert!(r.a100[0].1 > r.a100[1].1);
    assert!(r.a100[1].1 > r.a100[2].1);
    // H100 ScaleFold: strictly improving with DAP.
    for w in r.h100.windows(2) {
        assert!(w[1].1 < w[0].1, "{} {:.2} !< {} {:.2}", w[1].0, w[1].1, w[0].0, w[0].1);
    }
    // DAP-8 speedup over DAP-1 in the paper's band (2.77x).
    let s8 = r.h100[0].1 / r.h100[3].1;
    assert!((1.7..4.5).contains(&s8), "DAP-8 speedup {s8:.2}");
}

#[test]
fn fig8_ladder_shape() {
    let r = experiments::fig8();
    assert_eq!(r.entries.len(), 10);
    // Monotone non-increasing H100 step times.
    for w in r.entries.windows(2) {
        assert!(w[1].h100_step_s <= w[0].h100_step_s * 1.05);
    }
    // Final cumulative speedup near the paper's ~6.2x.
    let last = r.entries.last().expect("rows");
    assert!((3.5..10.0).contains(&last.h100_speedup), "{:.2}", last.h100_speedup);
    // The DAP-8 stage needs the CUDA graph (1.52x vs 1.79x story).
    let (without, with) = r.dap8_graph_ablation;
    assert!(with < without);
}

#[test]
fn fig9_fig10_time_to_train_shape() {
    let r = experiments::fig9_fig10();
    // Async eval beats sync eval; both beat the reference.
    assert!(r.scalefold_async_s < r.scalefold_sync_s);
    assert!(r.scalefold_sync_s < r.reference_s);
    // Overall speedup near the paper's 6x (accept 3x-12x).
    let speedup = r.reference_s / r.scalefold_async_s;
    assert!((3.0..12.0).contains(&speedup), "speedup {speedup:.1}");
    // ScaleFold async lands in minutes, not hours (paper: 7.51 min).
    assert!(
        (2.0..40.0).contains(&(r.scalefold_async_s / 60.0)),
        "{:.1} min",
        r.scalefold_async_s / 60.0
    );
    // Sync-eval share grows as steps shrink (22% -> 43%).
    let (before, after) = r.eval_share_before_after;
    assert!(after > before);
}

#[test]
fn fig11_pretraining_shape() {
    let r = experiments::fig11();
    // 0.9 lDDT within 50k-60k steps; < ~10 h wall-clock; curve monotone.
    assert!((45_000..65_000).contains(&r.steps_to_target));
    assert!(r.total_hours < 12.0);
    assert!(r.curve.windows(2).all(|w| w[1].lddt >= w[0].lddt - 1e-9));
    // Phase-1 milestone: >= 0.78 at 5000 steps.
    let p5000 = r
        .curve
        .iter()
        .find(|p| p.step >= 5000)
        .expect("curve passes 5000 steps");
    assert!(p5000.lddt >= 0.75, "phase-1 lddt {:.3}", p5000.lddt);
    // Versus the original AlphaFold's ~7 days: at least 10x faster.
    assert!(r.total_hours < 7.0 * 24.0 / 10.0);
}

#[test]
fn scaling_reproduces_headline_claim() {
    // The abstract: ScaleFold "scaled the AlphaFold training to 2080 NVIDIA
    // H100 GPUs" where prior art stopped at 512 (DP capped at 256 by the
    // batch-size convergence limit).
    let points = experiments::scaling();
    let max_gpus = |system: &str| {
        points
            .iter()
            .filter(|p| p.system.starts_with(system))
            .map(|p| p.gpus)
            .max()
            .expect("system present")
    };
    assert_eq!(max_gpus("OpenFold"), 256);
    assert_eq!(max_gpus("FastFold"), 512);
    assert_eq!(max_gpus("ScaleFold"), 2048);

    let best = |system: &str| {
        points
            .iter()
            .filter(|p| p.system.starts_with(system))
            .map(|p| p.samples_per_s)
            .fold(0.0f64, f64::max)
    };
    // ScaleFold's peak throughput dwarfs the baselines' peaks.
    assert!(best("ScaleFold") > 3.0 * best("OpenFold"));
    assert!(best("ScaleFold") > 3.0 * best("FastFold"));
    // Throughput grows monotonically with ScaleFold's GPU count...
    let sf: Vec<&experiments::ScalingPoint> = points
        .iter()
        .filter(|p| p.system.starts_with("ScaleFold"))
        .collect();
    for w in sf.windows(2) {
        assert!(w[1].samples_per_s > w[0].samples_per_s);
    }
    // ...while scaling efficiency decays at the largest scales (DAP is
    // sub-linear — the honest part of the claim).
    assert!(sf.last().expect("points").efficiency < 0.8);
}
