//! Step-time models for the published baselines compared in Figure 7:
//! public OpenFold (no DAP) and FastFold (DAP with its own fused kernels
//! but neither flash-MHA-with-bias nor ScaleFold's pipeline/CPU work).

use crate::optimizations::{build_graph, OptimizationSet};
use sf_cluster::{ClusterConfig, ClusterSim, FabricSpec, StragglerModel};
use sf_gpusim::DeviceSpec;
use sf_model::ModelConfig;
use sf_opgraph::builder::StepGraph;
use sf_opgraph::fusion;

/// Public OpenFold's step graph: gradient checkpointing, bf16, no DAP, no
/// fused kernels beyond stock PyTorch.
pub fn openfold_graph(cfg: &ModelConfig) -> StepGraph {
    let g = StepGraph::reference_checkpointed(cfg, crate::optimizations::RECYCLE_FWD);
    // OpenFold trains in bf16.
    fusion::to_bf16(&g)
}

/// FastFold's step graph: OpenFold plus its fused softmax/LayerNorm
/// kernels (we grant it the LN fusion) — but not the pair-bias flash MHA,
/// GEMM batching, fused optimizer, CUDA graphs, or pipeline work.
pub fn fastfold_graph(cfg: &ModelConfig) -> StepGraph {
    let g = openfold_graph(cfg);
    fusion::fuse_layer_norm(&g).0
}

/// ScaleFold's fully-optimized graph at a DAP degree.
pub fn scalefold_graph(cfg: &ModelConfig, dap: usize) -> StepGraph {
    build_graph(cfg, &OptimizationSet::scalefold_dap(dap))
}

/// Simulated mean step time for a named baseline on a device.
pub fn baseline_step_s(
    graph: &StepGraph,
    device: DeviceSpec,
    dap: usize,
    cuda_graph: bool,
    optimized_pipeline: bool,
) -> f64 {
    let fabric = if device.name == "A100" {
        FabricSpec::superpod_a100()
    } else {
        FabricSpec::eos()
    };
    let straggler = if optimized_pipeline {
        StragglerModel::optimized()
    } else {
        StragglerModel::baseline()
    };
    let cc = ClusterConfig {
        device,
        fabric,
        dp: 128,
        dap,
        cuda_graph,
        bf16_comm: true,
        overlap_fraction: 0.5,
        // Baselines with optimized pipelines are the ScaleFold configs,
        // which also ship the autotuned Triton kernels.
        autotune: optimized_pipeline,
        variable_recycling: false,
        straggler,
        seed: 0xBA5E11,
    };
    ClusterSim::new(graph, cc).mean_step_s(40)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_ordering_on_a100() {
        // Paper: OpenFold 6.19 s, FastFold DAP-2 2.49 s, ScaleFold DAP-2
        // 1.88 s — strict ordering OpenFold > FastFold > ScaleFold.
        let cfg = ModelConfig::paper();
        let dev = DeviceSpec::a100();
        let of = baseline_step_s(&openfold_graph(&cfg), dev.clone(), 1, false, false);
        let ff = baseline_step_s(&fastfold_graph(&cfg), dev.clone(), 2, false, false);
        let sf = baseline_step_s(&scalefold_graph(&cfg, 2), dev, 2, true, true);
        assert!(of > ff, "OpenFold {of:.2} must exceed FastFold {ff:.2}");
        assert!(ff > sf, "FastFold {ff:.2} must exceed ScaleFold {sf:.2}");
        // Magnitudes: within a factor ~2 of the published numbers.
        assert!((3.0..14.0).contains(&of), "OpenFold A100 {of:.2}");
        assert!((1.2..6.0).contains(&ff), "FastFold A100 {ff:.2}");
        assert!((0.8..4.0).contains(&sf), "ScaleFold A100 {sf:.2}");
    }

    #[test]
    fn figure7_scalefold_h100_dap_scaling() {
        // Paper: H100 DAP-1/2/4/8 = 1.80 / 1.12 / 0.75 / 0.65 s
        // (speedups 1.6x / 2.4x / 2.77x).
        let cfg = ModelConfig::paper();
        let dev = DeviceSpec::h100();
        let t: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&dap| {
                baseline_step_s(&scalefold_graph(&cfg, dap), dev.clone(), dap, true, true)
            })
            .collect();
        // Strictly improving with DAP degree.
        assert!(t[1] < t[0] && t[2] < t[1] && t[3] < t[2], "{t:?}");
        let s2 = t[0] / t[1];
        let s8 = t[0] / t[3];
        assert!((1.2..2.3).contains(&s2), "DAP-2 speedup {s2:.2}");
        assert!((1.7..4.5).contains(&s8), "DAP-8 speedup {s8:.2}");
        // Diminishing returns: DAP-8 gains less per doubling than DAP-2.
        let s4 = t[0] / t[2];
        assert!(s8 / s4 < s4 / s2 * 1.2, "s2 {s2:.2} s4 {s4:.2} s8 {s8:.2}");
        // Magnitude: DAP-1 within a factor ~2 of the paper's 1.80 s.
        assert!((0.9..4.5).contains(&t[0]), "DAP-1 {:.2}", t[0]);
    }
}
