//! Cluster-scale training simulator.
//!
//! Models the distributed side of ScaleFold on an Eos-like machine: a
//! DP × DAP process grid over NVLink nodes and an InfiniBand fabric,
//! NCCL-style ring collectives, straggler injection (slow data batches,
//! background CPU peaks, GC pauses), and asynchronous evaluation.
//!
//! - [`fabric`]: link specs and analytic collective costs (all-reduce,
//!   all-gather, all-to-all) with latency + bandwidth terms.
//! - [`straggler`]: per-rank, per-step random delays: the data pipeline
//!   (blocking vs non-blocking, driven by the `sf-data` prep-time model)
//!   and host CPU interference.
//! - [`sim`]: the per-step simulation: compute (from `sf-opgraph`), DAP
//!   collectives inside each node, the gradient all-reduce across data
//!   parallel ranks, and the synchronization semantics that turn one slow
//!   rank into everyone's problem.
//! - [`ablation`]: the Figure-3 decomposition — subtract ideal times to
//!   attribute the DAP scalability gap to CPU overhead, serial modules,
//!   imbalanced communication, kernel scalability, and communication
//!   overhead.
//! - [`eval`]: time-to-train accounting with synchronous or asynchronous
//!   (offloaded) evaluation and the CPU-DRAM evaluation-data cache.
//! - [`failure`]: rank failures (per-rank MTBF), NCCL-style collective
//!   timeout detection, and restart-from-checkpoint costs — expected
//!   time-to-convergence as a function of checkpoint interval and
//!   failure rate.
//! - [`collective`]: *functional* ring collectives (the algorithms the
//!   cost model prices), used by the real data-parallel trainer.

pub mod ablation;
pub mod collective;
pub mod eval;
pub mod fabric;
pub mod failure;
pub mod sim;
pub mod straggler;

pub use ablation::ScalabilityBreakdown;
pub use eval::{EvalConfig, TrainTimeline};
pub use fabric::FabricSpec;
pub use failure::{FailureModel, FailureRun, RunEstimate, TradeoffPoint};
pub use sim::{ClusterConfig, ClusterSim, StepBreakdown};
pub use straggler::StragglerModel;
