//! Simulated-timeline export: turns a [`Stream`] execution into an
//! `sf_trace::Trace`, so the *modeled* GPU timelines and the *real* CPU
//! training traces load in the same Chrome trace viewer.
//!
//! Lanes: `tid` [`TID_CPU`] is the CPU launch cursor, `tid` [`TID_GPU`] is
//! the GPU execution cursor — the two cursors whose interaction defines
//! the paper's "CPU overhead" factor. Gaps on the GPU lane while the CPU
//! lane is busy *are* the exposed launch overhead, now visible instead of
//! only aggregated in [`StreamStats::cpu_exposed_s`].

use crate::kernel::Kernel;
use crate::stream::{Stream, StreamStats};
use sf_trace::{SimTraceBuilder, Trace};

/// Thread lane of CPU launch spans in exported simulated traces.
pub const TID_CPU: u32 = 0;
/// Thread lane of GPU execution spans in exported simulated traces.
pub const TID_GPU: u32 = 1;

/// Process lane simulated timelines export under (`pid` 0 is the real
/// process).
pub const SIM_PID: u32 = 1;

/// Executes `kernels` eagerly on `stream` (same cursor recurrence as
/// [`Stream::run_eager`]) while recording every launch and execution
/// interval. Returns the aggregate stats together with the timeline.
pub fn trace_eager(stream: &Stream, kernels: &[Kernel]) -> (StreamStats, Trace) {
    let device = stream.device();
    let cpu = stream.cpu();
    let launch = device.kernel_launch_us * 1e-6 * cpu.launch_slowdown;
    let mut b = SimTraceBuilder::new(SIM_PID);
    if cpu.gc_pause_s > 0.0 {
        b.span_s(TID_CPU, "gc_pause", 0.0, cpu.gc_pause_s);
    }
    let mut cpu_t = cpu.gc_pause_s;
    let mut gpu_t = 0.0f64;
    let mut busy = 0.0f64;
    for (i, k) in kernels.iter().enumerate() {
        b.span_s(TID_CPU, format!("launch[{i}]"), cpu_t, launch);
        cpu_t += launch;
        let start = gpu_t.max(cpu_t);
        let d = k.duration_s(device);
        b.span_s(TID_GPU, k.name.clone(), start, d);
        gpu_t = start + d;
        busy += d;
    }
    let stats = StreamStats {
        total_s: gpu_t,
        gpu_busy_s: busy,
        cpu_exposed_s: gpu_t - busy,
        kernels: kernels.len(),
    };
    (stats, b.finish())
}

/// Executes `kernels` as a captured CUDA-graph replay (one launch, kernels
/// back-to-back — the recurrence of [`Stream::run_graph`]) while recording
/// the timeline.
pub fn trace_graph(stream: &Stream, kernels: &[Kernel]) -> (StreamStats, Trace) {
    let device = stream.device();
    let launch = device.graph_launch_us * 1e-6 * stream.cpu().launch_slowdown;
    let mut b = SimTraceBuilder::new(SIM_PID);
    b.span_s(TID_CPU, "graph_launch", 0.0, launch);
    let mut t = launch;
    let mut busy = 0.0f64;
    for k in kernels {
        let d = k.duration_s(device);
        b.span_s(TID_GPU, k.name.clone(), t, d);
        t += d;
        busy += d;
    }
    let stats = StreamStats {
        total_s: t,
        gpu_busy_s: busy,
        cpu_exposed_s: launch,
        kernels: kernels.len(),
    };
    (stats, b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::stream::CpuModel;
    use sf_trace::EventKind;

    fn tiny_kernels(n: usize) -> Vec<Kernel> {
        (0..n).map(|i| Kernel::memory(format!("k{i}"), 1e5, 64)).collect()
    }

    #[test]
    fn traced_eager_matches_run_eager_stats() {
        let s = Stream::new(DeviceSpec::a100(), CpuModel::contended(2.0));
        let ks = tiny_kernels(50);
        let (stats, trace) = trace_eager(&s, &ks);
        let reference = s.run_eager(&ks);
        assert!((stats.total_s - reference.total_s).abs() < 1e-12);
        assert!((stats.cpu_exposed_s - reference.cpu_exposed_s).abs() < 1e-12);
        // One launch span per kernel on the CPU lane, one exec span per
        // kernel on the GPU lane.
        let cpu_spans = trace.events.iter().filter(|e| e.tid == TID_CPU).count();
        let gpu_spans = trace.events.iter().filter(|e| e.tid == TID_GPU).count();
        assert_eq!(cpu_spans, 50);
        assert_eq!(gpu_spans, 50);
        assert!(trace.events.iter().all(|e| e.pid == SIM_PID));
    }

    #[test]
    fn traced_graph_matches_run_graph_stats() {
        let s = Stream::new(DeviceSpec::h100(), CpuModel::healthy());
        let ks = tiny_kernels(20);
        let (stats, trace) = trace_graph(&s, &ks);
        let reference = s.run_graph(&ks);
        assert!((stats.total_s - reference.total_s).abs() < 1e-12);
        // GPU spans are back-to-back: each starts where the previous ended.
        let gpu: Vec<_> = trace.events.iter().filter(|e| e.tid == TID_GPU).collect();
        for pair in gpu.windows(2) {
            assert!(pair[1].ts_us >= pair[0].ts_us, "sorted by start");
        }
    }

    #[test]
    fn gpu_lane_gaps_equal_exposed_cpu_time() {
        // On tiny kernels, eager execution starves the GPU: the sum of
        // gaps between consecutive GPU spans (plus the lead-in before the
        // first) must equal StreamStats::cpu_exposed_s.
        let s = Stream::new(DeviceSpec::a100(), CpuModel::healthy());
        let ks = tiny_kernels(100);
        let (stats, trace) = trace_eager(&s, &ks);
        let gpu: Vec<_> = trace.events.iter().filter(|e| e.tid == TID_GPU).collect();
        let mut gap_us = gpu[0].ts_us;
        for pair in gpu.windows(2) {
            gap_us += pair[1].ts_us.saturating_sub(pair[0].end_us());
        }
        let gap_s = gap_us as f64 * 1e-6;
        assert!(
            (gap_s - stats.cpu_exposed_s).abs() < 5e-5 * stats.total_s.max(1e-9) + 2e-6 * ks.len() as f64,
            "gaps {gap_s} vs exposed {}",
            stats.cpu_exposed_s
        );
    }

    #[test]
    fn simulated_trace_exports_and_reimports() {
        let s = Stream::new(DeviceSpec::h100(), CpuModel::healthy());
        let (_, trace) = trace_eager(&s, &tiny_kernels(10));
        let json = trace.to_chrome_json();
        let back = Trace::from_chrome_json(&json).expect("round trip");
        assert_eq!(back.events.len(), trace.events.len());
        assert!(back
            .events
            .iter()
            .all(|e| matches!(e.kind, EventKind::Complete { .. })));
    }
}
