//! Loader observability: the trace must *show* the paper's §3.2 claim.
//! Under an injected straggler sample, the blocking loader's per-step
//! phase table carries a large `data_wait` share, while the non-blocking
//! pipeline's stays near zero — same model, same data, same fault.

use scalefold::{LoaderKind, Trainer, TrainerConfig};
use sf_faults::FaultPlan;
use sf_trace::report::PhaseReport;
use sf_trace::EventKind;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const STEPS: u64 = 6;
const SLOW_SAMPLE: usize = 1;
const DELAY: Duration = Duration::from_millis(150);

fn traced_run(kind: LoaderKind) -> (PhaseReport, sf_trace::Trace) {
    sf_trace::reset();
    sf_trace::enable();
    let mut cfg = TrainerConfig::tiny();
    cfg.model.evoformer_blocks = 1;
    cfg.model.extra_msa_blocks = 0;
    cfg.dataset_len = 8;
    cfg.loader = kind;
    let plan = FaultPlan::none().with_slow_sample(SLOW_SAMPLE, DELAY);
    let mut trainer = Trainer::with_faults(cfg, plan);
    let reports = trainer.train(STEPS);
    let trace = sf_trace::take();
    sf_trace::disable();
    assert_eq!(reports.len() as u64, STEPS, "both loaders must finish the run");
    (PhaseReport::from_trace(&trace), trace)
}

/// The headline A/B: a straggler sample stalls the blocking loader for its
/// full delay, while the non-blocking pipeline hides it behind compute.
#[test]
fn nonblocking_pipeline_hides_straggler_blocking_loader_does_not() {
    let _g = lock();
    let (blocking, _) = traced_run(LoaderKind::Blocking);
    let (nonblocking, _) = traced_run(LoaderKind::NonBlocking);

    let b = blocking.data_wait_share();
    let n = nonblocking.data_wait_share();
    // The 150 ms stall dominates the blocking run's ~40 ms of compute.
    assert!(
        b > 0.3,
        "blocking loader must expose the straggler: data-wait share {b:.4}"
    );
    // The non-blocking pipeline keeps the trainer fed; 5% leaves headroom
    // for first-batch warmup on a loaded CI machine (the CLI drill holds
    // the paper-facing < 2% line).
    assert!(
        n < 0.05,
        "non-blocking pipeline must hide the straggler: data-wait share {n:.4}"
    );
    assert!(
        b > 5.0 * n.max(1e-6),
        "blocking share {b:.4} must dwarf non-blocking share {n:.4}"
    );
    // The stall is attributable to a single step. Even the blocking
    // loader's workers prepare ahead, so the compute of the steps before
    // the straggler overlaps part of its delay — but well under half of
    // it at this model size.
    let max_wait = blocking
        .steps
        .iter()
        .map(|s| s.phase_us[0])
        .max()
        .unwrap_or(0);
    assert!(
        max_wait as f64 >= 0.5 * DELAY.as_micros() as f64,
        "the straggler's delay must land in one step's data_wait: {max_wait} us"
    );
}

/// Worker-side observability: prepare spans and queue-depth counters come
/// from the pipeline's own threads, not the training thread.
#[test]
fn loader_workers_emit_prepare_spans_and_queue_depth_counters() {
    let _g = lock();
    let (_, trace) = traced_run(LoaderKind::NonBlocking);
    let step_tid = trace
        .events
        .iter()
        .find(|e| e.cat == "step")
        .map(|e| e.tid)
        .expect("trace must contain step spans");
    let prepares: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.cat == "loader" && e.name == "prepare")
        .collect();
    assert!(!prepares.is_empty(), "workers must trace sample preparation");
    assert!(
        prepares.iter().all(|e| e.tid != step_tid),
        "prepare spans belong to worker threads"
    );
    assert!(
        prepares.iter().any(|e| e.arg("index").is_some()),
        "prepare spans carry the dataset index"
    );
    let depths: Vec<f64> = trace
        .events
        .iter()
        .filter(|e| e.name == "loader.queue_depth")
        .filter_map(|e| match e.kind {
            EventKind::Counter { value } => Some(value),
            _ => None,
        })
        .collect();
    assert!(!depths.is_empty(), "queue-depth counters must be emitted");
    assert!(
        depths.iter().all(|&d| (0.0..=8.0).contains(&d)),
        "queue depth stays within the dataset size: {depths:?}"
    );
}
