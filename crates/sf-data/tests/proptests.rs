//! Property tests for the data pipeline: exactly-once delivery under
//! arbitrary delay patterns, order preservation for the blocking loader,
//! prep-time model monotonicity, and featurization invariants.

use proptest::prelude::*;
use sf_data::featurize::featurize;
use sf_data::loader::{BlockingLoader, Dataset, LoaderConfig, NonBlockingPipeline};
use sf_data::{PrepTimeModel, SyntheticDataset};
use sf_model::config::NUM_AA_TYPES;
use sf_model::ModelConfig;
use std::sync::Arc;
use std::time::Duration;

struct DelayDataset {
    delays_ms: Vec<u8>,
}

impl Dataset for DelayDataset {
    type Item = usize;

    fn len(&self) -> usize {
        self.delays_ms.len()
    }

    fn prepare(&self, index: usize) -> usize {
        std::thread::sleep(Duration::from_millis(self.delays_ms[index] as u64));
        index
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under any delay pattern and worker count, the non-blocking pipeline
    /// delivers every batch exactly once.
    #[test]
    fn nonblocking_exactly_once(
        delays in proptest::collection::vec(0u8..12, 1..16),
        workers in 1usize..5,
    ) {
        let n = delays.len();
        let ds = Arc::new(DelayDataset { delays_ms: delays });
        let got: Vec<usize> =
            NonBlockingPipeline::new(ds, (0..n).collect(), LoaderConfig::with_workers(workers))
                .map(|item| item.expect("no faults").0)
                .collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// The blocking loader preserves sampler order exactly, regardless of
    /// delays and workers.
    #[test]
    fn blocking_preserves_order(
        delays in proptest::collection::vec(0u8..10, 1..12),
        workers in 1usize..5,
    ) {
        let n = delays.len();
        let ds = Arc::new(DelayDataset { delays_ms: delays });
        // A nontrivial permutation as the sampler order.
        let order: Vec<usize> = (0..n).rev().collect();
        let got: Vec<usize> =
            BlockingLoader::new(ds, order.clone(), LoaderConfig::with_workers(workers))
                .map(|item| item.expect("no faults").0)
                .collect();
        prop_assert_eq!(got, order);
    }

    /// Prep time is monotone in both sequence length and MSA depth.
    #[test]
    fn prep_time_monotone(
        len in 40usize..2000,
        depth in 8usize..50_000,
        dlen in 1usize..500,
        ddepth in 1usize..10_000,
    ) {
        let m = PrepTimeModel::default();
        prop_assert!(m.prep_seconds_for(len, depth) <= m.prep_seconds_for(len + dlen, depth));
        prop_assert!(m.prep_seconds_for(len, depth) <= m.prep_seconds_for(len, depth + ddepth));
        prop_assert!(m.prep_seconds_for(len, depth) > 0.0);
    }

    /// Featurization always yields a batch that validates against its
    /// config, with sane one-hot structure, for arbitrary records/seeds.
    #[test]
    fn featurize_always_validates(record_idx in 0usize..40, seed in any::<u64>()) {
        let ds = SyntheticDataset::new(3, 40);
        let cfg = ModelConfig::tiny();
        let b = featurize(&ds.record(record_idx), &cfg, seed);
        prop_assert!(b.validate(&cfg).is_ok());
        // Target one-hot rows each sum to exactly 1.
        for i in 0..cfg.n_res {
            let row: f32 = (0..NUM_AA_TYPES)
                .map(|a| b.target_feat.at(&[i, a]).expect("in range"))
                .sum();
            prop_assert!((row - 1.0).abs() < 1e-6);
        }
        // Mask values are 0/1 and true coords are finite.
        prop_assert!(b.residue_mask.data().iter().all(|&m| m == 0.0 || m == 1.0));
        prop_assert!(!b.true_coords.has_non_finite());
    }

    /// Epoch orders are permutations for any epoch number.
    #[test]
    fn epoch_order_is_permutation(len in 1usize..200, epoch in any::<u64>()) {
        let ds = SyntheticDataset::new(9, len);
        let mut order = ds.epoch_order(epoch);
        order.sort_unstable();
        prop_assert_eq!(order, (0..len).collect::<Vec<_>>());
    }
}
