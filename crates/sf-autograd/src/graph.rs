//! The autodiff tape: nodes, forward operations, and the backward driver.

use crate::op::Op;
use crate::{AutogradError, Result};
use sf_tensor::ops::attention::flash_attention;
use sf_tensor::ops::layernorm::{fused_forward, LN_EPS};
use sf_tensor::ops::softmax::softmax;
use sf_tensor::Tensor;

/// A handle to a value on the tape.
///
/// `Var`s are cheap indices; they are only meaningful for the [`Graph`] that
/// produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
}

/// An append-only reverse-mode autodiff tape.
///
/// Build the forward computation with the methods below, then call
/// [`Graph::backward`] on a scalar loss. Leaf gradients are retrieved with
/// [`Graph::grad`] or, for parameters bound by name via
/// [`Graph::use_param`], with [`Graph::grads_by_name`].
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) grads: Vec<Option<Tensor>>,
    pub(crate) bindings: Vec<(String, Var)>,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .field("bindings", &self.bindings.len())
            .finish()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes currently recorded.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of trainable leaves on the tape.
    pub fn num_trainable(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Leaf { requires_grad: true }))
            .count()
    }

    /// Total bytes held by non-leaf (activation) tensors — what gradient
    /// checkpointing trades for recomputation.
    pub fn activation_bytes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n.op, Op::Leaf { .. }))
            .map(|n| n.value.len() * std::mem::size_of::<f32>())
            .sum()
    }

    pub(crate) fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    pub(crate) fn check(&self, v: Var) -> Result<()> {
        if v.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(AutogradError::InvalidVar {
                index: v.0,
                len: self.nodes.len(),
            })
        }
    }

    /// The current value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this graph.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a variable after [`Graph::backward`], or
    /// `None` if no gradient flowed to it (or backward has not run).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Registers a trainable leaf (gradients will be accumulated).
    pub fn param(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf { requires_grad: true })
    }

    /// Registers a constant leaf (no gradient).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf { requires_grad: false })
    }

    // ------------------------------------------------------------------
    // Elementwise binary (broadcasting)
    // ------------------------------------------------------------------

    /// Broadcasting addition.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid vars or incompatible shapes.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let v = self.value(a).add(self.value(b))?;
        Ok(self.push(v, Op::Add(a, b)))
    }

    /// Broadcasting subtraction.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid vars or incompatible shapes.
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let v = self.value(a).sub(self.value(b))?;
        Ok(self.push(v, Op::Sub(a, b)))
    }

    /// Broadcasting multiplication.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid vars or incompatible shapes.
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let v = self.value(a).mul(self.value(b))?;
        Ok(self.push(v, Op::Mul(a, b)))
    }

    /// Broadcasting division.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid vars or incompatible shapes.
    pub fn div(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let v = self.value(a).div(self.value(b))?;
        Ok(self.push(v, Op::Div(a, b)))
    }

    // ------------------------------------------------------------------
    // Elementwise unary
    // ------------------------------------------------------------------

    /// Negation.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn neg(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).neg();
        Ok(self.push(v, Op::Neg(x)))
    }

    /// Multiplication by a compile-time scalar.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn scale(&mut self, x: Var, s: f32) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).mul_scalar(s);
        Ok(self.push(v, Op::Scale(x, s)))
    }

    /// Addition of a scalar constant.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn add_scalar(&mut self, x: Var, s: f32) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).add_scalar(s);
        Ok(self.push(v, Op::AddScalar(x)))
    }

    /// ReLU activation.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn relu(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).relu();
        Ok(self.push(v, Op::Relu(x)))
    }

    /// Sigmoid activation.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn sigmoid(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).sigmoid();
        Ok(self.push(v, Op::Sigmoid(x)))
    }

    /// Tanh activation.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn tanh(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).tanh();
        Ok(self.push(v, Op::Tanh(x)))
    }

    /// Exact GELU activation.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn gelu(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).gelu();
        Ok(self.push(v, Op::Gelu(x)))
    }

    /// Elementwise square.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn square(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).square();
        Ok(self.push(v, Op::Square(x)))
    }

    /// Elementwise exponential.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn exp(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).exp();
        Ok(self.push(v, Op::Exp(x)))
    }

    /// Elementwise natural logarithm.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn ln(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).ln();
        Ok(self.push(v, Op::Ln(x)))
    }

    /// Elementwise square root.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn sqrt(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).sqrt();
        Ok(self.push(v, Op::Sqrt(x)))
    }

    // ------------------------------------------------------------------
    // Linear algebra & attention
    // ------------------------------------------------------------------

    /// Batched matrix multiplication (see `sf_tensor::ops::matmul`).
    ///
    /// # Errors
    ///
    /// Returns an error on invalid vars or incompatible shapes.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let v = self.value(a).matmul(self.value(b))?;
        Ok(self.push(v, Op::Matmul(a, b)))
    }

    /// Softmax over the last axis.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid vars or rank-0 input.
    pub fn softmax(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = softmax(self.value(x))?;
        Ok(self.push(v, Op::Softmax(x)))
    }

    /// Fused LayerNorm over the last axis (single tape node; fused
    /// output+stats forward, two-step-reduction backward).
    ///
    /// # Errors
    ///
    /// Returns an error if `gamma`/`beta` shapes mismatch the last axis.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Result<Var> {
        self.check(x)?;
        self.check(gamma)?;
        self.check(beta)?;
        let (v, stats) = fused_forward(self.value(x), self.value(gamma), self.value(beta), LN_EPS)?;
        Ok(self.push(v, Op::LayerNorm { x, gamma, beta, stats }))
    }

    /// Fused multi-head attention with optional pair bias: one tape node for
    /// `softmax(q k^T · scale + bias) v`. The backward pass recomputes the
    /// attention probabilities (FlashAttention-style recompute).
    ///
    /// # Errors
    ///
    /// Returns an error on incompatible q/k/v/bias shapes.
    pub fn attention(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        bias: Option<Var>,
        scale: f32,
    ) -> Result<Var> {
        self.check(q)?;
        self.check(k)?;
        self.check(v)?;
        if let Some(b) = bias {
            self.check(b)?;
        }
        let out = flash_attention(
            self.value(q),
            self.value(k),
            self.value(v),
            bias.map(|b| self.value(b)),
            scale,
        )?;
        Ok(self.push(out, Op::Attention { q, k, v, bias, scale }))
    }

    /// Fully fused attention head — scale, optional pair `bias`, optional
    /// `mask` (zero entries are masked out; non-differentiable), online
    /// softmax, and the optional sigmoid-`gate` epilogue run in one
    /// `sf-tensor` kernel ([`sf_tensor::ops::attention::attention_fused`]).
    /// The tape stores only the per-row softmax log-sum-exp (plus the
    /// pre-gate output when gated) instead of the `[S_q, S_k]` probability
    /// tensor; the backward recomputes probabilities from those stats and
    /// folds softmax-backward into the attention gradient.
    ///
    /// Numerically equivalent (≤1e-5 rel, property-tested) to the composed
    /// chain `mul(sigmoid(gate), attention(q, k, v, bias + maskneg))`.
    ///
    /// # Errors
    ///
    /// Returns an error on any shape incompatibility.
    #[allow(clippy::too_many_arguments)]
    pub fn attention_fused(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        bias: Option<Var>,
        mask: Option<Var>,
        gate: Option<Var>,
        scale: f32,
    ) -> Result<Var> {
        self.check(q)?;
        self.check(k)?;
        self.check(v)?;
        for opt in [bias, mask, gate].into_iter().flatten() {
            self.check(opt)?;
        }
        let fused = sf_tensor::ops::attention::attention_fused(
            self.value(q),
            self.value(k),
            self.value(v),
            bias.map(|b| self.value(b)),
            mask.map(|m| self.value(m)),
            gate.map(|g| self.value(g)),
            scale,
        )?;
        Ok(self.push(
            fused.out,
            Op::FusedAttention {
                q,
                k,
                v,
                bias,
                mask,
                gate,
                scale,
                att: fused.att,
                lse: fused.lse,
            },
        ))
    }

    // ------------------------------------------------------------------
    // Shape ops
    // ------------------------------------------------------------------

    /// Reshape to `dims` (element count must match).
    ///
    /// # Errors
    ///
    /// Returns an error on element-count mismatch.
    pub fn reshape(&mut self, x: Var, dims: &[usize]) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).reshape(dims)?;
        Ok(self.push(v, Op::Reshape(x)))
    }

    /// Axis permutation.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid permutation.
    pub fn permute(&mut self, x: Var, perm: &[usize]) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).permute(perm)?;
        Ok(self.push(v, Op::Permute { x, perm: perm.to_vec() }))
    }

    /// Slice `[start, end)` along `axis`.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid axis or range.
    pub fn slice_axis(&mut self, x: Var, axis: usize, start: usize, end: usize) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).slice_axis(axis, start, end)?;
        Ok(self.push(v, Op::SliceAxis { x, axis, start }))
    }

    /// Concatenation along `axis`.
    ///
    /// # Errors
    ///
    /// Returns an error on empty input or shape mismatch.
    pub fn concat(&mut self, xs: &[Var], axis: usize) -> Result<Var> {
        for &x in xs {
            self.check(x)?;
        }
        let tensors: Vec<&Tensor> = xs.iter().map(|&x| self.value(x)).collect();
        let v = Tensor::concat(&tensors, axis)?;
        Ok(self.push(v, Op::Concat { xs: xs.to_vec(), axis }))
    }

    /// Concatenation along `axis` whose forward value was produced by an
    /// **external executor** — in practice the output buffer of a real
    /// collective (the DAP all-gather / all-to-all in `scalefold::dap`).
    /// The supplied value is verified bitwise against the mathematical
    /// concatenation before being adopted as the node's value, so the
    /// tape stays self-consistent and the backward pass (slicing, the
    /// exact adjoint of concatenation) is unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error on empty input, shape mismatch, or if `value`
    /// differs from the concatenation of the inputs in shape or bytes.
    pub fn concat_external(&mut self, xs: &[Var], axis: usize, value: Tensor) -> Result<Var> {
        for &x in xs {
            self.check(x)?;
        }
        let tensors: Vec<&Tensor> = xs.iter().map(|&x| self.value(x)).collect();
        let expect = Tensor::concat(&tensors, axis)?;
        if expect.dims() != value.dims() || expect.data() != value.data() {
            return Err(AutogradError::ExternalValueMismatch {
                expect_dims: expect.dims().to_vec(),
                got_dims: value.dims().to_vec(),
            });
        }
        Ok(self.push(value, Op::Concat { xs: xs.to_vec(), axis }))
    }

    /// Broadcast to `dims`.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes are not broadcast-compatible.
    pub fn broadcast_to(&mut self, x: Var, dims: &[usize]) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).broadcast_to(dims)?;
        Ok(self.push(v, Op::BroadcastTo(x)))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum along `axis` (axis dropped).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid axis.
    pub fn sum_axis(&mut self, x: Var, axis: usize) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).sum_axis(axis)?;
        Ok(self.push(v, Op::SumAxis { x, axis }))
    }

    /// Mean along `axis` (axis dropped).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid axis.
    pub fn mean_axis(&mut self, x: Var, axis: usize) -> Result<Var> {
        self.check(x)?;
        let v = self.value(x).mean_axis(axis)?;
        Ok(self.push(v, Op::MeanAxis { x, axis }))
    }

    /// Sum of all elements (scalar output).
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn sum_all(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = Tensor::scalar(self.value(x).sum_all());
        Ok(self.push(v, Op::SumAll(x)))
    }

    /// Mean of all elements (scalar output).
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn mean_all(&mut self, x: Var) -> Result<Var> {
        self.check(x)?;
        let v = Tensor::scalar(self.value(x).mean_all());
        Ok(self.push(v, Op::MeanAll(x)))
    }

    /// Inverted-dropout with keep-probability `1 - p`; deterministic in
    /// `seed`. Identity when `p == 0`.
    ///
    /// # Errors
    ///
    /// Returns an error on an invalid var.
    pub fn dropout(&mut self, x: Var, p: f32, seed: u64) -> Result<Var> {
        self.check(x)?;
        if p <= 0.0 {
            // Identity node keeps tape positions deterministic.
            let v = self.value(x).clone();
            return Ok(self.push(v, Op::Reshape(x)));
        }
        let keep = 1.0 - p;
        let mask = Tensor::rand_uniform(self.value(x).dims(), 0.0, 1.0, seed)
            .map(|u| if u < keep { 1.0 / keep } else { 0.0 });
        let v = self.value(x).mul(&mask)?;
        Ok(self.push(v, Op::Dropout { x, mask }))
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from a scalar `loss`.
    ///
    /// Gradients accumulate into every node; read them back with
    /// [`Graph::grad`] / [`Graph::grads_by_name`]. Calling `backward` again
    /// accumulates on top (call [`Graph::zero_grads`] to reset).
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::NonScalarLoss`] if `loss` is not a scalar.
    pub fn backward(&mut self, loss: Var) -> Result<()> {
        self.check(loss)?;
        if self.value(loss).len() != 1 {
            return Err(AutogradError::NonScalarLoss {
                dims: self.value(loss).dims().to_vec(),
            });
        }
        let seed = Tensor::full(self.value(loss).dims(), 1.0);
        self.backward_seeded(loss, seed)
    }

    /// Reverse-mode pass with an explicit seed cotangent (used internally by
    /// checkpointing; the seed's shape must match `output`'s).
    ///
    /// # Errors
    ///
    /// Returns an error on invalid vars or shape mismatch during VJPs.
    pub fn backward_seeded(&mut self, output: Var, seed: Tensor) -> Result<()> {
        self.check(output)?;
        // Propagate in a scratch buffer so repeated backward calls accumulate
        // leaf gradients without re-propagating previous totals.
        let mut local: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        local[output.0] = Some(seed);
        for i in (0..=output.0).rev() {
            let Some(dy) = local[i].clone() else {
                continue;
            };
            self.vjp(i, &dy, &mut local)?;
        }
        for (idx, g) in local.into_iter().enumerate() {
            if let Some(g) = g {
                accumulate(&mut self.grads, idx, g)?;
            }
        }
        Ok(())
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            *g = None;
        }
    }
}

/// Adds `delta` into `grads[idx]`, allocating on first touch.
pub(crate) fn accumulate(
    grads: &mut [Option<Tensor>],
    idx: usize,
    delta: Tensor,
) -> Result<()> {
    match &mut grads[idx] {
        Some(g) => {
            *g = g.add(&delta)?;
            Ok(())
        }
        slot @ None => {
            *slot = Some(delta);
            Ok(())
        }
    }
}
