//! Dynamic Axial Parallelism (DAP) sharding of the step graph.
//!
//! DAP (FastFold) splits each sample's activations along a non-reductive
//! axis across `n` GPUs: every parallelizable kernel's problem shrinks by
//! `n×`, while the *serial modules* (structure module; the data pipeline is
//! host-side) and the optimizer stay full-size. Each axis switch (row- to
//! column-attention and back) costs an all-gather / all-to-all of the
//! sharded activations — the communication the paper's Figure 3 dissects.

use crate::builder::StepGraph;
use crate::ops::OpKind;
use serde::{Deserialize, Serialize};

/// Shards the graph for DAP-`n`: parallelizable kernels shrink by `n`;
/// serial-module and optimizer kernels are untouched.
pub fn shard(graph: &StepGraph, n: usize) -> StepGraph {
    let n = n.max(1);
    let mut out = graph.clone();
    if n == 1 {
        return out;
    }
    for op in &mut out.ops {
        if op.module.dap_shardable() {
            op.kernel = op.kernel.shard(n);
        }
    }
    out
}

/// The communication plan DAP-`n` implies for one step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DapCommPlan {
    /// DAP degree.
    pub n: usize,
    /// Collective events per step (axis switches in forward + backward).
    pub events: usize,
    /// Bytes each rank contributes per event.
    pub bytes_per_event: f64,
}

impl DapCommPlan {
    /// Derives the plan from a step graph: one collective per attention
    /// core (each row/column axis switch re-gathers the sharded axis), in
    /// both forward and backward.
    pub fn from_graph(graph: &StepGraph, n: usize) -> Self {
        if n <= 1 {
            return DapCommPlan {
                n: 1,
                events: 0,
                bytes_per_event: 0.0,
            };
        }
        // Count attention cores in shardable modules (fwd QK^T kernels and
        // their backward dgrads) plus fused MHA kernels.
        let events = graph
            .ops
            .iter()
            .filter(|o| o.module.dap_shardable())
            .filter(|o| {
                (o.kind == OpKind::AttentionGemm && o.kernel.name.starts_with("attn_qk"))
                    || o.kernel.name.starts_with("mha_fused")
            })
            .count();
        DapCommPlan {
            n,
            events,
            bytes_per_event: graph.block_activation_bytes / n as f64,
        }
    }

    /// Total bytes communicated per rank per step.
    pub fn total_bytes(&self) -> f64 {
        self.events as f64 * self.bytes_per_event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ModuleTag;
    use sf_gpusim::{CpuModel, DeviceSpec};
    use sf_model::ModelConfig;

    fn reference() -> StepGraph {
        StepGraph::reference(&ModelConfig::paper(), 1)
    }

    #[test]
    fn shard_shrinks_only_parallelizable_kernels() {
        let g = reference();
        let s = shard(&g, 4);
        assert_eq!(g.ops.len(), s.ops.len());
        for (a, b) in g.ops.iter().zip(s.ops.iter()) {
            if a.module.dap_shardable() {
                assert!((b.kernel.bytes - a.kernel.bytes / 4.0).abs() < 1e-6);
            } else {
                assert_eq!(a.kernel.bytes, b.kernel.bytes);
            }
        }
    }

    #[test]
    fn dap_speedup_is_sublinear() {
        // The paper: ideal DAP-n would be n x, reality is far below —
        // serial modules, occupancy loss, and launch overhead remain.
        let g = reference();
        let dev = DeviceSpec::h100();
        let t1 = crate::profile::step_time(&g, &dev, CpuModel::healthy(), false).total_s;
        let t8 = crate::profile::step_time(&shard(&g, 8), &dev, CpuModel::healthy(), false).total_s;
        let speedup = t1 / t8;
        // The paper observed only 1.42x / 1.57x / ~1.57x for DAP-2/4/8 on
        // the unoptimized model — far below ideal n x.
        assert!(speedup > 1.2, "DAP-8 speedup {speedup:.2}");
        assert!(speedup < 5.0, "DAP-8 speedup {speedup:.2} unrealistically ideal");
    }

    #[test]
    fn serial_module_share_grows_under_dap() {
        let g = reference();
        let dev = DeviceSpec::h100();
        let share = |g: &StepGraph| {
            let total: f64 = g.ops.iter().map(|o| o.kernel.duration_s(&dev)).sum();
            let st: f64 = g
                .ops
                .iter()
                .filter(|o| o.module == ModuleTag::Structure)
                .map(|o| o.kernel.duration_s(&dev))
                .sum();
            st / total
        };
        assert!(share(&shard(&g, 8)) > 2.0 * share(&g));
    }

    #[test]
    fn comm_plan_scales_with_events_and_dap() {
        let g = reference();
        let p2 = DapCommPlan::from_graph(&g, 2);
        let p8 = DapCommPlan::from_graph(&g, 8);
        assert!(p2.events > 100, "events {}", p2.events);
        assert_eq!(p2.events, p8.events);
        assert!(p8.bytes_per_event < p2.bytes_per_event);
        let p1 = DapCommPlan::from_graph(&g, 1);
        assert_eq!(p1.events, 0);
        assert_eq!(p1.total_bytes(), 0.0);
    }

    #[test]
    fn comm_plan_counts_fused_mha_too() {
        let g = reference();
        let (fused, _) = crate::fusion::fuse_mha(&g);
        let p = DapCommPlan::from_graph(&fused, 4);
        let p_ref = DapCommPlan::from_graph(&g, 4);
        // Fused graph has fwd+bwd fused kernels where reference had fwd
        // qk + bwd qk dgrads; counts stay within 2x of each other.
        assert!(p.events > p_ref.events / 2);
        assert!(p.events < p_ref.events * 2 + 1);
    }
}
