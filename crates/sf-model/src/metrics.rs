//! Structure-quality metrics, primarily lDDT-Cα — the convergence metric of
//! the MLPerf OpenFold benchmark (`avg_lddt_ca`, targets 0.8 / 0.9 in the
//! paper's Figure 11).

use sf_tensor::Tensor;

/// Inclusion radius for lDDT: only pairs within 15 Å in the reference
/// structure are scored.
pub const LDDT_CUTOFF: f32 = 15.0;

/// The four lDDT tolerance thresholds in Å.
pub const LDDT_THRESHOLDS: [f32; 4] = [0.5, 1.0, 2.0, 4.0];

/// Computes lDDT-Cα between predicted and reference coordinates.
///
/// For every ordered pair `(i, j)` with `i != j`, both residues resolved,
/// and reference distance `< 15 Å`, the score counts how many of the four
/// thresholds the absolute distance error stays within, averaged over pairs
/// and thresholds. Returns a value in `[0, 1]`; returns 0 if no pair
/// qualifies.
///
/// # Panics
///
/// Panics if shapes are not `[n, 3]` / `[n, 3]` / `[n]`.
pub fn lddt_ca(pred: &Tensor, reference: &Tensor, mask: &Tensor) -> f32 {
    assert_eq!(pred.dims(), reference.dims(), "coordinate shapes must match");
    assert_eq!(pred.dims().len(), 2);
    assert_eq!(pred.dims()[1], 3);
    let n = pred.dims()[0];
    assert_eq!(mask.dims(), [n]);

    let dist = |t: &Tensor, i: usize, j: usize| -> f32 {
        let d = t.data();
        let dx = d[i * 3] - d[j * 3];
        let dy = d[i * 3 + 1] - d[j * 3 + 1];
        let dz = d[i * 3 + 2] - d[j * 3 + 2];
        (dx * dx + dy * dy + dz * dz).sqrt()
    };

    let mut hits = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        if mask.data()[i] == 0.0 {
            continue;
        }
        for j in 0..n {
            if i == j || mask.data()[j] == 0.0 {
                continue;
            }
            let dt = dist(reference, i, j);
            if dt >= LDDT_CUTOFF {
                continue;
            }
            let dp = dist(pred, i, j);
            let err = (dp - dt).abs();
            pairs += 1;
            hits += LDDT_THRESHOLDS.iter().filter(|&&t| err < t).count();
        }
    }
    if pairs == 0 {
        0.0
    } else {
        hits as f32 / (pairs * LDDT_THRESHOLDS.len()) as f32
    }
}

/// Per-residue lDDT-Cα scores, `[n]` (0 for residues with no qualifying
/// pair). Used as the regression target for the pLDDT confidence head.
///
/// # Panics
///
/// Panics if shapes are not `[n, 3]` / `[n, 3]` / `[n]`.
#[allow(clippy::needless_range_loop)]
pub fn lddt_ca_per_residue(pred: &Tensor, reference: &Tensor, mask: &Tensor) -> Vec<f32> {
    assert_eq!(pred.dims(), reference.dims());
    let n = pred.dims()[0];
    assert_eq!(mask.dims(), [n]);
    let dist = |t: &Tensor, i: usize, j: usize| -> f32 {
        let d = t.data();
        let dx = d[i * 3] - d[j * 3];
        let dy = d[i * 3 + 1] - d[j * 3 + 1];
        let dz = d[i * 3 + 2] - d[j * 3 + 2];
        (dx * dx + dy * dy + dz * dz).sqrt()
    };
    let mut out = vec![0.0f32; n];
    for i in 0..n {
        if mask.data()[i] == 0.0 {
            continue;
        }
        let mut hits = 0usize;
        let mut pairs = 0usize;
        for j in 0..n {
            if i == j || mask.data()[j] == 0.0 {
                continue;
            }
            let dt = dist(reference, i, j);
            if dt >= LDDT_CUTOFF {
                continue;
            }
            let err = (dist(pred, i, j) - dt).abs();
            pairs += 1;
            hits += LDDT_THRESHOLDS.iter().filter(|&&t| err < t).count();
        }
        if pairs > 0 {
            out[i] = hits as f32 / (pairs * LDDT_THRESHOLDS.len()) as f32;
        }
    }
    out
}

/// Recovery accuracy of the masked-MSA head: fraction of masked positions
/// whose argmax prediction matches the true residue type. Returns `None`
/// if nothing was masked.
///
/// `logits` is `[n_seq, n_res, classes]`; `targets` is `[n_seq, n_res]`
/// with `-1` at unmasked positions.
///
/// # Panics
///
/// Panics if the leading shapes disagree.
pub fn masked_msa_accuracy(logits: &Tensor, targets: &Tensor) -> Option<f32> {
    let dims = logits.dims();
    assert_eq!(dims.len(), 3, "logits must be [seq, res, classes]");
    assert_eq!(&dims[..2], targets.dims(), "target shape mismatch");
    let preds = logits.argmax_last_axis().expect("non-empty class axis");
    let mut hits = 0usize;
    let mut total = 0usize;
    for (pred, &target) in preds.iter().zip(targets.data().iter()) {
        if target >= 0.0 {
            total += 1;
            if *pred == target as usize {
                hits += 1;
            }
        }
    }
    if total == 0 {
        None
    } else {
        Some(hits as f32 / total as f32)
    }
}

/// Root-mean-square deviation after *no* alignment (diagnostic only; lDDT is
/// the headline metric because it is superposition-free).
///
/// # Panics
///
/// Panics if shapes mismatch.
pub fn rmsd_unaligned(pred: &Tensor, reference: &Tensor) -> f32 {
    assert_eq!(pred.dims(), reference.dims());
    let n = pred.len() / 3;
    let mut acc = 0.0f64;
    for (p, r) in pred.data().iter().zip(reference.data().iter()) {
        let d = (p - r) as f64;
        acc += d * d;
    }
    ((acc / n as f64) as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{transform_coords, Quat, Rigid};

    fn helix(n: usize) -> Tensor {
        let mut t = Tensor::zeros(&[n, 3]);
        for i in 0..n {
            let a = i as f32 * 0.5;
            t.data_mut()[i * 3] = 3.0 * a.cos();
            t.data_mut()[i * 3 + 1] = 3.0 * a.sin();
            t.data_mut()[i * 3 + 2] = 1.2 * i as f32;
        }
        t
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let c = helix(10);
        let mask = Tensor::ones(&[10]);
        assert_eq!(lddt_ca(&c, &c, &mask), 1.0);
    }

    #[test]
    fn lddt_invariant_to_rigid_motion_of_prediction() {
        let c = helix(12);
        let moved = transform_coords(
            Rigid {
                rot: Quat::from_axis_angle([0.1, 1.0, 0.4], 2.0),
                trans: [20.0, -5.0, 3.0],
            },
            &c,
        );
        let mask = Tensor::ones(&[12]);
        assert_eq!(lddt_ca(&moved, &c, &mask), 1.0);
    }

    #[test]
    fn random_prediction_scores_low() {
        let c = helix(16);
        let junk = Tensor::randn(&[16, 3], 1).mul_scalar(20.0);
        let mask = Tensor::ones(&[16]);
        assert!(lddt_ca(&junk, &c, &mask) < 0.4);
    }

    #[test]
    fn small_perturbation_scores_high_but_below_one() {
        let c = helix(16);
        let noisy = c.add(&Tensor::randn(&[16, 3], 2).mul_scalar(0.3)).unwrap();
        let mask = Tensor::ones(&[16]);
        let s = lddt_ca(&noisy, &c, &mask);
        assert!(s > 0.7 && s < 1.0, "score {s}");
    }

    #[test]
    fn masked_residues_excluded() {
        let c = helix(8);
        let mut bad = c.clone();
        // Residue 0 wildly wrong but masked out.
        bad.data_mut()[0] = 1000.0;
        let mut mask = Tensor::ones(&[8]);
        mask.data_mut()[0] = 0.0;
        assert_eq!(lddt_ca(&bad, &c, &mask), 1.0);
    }

    #[test]
    fn empty_mask_returns_zero() {
        let c = helix(4);
        let mask = Tensor::zeros(&[4]);
        assert_eq!(lddt_ca(&c, &c, &mask), 0.0);
    }

    #[test]
    fn masked_msa_accuracy_counts_only_masked() {
        // 1 seq x 3 res x 2 classes; positions 0 and 2 masked.
        let logits = Tensor::from_vec(
            vec![5.0, 0.0, /* pos1 */ 0.0, 5.0, /* pos2 */ 0.0, 5.0],
            &[1, 3, 2],
        )
        .unwrap();
        let targets = Tensor::from_vec(vec![0.0, -1.0, 0.0], &[1, 3]).unwrap();
        // Predictions: [0, 1, 1]; masked truths: pos0=0 (hit), pos2=0 (miss).
        assert_eq!(masked_msa_accuracy(&logits, &targets), Some(0.5));
        let none = Tensor::full(&[1, 3], -1.0);
        assert_eq!(masked_msa_accuracy(&logits, &none), None);
    }

    #[test]
    fn rmsd_basics() {
        let c = helix(5);
        assert_eq!(rmsd_unaligned(&c, &c), 0.0);
        let shifted = c.add_scalar(1.0);
        assert!((rmsd_unaligned(&shifted, &c) - 3f32.sqrt()).abs() < 1e-5);
    }
}
