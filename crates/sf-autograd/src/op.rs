//! Tape operations and their vector-Jacobian products.

use crate::checkpoint::CheckpointFn;
use crate::graph::{accumulate, Graph, Var};
use crate::Result;
use sf_tensor::ops::layernorm::{fused_backward, LayerNormStats};
use sf_tensor::Tensor;
use std::rc::Rc;

/// Rows per block in the two-step LN backward reduction (the Triton kernel's
/// launch dimension; any positive value is numerically identical).
const LN_BACKWARD_BLOCK_ROWS: usize = 64;

pub(crate) enum Op {
    Leaf { requires_grad: bool },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Gelu(Var),
    Square(Var),
    Exp(Var),
    Ln(Var),
    Sqrt(Var),
    Matmul(Var, Var),
    Softmax(Var),
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        stats: LayerNormStats,
    },
    Attention {
        q: Var,
        k: Var,
        v: Var,
        bias: Option<Var>,
        scale: f32,
    },
    /// Fully fused attention head (`sf_tensor::ops::attention::attention_fused`):
    /// scale + pair bias + mask + online softmax + sigmoid gate in one
    /// kernel. Saves only the per-row softmax log-sum-exp (`lse`) and —
    /// when gated — the pre-gate output, never the `[S_q, S_k]`
    /// probability tensor; the backward recomputes each probability tile
    /// from `lse` in a single pass. The mask is non-differentiable.
    FusedAttention {
        q: Var,
        k: Var,
        v: Var,
        bias: Option<Var>,
        mask: Option<Var>,
        gate: Option<Var>,
        scale: f32,
        /// Pre-gate attention output (`None` when ungated: the node value
        /// already is the pre-gate output).
        att: Option<Tensor>,
        /// Per-row log-sum-exp softmax statistics.
        lse: Tensor,
    },
    Reshape(Var),
    Permute {
        x: Var,
        perm: Vec<usize>,
    },
    SliceAxis {
        x: Var,
        axis: usize,
        start: usize,
    },
    Concat {
        xs: Vec<Var>,
        axis: usize,
    },
    BroadcastTo(Var),
    SumAxis {
        x: Var,
        axis: usize,
    },
    MeanAxis {
        x: Var,
        axis: usize,
    },
    SumAll(Var),
    MeanAll(Var),
    Dropout {
        x: Var,
        mask: Tensor,
    },
    Checkpoint {
        inputs: Vec<Var>,
        f: Rc<CheckpointFn>,
    },
}

impl Graph {
    /// Applies node `i`'s vector-Jacobian product given upstream cotangent
    /// `dy`, accumulating into the input slots.
    pub(crate) fn vjp(&self, i: usize, dy: &Tensor, grads: &mut [Option<Tensor>]) -> Result<()> {
        // Work around the borrow: values are read-only; grads are written.
        // We clone small context out of the op first.
        enum Pending {
            None,
            One(usize, Tensor),
            Two(usize, Tensor, usize, Tensor),
            Many(Vec<(usize, Tensor)>),
        }
        let pending: Pending = match &self.nodes[i].op {
            Op::Leaf { .. } => Pending::None,
            Op::Add(a, b) => {
                let da = dy.reduce_to(self.nodes[a.0].value.dims())?;
                let db = dy.reduce_to(self.nodes[b.0].value.dims())?;
                Pending::Two(a.0, da, b.0, db)
            }
            Op::Sub(a, b) => {
                let da = dy.reduce_to(self.nodes[a.0].value.dims())?;
                let db = dy.neg().reduce_to(self.nodes[b.0].value.dims())?;
                Pending::Two(a.0, da, b.0, db)
            }
            Op::Mul(a, b) => {
                let av = &self.nodes[a.0].value;
                let bv = &self.nodes[b.0].value;
                let da = dy.mul(bv)?.reduce_to(av.dims())?;
                let db = dy.mul(av)?.reduce_to(bv.dims())?;
                Pending::Two(a.0, da, b.0, db)
            }
            Op::Div(a, b) => {
                let av = &self.nodes[a.0].value;
                let bv = &self.nodes[b.0].value;
                let da = dy.div(bv)?.reduce_to(av.dims())?;
                let db = dy
                    .mul(av)?
                    .div(&bv.square())?
                    .neg()
                    .reduce_to(bv.dims())?;
                Pending::Two(a.0, da, b.0, db)
            }
            Op::Neg(x) => Pending::One(x.0, dy.neg()),
            Op::Scale(x, s) => Pending::One(x.0, dy.mul_scalar(*s)),
            Op::AddScalar(x) => Pending::One(x.0, dy.clone()),
            Op::Relu(x) => {
                let xv = &self.nodes[x.0].value;
                let gate = xv.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                Pending::One(x.0, dy.mul(&gate)?)
            }
            Op::Sigmoid(x) => {
                // d/dx sigmoid = y (1 - y); node value is y.
                let y = &self.nodes[i].value;
                let d = y.mul(&y.map(|v| 1.0 - v))?;
                Pending::One(x.0, dy.mul(&d)?)
            }
            Op::Tanh(x) => {
                let y = &self.nodes[i].value;
                let d = y.map(|v| 1.0 - v * v);
                Pending::One(x.0, dy.mul(&d)?)
            }
            Op::Gelu(x) => {
                let d = self.nodes[x.0].value.gelu_derivative();
                Pending::One(x.0, dy.mul(&d)?)
            }
            Op::Square(x) => {
                let d = self.nodes[x.0].value.mul_scalar(2.0);
                Pending::One(x.0, dy.mul(&d)?)
            }
            Op::Exp(x) => {
                let y = &self.nodes[i].value;
                Pending::One(x.0, dy.mul(y)?)
            }
            Op::Ln(x) => {
                let inv = self.nodes[x.0].value.map(|v| 1.0 / v);
                Pending::One(x.0, dy.mul(&inv)?)
            }
            Op::Sqrt(x) => {
                // d/dx sqrt = 0.5 / y.
                let y = &self.nodes[i].value;
                let d = y.map(|v| if v > 0.0 { 0.5 / v } else { 0.0 });
                Pending::One(x.0, dy.mul(&d)?)
            }
            Op::Matmul(a, b) => {
                let av = &self.nodes[a.0].value;
                let bv = &self.nodes[b.0].value;
                let da = dy.matmul_bt(bv)?.reduce_to(av.dims())?;
                let db = matmul_rhs_grad(av, bv, dy)?;
                Pending::Two(a.0, da, b.0, db)
            }
            Op::Softmax(x) => {
                let y = &self.nodes[i].value;
                Pending::One(x.0, softmax_backward(y, dy)?)
            }
            Op::LayerNorm { x, gamma, beta, stats } => {
                let xv = &self.nodes[x.0].value;
                let gv = &self.nodes[gamma.0].value;
                let (dx, dg, db) =
                    fused_backward(dy, xv, gv, stats, LN_BACKWARD_BLOCK_ROWS)?;
                Pending::Many(vec![(x.0, dx), (gamma.0, dg), (beta.0, db)])
            }
            Op::Attention { q, k, v, bias, scale } => {
                let qv = &self.nodes[q.0].value;
                let kv = &self.nodes[k.0].value;
                let vv = &self.nodes[v.0].value;
                let bv = bias.map(|b| &self.nodes[b.0].value);
                let (dq, dk, dvv, dbias) = attention_backward(qv, kv, vv, bv, *scale, dy)?;
                let mut outs = vec![(q.0, dq), (k.0, dk), (v.0, dvv)];
                if let (Some(b), Some(dbias)) = (bias, dbias) {
                    outs.push((b.0, dbias));
                }
                Pending::Many(outs)
            }
            Op::FusedAttention { q, k, v, bias, mask, gate, scale, att, lse } => {
                let qv = &self.nodes[q.0].value;
                let kv = &self.nodes[k.0].value;
                let vv = &self.nodes[v.0].value;
                let bv = bias.map(|b| &self.nodes[b.0].value);
                let mv = mask.map(|m| &self.nodes[m.0].value);
                let gv = gate.map(|g| &self.nodes[g.0].value);
                let att_ref = att.as_ref().unwrap_or(&self.nodes[i].value);
                let g = sf_tensor::ops::attention::attention_fused_backward(
                    qv, kv, vv, bv, mv, gv, att_ref, lse, *scale, dy,
                )?;
                let mut outs = vec![(q.0, g.dq), (k.0, g.dk), (v.0, g.dv)];
                if let (Some(b), Some(dbias)) = (bias, g.dbias) {
                    outs.push((b.0, dbias));
                }
                if let (Some(gt), Some(dgate)) = (gate, g.dgate) {
                    outs.push((gt.0, dgate));
                }
                Pending::Many(outs)
            }
            Op::Reshape(x) => {
                let dims = self.nodes[x.0].value.dims().to_vec();
                Pending::One(x.0, dy.reshape(&dims)?)
            }
            Op::Permute { x, perm } => {
                let mut inv = vec![0usize; perm.len()];
                for (o, &p) in perm.iter().enumerate() {
                    inv[p] = o;
                }
                Pending::One(x.0, dy.permute(&inv)?)
            }
            Op::SliceAxis { x, axis, start } => {
                let xv = &self.nodes[x.0].value;
                Pending::One(x.0, unslice(dy, xv.dims(), *axis, *start)?)
            }
            Op::Concat { xs, axis } => {
                let mut outs = Vec::with_capacity(xs.len());
                let mut offset = 0usize;
                for &x in xs {
                    let len = self.nodes[x.0].value.dims()[*axis];
                    let piece = dy.slice_axis(*axis, offset, offset + len)?;
                    outs.push((x.0, piece));
                    offset += len;
                }
                Pending::Many(outs)
            }
            Op::BroadcastTo(x) => {
                let dims = self.nodes[x.0].value.dims().to_vec();
                Pending::One(x.0, dy.reduce_to(&dims)?)
            }
            Op::SumAxis { x, axis } => {
                let dims = self.nodes[x.0].value.dims().to_vec();
                let expanded = dy.unsqueeze(*axis)?.broadcast_to(&dims)?;
                Pending::One(x.0, expanded)
            }
            Op::MeanAxis { x, axis } => {
                let dims = self.nodes[x.0].value.dims().to_vec();
                let n = dims[*axis].max(1) as f32;
                let expanded = dy.unsqueeze(*axis)?.broadcast_to(&dims)?;
                Pending::One(x.0, expanded.mul_scalar(1.0 / n))
            }
            Op::SumAll(x) => {
                let dims = self.nodes[x.0].value.dims().to_vec();
                Pending::One(x.0, Tensor::full(&dims, dy.item()))
            }
            Op::MeanAll(x) => {
                let dims = self.nodes[x.0].value.dims().to_vec();
                let n: usize = dims.iter().product::<usize>().max(1);
                Pending::One(x.0, Tensor::full(&dims, dy.item() / n as f32))
            }
            Op::Dropout { x, mask } => Pending::One(x.0, dy.mul(mask)?),
            Op::Checkpoint { inputs, f } => {
                let inputs = inputs.clone();
                let f = Rc::clone(f);
                let input_values: Vec<Tensor> =
                    inputs.iter().map(|&v| self.nodes[v.0].value.clone()).collect();
                let grads =
                    crate::checkpoint::checkpoint_backward(&f, &input_values, dy.clone())?;
                Pending::Many(
                    inputs
                        .iter()
                        .zip(grads)
                        .filter_map(|(v, g)| g.map(|g| (v.0, g)))
                        .collect(),
                )
            }
        };

        match pending {
            Pending::None => Ok(()),
            Pending::One(idx, g) => accumulate(grads, idx, g),
            Pending::Two(ai, ga, bi, gb) => {
                accumulate(grads, ai, ga)?;
                accumulate(grads, bi, gb)
            }
            Pending::Many(items) => {
                for (idx, g) in items {
                    accumulate(grads, idx, g)?;
                }
                Ok(())
            }
        }
    }
}

/// `dL/dB` for `C = A @ B`, handling the rhs-broadcast case where `B` is
/// unbatched but `A`/`dy` are batched (sum over the batch).
fn matmul_rhs_grad(a: &Tensor, b: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let db_full = a.matmul_at(dy)?;
    if db_full.dims() == b.dims() {
        return Ok(db_full);
    }
    // Sum leading batch dims down to b's shape.
    db_full.reduce_to(b.dims()).map_err(Into::into)
}

/// `dx = y * (dy - sum(dy * y, last_axis, keepdim))` for `y = softmax(x)`.
fn softmax_backward(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let mut dx = dy.clone();
    softmax_backward_inplace(y, &mut dx)?;
    Ok(dx)
}

/// In-place softmax backward: on entry `dx` holds the upstream gradient
/// `dy`; on exit it holds `dx = y * (dy - Σ_last(dy * y))`. Row-wise with
/// no temporary allocations (the seed version materialized four
/// intermediate tensors per call), parallel over rows.
fn softmax_backward_inplace(y: &Tensor, dx: &mut Tensor) -> Result<()> {
    if y.dims() != dx.dims() {
        return Err(sf_tensor::TensorError::ShapeMismatch {
            op: "softmax backward",
            lhs: y.dims().to_vec(),
            rhs: dx.dims().to_vec(),
        }
        .into());
    }
    let inner = *y.dims().last().unwrap_or(&1);
    if inner == 0 {
        return Ok(());
    }
    let rows = y.len() / inner;
    let yd = y.data();
    let ptr = sf_tensor::pool::SendPtr::new(dx.data_mut());
    sf_tensor::pool::parallel_for(rows, inner * 4, |range| {
        for r in range {
            // SAFETY: row ranges from parallel_for are disjoint.
            let drow = unsafe { ptr.slice_mut(r * inner, inner) };
            let yrow = &yd[r * inner..(r + 1) * inner];
            let mut dot = 0.0f32;
            for (d, &yv) in drow.iter().zip(yrow.iter()) {
                dot += d * yv;
            }
            for (d, &yv) in drow.iter_mut().zip(yrow.iter()) {
                *d = yv * (*d - dot);
            }
        }
    });
    Ok(())
}

/// Recompute-based backward for fused attention with pair bias.
///
/// Returns `(dq, dk, dv, dbias)`.
///
/// Buffer discipline: the recomputed logits tensor is softmaxed **in
/// place** to become `p`, and the `dp` tensor is overwritten in place to
/// become `dlogits`; the transposed operands (`k^T`, `v^T`, `p^T`,
/// `dlogits^T`) are read through the strided GEMM variants instead of
/// being materialized. The seed version allocated eight intermediate
/// tensors per call; this allocates the three it returns plus two.
#[allow(clippy::type_complexity)]
fn attention_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    bias: Option<&Tensor>,
    scale: f32,
    dy: &Tensor,
) -> Result<(Tensor, Tensor, Tensor, Option<Tensor>)> {
    // Recompute probabilities (this is the memory saving FlashAttention
    // backward also performs; on GPU it is tiled, here we materialize).
    let mut logits = q.matmul_bt(k)?;
    logits.map_inplace(|l| l * scale);
    if let Some(b) = bias {
        logits = logits.add(b)?;
    }
    sf_tensor::ops::softmax::softmax_inplace(&mut logits)?;
    let p = logits;
    let dv = p.matmul_at(dy)?;
    let mut dp = dy.matmul_bt(v)?;
    softmax_backward_inplace(&p, &mut dp)?;
    let dlogits = dp;
    let mut dq = dlogits.matmul(k)?;
    dq.map_inplace(|g| g * scale);
    let mut dk = dlogits.matmul_at(q)?;
    dk.map_inplace(|g| g * scale);
    let dbias = match bias {
        Some(b) => Some(dlogits.reduce_to(b.dims())?),
        None => None,
    };
    Ok((dq, dk, dv, dbias))
}

/// Adjoint of `slice_axis`: scatters `dy` back into a zero tensor of the
/// original shape at `[start, start + len)` along `axis`.
fn unslice(dy: &Tensor, full_dims: &[usize], axis: usize, start: usize) -> Result<Tensor> {
    let mut out = Tensor::zeros(full_dims);
    let len = dy.dims()[axis];
    let full_axis = full_dims[axis];
    let outer: usize = full_dims[..axis].iter().product();
    let inner: usize = full_dims[axis + 1..].iter().product();
    for o in 0..outer {
        for a in 0..len {
            let src = (o * len + a) * inner;
            let dst = (o * full_axis + start + a) * inner;
            out.data_mut()[dst..dst + inner].copy_from_slice(&dy.data()[src..src + inner]);
        }
    }
    Ok(out)
}
