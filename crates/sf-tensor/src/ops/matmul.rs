//! Blocked general matrix multiplication with batch broadcasting, plus the
//! batched-GEMM bundling primitive the paper uses before MHA (§3.3.1,
//! "GEMM Batching").
//!
//! The engine is a packed, register-tiled GEMM parallelized over
//! batch × row blocks through [`crate::pool`]:
//!
//! - The B operand is packed one `NR`-column panel at a time into
//!   thread-local scratch, so the micro-kernel streams it contiguously
//!   regardless of transposition.
//! - The micro-kernel computes an `MR × NR` tile in registers and *assigns*
//!   the result (the seed implementation zero-initialized the output and
//!   then accumulated with `+=`, reading every output element back once per
//!   k-tile — that double traffic is gone).
//! - Each output element is accumulated over `k` in one fixed ascending
//!   pass, and row-block boundaries are multiples of `MR`, so the result is
//!   **bit-identical for every thread count** (asserted in
//!   `tests/parallel_determinism.rs`).
//!
//! [`matmul_bt`] (`a @ b^T`) and [`matmul_at`] (`a^T @ b`) reuse the same
//! engine with stride/packing twists instead of materializing a transposed
//! copy — these are the shapes the attention forward and backward passes
//! actually need.

use crate::pool::{parallel_for, SendPtr};
use crate::scratch;
use crate::{Result, Tensor, TensorError};

/// Cache-blocking tile edge for [`gemm_block`], the seed reference kernel.
const TILE: usize = 32;

/// Micro-kernel rows: C tiles are `MR × NR`, held entirely in registers.
const MR: usize = 4;
/// Micro-kernel columns (two 8-lane vectors per accumulator row).
const NR: usize = 16;
/// Rows per parallel task. A multiple of `MR` so the register-tile grid is
/// identical no matter where the row partition falls.
const ROW_BLOCK: usize = 32;

/// Batched matrix product `a @ b`.
///
/// Semantics (a subset of numpy `matmul` sufficient for AlphaFold):
/// - `[m, k] @ [k, n] -> [m, n]`
/// - `[..., m, k] @ [..., k, n] -> [..., m, n]` with identical leading dims
/// - `[..., m, k] @ [k, n] -> [..., m, n]` (rhs broadcast over the batch)
/// - 1-D operands are promoted: `[k] @ [k, n] -> [n]`, `[m, k] @ [k] -> [m]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if contraction dimensions disagree
/// or batch dims are incompatible.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    // Promote 1-D operands.
    if a.rank() == 1 {
        let a2 = a.reshape(&[1, a.dims()[0]])?;
        let out = matmul(&a2, b)?;
        let mut dims = out.dims().to_vec();
        dims.remove(dims.len() - 2);
        return out.reshape(&dims);
    }
    if b.rank() == 1 {
        let b2 = b.reshape(&[b.dims()[0], 1])?;
        let out = matmul(a, &b2)?;
        let mut dims = out.dims().to_vec();
        dims.pop();
        return out.reshape(&dims);
    }
    batched_gemm(a, b, false, false, "matmul")
}

/// `a @ b^T` without materializing the transpose: `[..., m, k]` against
/// `[..., n, k]` gives `[..., m, n]`, with the same batch-broadcast rules as
/// [`matmul`]. This is the natural layout for `q @ k^T` and for linear
/// layers stored as `[out, in]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on contraction or batch mismatch,
/// or if either operand has rank < 2.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    batched_gemm(a, b, false, true, "matmul_bt")
}

/// `a^T @ b` without materializing the transpose: `[..., k, m]` against
/// `[..., k, n]` gives `[..., m, n]`, with the same batch-broadcast rules as
/// [`matmul`]. This is the `p^T @ dy` / `dlogits^T @ q` shape of the
/// attention backward pass.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on contraction or batch mismatch,
/// or if either operand has rank < 2.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    batched_gemm(a, b, true, false, "matmul_at")
}

/// Shared engine behind [`matmul`] / [`matmul_bt`] / [`matmul_at`].
fn batched_gemm(
    a: &Tensor,
    b: &Tensor,
    ta: bool,
    tb: bool,
    op: &'static str,
) -> Result<Tensor> {
    if a.rank() < 2 || b.rank() < 2 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    // Logical dims after the (virtual) transposes.
    let (am, ak) = if ta {
        (a.dims()[a.rank() - 1], a.dims()[a.rank() - 2])
    } else {
        (a.dims()[a.rank() - 2], a.dims()[a.rank() - 1])
    };
    let (bk, bn) = if tb {
        (b.dims()[b.rank() - 1], b.dims()[b.rank() - 2])
    } else {
        (b.dims()[b.rank() - 2], b.dims()[b.rank() - 1])
    };
    if ak != bk {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }

    let a_batch = &a.dims()[..a.rank() - 2];
    let b_batch = &b.dims()[..b.rank() - 2];
    let (batch_dims, a_repeat, b_repeat) = if a_batch == b_batch {
        (a_batch.to_vec(), false, false)
    } else if b_batch.is_empty() {
        (a_batch.to_vec(), false, true)
    } else if a_batch.is_empty() {
        (b_batch.to_vec(), true, false)
    } else {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    };

    let (m, k, n) = (am, ak, bn);
    let batch: usize = batch_dims.iter().product();
    let mut out_dims = batch_dims.clone();
    out_dims.push(m);
    out_dims.push(n);
    // The kernel assigns every output element exactly once, so the zero
    // fill is never read back; `vec![0.0; _]` lazily maps zero pages, which
    // keeps this allocation O(1) for large outputs.
    let mut out = Tensor::zeros(&out_dims);
    if batch == 0 || m == 0 || n == 0 {
        return Ok(out);
    }

    // Strides of the logical A over (row, k): a plain row-major matrix, or
    // its stored transpose read column-wise.
    let (ars, acs) = if ta { (1, am) } else { (ak, 1) };
    let a_stride = ak * am;
    let b_stride = bk * bn;
    let o_stride = m * n;

    let rb_per_mat = m.div_ceil(ROW_BLOCK);
    let n_tasks = batch * rb_per_mat;
    let task_cost = ROW_BLOCK.min(m) * k * n * 2;

    let a_data = a.data();
    let b_data = b.data();
    let out_ptr = SendPtr::new(out.data_mut());

    parallel_for(n_tasks, task_cost, |range| {
        scratch::with_scratch(k.max(1) * NR, |pack| {
            for t in range {
                let bi = t / rb_per_mat;
                let rb = t % rb_per_mat;
                let r0 = rb * ROW_BLOCK;
                let r1 = (r0 + ROW_BLOCK).min(m);
                let a_off = if a_repeat { 0 } else { bi * a_stride };
                let b_off = if b_repeat { 0 } else { bi * b_stride };
                let a_mat = &a_data[a_off..a_off + a_stride];
                let b_mat = &b_data[b_off..b_off + b_stride];
                // SAFETY: tasks own disjoint (batch, row-block) regions.
                let c_rows =
                    unsafe { out_ptr.slice_mut(bi * o_stride + r0 * n, (r1 - r0) * n) };
                gemm_rows(a_mat, ars, acs, b_mat, tb, k, n, r0, r1, c_rows, pack);
            }
        });
    });
    Ok(out)
}

/// Computes rows `[r0, r1)` of `C = A_logical @ B_logical` into `c` (a
/// `(r1 - r0) × n` row-major slab), packing B one panel at a time.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    a: &[f32],
    ars: usize,
    acs: usize,
    b: &[f32],
    tb: bool,
    k: usize,
    n: usize,
    r0: usize,
    r1: usize,
    c: &mut [f32],
    pack: &mut [f32],
) {
    let rows = r1 - r0;
    let mut j0 = 0usize;
    while j0 < n {
        let jw = (n - j0).min(NR);
        pack_panel(b, tb, k, n, j0, jw, pack);
        let mut i0 = 0usize;
        while i0 < rows {
            let iw = (rows - i0).min(MR);
            micro_tile(a, ars, acs, r0 + i0, iw, k, pack, c, n, i0, j0, jw);
            i0 += MR;
        }
        j0 += NR;
    }
}

/// Packs columns `[j0, j0 + jw)` of the logical B into a `k × NR` panel
/// (zero-padded beyond `jw` so the micro-kernel runs full vectors).
fn pack_panel(b: &[f32], tb: bool, k: usize, n: usize, j0: usize, jw: usize, pack: &mut [f32]) {
    if tb {
        // Stored [n, k]: logical column j is the stored row j, contiguous.
        for jj in 0..jw {
            let col = &b[(j0 + jj) * k..(j0 + jj) * k + k];
            for (kk, &v) in col.iter().enumerate() {
                pack[kk * NR + jj] = v;
            }
        }
        for jj in jw..NR {
            for kk in 0..k {
                pack[kk * NR + jj] = 0.0;
            }
        }
    } else {
        for kk in 0..k {
            let row = &mut pack[kk * NR..kk * NR + NR];
            row[..jw].copy_from_slice(&b[kk * n + j0..kk * n + j0 + jw]);
            row[jw..].fill(0.0);
        }
    }
}

/// Register-tiled `iw × NR` kernel: accumulates over the full `k` range in
/// one fixed ascending pass and *assigns* the tile into `c`. The single
/// pass (same for interior and edge tiles) is what makes parallel output
/// bit-identical to serial.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_tile(
    a: &[f32],
    ars: usize,
    acs: usize,
    row0: usize,
    iw: usize,
    k: usize,
    pack: &[f32],
    c: &mut [f32],
    n: usize,
    c_row0: usize,
    j0: usize,
    jw: usize,
) {
    if iw == MR {
        // Full-tile fast path: four independently named accumulator rows
        // and a checked-free panel walk (`chunks_exact`) let the compiler
        // keep the whole 4 x NR tile in vector registers. Per-element
        // arithmetic (one ascending k pass) is identical to the edge path.
        let mut acc0 = [0.0f32; NR];
        let mut acc1 = [0.0f32; NR];
        let mut acc2 = [0.0f32; NR];
        let mut acc3 = [0.0f32; NR];
        for (kk, brow) in pack.chunks_exact(NR).take(k).enumerate() {
            let a0 = a[row0 * ars + kk * acs];
            let a1 = a[(row0 + 1) * ars + kk * acs];
            let a2 = a[(row0 + 2) * ars + kk * acs];
            let a3 = a[(row0 + 3) * ars + kk * acs];
            for jj in 0..NR {
                let bv = brow[jj];
                acc0[jj] += a0 * bv;
                acc1[jj] += a1 * bv;
                acc2[jj] += a2 * bv;
                acc3[jj] += a3 * bv;
            }
        }
        for (r, arow) in [acc0, acc1, acc2, acc3].iter().enumerate() {
            let dst = &mut c[(c_row0 + r) * n + j0..(c_row0 + r) * n + j0 + jw];
            dst.copy_from_slice(&arow[..jw]);
        }
        return;
    }
    let mut acc = [[0.0f32; NR]; MR];
    for (kk, brow) in pack.chunks_exact(NR).take(k).enumerate() {
        for (r, arow) in acc.iter_mut().enumerate().take(iw) {
            let av = a[(row0 + r) * ars + kk * acs];
            for (x, &bv) in arow.iter_mut().zip(brow.iter()) {
                *x += av * bv;
            }
        }
    }
    for (r, arow) in acc.iter().enumerate().take(iw) {
        let dst = &mut c[(c_row0 + r) * n + j0..(c_row0 + r) * n + j0 + jw];
        dst.copy_from_slice(&arow[..jw]);
    }
}

/// `c += a @ b` on dense row-major buffers, cache-blocked with an i-k-j
/// inner order (streams `b` rows, accumulates into `c` rows).
///
/// This is the **seed** serial kernel, kept as the baseline that
/// `scalefold bench-kernels` and the regression tests measure the packed
/// parallel engine against.
pub fn gemm_block(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for k0 in (0..k).step_by(TILE) {
            let k1 = (k0 + TILE).min(k);
            for i in i0..i1 {
                let crow = &mut c[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

/// Result of [`batched_linear`]: the bundled projection outputs in input
/// order.
pub type BatchedOutputs = Vec<Tensor>;

/// Applies several independent linear layers (`x @ w_i^T + b_i`) to the same
/// input in one bundled batched GEMM — the paper's "GEMM Batching"
/// optimization for the four projections (Q, K, V, gate) preceding MHA.
///
/// Each `weights[i]` has shape `[out_i, in]` and each `biases[i]` (if given)
/// shape `[out_i]`. `x` has shape `[..., in]`. The implementation stacks the
/// weight matrices and performs a single GEMM, then splits the output —
/// numerically identical to looping, which the unit tests verify.
///
/// # Errors
///
/// Returns an error on dimension mismatch or if `weights` is empty.
pub fn batched_linear(
    x: &Tensor,
    weights: &[&Tensor],
    biases: &[Option<&Tensor>],
) -> Result<BatchedOutputs> {
    let first = weights.first().ok_or(TensorError::EmptyInput("batched_linear"))?;
    let in_dim = first.dims()[1];
    if x.dims().last() != Some(&in_dim) {
        return Err(TensorError::ShapeMismatch {
            op: "batched_linear",
            lhs: x.dims().to_vec(),
            rhs: first.dims().to_vec(),
        });
    }
    // Stack [out_total, in].
    let stacked = Tensor::concat(weights, 0)?;
    let rows: usize = x.len() / in_dim;
    let x2 = x.reshape(&[rows, in_dim])?;
    // `x @ stacked^T` directly — no transposed copy of the weight stack.
    let big = matmul_bt(&x2, &stacked)?; // [rows, out_total]

    let mut outs = Vec::with_capacity(weights.len());
    let mut col = 0usize;
    for (w, bias) in weights.iter().zip(biases.iter()) {
        let out_dim = w.dims()[0];
        let mut piece = big.slice_axis(1, col, col + out_dim)?;
        if let Some(b) = bias {
            piece = piece.add(b)?;
        }
        let mut dims = x.dims().to_vec();
        *dims.last_mut().expect("x has rank >= 1") = out_dim;
        outs.push(piece.reshape(&dims)?);
        col += out_dim;
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                c.data_mut()[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::randn(&[17, 33], 1);
        let b = Tensor::randn(&[33, 9], 2);
        let c = matmul(&a, &b).unwrap();
        assert!(c.allclose(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_matches_seed_gemm_block() {
        let (m, k, n) = (37, 19, 23);
        let a = Tensor::randn(&[m, k], 41);
        let b = Tensor::randn(&[k, n], 42);
        let mut c_seed = Tensor::zeros(&[m, n]);
        gemm_block(a.data(), b.data(), c_seed.data_mut(), m, k, n);
        assert!(matmul(&a, &b).unwrap().allclose(&c_seed, 1e-4));
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::randn(&[5, 5], 3);
        let c = matmul(&a, &Tensor::eye(5)).unwrap();
        assert!(c.allclose(&a, 1e-6));
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::randn(&[2, 3, 4, 5], 4);
        let b = Tensor::randn(&[2, 3, 5, 6], 5);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 3, 4, 6]);
        // Spot-check one batch element against the 2-D path.
        let a0 = Tensor::from_vec(a.data()[..20].to_vec(), &[4, 5]).unwrap();
        let b0 = Tensor::from_vec(b.data()[..30].to_vec(), &[5, 6]).unwrap();
        let c0 = matmul(&a0, &b0).unwrap();
        assert!(Tensor::from_vec(c.data()[..24].to_vec(), &[4, 6])
            .unwrap()
            .allclose(&c0, 1e-5));
    }

    #[test]
    fn matmul_rhs_broadcast() {
        let a = Tensor::randn(&[3, 4, 5], 6);
        let b = Tensor::randn(&[5, 2], 7);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[3, 4, 2]);
        let a2 = Tensor::from_vec(a.data()[20..40].to_vec(), &[4, 5]).unwrap();
        let c1 = matmul(&a2, &b).unwrap();
        assert!(Tensor::from_vec(c.data()[8..16].to_vec(), &[4, 2])
            .unwrap()
            .allclose(&c1, 1e-5));
    }

    #[test]
    fn matmul_vector_promotion() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let m = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &m).unwrap().dims(), &[2]);
        assert_eq!(matmul(&m, &a).unwrap().dims(), &[2]);
        assert_eq!(matmul(&a, &m).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul(&a, &b).is_err());
        let a3 = Tensor::zeros(&[2, 2, 3]);
        let b3 = Tensor::zeros(&[3, 3, 4]);
        assert!(matmul(&a3, &b3).is_err());
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = Tensor::randn(&[9, 13], 20);
        let b = Tensor::randn(&[7, 13], 21); // logical b^T is [13, 7]
        let expect = matmul(&a, &b.transpose().unwrap()).unwrap();
        let got = matmul_bt(&a, &b).unwrap();
        assert_eq!(got.dims(), &[9, 7]);
        assert_eq!(got.data(), expect.data(), "bt engine must agree bitwise");
    }

    #[test]
    fn matmul_bt_batched_with_broadcast_rhs() {
        let a = Tensor::randn(&[3, 8, 5], 22);
        let b = Tensor::randn(&[6, 5], 23);
        let expect = matmul(&a, &b.transpose().unwrap()).unwrap();
        let got = matmul_bt(&a, &b).unwrap();
        assert_eq!(got.dims(), &[3, 8, 6]);
        assert!(got.allclose(&expect, 1e-6));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let a = Tensor::randn(&[13, 9], 24); // logical a^T is [9, 13]
        let b = Tensor::randn(&[13, 7], 25);
        let expect = matmul(&a.transpose().unwrap(), &b).unwrap();
        let got = matmul_at(&a, &b).unwrap();
        assert_eq!(got.dims(), &[9, 7]);
        assert_eq!(got.data(), expect.data(), "at engine must agree bitwise");
    }

    #[test]
    fn matmul_at_batched() {
        let a = Tensor::randn(&[4, 11, 3], 26);
        let b = Tensor::randn(&[4, 11, 5], 27);
        let got = matmul_at(&a, &b).unwrap();
        assert_eq!(got.dims(), &[4, 3, 5]);
        for i in 0..4 {
            let a_i = Tensor::from_vec(a.data()[i * 33..(i + 1) * 33].to_vec(), &[11, 3]).unwrap();
            let b_i = Tensor::from_vec(b.data()[i * 55..(i + 1) * 55].to_vec(), &[11, 5]).unwrap();
            let e_i = matmul(&a_i.transpose().unwrap(), &b_i).unwrap();
            let g_i = Tensor::from_vec(got.data()[i * 15..(i + 1) * 15].to_vec(), &[3, 5]).unwrap();
            assert!(g_i.allclose(&e_i, 1e-5));
        }
    }

    #[test]
    fn transposed_variants_reject_vectors() {
        let v = Tensor::zeros(&[4]);
        let m = Tensor::zeros(&[4, 4]);
        assert!(matmul_bt(&v, &m).is_err());
        assert!(matmul_at(&m, &v).is_err());
    }

    #[test]
    fn batched_linear_equals_loop() {
        let x = Tensor::randn(&[3, 7, 8], 10);
        let w1 = Tensor::randn(&[4, 8], 11);
        let w2 = Tensor::randn(&[6, 8], 12);
        let w3 = Tensor::randn(&[4, 8], 13);
        let b1 = Tensor::randn(&[4], 14);
        let outs =
            batched_linear(&x, &[&w1, &w2, &w3], &[Some(&b1), None, None]).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].dims(), &[3, 7, 4]);
        assert_eq!(outs[1].dims(), &[3, 7, 6]);

        // Reference: apply each projection individually.
        let flat = x.reshape(&[21, 8]).unwrap();
        let r1 = flat.matmul(&w1.transpose().unwrap()).unwrap().add(&b1).unwrap();
        assert!(outs[0].reshape(&[21, 4]).unwrap().allclose(&r1, 1e-5));
        let r2 = flat.matmul(&w2.transpose().unwrap()).unwrap();
        assert!(outs[1].reshape(&[21, 6]).unwrap().allclose(&r2, 1e-5));
    }

    #[test]
    fn batched_linear_rejects_mismatch() {
        let x = Tensor::zeros(&[2, 5]);
        let w = Tensor::zeros(&[3, 8]);
        assert!(batched_linear(&x, &[&w], &[None]).is_err());
        assert!(batched_linear(&x, &[], &[]).is_err());
    }
}
