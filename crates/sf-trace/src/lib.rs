//! **sf-trace** — dependency-free runtime tracing for the ScaleFold stack.
//!
//! ScaleFold's methodology is profile-guided: the paper's Table 1 came from
//! tracing training steps and attributing time to data-wait, CPU launch
//! overhead, math/memory-bound kernels, and communication — and only then
//! optimizing each bucket. This crate is the runtime analogue for the real
//! Rust training stack: spans, instant events, and counters recorded into
//! **per-thread ring buffers**, drained into a global collector, exported
//! as Chrome `trace_event` JSON (loadable in `chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev)), and summarized as a per-step
//! phase-breakdown table ([`report::PhaseReport`]).
//!
//! Design constraints, in order:
//!
//! 1. **Compiled-out-cheap when disabled.** Every recording entry point
//!    checks one relaxed atomic load and returns; a disabled
//!    [`span`] constructs an inert guard with no timestamp read, no lock,
//!    and no allocation. The hot kernels of `sf-tensor` stay at full speed
//!    with tracing off (asserted against the committed kernel-bench
//!    baseline).
//! 2. **Thread-safe without coordination on the hot path.** Each thread
//!    records into its own ring buffer behind its own (uncontended) mutex;
//!    threads never write to shared state while tracing. The collector
//!    walks the buffer registry only in [`take`]/[`reset`].
//! 3. **Bounded memory.** Ring buffers hold [`RING_CAPACITY`] events; when
//!    full, the oldest events are dropped and counted
//!    ([`Trace::dropped`]), never blocking or growing without bound.
//! 4. **No dependencies.** The build environment has no registry access;
//!    JSON in and out is the crate's own [`json`] module.
//!
//! # Category conventions
//!
//! The phase table keys on span *categories*. The stack uses:
//!
//! | category     | emitted by                                             |
//! |--------------|--------------------------------------------------------|
//! | `step`       | `scalefold::Trainer` — one umbrella span per step      |
//! | `data_wait`  | `sf-data` loaders — consumer blocked in `next()`       |
//! | `forward`    | trainer forward pass                                   |
//! | `backward`   | trainer backward pass + gradient materialization       |
//! | `optimizer`  | clip + Adam/SWA update                                 |
//! | `checkpoint` | checkpoint save/restore                                |
//! | `eval`       | lDDT metric + evaluation passes                        |
//! | `loader`     | `sf-data` worker threads (`prepare`, queue depth)      |
//! | `pool`       | `sf-tensor` thread pool (regions, per-worker tasks)    |
//! | `sim`        | `sf-gpusim` simulated timelines ([`SimTraceBuilder`])  |

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod chrome;
pub mod json;
pub mod report;

/// Maximum events a single thread buffers before the oldest are dropped.
pub const RING_CAPACITY: usize = 1 << 16;

/// Span categories the phase report recognizes as training phases, in
/// table order (the runtime analogue of the paper's Table 1 buckets).
pub const PHASE_CATS: [&str; 6] = [
    "data_wait",
    "forward",
    "backward",
    "optimizer",
    "checkpoint",
    "eval",
];

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

type SharedBuf = Arc<Mutex<ThreadBuf>>;

fn registry() -> &'static Mutex<Vec<SharedBuf>> {
    static REGISTRY: OnceLock<Mutex<Vec<SharedBuf>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

struct ThreadBuf {
    ring: VecDeque<Event>,
    dropped: u64,
    tid: u32,
}

thread_local! {
    static LOCAL: SharedBuf = {
        let buf = Arc::new(Mutex::new(ThreadBuf {
            ring: VecDeque::new(),
            dropped: 0,
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        }));
        registry()
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&buf));
        buf
    };
}

/// Turns recording on. Events record from this point until [`disable`].
pub fn enable() {
    // Pin the epoch before the first event so timestamps are meaningful.
    let _ = epoch();
    ENABLED.store(true, Ordering::Release);
}

/// Turns recording off (buffered events stay until [`take`] or [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// True if events are currently being recorded.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the trace epoch (first [`enable`] / first query).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

fn push_event(ev: Event) {
    LOCAL.with(|buf| {
        let mut b = buf.lock().unwrap_or_else(|p| p.into_inner());
        if b.ring.len() >= RING_CAPACITY {
            b.ring.pop_front();
            b.dropped += 1;
        }
        b.ring.push_back(ev);
    });
}

fn current_tid() -> u32 {
    LOCAL.with(|buf| buf.lock().unwrap_or_else(|p| p.into_inner()).tid)
}

/// Drains every thread's ring buffer into one [`Trace`], sorted by
/// timestamp. Buffers (including those of exited threads) are emptied;
/// recording state is unchanged.
pub fn take() -> Trace {
    let mut events = Vec::new();
    let mut dropped = 0;
    for buf in registry().lock().unwrap_or_else(|p| p.into_inner()).iter() {
        let mut b = buf.lock().unwrap_or_else(|p| p.into_inner());
        events.extend(b.ring.drain(..));
        dropped += b.dropped;
        b.dropped = 0;
    }
    events.sort_by_key(|e| e.ts_us);
    Trace { events, dropped }
}

/// Discards all buffered events and drop counts (recording state is
/// unchanged).
pub fn reset() {
    let _ = take();
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What kind of trace event this is (maps to the Chrome `ph` field).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A complete span (`ph: "X"`) with a duration.
    Complete {
        /// Span duration in microseconds.
        dur_us: u64,
    },
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`).
    Counter {
        /// The counter's value at `ts_us`.
        value: f64,
    },
}

/// One trace event. `pid` 0 is the real process; simulated timelines use
/// their own pid so both sides load side by side in one viewer.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (e.g. `"forward"`, `"prepare"`).
    pub name: Cow<'static, str>,
    /// Category — see the table in the crate docs.
    pub cat: Cow<'static, str>,
    /// Kind + kind-specific payload.
    pub kind: EventKind,
    /// Start time, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Process lane (0 = real process, ≥1 = simulated).
    pub pid: u32,
    /// Thread lane.
    pub tid: u32,
    /// Numeric arguments (`args` in the Chrome schema).
    pub args: Vec<(Cow<'static, str>, f64)>,
}

impl Event {
    /// End time (`ts + dur` for spans, `ts` otherwise), microseconds.
    pub fn end_us(&self) -> u64 {
        match self.kind {
            EventKind::Complete { dur_us } => self.ts_us + dur_us,
            _ => self.ts_us,
        }
    }

    /// The named numeric argument, if present.
    pub fn arg(&self, key: &str) -> Option<f64> {
        self.args.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// A drained trace: every recorded event plus how many were lost to ring
/// overflow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events sorted by start timestamp.
    pub events: Vec<Event>,
    /// Events evicted from full ring buffers before collection.
    pub dropped: u64,
}

impl Trace {
    /// Merges `other`'s events into this trace (re-sorting by timestamp).
    /// Use to place a simulated timeline alongside a real one.
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
        self.dropped += other.dropped;
        self.events.sort_by_key(|e| e.ts_us);
    }

    /// Complete-span events of category `cat`.
    pub fn spans<'a>(&'a self, cat: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events
            .iter()
            .filter(move |e| e.cat == cat && matches!(e.kind, EventKind::Complete { .. }))
    }
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// RAII span: records one [`EventKind::Complete`] event from construction
/// to drop. Inert (zero timestamps read, nothing recorded) when tracing is
/// disabled at construction.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    start_us: u64,
    cat: &'static str,
    name: &'static str,
    args: [Option<(&'static str, f64)>; 2],
    active: bool,
}

impl SpanGuard {
    /// Attaches a numeric argument (up to two per span; extras ignored).
    pub fn arg(mut self, key: &'static str, value: f64) -> Self {
        if self.active {
            if let Some(slot) = self.args.iter_mut().find(|s| s.is_none()) {
                *slot = Some((key, value));
            }
        }
        self
    }

    /// Discards the span without recording it (e.g. a loop iteration that
    /// turned out to be the end-of-iterator probe, not a real step).
    pub fn cancel(mut self) {
        self.active = false;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = now_us();
        let args = self
            .args
            .iter()
            .flatten()
            .map(|&(k, v)| (Cow::Borrowed(k), v))
            .collect();
        push_event(Event {
            name: Cow::Borrowed(self.name),
            cat: Cow::Borrowed(self.cat),
            kind: EventKind::Complete {
                dur_us: end.saturating_sub(self.start_us),
            },
            ts_us: self.start_us,
            pid: 0,
            tid: current_tid(),
            args,
        });
    }
}

/// Opens a span of `cat`/`name` measuring until the guard drops.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    let active = is_enabled();
    SpanGuard {
        start_us: if active { now_us() } else { 0 },
        cat,
        name,
        args: [None, None],
        active,
    }
}

/// Records a point-in-time marker.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    if !is_enabled() {
        return;
    }
    push_event(Event {
        name: Cow::Borrowed(name),
        cat: Cow::Borrowed(cat),
        kind: EventKind::Instant,
        ts_us: now_us(),
        pid: 0,
        tid: current_tid(),
        args: Vec::new(),
    });
}

/// Samples a named counter (e.g. loader queue depth).
#[inline]
pub fn counter(name: &'static str, value: f64) {
    if !is_enabled() {
        return;
    }
    push_event(Event {
        name: Cow::Borrowed(name),
        cat: Cow::Borrowed("counter"),
        kind: EventKind::Counter { value },
        ts_us: now_us(),
        pid: 0,
        tid: current_tid(),
        args: Vec::new(),
    });
}

/// Records a completed span retroactively from explicit timestamps (for
/// code that measures first and decides afterwards whether the interval is
/// worth recording, like the pool's per-worker task batches).
#[inline]
pub fn complete_span(
    cat: &'static str,
    name: &'static str,
    start_us: u64,
    end_us: u64,
    args: &[(&'static str, f64)],
) {
    if !is_enabled() {
        return;
    }
    push_event(Event {
        name: Cow::Borrowed(name),
        cat: Cow::Borrowed(cat),
        kind: EventKind::Complete {
            dur_us: end_us.saturating_sub(start_us),
        },
        ts_us: start_us,
        pid: 0,
        tid: current_tid(),
        args: args.iter().map(|&(k, v)| (Cow::Borrowed(k), v)).collect(),
    });
}

// ---------------------------------------------------------------------------
// Simulated timelines
// ---------------------------------------------------------------------------

/// Builds a [`Trace`] out of *simulated* time (seconds from `sf-gpusim` /
/// `sf-cluster` models) so simulated and real timelines export through the
/// same Chrome `trace_event` writer and load in the same viewer.
///
/// Simulated events live on their own `pid` lane (pass ≥ 1) with
/// caller-chosen `tid` lanes (e.g. 0 = CPU launch cursor, 1 = GPU stream).
#[derive(Debug)]
pub struct SimTraceBuilder {
    pid: u32,
    events: Vec<Event>,
}

impl SimTraceBuilder {
    /// A builder whose events land on process lane `pid` (use ≥ 1; lane 0
    /// is the real process).
    pub fn new(pid: u32) -> Self {
        SimTraceBuilder {
            pid: pid.max(1),
            events: Vec::new(),
        }
    }

    /// Adds a complete span at simulated seconds `[start_s, start_s + dur_s]`.
    pub fn span_s(
        &mut self,
        tid: u32,
        name: impl Into<Cow<'static, str>>,
        start_s: f64,
        dur_s: f64,
    ) -> &mut Self {
        self.events.push(Event {
            name: name.into(),
            cat: Cow::Borrowed("sim"),
            kind: EventKind::Complete {
                dur_us: (dur_s.max(0.0) * 1e6) as u64,
            },
            ts_us: (start_s.max(0.0) * 1e6) as u64,
            pid: self.pid,
            tid,
            args: Vec::new(),
        });
        self
    }

    /// Adds a counter sample at simulated second `at_s`.
    pub fn counter_s(&mut self, tid: u32, name: impl Into<Cow<'static, str>>, at_s: f64, value: f64) -> &mut Self {
        self.events.push(Event {
            name: name.into(),
            cat: Cow::Borrowed("counter"),
            kind: EventKind::Counter { value },
            ts_us: (at_s.max(0.0) * 1e6) as u64,
            pid: self.pid,
            tid,
            args: Vec::new(),
        });
        self
    }

    /// Finishes into a [`Trace`] (events sorted by timestamp).
    pub fn finish(mut self) -> Trace {
        self.events.sort_by_key(|e| e.ts_us);
        Trace {
            events: self.events,
            dropped: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; serialize tests that toggle it.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = test_lock();
        disable();
        reset();
        {
            let _s = span("forward", "f");
            instant("step", "marker");
            counter("q", 1.0);
        }
        assert!(take().events.is_empty());
    }

    #[test]
    fn span_records_duration_and_args() {
        let _g = test_lock();
        reset();
        enable();
        {
            let _s = span("forward", "f").arg("step", 3.0);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        disable();
        let t = take();
        let ev = t.spans("forward").next().expect("span recorded");
        assert_eq!(ev.name, "f");
        assert_eq!(ev.arg("step"), Some(3.0));
        match ev.kind {
            EventKind::Complete { dur_us } => assert!(dur_us >= 1_000, "dur {dur_us}"),
            _ => panic!("not a complete event"),
        }
    }

    #[test]
    fn cancel_discards_span() {
        let _g = test_lock();
        reset();
        enable();
        span("forward", "f").cancel();
        disable();
        assert_eq!(take().spans("forward").count(), 0);
    }

    #[test]
    fn events_from_multiple_threads_collect_with_distinct_tids() {
        let _g = test_lock();
        reset();
        enable();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span("pool", "task");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        {
            let _s = span("pool", "task");
        }
        disable();
        let t = take();
        let tids: std::collections::BTreeSet<u32> = t.spans("pool").map(|e| e.tid).collect();
        assert_eq!(t.spans("pool").count(), 4);
        assert!(tids.len() >= 2, "expected distinct thread lanes: {tids:?}");
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let _g = test_lock();
        reset();
        enable();
        for _ in 0..RING_CAPACITY + 10 {
            instant("step", "tick");
        }
        disable();
        let t = take();
        // Other tests' threads may contribute events; this thread's ring is
        // exactly full and the overflow is counted.
        assert!(t.events.len() >= RING_CAPACITY);
        assert!(t.dropped >= 10);
    }

    #[test]
    fn take_drains() {
        let _g = test_lock();
        reset();
        enable();
        instant("step", "once");
        disable();
        assert!(!take().events.is_empty());
        assert!(take().events.is_empty());
    }

    #[test]
    fn sim_builder_scales_seconds_to_micros() {
        let mut b = SimTraceBuilder::new(1);
        b.span_s(0, "kernel", 0.5, 0.25);
        let t = b.finish();
        assert_eq!(t.events[0].ts_us, 500_000);
        assert_eq!(t.events[0].end_us(), 750_000);
        assert_eq!(t.events[0].pid, 1);
    }
}
