//! Softmax over the last axis: the standard three-pass kernel and the
//! *online* (streaming) single-pass variant used inside the fused
//! FlashAttention-style kernel.
//!
//! The row loop runs on the parallel CPU backend ([`crate::pool`]); rows
//! are independent, so output is bit-identical for every thread count.

use crate::ops::vexp::{striped_max, vexp, vexp_shift_sum};
use crate::pool::{parallel_for, SendPtr};
use crate::{Result, Tensor, TensorError};

/// Numerically-stable softmax over the last axis.
///
/// # Errors
///
/// Returns an error for rank-0 tensors or a zero-size last axis.
pub fn softmax(x: &Tensor) -> Result<Tensor> {
    let mut out = x.clone();
    softmax_inplace(&mut out)?;
    Ok(out)
}

/// In-place variant of [`softmax`], for callers that already own a logits
/// buffer they no longer need (e.g. the attention backward pass, which
/// turns logits into probabilities without a second allocation).
///
/// # Errors
///
/// Returns an error for rank-0 tensors or a zero-size last axis.
pub fn softmax_inplace(x: &mut Tensor) -> Result<()> {
    let rank = x.rank();
    if rank == 0 {
        return Err(TensorError::AxisOutOfRange { axis: 0, rank: 0 });
    }
    let inner = *x.dims().last().expect("rank >= 1");
    if inner == 0 {
        return Err(TensorError::EmptyInput("softmax"));
    }
    let rows = x.len() / inner;
    let ptr = SendPtr::new(x.data_mut());
    // ~6 scalar ops per element: max scan, exp+sum, scale.
    parallel_for(rows, inner * 6, |range| {
        for r in range {
            // SAFETY: row ranges from parallel_for are disjoint.
            let row = unsafe { ptr.slice_mut(r * inner, inner) };
            softmax_row(row);
        }
    });
    Ok(())
}

/// Softmax with an additive mask: entries where `mask == 0` receive a large
/// negative bias before the softmax (AlphaFold masks padded MSA rows and
/// residues this way). `mask` must broadcast to `x`'s shape.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn masked_softmax(x: &Tensor, mask: &Tensor) -> Result<Tensor> {
    // -3e4 rather than -inf: matches bf16-safe masking in real pipelines and
    // avoids NaN rows when an entire row is masked.
    let neg = mask.map(|m| if m == 0.0 { -3.0e4 } else { 0.0 });
    softmax(&x.add(&neg)?)
}

/// In-place three-pass softmax on a single row. All three passes run
/// 8 lanes wide: striped max scan, [`vexp_shift_sum`] (vectorized exp with
/// a fixed-order striped sum), then the scale pass.
pub fn softmax_row(row: &mut [f32]) {
    let max = striped_max(row);
    let sum = vexp_shift_sum(row, max);
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Running state of the *online softmax* recurrence
/// (Milakov & Gimelshein 2018), the core trick of FlashAttention: a row's
/// softmax-weighted sum of values can be accumulated tile-by-tile while
/// tracking only `(max, normalizer)`.
#[derive(Debug, Clone)]
pub struct OnlineSoftmax {
    /// Running row maximum.
    pub max: f32,
    /// Running normalizer `sum(exp(x_i - max))`.
    pub denom: f32,
}

impl Default for OnlineSoftmax {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineSoftmax {
    /// Fresh state (empty prefix).
    pub fn new() -> Self {
        OnlineSoftmax {
            max: f32::NEG_INFINITY,
            denom: 0.0,
        }
    }

    /// Folds one tile of logits into the running state, rescaling the
    /// partially-accumulated output vector `acc` (length `d`) and adding the
    /// tile's contribution `sum_j exp(logit_j - new_max) * values[j]`.
    ///
    /// `values` is a row-major `[tile, d]` slab.
    pub fn fold_tile(&mut self, logits: &[f32], values: &[f32], acc: &mut [f32]) {
        let d = acc.len();
        debug_assert_eq!(values.len(), logits.len() * d);
        let tile_max = striped_max(logits);
        let new_max = self.max.max(tile_max);
        if new_max == f32::NEG_INFINITY {
            return;
        }
        // Rescale only when the running max actually moved: when it is
        // unchanged the scale is exp(0) = 1.0 and multiplying by it is an
        // exact bitwise no-op, so skipping it preserves bit-identity while
        // saving an exp and a pass over `acc` on most tiles.
        if self.max != new_max {
            let scale = if self.max == f32::NEG_INFINITY {
                0.0
            } else {
                vexp(self.max - new_max)
            };
            for a in acc.iter_mut() {
                *a *= scale;
            }
            self.denom *= scale;
        }
        // Weights for the whole tile via the 8-lane vexp; denom and `acc`
        // then accumulate in the same fixed ascending-j order as before,
        // keeping the fold bit-identical at any thread count.
        let mut weights = [0.0f32; crate::ops::vexp::LANES];
        let mut j0 = 0usize;
        while j0 < logits.len() {
            let j1 = (j0 + weights.len()).min(logits.len());
            for (w, &l) in weights.iter_mut().zip(logits[j0..j1].iter()) {
                *w = vexp(l - new_max);
            }
            for (j, &w) in (j0..j1).zip(weights.iter()) {
                self.denom += w;
                let vrow = &values[j * d..(j + 1) * d];
                for (a, &v) in acc.iter_mut().zip(vrow.iter()) {
                    *a += w * v;
                }
            }
            j0 = j1;
        }
        self.max = new_max;
    }

    /// Finalizes `acc` into the exact softmax-weighted average.
    pub fn finish(&self, acc: &mut [f32]) {
        if self.denom > 0.0 {
            let inv = 1.0 / self.denom;
            for a in acc.iter_mut() {
                *a *= inv;
            }
        }
    }

    /// Log-sum-exp of everything folded so far (used to save softmax
    /// statistics for the backward pass).
    pub fn logsumexp(&self) -> f32 {
        if self.denom == 0.0 {
            f32::NEG_INFINITY
        } else {
            self.max + self.denom.ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::randn(&[4, 7], 1);
        let s = softmax(&x).unwrap();
        for row in s.data().chunks(7) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_shift_invariance() {
        let x = Tensor::randn(&[3, 5], 2);
        let shifted = x.add_scalar(100.0);
        assert!(softmax(&x).unwrap().allclose(&softmax(&shifted).unwrap(), 1e-5));
    }

    #[test]
    fn softmax_handles_large_magnitudes() {
        let x = Tensor::from_vec(vec![1.0e4, 1.0e4 + 1.0], &[1, 2]).unwrap();
        let s = softmax(&x).unwrap();
        assert!(!s.has_non_finite());
        assert!(s.data()[1] > s.data()[0]);
    }

    #[test]
    fn masked_softmax_zeroes_masked() {
        let x = Tensor::zeros(&[1, 4]);
        let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[1, 4]).unwrap();
        let s = masked_softmax(&x, &mask).unwrap();
        assert!((s.data()[0] - 0.5).abs() < 1e-4);
        assert!(s.data()[1] < 1e-6);
        assert!((s.data()[2] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn masked_softmax_fully_masked_row_is_finite() {
        let x = Tensor::zeros(&[1, 3]);
        let mask = Tensor::zeros(&[1, 3]);
        let s = masked_softmax(&x, &mask).unwrap();
        assert!(!s.has_non_finite());
    }

    #[test]
    fn online_softmax_matches_three_pass() {
        // Fold the same row in two arbitrary tiles and compare with the
        // monolithic kernel applied to a weighted average.
        let logits = [0.3f32, -1.2, 2.5, 0.0, 1.1, -0.4, 0.9];
        let d = 3;
        let values: Vec<f32> = (0..logits.len() * d).map(|i| (i as f32).sin()).collect();

        let mut state = OnlineSoftmax::new();
        let mut acc = vec![0.0f32; d];
        state.fold_tile(&logits[..4], &values[..4 * d], &mut acc);
        state.fold_tile(&logits[4..], &values[4 * d..], &mut acc);
        state.finish(&mut acc);

        let mut probs = logits.to_vec();
        softmax_row(&mut probs);
        let mut expect = vec![0.0f32; d];
        for (j, &p) in probs.iter().enumerate() {
            for k in 0..d {
                expect[k] += p * values[j * d + k];
            }
        }
        for (a, e) in acc.iter().zip(expect.iter()) {
            assert!((a - e).abs() < 1e-5, "{a} vs {e}");
        }
    }

    #[test]
    fn online_softmax_logsumexp() {
        let logits = [1.0f32, 2.0, 3.0];
        let mut state = OnlineSoftmax::new();
        let values = vec![0.0f32; 3];
        let mut acc = vec![0.0f32; 1];
        state.fold_tile(&logits, &values, &mut acc);
        let expect = (1f32.exp() + 2f32.exp() + 3f32.exp()).ln();
        assert!((state.logsumexp() - expect).abs() < 1e-5);
    }

    #[test]
    fn softmax_rejects_scalar() {
        assert!(softmax(&Tensor::scalar(1.0)).is_err());
    }
}
