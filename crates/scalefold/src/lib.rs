//! **ScaleFold-rs** — a from-scratch Rust reproduction of
//! *"ScaleFold: Reducing AlphaFold Initial Training Time to 10 Hours"*
//! (Zhu, Nowaczynski, et al., DAC 2024).
//!
//! The crate ties together two stacks built in this workspace:
//!
//! 1. **A real AlphaFold training stack** (CPU scale): tensor math
//!    ([`sf_tensor`]), reverse-mode autodiff with gradient checkpointing
//!    ([`sf_autograd`]), the full AlphaFold topology ([`sf_model`]), a
//!    synthetic protein data pipeline with the paper's non-blocking loader
//!    ([`sf_data`]), and fused optimizers ([`sf_optim`]). The [`trainer`]
//!    module runs actual gradient descent and measures real lDDT-Cα.
//!
//! 2. **A calibrated performance model** of the paper's GPU clusters:
//!    roofline kernels, CUDA streams/graphs, Triton-style autotuning
//!    ([`sf_gpusim`]), the AlphaFold step operator graph with ScaleFold's
//!    fusion passes ([`sf_opgraph`]), and the DP×DAP cluster simulator with
//!    stragglers and async evaluation ([`sf_cluster`]).
//!
//! On top, this crate provides:
//!
//! - [`OptimizationSet`]: the named optimization flags of the paper, with
//!   [`build_graph`] applying the corresponding fusion passes.
//! - [`ladder`]: the step-by-step optimization ladder of Figure 8.
//! - [`convergence`]: the training-dynamics model calibrated to the paper's
//!   milestones (lDDT 0.8 @ 5k steps bs128; 0.9 @ 50–60k steps bs256),
//!   driving the Figure 10/11 time-to-train results.
//! - [`experiments`]: one runner per paper table/figure.
//! - [`trainer`]: the real (tiny-scale) training loop.
//!
//! # Quickstart
//!
//! ```
//! use scalefold::{build_graph, OptimizationSet};
//! use sf_gpusim::{CpuModel, DeviceSpec};
//! use sf_model::ModelConfig;
//! use sf_opgraph::profile::step_time;
//!
//! let cfg = ModelConfig::paper();
//! let reference = build_graph(&cfg, &OptimizationSet::none());
//! let optimized = build_graph(&cfg, &OptimizationSet::scalefold());
//! let dev = DeviceSpec::h100();
//! let t_ref = step_time(&reference, &dev, CpuModel::healthy(), false).total_s;
//! let t_opt = step_time(&optimized, &dev, CpuModel::healthy(), true).total_s;
//! assert!(t_opt < t_ref);
//! ```

pub mod baselines;
pub mod convergence;
pub mod dap;
pub mod distributed;
pub mod experiments;
pub mod kernel_bench;
pub mod ladder;
pub mod optimizations;
pub mod trainer;

pub use convergence::{ConvergenceModel, FinetuneExtension, PretrainSchedule};
pub use dap::{analytic_comm_volume, DapGroup, DapStats};
pub use ladder::{ladder_stages, LadderEntry};
pub use optimizations::{build_graph, OptimizationSet};
pub use distributed::DataParallelTrainer;
pub use trainer::{LoaderKind, RecoveryEvent, ResumeSummary, StepReport, Trainer, TrainerConfig};
