//! The dense row-major `f32` tensor type and its core operations.

use crate::shape::{for_each_index, Shape};
use crate::{Result, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A dense, row-major, `f32` tensor.
///
/// All AlphaFold-side math in this reproduction runs through this type.
/// Storage is always contiguous; views are materialized (the tensors in the
/// CPU-scale training path are small by construction, so copy cost is not a
/// concern — the *simulated* GPU path in `sf-gpusim` is where performance is
/// modelled).
///
/// # Example
///
/// ```
/// use sf_tensor::Tensor;
///
/// # fn main() -> Result<(), sf_tensor::TensorError> {
/// let x = Tensor::zeros(&[2, 3]);
/// let y = x.add_scalar(1.0);
/// assert_eq!(y.sum_all(), 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// All-zeros tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![0.0; dims.iter().product()],
        }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![value; dims.iter().product()],
        }
    }

    /// Rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// `[0, 1, ..., n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        Tensor {
            shape: Shape::new(&[n]),
            data: (0..n).map(|i| i as f32).collect(),
        }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let expected: usize = dims.iter().product();
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape: Shape::new(dims),
            data,
        })
    }

    /// Standard-normal random tensor (Box–Muller), deterministic in `seed`.
    pub fn randn(dims: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Tensor {
            shape: Shape::new(dims),
            data,
        }
    }

    /// Uniform random tensor on `[lo, hi)`, deterministic in `seed`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        Tensor {
            shape: Shape::new(dims),
            data: (0..n).map(|_| rng.gen_range(lo..hi)).collect(),
        }
    }

    /// LeCun-normal initialization (`std = 1/sqrt(fan_in)`), the AlphaFold
    /// default for linear layers.
    pub fn lecun_normal(dims: &[usize], fan_in: usize, seed: u64) -> Self {
        let std = 1.0 / (fan_in.max(1) as f32).sqrt();
        Self::randn(dims, seed).mul_scalar(std)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or bounds are invalid.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flat_index(index)?])
    }

    /// Sets the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank or bounds are invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flat_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on tensor with {} elements", self.len());
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Elementwise maps
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Self {
        self.map(|x| -x)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Elementwise exponential (vectorized polynomial kernel,
    /// [`crate::ops::vexp`]).
    pub fn exp(&self) -> Self {
        self.map(crate::ops::vexp::vexp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Self {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Self {
        self.map(f32::sqrt)
    }

    /// Elementwise square.
    pub fn square(&self) -> Self {
        self.map(|x| x * x)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Self {
        self.map(f32::abs)
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Self {
        self.map(|x| x.max(0.0))
    }

    /// Logistic sigmoid (vectorized exp; same formula as the fused
    /// attention gate epilogue, so composed and fused paths agree).
    pub fn sigmoid(&self) -> Self {
        self.map(|x| 1.0 / (1.0 + crate::ops::vexp::vexp(-x)))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Self {
        self.map(f32::tanh)
    }

    /// Exact Gaussian error linear unit (as used by AlphaFold transitions).
    pub fn gelu(&self) -> Self {
        self.map(gelu_scalar)
    }

    /// Derivative of [`Tensor::gelu`] with respect to its input:
    /// `Φ(x) + x·φ(x)` where `Φ`/`φ` are the standard normal CDF/PDF.
    pub fn gelu_derivative(&self) -> Self {
        self.map(|x| {
            let cdf = 0.5 * (1.0 + erf(x as f64 / std::f64::consts::SQRT_2) as f32);
            let pdf =
                crate::ops::vexp::vexp(-0.5 * x * x) / (2.0 * std::f32::consts::PI).sqrt();
            cdf + x * pdf
        })
    }

    // ------------------------------------------------------------------
    // Broadcasting binary ops
    // ------------------------------------------------------------------

    /// Elementwise addition with numpy-style broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes do not broadcast.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.binary(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes do not broadcast.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.binary(other, "sub", |a, b| a - b)
    }

    /// Elementwise multiplication with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes do not broadcast.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.binary(other, "mul", |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes do not broadcast.
    pub fn div(&self, other: &Tensor) -> Result<Self> {
        self.binary(other, "div", |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes do not broadcast.
    pub fn maximum(&self, other: &Tensor) -> Result<Self> {
        self.binary(other, "maximum", f32::max)
    }

    /// Elementwise minimum with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes do not broadcast.
    pub fn minimum(&self, other: &Tensor) -> Result<Self> {
        self.binary(other, "minimum", f32::min)
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        self.map(|x| x.clamp(lo, hi))
    }

    /// General broadcasting binary elementwise op.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes do not broadcast.
    pub fn binary(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self> {
        if self.shape == other.shape {
            // Fast path: identical shapes.
            let data = self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect();
            return Ok(Tensor {
                shape: self.shape.clone(),
                data,
            });
        }
        let out_shape = self.shape.broadcast(&other.shape).map_err(|_| {
            TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            }
        })?;
        let mut out = Tensor::zeros(out_shape.dims());
        let a_str = broadcast_strides(&self.shape, &out_shape);
        let b_str = broadcast_strides(&other.shape, &out_shape);
        let mut flat = 0usize;
        for_each_index(out_shape.dims(), |idx| {
            let a_off: usize = idx.iter().zip(a_str.iter()).map(|(&i, &s)| i * s).sum();
            let b_off: usize = idx.iter().zip(b_str.iter()).map(|(&i, &s)| i * s).sum();
            out.data[flat] = f(self.data[a_off], other.data[b_off]);
            flat += 1;
        });
        Ok(out)
    }

    /// Materializes this tensor broadcast to `dims`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if not broadcastable.
    pub fn broadcast_to(&self, dims: &[usize]) -> Result<Self> {
        let target = Shape::new(dims);
        if !self.shape.broadcastable_to(&target) {
            return Err(TensorError::ShapeMismatch {
                op: "broadcast_to",
                lhs: self.dims().to_vec(),
                rhs: dims.to_vec(),
            });
        }
        let strides = broadcast_strides(&self.shape, &target);
        let mut out = Tensor::zeros(dims);
        let mut flat = 0usize;
        for_each_index(dims, |idx| {
            let off: usize = idx.iter().zip(strides.iter()).map(|(&i, &s)| i * s).sum();
            out.data[flat] = self.data[off];
            flat += 1;
        });
        Ok(out)
    }

    /// Reduces (sums) this tensor down to `dims`, the adjoint of
    /// [`Tensor::broadcast_to`]. Used by autograd to accumulate gradients of
    /// broadcast operands.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `dims` is not broadcastable
    /// to this tensor's shape.
    pub fn reduce_to(&self, dims: &[usize]) -> Result<Self> {
        let target = Shape::new(dims);
        if !target.broadcastable_to(&self.shape) {
            return Err(TensorError::ShapeMismatch {
                op: "reduce_to",
                lhs: self.dims().to_vec(),
                rhs: dims.to_vec(),
            });
        }
        let strides = broadcast_strides(&target, &self.shape);
        let mut out = Tensor::zeros(dims);
        let mut flat = 0usize;
        for_each_index(self.dims(), |idx| {
            let off: usize = idx.iter().zip(strides.iter()).map(|(&i, &s)| i * s).sum();
            out.data[off] += self.data[flat];
            flat += 1;
        });
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let expected: usize = dims.iter().product();
        if expected != self.len() {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: self.len(),
            });
        }
        Ok(Tensor {
            shape: Shape::new(dims),
            data: self.data.clone(),
        })
    }

    /// Permutes axes; `perm` must be a permutation of `0..rank`.
    ///
    /// # Errors
    ///
    /// Returns an error if `perm` is not a valid permutation.
    pub fn permute(&self, perm: &[usize]) -> Result<Self> {
        let rank = self.rank();
        if perm.len() != rank {
            return Err(TensorError::ShapeMismatch {
                op: "permute",
                lhs: self.dims().to_vec(),
                rhs: perm.to_vec(),
            });
        }
        let mut seen = vec![false; rank];
        for &p in perm {
            if p >= rank || seen[p] {
                return Err(TensorError::AxisOutOfRange { axis: p, rank });
            }
            seen[p] = true;
        }
        let out_dims: Vec<usize> = perm.iter().map(|&p| self.dims()[p]).collect();
        let in_strides = self.shape.strides();
        let mut out = Tensor::zeros(&out_dims);
        let mut flat = 0usize;
        for_each_index(&out_dims, |idx| {
            let mut off = 0usize;
            for (o, &p) in perm.iter().enumerate() {
                off += idx[o] * in_strides[p];
            }
            out.data[flat] = self.data[off];
            flat += 1;
        });
        Ok(out)
    }

    /// Swaps the last two axes (matrix transpose over batched matrices).
    ///
    /// # Errors
    ///
    /// Returns an error for tensors of rank < 2.
    pub fn transpose(&self) -> Result<Self> {
        let rank = self.rank();
        if rank < 2 {
            return Err(TensorError::AxisOutOfRange { axis: 1, rank });
        }
        let mut perm: Vec<usize> = (0..rank).collect();
        perm.swap(rank - 1, rank - 2);
        self.permute(&perm)
    }

    /// Extracts `[start, end)` along `axis`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid axis or range.
    pub fn slice_axis(&self, axis: usize, start: usize, end: usize) -> Result<Self> {
        let dim = self.shape.dim(axis)?;
        if start > end || end > dim {
            return Err(TensorError::IndexOutOfBounds { index: end, bound: dim });
        }
        let mut out_dims = self.dims().to_vec();
        out_dims[axis] = end - start;
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(out_dims.iter().product());
        for o in 0..outer {
            let base = o * dim * inner;
            data.extend_from_slice(&self.data[base + start * inner..base + end * inner]);
        }
        Tensor::from_vec(data, &out_dims)
    }

    /// Concatenates tensors along `axis`. All other dimensions must match.
    ///
    /// # Errors
    ///
    /// Returns an error if the input list is empty or shapes disagree.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Result<Self> {
        let first = tensors.first().ok_or(TensorError::EmptyInput("concat"))?;
        let rank = first.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mut axis_total = 0usize;
        for t in tensors {
            if t.rank() != rank {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.dims().to_vec(),
                    rhs: t.dims().to_vec(),
                });
            }
            for d in 0..rank {
                if d != axis && t.dims()[d] != first.dims()[d] {
                    return Err(TensorError::ShapeMismatch {
                        op: "concat",
                        lhs: first.dims().to_vec(),
                        rhs: t.dims().to_vec(),
                    });
                }
            }
            axis_total += t.dims()[axis];
        }
        let mut out_dims = first.dims().to_vec();
        out_dims[axis] = axis_total;
        let outer: usize = first.dims()[..axis].iter().product();
        let inner: usize = first.dims()[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(out_dims.iter().product());
        for o in 0..outer {
            for t in tensors {
                let ax = t.dims()[axis];
                let base = o * ax * inner;
                data.extend_from_slice(&t.data[base..base + ax * inner]);
            }
        }
        Tensor::from_vec(data, &out_dims)
    }

    /// Stacks tensors of identical shape along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or shapes disagree.
    pub fn stack(tensors: &[&Tensor]) -> Result<Self> {
        let first = tensors.first().ok_or(TensorError::EmptyInput("stack"))?;
        let mut data = Vec::with_capacity(first.len() * tensors.len());
        for t in tensors {
            if t.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    op: "stack",
                    lhs: first.dims().to_vec(),
                    rhs: t.dims().to_vec(),
                });
            }
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![tensors.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Inserts a size-1 axis at `axis`.
    ///
    /// # Errors
    ///
    /// Returns an error if `axis > rank`.
    pub fn unsqueeze(&self, axis: usize) -> Result<Self> {
        if axis > self.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            });
        }
        let mut dims = self.dims().to_vec();
        dims.insert(axis, 1);
        self.reshape(&dims)
    }

    /// Removes a size-1 axis at `axis`.
    ///
    /// # Errors
    ///
    /// Returns an error if `axis` is out of range or not of size 1.
    pub fn squeeze(&self, axis: usize) -> Result<Self> {
        if self.shape.dim(axis)? != 1 {
            return Err(TensorError::ShapeMismatch {
                op: "squeeze",
                lhs: self.dims().to_vec(),
                rhs: vec![axis],
            });
        }
        let mut dims = self.dims().to_vec();
        dims.remove(axis);
        self.reshape(&dims)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        // Kahan summation keeps long reductions stable in f32.
        let mut sum = 0.0f32;
        let mut c = 0.0f32;
        for &x in &self.data {
            let y = x - c;
            let t = sum + y;
            c = (t - sum) - y;
            sum = t;
        }
        sum
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean_all(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum_all() / self.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] on an empty tensor.
    pub fn max_all(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, x| Some(m.map_or(x, |m| m.max(x))))
            .ok_or(TensorError::EmptyInput("max_all"))
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyInput`] on an empty tensor.
    pub fn min_all(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |m: Option<f32>, x| Some(m.map_or(x, |m| m.min(x))))
            .ok_or(TensorError::EmptyInput("min_all"))
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt() as f32
    }

    /// Sums along `axis`, dropping that axis.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid axis.
    pub fn sum_axis(&self, axis: usize) -> Result<Self> {
        let dim = self.shape.dim(axis)?;
        let mut out_dims = self.dims().to_vec();
        out_dims.remove(axis);
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let mut out = Tensor::zeros(&out_dims);
        for o in 0..outer {
            for a in 0..dim {
                let base = (o * dim + a) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out.data[obase + i] += self.data[base + i];
                }
            }
        }
        Ok(out)
    }

    /// Means along `axis`, dropping that axis.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid axis.
    pub fn mean_axis(&self, axis: usize) -> Result<Self> {
        let dim = self.shape.dim(axis)?.max(1);
        Ok(self.sum_axis(axis)?.mul_scalar(1.0 / dim as f32))
    }

    /// Maximum along `axis`, dropping that axis.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid axis or zero-size axis.
    pub fn max_axis(&self, axis: usize) -> Result<Self> {
        let dim = self.shape.dim(axis)?;
        if dim == 0 {
            return Err(TensorError::EmptyInput("max_axis"));
        }
        let mut out_dims = self.dims().to_vec();
        out_dims.remove(axis);
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let mut out = Tensor::full(&out_dims, f32::NEG_INFINITY);
        for o in 0..outer {
            for a in 0..dim {
                let base = (o * dim + a) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    let v = self.data[base + i];
                    if v > out.data[obase + i] {
                        out.data[obase + i] = v;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Index of the maximum along the **last** axis, dropping that axis.
    /// Ties resolve to the first maximum.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 tensors or a zero-size last axis.
    pub fn argmax_last_axis(&self) -> Result<Vec<usize>> {
        let rank = self.rank();
        if rank == 0 {
            return Err(TensorError::AxisOutOfRange { axis: 0, rank: 0 });
        }
        let inner = *self.dims().last().expect("rank >= 1");
        if inner == 0 {
            return Err(TensorError::EmptyInput("argmax_last_axis"));
        }
        Ok(self
            .data
            .chunks(inner)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv { (i, v) } else { (bi, bv) }
                    })
                    .0
            })
            .collect())
    }

    // ------------------------------------------------------------------
    // Linear algebra (delegates to ops::matmul)
    // ------------------------------------------------------------------

    /// Batched matrix multiplication with leading-dimension broadcasting.
    ///
    /// See [`crate::ops::matmul::matmul`] for the exact semantics.
    ///
    /// # Errors
    ///
    /// Returns an error on contraction-dimension or batch mismatch.
    pub fn matmul(&self, other: &Tensor) -> Result<Self> {
        crate::ops::matmul::matmul(self, other)
    }

    /// `self @ other^T` without materializing the transpose.
    ///
    /// See [`crate::ops::matmul::matmul_bt`].
    ///
    /// # Errors
    ///
    /// Returns an error on contraction-dimension or batch mismatch.
    pub fn matmul_bt(&self, other: &Tensor) -> Result<Self> {
        crate::ops::matmul::matmul_bt(self, other)
    }

    /// `self^T @ other` without materializing the transpose.
    ///
    /// See [`crate::ops::matmul::matmul_at`].
    ///
    /// # Errors
    ///
    /// Returns an error on contraction-dimension or batch mismatch.
    pub fn matmul_at(&self, other: &Tensor) -> Result<Self> {
        crate::ops::matmul::matmul_at(self, other)
    }

    // ------------------------------------------------------------------
    // Comparison helpers
    // ------------------------------------------------------------------

    /// True if shapes match and every element pair differs by at most `tol`
    /// absolutely or `tol` relatively.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self.data.iter().zip(other.data.iter()).all(|(&a, &b)| {
                let diff = (a - b).abs();
                diff <= tol || diff <= tol * a.abs().max(b.abs())
            })
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

/// Exact GELU using the error function via `tanh`-free formulation.
///
/// `erf` is not in `std`, so we use the Abramowitz–Stegun rational
/// approximation (max abs error ~1.5e-7, well below f32 resolution needs).
fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + erf(x as f64 / std::f64::consts::SQRT_2) as f32)
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Strides for reading a tensor of shape `src` as if broadcast to `dst`
/// (stride 0 on broadcast axes), aligned to `dst`'s rank.
pub(crate) fn broadcast_strides(src: &Shape, dst: &Shape) -> Vec<usize> {
    let src_strides = src.strides();
    let offset = dst.rank() - src.rank();
    let mut out = vec![0usize; dst.rank()];
    for i in 0..src.rank() {
        let d = src.dims()[i];
        out[offset + i] = if d == 1 { 0 } else { src_strides[i] };
    }
    out
}

impl std::fmt::Display for Tensor {
    /// Compact display: shape plus the first few elements.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{}[", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.len() > PREVIEW {
            write!(f, ", … ({} total)", self.len())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 3]).len(), 6);
        assert_eq!(Tensor::ones(&[4]).sum_all(), 4.0);
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[1, 1]).unwrap(), 1.0);
        assert_eq!(i.at(&[1, 2]).unwrap(), 0.0);
    }

    #[test]
    fn from_vec_length_check() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn randn_statistics() {
        let t = Tensor::randn(&[10_000], 42);
        assert!(t.mean_all().abs() < 0.05, "mean {}", t.mean_all());
        let var = t.square().mean_all();
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn randn_deterministic() {
        assert_eq!(Tensor::randn(&[16], 7), Tensor::randn(&[16], 7));
        assert_ne!(Tensor::randn(&[16], 7), Tensor::randn(&[16], 8));
    }

    #[test]
    fn broadcasting_add() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let c = a.add(&b).unwrap();
        assert_eq!(c.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcasting_column() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let col = Tensor::from_vec(vec![10.0, 100.0], &[2, 1]).unwrap();
        let c = a.mul(&col).unwrap();
        assert_eq!(c.data(), &[10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn reduce_to_is_adjoint_of_broadcast() {
        let g = Tensor::ones(&[2, 3]);
        let r = g.reduce_to(&[3]).unwrap();
        assert_eq!(r.data(), &[2.0, 2.0, 2.0]);
        let r2 = g.reduce_to(&[2, 1]).unwrap();
        assert_eq!(r2.data(), &[3.0, 3.0]);
        let r3 = g.reduce_to(&[]).unwrap();
        assert_eq!(r3.item(), 6.0);
    }

    #[test]
    fn permute_and_transpose() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        let p = t.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.at(&[3, 1, 2]).unwrap(), t.at(&[1, 2, 3]).unwrap());
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[2, 4, 3]);
        assert_eq!(tt.at(&[1, 3, 2]).unwrap(), t.at(&[1, 2, 3]).unwrap());
    }

    #[test]
    fn permute_rejects_bad_perm() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
        assert!(t.permute(&[0, 2]).is_err());
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let a = t.slice_axis(0, 0, 1).unwrap();
        let b = t.slice_axis(0, 1, 3).unwrap();
        let back = Tensor::concat(&[&a, &b], 0).unwrap();
        assert_eq!(back, t);

        let c = t.slice_axis(1, 1, 3).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn stack_tensors() {
        let a = Tensor::ones(&[2]);
        let b = Tensor::zeros(&[2]);
        let s = Tensor::stack(&[&a, &b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 1.0, 0.0, 0.0]);
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn axis_reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_axis(0).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis(1).unwrap().data(), &[6.0, 15.0]);
        assert_eq!(t.mean_axis(1).unwrap().data(), &[2.0, 5.0]);
        assert_eq!(t.max_axis(0).unwrap().data(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn squeeze_unsqueeze() {
        let t = Tensor::zeros(&[2, 3]);
        let u = t.unsqueeze(1).unwrap();
        assert_eq!(u.dims(), &[2, 1, 3]);
        assert_eq!(u.squeeze(1).unwrap().dims(), &[2, 3]);
        assert!(u.squeeze(0).is_err());
    }

    #[test]
    fn argmax_last_axis_picks_maxima() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 2.0, 7.0, 0.0, -1.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_last_axis().unwrap(), vec![1, 0]);
        // Ties resolve to the first index.
        let tie = Tensor::from_vec(vec![3.0, 3.0], &[1, 2]).unwrap();
        assert_eq!(tie.argmax_last_axis().unwrap(), vec![0]);
        assert!(Tensor::scalar(1.0).argmax_last_axis().is_err());
    }

    #[test]
    fn norm_matches_manual() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn gelu_reference_points() {
        let t = Tensor::from_vec(vec![0.0, 1.0, -1.0, 3.0], &[4]).unwrap();
        let g = t.gelu();
        assert!((g.data()[0]).abs() < 1e-6);
        assert!((g.data()[1] - 0.841345).abs() < 1e-3);
        assert!((g.data()[2] + 0.158655).abs() < 1e-3);
        assert!((g.data()[3] - 2.99595).abs() < 1e-3);
    }

    #[test]
    fn kahan_sum_is_stable() {
        let mut data = vec![1.0e8f32];
        data.extend(std::iter::repeat_n(1.0f32, 1000));
        let t = Tensor::from_vec(data, &[1001]).unwrap();
        // Naive f32 summation would lose all the 1.0s.
        assert_eq!(t.sum_all(), 1.0e8 + 1000.0);
    }

    #[test]
    fn minimum_and_clamp() {
        let a = Tensor::from_vec(vec![1.0, 5.0, -2.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 3.0, 0.0], &[3]).unwrap();
        assert_eq!(a.minimum(&b).unwrap().data(), &[1.0, 3.0, -2.0]);
        assert_eq!(a.clamp(0.0, 2.0).data(), &[1.0, 2.0, 0.0]);
    }

    #[test]
    fn display_is_compact_and_nonempty() {
        let t = Tensor::arange(20);
        let s = format!("{t}");
        assert!(s.contains("(20 total)"), "{s}");
        assert!(s.starts_with("Tensor[20]["));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
