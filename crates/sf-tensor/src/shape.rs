//! Shape arithmetic: dimension bookkeeping, row-major strides, and numpy-style
//! broadcasting rules.

use crate::{Result, TensorError};

/// An owned tensor shape (list of dimension sizes, outermost first).
///
/// A rank-0 shape (`&[]`) denotes a scalar with one element.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for a scalar).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0.get(axis).copied().ok_or(TensorError::AxisOutOfRange {
            axis,
            rank: self.rank(),
        })
    }

    /// Row-major (C order) strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank mismatches or any coordinate is out
    /// of bounds.
    pub fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::ShapeMismatch {
                op: "flat_index",
                lhs: self.0.clone(),
                rhs: index.to_vec(),
            });
        }
        let strides = self.strides();
        let mut flat = 0;
        for ((&i, &d), &s) in index.iter().zip(self.0.iter()).zip(strides.iter()) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: d });
            }
            flat += i * s;
        }
        Ok(flat)
    }

    /// Computes the broadcast result shape of two operand shapes under
    /// numpy-style rules (align trailing dimensions; sizes must match or one
    /// of them must be 1).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes are not
    /// broadcast-compatible.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0usize; rank];
        for i in 0..rank {
            let a = dim_from_end(&self.0, i);
            let b = dim_from_end(&other.0, i);
            dims[rank - 1 - i] = match (a, b) {
                (x, y) if x == y => x,
                (1, y) => y,
                (x, 1) => x,
                _ => {
                    return Err(TensorError::ShapeMismatch {
                        op: "broadcast",
                        lhs: self.0.clone(),
                        rhs: other.0.clone(),
                    })
                }
            };
        }
        Ok(Shape(dims))
    }

    /// Returns true if a tensor of this shape can be broadcast to `target`.
    pub fn broadcastable_to(&self, target: &Shape) -> bool {
        if self.rank() > target.rank() {
            return false;
        }
        (0..self.rank()).all(|i| {
            let a = dim_from_end(&self.0, i);
            let b = dim_from_end(&target.0, i);
            a == b || a == 1
        })
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

/// `i`-th dimension counted from the innermost end; 1 when past the rank
/// (the implicit broadcast padding).
fn dim_from_end(dims: &[usize], i: usize) -> usize {
    if i < dims.len() {
        dims[dims.len() - 1 - i]
    } else {
        1
    }
}

/// Iterates all multi-indices of `dims` in row-major order, calling `f` with
/// each index. Used by broadcasting kernels; allocation-free per step.
pub(crate) fn for_each_index(dims: &[usize], mut f: impl FnMut(&[usize])) {
    if dims.contains(&0) {
        return;
    }
    let mut idx = vec![0usize; dims.len()];
    loop {
        f(&idx);
        // Advance odometer.
        let mut axis = dims.len();
        loop {
            if axis == 0 {
                return;
            }
            axis -= 1;
            idx[axis] += 1;
            if idx[axis] < dims[axis] {
                break;
            }
            idx[axis] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.flat_index(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.flat_index(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.flat_index(&[1, 0, 2]).unwrap(), 14);
    }

    #[test]
    fn flat_index_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.flat_index(&[2, 0]).is_err());
        assert!(s.flat_index(&[0]).is_err());
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new(&[4, 1, 3]);
        let b = Shape::new(&[2, 3]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new(&[4, 2, 3]));
        let s = Shape::new(&[]);
        assert_eq!(s.broadcast(&b).unwrap(), b);
        assert!(Shape::new(&[2]).broadcast(&Shape::new(&[3])).is_err());
    }

    #[test]
    fn broadcastable_to_checks() {
        assert!(Shape::new(&[1, 3]).broadcastable_to(&Shape::new(&[5, 2, 3])));
        assert!(!Shape::new(&[2, 3]).broadcastable_to(&Shape::new(&[3])));
        assert!(Shape::new(&[]).broadcastable_to(&Shape::new(&[7])));
    }

    #[test]
    fn for_each_index_covers_all() {
        let mut seen = Vec::new();
        for_each_index(&[2, 2], |i| seen.push(i.to_vec()));
        assert_eq!(
            seen,
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]
        );
    }

    #[test]
    fn for_each_index_empty_dim() {
        let mut count = 0;
        for_each_index(&[2, 0, 3], |_| count += 1);
        assert_eq!(count, 0);
    }
}
