//! Simulates the MLPerf HPC v3.0 OpenFold submission: ScaleFold on 2080
//! H100 GPUs (2048 training + 32 async evaluation), printing the
//! time-to-train breakdown of the paper's Figures 9 and 10.
//!
//! Run with: `cargo run --release --example mlperf_run`

use scalefold::experiments;

fn main() {
    println!("simulating the MLPerf HPC v3.0 OpenFold benchmark on an Eos-like cluster...");
    println!();
    let result = experiments::fig9_fig10();
    println!("{result}");
    println!();
    let fig11 = experiments::fig11();
    println!("{fig11}");
}
