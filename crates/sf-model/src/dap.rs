//! Dynamic Axial Parallelism plumbing on the model side (ScaleFold §3.3,
//! after FastFold).
//!
//! DAP shards the Evoformer's big activations along one *axial* dimension
//! — the sequence axis `S` for MSA row attention, the residue axis `R`
//! for everything column-wise — runs attention on the shards, and switches
//! the sharded axis with an all-to-all when the next module attends the
//! other axis. The crate dependency chain forbids `sf-model` from calling
//! `sf-cluster`'s functional collectives directly (`sf-cluster` depends on
//! this crate via `sf-opgraph`), so the *executor* is injected through the
//! [`AxialCollectives`] trait: the `scalefold::dap::DapGroup`
//! implementation routes these calls to the real ring collectives and
//! records per-collective traffic stats.
//!
//! The tape stays self-consistent: collective outputs enter the graph via
//! [`Graph::concat_external`], which verifies the executor's buffer
//! bitwise against the mathematical concatenation and reuses the exact
//! concat backward (slicing). Data movement therefore differentiates
//! correctly no matter what transport produced it.

use sf_autograd::{Graph, Result, Var};
use sf_tensor::Tensor;

/// Executor for DAP's two collectives, operating on rank-local flat
/// buffers. Implementations may actually move data (the real ring
/// collectives in `scalefold::dap`) or just rearrange it locally
/// ([`LocalAxial`], the in-crate reference used by tests).
pub trait AxialCollectives {
    /// Number of DAP ranks (shards). `1` disables all communication.
    fn ranks(&self) -> usize;

    /// All-gather: returns the concatenation of all shards in rank order
    /// (every rank receives the same buffer).
    fn gather_buffers(&self, shards: &[Vec<f32>]) -> Vec<f32>;

    /// All-to-all: output `r` is the concatenation over source ranks `c`
    /// of input `c`'s chunk `r`, with chunk boundaries at `c·len/n`.
    fn exchange_buffers(&self, inputs: &[Vec<f32>]) -> Vec<Vec<f32>>;
}

/// Reference executor: performs the collectives as local copies. Semantics
/// match `sf_cluster::collective::{all_gather, all_to_all}` exactly; used
/// by sf-model's own tests, which cannot depend on `sf-cluster`.
#[derive(Debug, Clone, Copy)]
pub struct LocalAxial(pub usize);

impl AxialCollectives for LocalAxial {
    fn ranks(&self) -> usize {
        self.0
    }

    fn gather_buffers(&self, shards: &[Vec<f32>]) -> Vec<f32> {
        let mut full = Vec::with_capacity(shards.iter().map(Vec::len).sum());
        for s in shards {
            full.extend_from_slice(s);
        }
        full
    }

    fn exchange_buffers(&self, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let n = inputs.len();
        let len = inputs[0].len();
        let starts: Vec<usize> = (0..=n).map(|c| c * len / n).collect();
        (0..n)
            .map(|r| {
                inputs
                    .iter()
                    .flat_map(|input| input[starts[r]..starts[r + 1]].to_vec())
                    .collect()
            })
            .collect()
    }
}

/// Scatters `x` into `ranks` equal shards along axis 0 (tape slices; the
/// inputs are replicated on every rank, so the scatter moves no data).
///
/// # Panics
///
/// Panics if `dims[0]` is not divisible by `ranks`.
///
/// # Errors
///
/// Propagates tape errors from the slice ops.
pub fn dap_scatter(g: &mut Graph, x: Var, ranks: usize) -> Result<Vec<Var>> {
    let d0 = g.value(x).dims()[0];
    assert!(
        ranks > 0 && d0.is_multiple_of(ranks),
        "DAP shard axis ({d0}) not divisible by {ranks} ranks"
    );
    let rows = d0 / ranks;
    (0..ranks)
        .map(|r| g.slice_axis(x, 0, r * rows, (r + 1) * rows))
        .collect()
}

/// All-gathers axis-0 shards into the replicated full tensor. The gathered
/// buffer comes from the executor and is adopted into the tape via the
/// verified external concat; backward is the exact adjoint (slicing).
///
/// # Errors
///
/// Propagates tape errors; fails if the executor's buffer mismatches the
/// mathematical concatenation.
pub fn dap_all_gather(g: &mut Graph, dap: &dyn AxialCollectives, shards: &[Var]) -> Result<Var> {
    let n = dap.ranks();
    assert_eq!(shards.len(), n, "one shard per DAP rank");
    if n == 1 {
        return Ok(shards[0]);
    }
    let bufs: Vec<Vec<f32>> = shards.iter().map(|&s| g.value(s).data().to_vec()).collect();
    let full = dap.gather_buffers(&bufs);
    let mut dims = g.value(shards[0]).dims().to_vec();
    dims[0] *= n;
    let value = Tensor::from_vec(full, &dims)?;
    g.concat_external(shards, 0, value)
}

/// The DAP **axis switch**: shards `[A/k, B, ...]` (sharded along `A`)
/// become shards `[B/k, A, ...]` (sharded along `B`), i.e. the attended
/// axis moves to position 1 of each shard with the shard axis swapping to
/// the other axial dimension — one all-to-all instead of a gather plus a
/// re-scatter.
///
/// Each rank transposes its shard to `[B, A/k, ...]`, the all-to-all
/// exchanges row-blocks of `B`, and a local reshape/permute restores `A`
/// to contiguous order. With `k = 1` this degenerates to a plain
/// transpose and no executor call is made.
///
/// # Panics
///
/// Panics if `B` is not divisible by the rank count.
///
/// # Errors
///
/// Propagates tape errors; fails if the executor's buffers mismatch the
/// mathematical exchange.
pub fn dap_axis_switch(
    g: &mut Graph,
    dap: &dyn AxialCollectives,
    shards: &[Var],
) -> Result<Vec<Var>> {
    let n = dap.ranks();
    assert_eq!(shards.len(), n, "one shard per DAP rank");
    let d = g.value(shards[0]).dims().to_vec();
    assert!(d.len() >= 2, "axis switch needs at least two axes");
    let (a_k, b) = (d[0], d[1]);
    assert!(
        b % n == 0,
        "DAP switch axis ({b}) not divisible by {n} ranks"
    );
    let b_k = b / n;

    // Per-rank transpose so the flat buffer is row-major in the axis the
    // exchange splits: [A/k, B, ...] -> [B, A/k, ...].
    let mut perm: Vec<usize> = (0..d.len()).collect();
    perm.swap(0, 1);
    let pre: Vec<Var> = shards
        .iter()
        .map(|&s| g.permute(s, &perm))
        .collect::<Result<_>>()?;
    if n == 1 {
        return Ok(pre);
    }

    let bufs: Vec<Vec<f32>> = pre.iter().map(|&p| g.value(p).data().to_vec()).collect();
    let outs = dap.exchange_buffers(&bufs);

    let mut result = Vec::with_capacity(n);
    for (r, out_buf) in outs.into_iter().enumerate() {
        // Tape expression of the exchange: rank r's output is the concat
        // over sources of their r-th row-block. The even split guarantees
        // the collective's c·len/n chunk boundaries fall exactly on
        // row-block boundaries, so the external buffer matches bitwise.
        let slices: Vec<Var> = pre
            .iter()
            .map(|&p| g.slice_axis(p, 0, r * b_k, (r + 1) * b_k))
            .collect::<Result<_>>()?;
        let mut cat_dims = vec![n * b_k, a_k];
        cat_dims.extend_from_slice(&d[2..]);
        let value = Tensor::from_vec(out_buf, &cat_dims)?;
        let cat = g.concat_external(&slices, 0, value)?;
        // [n, B/k, A/k, ...] -> [B/k, n, A/k, ...] -> [B/k, A, ...]:
        // interleave the source-rank axis back into contiguous A order.
        let mut d4 = vec![n, b_k, a_k];
        d4.extend_from_slice(&d[2..]);
        let r4 = g.reshape(cat, &d4)?;
        let mut perm4: Vec<usize> = vec![1, 0, 2];
        perm4.extend(3..d4.len());
        let p4 = g.permute(r4, &perm4)?;
        let mut out_dims = vec![b_k, n * a_k];
        out_dims.extend_from_slice(&d[2..]);
        result.push(g.reshape(p4, &out_dims)?);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(g: &mut Graph, t: Tensor) -> Var {
        g.constant(t)
    }

    #[test]
    fn scatter_gather_round_trips() {
        let mut g = Graph::new();
        let t = Tensor::randn(&[6, 4, 3], 11);
        let x = var(&mut g, t.clone());
        for k in [1usize, 2, 3, 6] {
            let dap = LocalAxial(k);
            let shards = dap_scatter(&mut g, x, k).unwrap();
            let back = dap_all_gather(&mut g, &dap, &shards).unwrap();
            assert_eq!(g.value(back).dims(), t.dims());
            assert_eq!(g.value(back).data(), t.data());
        }
    }

    #[test]
    fn axis_switch_is_a_sharded_transpose() {
        // Gathering the switched shards must equal the plain transpose of
        // the full tensor, for every rank count that divides both axes.
        let t = Tensor::randn(&[4, 8, 3], 13);
        for k in [1usize, 2, 4] {
            let mut g = Graph::new();
            let x = var(&mut g, t.clone());
            let dap = LocalAxial(k);
            let shards = dap_scatter(&mut g, x, k).unwrap();
            let switched = dap_axis_switch(&mut g, &dap, &shards).unwrap();
            assert_eq!(g.value(switched[0]).dims(), &[8 / k, 4, 3]);
            let full = dap_all_gather(&mut g, &dap, &switched).unwrap();
            let expect = g.permute(x, &[1, 0, 2]).unwrap();
            assert_eq!(
                g.value(full).data(),
                g.value(expect).data(),
                "k={k}: switch+gather != transpose"
            );
        }
    }

    #[test]
    fn axis_switch_backward_is_exact() {
        // d(sum(switch(x)))/dx must be all-ones: the switch is a pure
        // data movement, so gradients flow through untouched.
        let mut g = Graph::new();
        let x = g.param(Tensor::randn(&[4, 4, 2], 17));
        let dap = LocalAxial(2);
        let shards = dap_scatter(&mut g, x, 2).unwrap();
        let switched = dap_axis_switch(&mut g, &dap, &shards).unwrap();
        let full = dap_all_gather(&mut g, &dap, &switched).unwrap();
        let loss = g.sum_all(full).unwrap();
        g.backward(loss).unwrap();
        let grad = g.grad(x).expect("leaf grad");
        assert!(grad.data().iter().all(|&v| (v - 1.0).abs() < 1e-7));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn scatter_rejects_uneven_axis() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::randn(&[5, 4], 1));
        let _ = dap_scatter(&mut g, x, 2);
    }
}
