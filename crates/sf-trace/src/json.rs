//! Minimal JSON value, writer, and recursive-descent parser.
//!
//! The workspace has no registry access (`serde` is a no-op marker stub),
//! so the trace exporter carries its own JSON layer: exactly the subset the
//! Chrome `trace_event` format and the test fixtures need — objects,
//! arrays, strings with escapes, finite numbers, booleans, and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (sorted), which is fine for
    /// trace events — the schema is keyed, not positional.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serializes the value to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

/// Appends `s` as a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `n` as a JSON number to `out` (non-finite values become `0`,
/// which JSON cannot represent; traces only carry finite times).
pub fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push('0');
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_str(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` as a single JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with the failing byte offset on malformed input
/// or trailing non-whitespace.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map unpairable ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte aware).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":"x\"y\\z\n","d":true,"e":null}}"#;
        let v = parse(src).expect("parse");
        let re = parse(&v.to_json()).expect("reparse");
        assert_eq!(v, re);
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("a\u{1}b".to_string());
        let s = v.to_json();
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(parse(&s).expect("parse"), v);
    }

    #[test]
    fn integers_stay_integral_in_output() {
        let mut out = String::new();
        write_num(&mut out, 1234567.0);
        assert_eq!(out, "1234567");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\"").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Value::Str("protéine α-helix".to_string());
        assert_eq!(parse(&v.to_json()).expect("parse"), v);
    }
}
