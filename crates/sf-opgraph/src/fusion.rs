//! ScaleFold's fusion passes over the step graph.
//!
//! Each pass is a pure graph-to-graph transformation; each returns the
//! number of kernels it removed so experiments can report fusion coverage.

use crate::builder::{eff, StepGraph};
use crate::ops::{OpKind, OpNode};
use sf_gpusim::Kernel;
use std::collections::HashSet;

/// Merges every naive LayerNorm group (4 forward sub-kernels, or the
/// backward kernel) into a single fused Triton-style kernel: one pass over
/// the data (Welford statistics) at [`eff::LN_FUSED`] efficiency.
pub fn fuse_layer_norm(g: &StepGraph) -> (StepGraph, usize) {
    let mut out = g.clone();
    let mut ops = Vec::with_capacity(g.ops.len());
    let mut seen: HashSet<(u64, bool)> = HashSet::new();
    let mut removed = 0usize;
    for op in &g.ops {
        if op.kind != OpKind::LayerNorm {
            ops.push(op.clone());
            continue;
        }
        let bwd = op.kernel.name.ends_with("_bwd");
        if !seen.insert((op.fuse_group, bwd)) {
            removed += 1;
            continue;
        }
        // One fused kernel per (group, direction): single read+write pass.
        let mut k = op.kernel.clone();
        k.name = if bwd { "ln_fused_bwd".into() } else { "ln_fused".into() };
        k.efficiency = eff::LN_FUSED;
        ops.push(OpNode::new(k, op.module, OpKind::Fused, op.fuse_group));
    }
    out.ops = ops;
    (out, removed)
}

/// Merges every attention core (QK^T, bias add, 3 softmax sub-kernels, PV,
/// gating) into one FlashAttention-style kernel with pair bias: the logits
/// matrix is never materialized, so its HBM traffic disappears.
pub fn fuse_mha(g: &StepGraph) -> (StepGraph, usize) {
    let mut out = g.clone();
    let mut ops: Vec<OpNode> = Vec::with_capacity(g.ops.len());
    let mut removed = 0usize;
    let mut idx = 0usize;
    while idx < g.ops.len() {
        let op = &g.ops[idx];
        let in_att_core = matches!(
            op.kind,
            OpKind::AttentionGemm | OpKind::Softmax | OpKind::AttentionElementwise
        );
        if !in_att_core {
            ops.push(op.clone());
            idx += 1;
            continue;
        }
        // Collect the contiguous run of this attention group/direction.
        let group = op.fuse_group;
        let bwd = op.kernel.name.contains("grad") || op.kernel.name.ends_with("_bwd");
        let mut flops = 0.0f64;
        let mut qkv_bytes = 0.0f64;
        let mut logits_bytes = 0.0f64;
        let mut parallelism = 1usize;
        let mut members = 0usize;
        while idx < g.ops.len() {
            let m = &g.ops[idx];
            let m_bwd = m.kernel.name.contains("grad") || m.kernel.name.ends_with("_bwd");
            let core = matches!(
                m.kind,
                OpKind::AttentionGemm | OpKind::Softmax | OpKind::AttentionElementwise
            );
            if !core || m.fuse_group != group || m_bwd != bwd {
                break;
            }
            flops += m.kernel.flops;
            parallelism = parallelism.max(m.kernel.parallelism);
            if m.kind == OpKind::Softmax {
                // Each softmax sub-kernel reads+writes the logits once.
                logits_bytes = logits_bytes.max(m.kernel.bytes / 2.0);
            } else {
                qkv_bytes += m.kernel.bytes;
            }
            members += 1;
            idx += 1;
        }
        removed += members - 1;
        // Flash kernel: all the math in one launch. At AlphaFold's head
        // width (d=32) the tiling still spills partial blocks, so the
        // traffic reduction versus the already-tuned eager baseline is
        // partial — calibrated to the paper's measured 1.12x step gain.
        let total_bytes = qkv_bytes + 6.0 * logits_bytes;
        let bytes = (0.7 * total_bytes).max(qkv_bytes * 0.25);
        let mut k = Kernel::math(
            if bwd { "mha_fused_bwd" } else { "mha_fused" },
            flops,
            bytes,
            parallelism,
        );
        k.efficiency = eff::MHA_FUSED;
        ops.push(OpNode::new(
            k,
            op.module,
            OpKind::Fused,
            group,
        ));
    }
    out.ops = ops;
    (out, removed)
}

/// Bundles each group of independent pre-attention projection GEMMs into a
/// single batched GEMM (the paper's "GEMM Batching", 1.03×): the shared
/// input is read once and the launch exposes 4× the parallelism.
pub fn batch_gemms(g: &StepGraph) -> (StepGraph, usize) {
    use std::collections::HashMap;
    // Bundle by (fuse group, gradient class) across the whole graph — the
    // backward pass interleaves dgrad/wgrad kernels, so members of one
    // bundle are not contiguous.
    #[derive(Default)]
    struct Bundle {
        flops: f64,
        bytes: f64,
        input_bytes: f64,
        parallelism: usize,
        members: usize,
    }
    let mut bundles: HashMap<(u64, u8), Bundle> = HashMap::new();
    for op in &g.ops {
        if op.kind != OpKind::ProjectionGemm || op.fuse_group == 0 {
            continue;
        }
        let key = (op.fuse_group, grad_class(&op.kernel.name));
        let b = bundles.entry(key).or_insert_with(|| Bundle {
            input_bytes: f64::INFINITY,
            ..Bundle::default()
        });
        b.flops += op.kernel.flops;
        b.bytes += op.kernel.bytes;
        // The shared activation input appears in every member: roughly a
        // third of each member's traffic.
        b.input_bytes = b.input_bytes.min(op.kernel.bytes / 3.0);
        b.parallelism += op.kernel.parallelism;
        b.members += 1;
    }
    let mut out = g.clone();
    let mut ops: Vec<OpNode> = Vec::with_capacity(g.ops.len());
    let mut removed = 0usize;
    let mut emitted: std::collections::HashSet<(u64, u8)> = std::collections::HashSet::new();
    for op in &g.ops {
        if op.kind != OpKind::ProjectionGemm || op.fuse_group == 0 {
            ops.push(op.clone());
            continue;
        }
        let key = (op.fuse_group, grad_class(&op.kernel.name));
        if !emitted.insert(key) {
            removed += 1;
            continue;
        }
        let b = &bundles[&key];
        let shared_savings = b.input_bytes * (b.members.saturating_sub(1)) as f64;
        let mut k = Kernel::math(
            "gemm_bundled",
            b.flops,
            (b.bytes - shared_savings).max(0.0),
            b.parallelism,
        );
        k.efficiency = eff::GEMM;
        k.precision = op.kernel.precision.clone();
        ops.push(OpNode::new(k, op.module, OpKind::Fused, op.fuse_group));
    }
    out.ops = ops;
    (out, removed)
}

fn grad_class(name: &str) -> u8 {
    if name.ends_with("_dgrad") {
        1
    } else if name.ends_with("_wgrad") {
        2
    } else {
        0
    }
}

/// Replaces the per-tensor Adam + SWA kernel storm (6 kernels × >4000
/// tensors) with a single fused kernel over a packed parameter buffer
/// (§3.3.1): one pass, intermediates in registers.
pub fn fuse_adam_swa(g: &StepGraph) -> (StepGraph, usize) {
    let mut out = g.clone();
    let mut ops = Vec::with_capacity(g.ops.len());
    let mut removed = 0usize;
    let mut total_bytes = 0.0f64;
    for op in &g.ops {
        if matches!(op.kind, OpKind::AdamUpdate | OpKind::SwaUpdate) {
            total_bytes += op.kernel.bytes;
            removed += 1;
        } else {
            ops.push(op.clone());
        }
    }
    if removed > 0 {
        removed -= 1;
        // Fused single pass: read p/g/m/v/avg once, write p/m/v/avg once
        // ≈ 9 element-passes versus the eager ~18 (6 kernels × 3 tensors).
        let bytes = total_bytes * 0.5;
        let k = Kernel::memory("fused_adam_swa", bytes, 4096)
            .with_efficiency(eff::OPTIMIZER_FUSED);
        ops.push(OpNode::new(
            k,
            crate::ops::ModuleTag::Optimizer,
            OpKind::Fused,
            0,
        ));
    }
    out.ops = ops;
    (out, removed)
}

/// Replaces per-tensor gradient-clipping kernels with per-bucket kernels
/// over the DDP gradient buffers ("from thousands to tens"). When
/// `hidden_under_comm` is set, the kernels are dropped entirely — the
/// cluster simulator overlaps their latency with the all-reduce.
pub fn bucket_grad_clip(g: &StepGraph, hidden_under_comm: bool) -> (StepGraph, usize) {
    const BUCKET_BYTES: f64 = 25.0 * 1024.0 * 1024.0; // PyTorch DDP default
    let mut out = g.clone();
    let mut ops = Vec::with_capacity(g.ops.len());
    let mut removed = 0usize;
    let mut total_bytes = 0.0f64;
    for op in &g.ops {
        // Bucket reuse removes both the per-tensor norm/scale kernels and
        // the concat copies (the DDP buffers already hold the gradients).
        if op.kind == OpKind::GradClip || op.kernel.name == "copy_clip_concat" {
            total_bytes += op.kernel.bytes;
            removed += 1;
        } else {
            ops.push(op.clone());
        }
    }
    if removed > 0 && !hidden_under_comm {
        let grad_bytes = g.param_elements * 4.0;
        let buckets = (grad_bytes / BUCKET_BYTES).ceil().max(1.0) as usize;
        removed -= 2 * buckets;
        for _ in 0..buckets {
            for name in ["bucket_clip_norm", "bucket_clip_scale"] {
                let k = Kernel::memory(name, total_bytes / (2.0 * buckets as f64), 2048)
                    .with_efficiency(eff::OPTIMIZER_FUSED);
                ops.push(OpNode::new(
                    k,
                    crate::ops::ModuleTag::Optimizer,
                    OpKind::Fused,
                    0,
                ));
            }
        }
    }
    out.ops = ops;
    (out, removed)
}

/// torch.compile-style automatic fusion: every run of ≥2 consecutive
/// elementwise kernels sharing a fuse group collapses into one kernel that
/// reads the input once and writes the output once.
pub fn auto_fuse_elementwise(g: &StepGraph) -> (StepGraph, usize) {
    let mut out = g.clone();
    let mut ops: Vec<OpNode> = Vec::with_capacity(g.ops.len());
    let mut removed = 0usize;
    let mut idx = 0usize;
    while idx < g.ops.len() {
        let op = &g.ops[idx];
        // torch.compile absorbs the framework glue copies entirely.
        if op.kernel.name == "cast_glue" {
            removed += 1;
            idx += 1;
            continue;
        }
        if op.kind != OpKind::Elementwise {
            ops.push(op.clone());
            idx += 1;
            continue;
        }
        let group = op.fuse_group;
        let mut members = 0usize;
        let mut max_bytes = 0.0f64;
        let mut parallelism = 1usize;
        while idx < g.ops.len() {
            let m = &g.ops[idx];
            if m.kind != OpKind::Elementwise || m.fuse_group != group {
                break;
            }
            members += 1;
            max_bytes = max_bytes.max(m.kernel.bytes);
            parallelism = parallelism.max(m.kernel.parallelism);
            idx += 1;
        }
        if members == 1 {
            ops.push(op.clone());
            continue;
        }
        removed += members - 1;
        let k = Kernel::memory("compiled_elementwise", max_bytes, parallelism)
            .with_efficiency(eff::ELEMENTWISE_FUSED);
        ops.push(OpNode::new(k, op.module, OpKind::Fused, group));
    }
    out.ops = ops;
    (out, removed)
}

/// Triton-style autotuning of the fused memory-bound kernels (§3.3.2):
/// for each distinct problem size of a fused LayerNorm kernel, run the
/// tile-configuration search from `sf_gpusim::autotune` against the target
/// device and adopt the tuned kernel when it beats the current one.
///
/// The paper: autotuning searched "optimal hyper-parameters for all
/// workload sizes that appear and target GPU architectures ...
/// particularly useful when workload sizes were scaled down by DAP" — so
/// apply this pass *after* `crate::dap::shard`. Returns the number of
/// kernels improved.
pub fn autotune_fused(g: &StepGraph, device: &sf_gpusim::DeviceSpec) -> (StepGraph, usize) {
    use std::collections::HashMap;
    let mut out = g.clone();
    let mut improved = 0usize;
    // Memoize the search per distinct (rows, cols) problem.
    let mut cache: HashMap<(usize, usize), sf_gpusim::Kernel> = HashMap::new();
    for op in &mut out.ops {
        if op.kind != OpKind::Fused || !op.kernel.name.starts_with("ln_fused") {
            continue;
        }
        // Reconstruct the LN problem from the kernel: parallelism is the
        // row count, bytes = 2 passes x rows x cols x bytes/elem.
        let rows = op.kernel.parallelism.max(1);
        let bytes_per_elem = 4.0; // conservative: tune against fp32 traffic
        let cols =
            ((op.kernel.bytes / (2.0 * rows as f64 * bytes_per_elem)).round() as usize).max(1);
        let tuned = cache.entry((rows, cols)).or_insert_with(|| {
            let template =
                sf_gpusim::KernelTemplate::layer_norm(rows, cols, 2.0 * bytes_per_elem);
            let (best, _) = sf_gpusim::autotune(&template, device);
            template.instantiate(best, device)
        });
        let mut candidate = tuned.clone();
        // Preserve the original traffic accounting (bf16 may have shrunk
        // it); adopt only the tuned execution characteristics.
        candidate.bytes = op.kernel.bytes * (tuned.bytes / template_bytes(rows, cols));
        candidate.name = format!("{}_tuned", op.kernel.name);
        if candidate.duration_s(device) < op.kernel.duration_s(device) {
            op.kernel = candidate;
            improved += 1;
        }
    }
    (out, improved)
}

fn template_bytes(rows: usize, cols: usize) -> f64 {
    rows as f64 * cols as f64 * 8.0
}

/// Bytes multiplier applied by [`to_bf16`]: pure storage halving would be
/// 0.5, but LayerNorm/softmax statistics stay fp32 and boundary casts add
/// traffic — calibrated so the end-to-end gain matches the paper's 1.24×.
pub const BF16_BYTES_FACTOR: f64 = 0.78;

/// Converts the whole graph to bfloat16: activation/parameter traffic
/// shrinks by [`BF16_BYTES_FACTOR`] (not a full 2× — fp32 statistic islands
/// and cast overhead remain) and math-bound kernels run on the bf16
/// tensor-core path (the paper's 1.24× for this memory-bound workload).
pub fn to_bf16(g: &StepGraph) -> StepGraph {
    let mut out = g.clone();
    for op in &mut out.ops {
        op.kernel.bytes *= BF16_BYTES_FACTOR;
        if op.kernel.flops > 0.0 {
            op.kernel.precision = "bf16".to_string();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_gpusim::{CpuModel, DeviceSpec, Stream};
    use sf_model::ModelConfig;

    fn reference() -> StepGraph {
        StepGraph::reference(&ModelConfig::paper(), 1)
    }

    fn busy(g: &StepGraph, dev: &DeviceSpec) -> f64 {
        let kernels: Vec<_> = g.ops.iter().map(|o| o.kernel.clone()).collect();
        Stream::new(dev.clone(), CpuModel::healthy()).run_eager(&kernels).gpu_busy_s
    }

    #[test]
    fn ln_fusion_shrinks_count_and_time() {
        let g = reference();
        let (f, removed) = fuse_layer_norm(&g);
        assert!(removed > 1000, "removed {removed}");
        assert!(f.ops.len() + removed == g.ops.len());
        let dev = DeviceSpec::a100();
        assert!(busy(&f, &dev) < busy(&g, &dev));
    }

    #[test]
    fn mha_fusion_preserves_flops_and_cuts_bytes() {
        let g = reference();
        let (f, removed) = fuse_mha(&g);
        assert!(removed > 500);
        let flops = |g: &StepGraph| g.ops.iter().map(|o| o.kernel.flops).sum::<f64>();
        let bytes = |g: &StepGraph| g.ops.iter().map(|o| o.kernel.bytes).sum::<f64>();
        assert!((flops(&f) - flops(&g)).abs() < 1e-3 * flops(&g));
        assert!(bytes(&f) < bytes(&g));
    }

    #[test]
    fn gemm_batching_bundles_projection_launches() {
        let g = reference();
        let before = g
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::ProjectionGemm)
            .count();
        assert!(before > 1000);
        let (f, removed) = batch_gemms(&g);
        // No standalone projection GEMMs remain; each bundle of (mostly 4)
        // collapses to one kernel, so roughly 3/4 of them disappear.
        let after = f.ops.iter().filter(|o| o.kind == OpKind::ProjectionGemm).count();
        assert_eq!(after, 0);
        assert!(
            removed >= before / 2,
            "removed {removed} of {before} projection GEMMs"
        );
        // FLOPs conserved.
        let flops = |g: &StepGraph| g.ops.iter().map(|o| o.kernel.flops).sum::<f64>();
        assert!((flops(&f) - flops(&g)).abs() < 1e-3 * flops(&g));
    }

    #[test]
    fn adam_swa_fusion_collapses_to_one_kernel() {
        let g = reference();
        let (f, removed) = fuse_adam_swa(&g);
        assert!(removed > 10_000);
        let fused = f
            .ops
            .iter()
            .filter(|o| o.kernel.name == "fused_adam_swa")
            .count();
        assert_eq!(fused, 1);
        let dev = DeviceSpec::h100();
        assert!(busy(&f, &dev) < busy(&g, &dev));
    }

    #[test]
    fn grad_clip_bucketing_thousands_to_tens() {
        let g = reference();
        let before = g.ops.iter().filter(|o| o.kind == OpKind::GradClip).count();
        assert!(before > 8000);
        let (f, _) = bucket_grad_clip(&g, false);
        let after = f
            .ops
            .iter()
            .filter(|o| o.kernel.name.starts_with("bucket_clip"))
            .count();
        assert!((2..=80).contains(&after), "bucket kernels {after}");
        let (hidden, _) = bucket_grad_clip(&g, true);
        assert_eq!(
            hidden
                .ops
                .iter()
                .filter(|o| o.kernel.name.contains("clip"))
                .count(),
            0
        );
    }

    #[test]
    fn auto_fusion_merges_elementwise_runs() {
        let g = reference();
        let (f, removed) = auto_fuse_elementwise(&g);
        assert!(removed > 3000, "removed {removed}");
        let dev = DeviceSpec::h100();
        assert!(busy(&f, &dev) < busy(&g, &dev));
    }

    #[test]
    fn bf16_shrinks_traffic_by_calibrated_factor() {
        let g = reference();
        let f = to_bf16(&g);
        let bytes = |g: &StepGraph| g.ops.iter().map(|o| o.kernel.bytes).sum::<f64>();
        assert!(
            (bytes(&f) - bytes(&g) * super::BF16_BYTES_FACTOR).abs() < 1e-6 * bytes(&g)
        );
        assert_eq!(f.ops.len(), g.ops.len());
    }

    #[test]
    fn autotune_improves_dap_shrunk_ln_kernels() {
        let g = reference();
        let (lnfused, _) = fuse_layer_norm(&g);
        let sharded = crate::dap::shard(&lnfused, 8);
        let dev = DeviceSpec::h100();
        let (tuned, improved) = autotune_fused(&sharded, &dev);
        assert!(improved > 0, "no kernels improved");
        assert!(busy(&tuned, &dev) < busy(&sharded, &dev));
        // At full size the fused kernels are already near-optimal: fewer
        // (or equal) improvements than under DAP-8.
        let (_, improved_full) = autotune_fused(&lnfused, &dev);
        assert!(improved_full <= improved, "full {improved_full} vs dap {improved}");
    }

    #[test]
    fn autotune_never_regresses() {
        let g = reference();
        let (lnfused, _) = fuse_layer_norm(&g);
        let dev = DeviceSpec::a100();
        for dap in [1usize, 4] {
            let sharded = crate::dap::shard(&lnfused, dap);
            let (tuned, _) = autotune_fused(&sharded, &dev);
            assert!(busy(&tuned, &dev) <= busy(&sharded, &dev) * 1.0001);
        }
    }

    #[test]
    fn passes_compose() {
        let g = reference();
        let (g1, _) = fuse_layer_norm(&g);
        let (g2, _) = fuse_mha(&g1);
        let (g3, _) = batch_gemms(&g2);
        let (g4, _) = fuse_adam_swa(&g3);
        let (g5, _) = bucket_grad_clip(&g4, true);
        let (g6, _) = auto_fuse_elementwise(&g5);
        let g7 = to_bf16(&g6);
        assert!(g7.ops.len() < g.ops.len() / 3);
        let dev = DeviceSpec::h100();
        assert!(busy(&g7, &dev) < 0.6 * busy(&g, &dev));
    }
}
