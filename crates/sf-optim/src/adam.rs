//! The reference Adam optimizer (per-tensor updates — the unfused baseline).

use crate::Grads;
use serde::{Deserialize, Serialize};
use sf_autograd::ParamStore;
use sf_tensor::Tensor;
use std::collections::BTreeMap;

/// Adam hyper-parameters (AlphaFold defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Base learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator epsilon.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-6,
        }
    }
}

/// Per-parameter Adam state.
#[derive(Debug, Clone)]
pub struct AdamState {
    /// First-moment estimate.
    pub m: Tensor,
    /// Second-moment estimate.
    pub v: Tensor,
}

/// The unfused Adam optimizer: one pass per parameter tensor (the paper's
/// "numerous small CUDA kernel launches" baseline).
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    state: BTreeMap<String, AdamState>,
    step: u64,
}

impl Adam {
    /// Creates an optimizer with the given hyper-parameters.
    pub fn new(cfg: AdamConfig) -> Self {
        Adam {
            cfg,
            state: BTreeMap::new(),
            step: 0,
        }
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.cfg
    }

    /// Read-only access to a parameter's moment state (testing/diagnostics).
    pub fn state(&self, name: &str) -> Option<&AdamState> {
        self.state.get(name)
    }

    /// Applies one Adam update with learning rate `lr` (callers thread the
    /// schedule through here). Parameters without a gradient entry are
    /// untouched.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Grads, lr: f32) {
        self.step += 1;
        let t = self.step as i32;
        let bc1 = 1.0 - self.cfg.beta1.powi(t);
        let bc2 = 1.0 - self.cfg.beta2.powi(t);
        for (name, grad) in grads {
            let Some(param) = store.get_mut(name) else {
                continue;
            };
            let st = self.state.entry(name.clone()).or_insert_with(|| AdamState {
                m: Tensor::zeros(grad.dims()),
                v: Tensor::zeros(grad.dims()),
            });
            // Three separate elementwise passes — deliberately unfused.
            for ((p, g), (m, v)) in param
                .data_mut()
                .iter_mut()
                .zip(grad.data().iter())
                .zip(st.m.data_mut().iter_mut().zip(st.v.data_mut().iter_mut()))
            {
                *m = self.cfg.beta1 * *m + (1.0 - self.cfg.beta1) * g;
                *v = self.cfg.beta2 * *v + (1.0 - self.cfg.beta2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                *p -= lr * mhat / (vhat.sqrt() + self.cfg.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_store(x0: f32) -> ParamStore {
        let mut s = ParamStore::new();
        s.insert("x", Tensor::from_vec(vec![x0], &[1]).unwrap());
        s
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // min (x - 3)^2, gradient 2(x - 3).
        let mut store = quadratic_store(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        for _ in 0..2000 {
            let x = store.get("x").unwrap().data()[0];
            let mut grads = Grads::new();
            grads.insert(
                "x".to_string(),
                Tensor::from_vec(vec![2.0 * (x - 3.0)], &[1]).unwrap(),
            );
            opt.step(&mut store, &grads, 0.01);
        }
        let x = store.get("x").unwrap().data()[0];
        assert!((x - 3.0).abs() < 0.05, "converged to {x}");
    }

    #[test]
    fn bias_correction_makes_first_step_lr_sized() {
        // With bias correction, the very first Adam step has magnitude ~lr
        // regardless of gradient scale.
        let mut store = quadratic_store(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        let mut grads = Grads::new();
        grads.insert("x".to_string(), Tensor::from_vec(vec![1e-4], &[1]).unwrap());
        opt.step(&mut store, &grads, 0.1);
        let x = store.get("x").unwrap().data()[0];
        assert!((x.abs() - 0.1).abs() < 0.01, "first step {x}");
    }

    #[test]
    fn missing_grad_leaves_param_untouched() {
        let mut store = quadratic_store(5.0);
        store.insert("y", Tensor::from_vec(vec![7.0], &[1]).unwrap());
        let mut opt = Adam::new(AdamConfig::default());
        let mut grads = Grads::new();
        grads.insert("x".to_string(), Tensor::from_vec(vec![1.0], &[1]).unwrap());
        opt.step(&mut store, &grads, 0.1);
        assert_eq!(store.get("y").unwrap().data()[0], 7.0);
        assert_ne!(store.get("x").unwrap().data()[0], 5.0);
    }

    #[test]
    fn step_counter_advances() {
        let mut store = quadratic_store(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        assert_eq!(opt.step_count(), 0);
        opt.step(&mut store, &Grads::new(), 0.1);
        assert_eq!(opt.step_count(), 1);
    }
}
