//! Training-dynamics model: `avg_lddt_ca` as a function of samples seen,
//! calibrated to the paper's stated milestones:
//!
//! - from scratch, global batch 128: lDDT-Cα ≥ 0.8 within the first 5000
//!   steps (= 640k samples);
//! - continuing at global batch 256: lDDT-Cα reaches 0.9 between 50k and
//!   60k total steps (≈ 12–15M samples);
//! - the batch size cannot exceed 256, "otherwise it would fail to
//!   converge" — the hard DP limit motivating DAP.
//!
//! The curve is a saturating power law `L(n) = L∞ − (L∞ − L0)·(1 + n/k)^−β`
//! fit to those milestones. This is a *substitution* for the real 10M-sample
//! training run (documented in DESIGN.md); the real (tiny-scale) learning
//! dynamics are exercised by [`crate::trainer`].

use serde::{Deserialize, Serialize};

/// The AlphaFold convergence-dynamics model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceModel {
    /// Asymptotic lDDT-Cα.
    pub l_inf: f64,
    /// Initial (untrained) lDDT-Cα.
    pub l_0: f64,
    /// Sample-count scale, in samples.
    pub k: f64,
    /// Power-law exponent.
    pub beta: f64,
    /// Largest global batch size that still converges.
    pub max_batch: usize,
}

impl Default for ConvergenceModel {
    fn default() -> Self {
        // Fit: L(640k) = 0.800, L(12.8M) = 0.901 (see module docs).
        ConvergenceModel {
            l_inf: 0.94,
            l_0: 0.30,
            k: 20_000.0,
            beta: 0.434,
            max_batch: 256,
        }
    }
}

impl ConvergenceModel {
    /// Expected lDDT-Cα after seeing `samples` training samples, or `None`
    /// if the batch size is over the convergence limit.
    pub fn lddt_at(&self, samples: f64, batch: usize) -> Option<f64> {
        if batch > self.max_batch {
            return None;
        }
        Some(self.l_inf - (self.l_inf - self.l_0) * (1.0 + samples / self.k).powf(-self.beta))
    }

    /// Samples needed to reach `target` lDDT-Cα (None if unreachable).
    pub fn samples_to(&self, target: f64, batch: usize) -> Option<f64> {
        if batch > self.max_batch || target >= self.l_inf {
            return None;
        }
        let frac = (self.l_inf - target) / (self.l_inf - self.l_0);
        Some(self.k * (frac.powf(-1.0 / self.beta) - 1.0))
    }

    /// Steps to reach `target` from `start_samples`, at `batch`.
    pub fn steps_to(&self, start_samples: f64, target: f64, batch: usize) -> Option<u64> {
        let need = self.samples_to(target, batch)?;
        if need <= start_samples {
            return Some(0);
        }
        Some(((need - start_samples) / batch as f64).ceil() as u64)
    }
}

/// The two-phase from-scratch pretraining schedule of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PretrainSchedule {
    /// Phase-1 global batch (128) and step budget (5000).
    pub phase1_batch: usize,
    /// Steps in phase 1.
    pub phase1_steps: u64,
    /// Phase-2 global batch (256).
    pub phase2_batch: usize,
    /// Convergence target (0.9 avg lDDT-Cα).
    pub target_lddt: f64,
    /// Milestone that must be hit before phase 1 ends (0.8).
    pub phase1_target: f64,
}

impl Default for PretrainSchedule {
    fn default() -> Self {
        PretrainSchedule {
            phase1_batch: 128,
            phase1_steps: 5000,
            phase2_batch: 256,
            target_lddt: 0.9,
            phase1_target: 0.8,
        }
    }
}

/// One point of the Figure-11 pretraining curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Optimizer step (global).
    pub step: u64,
    /// Samples seen so far.
    pub samples: f64,
    /// Expected avg lDDT-Cα.
    pub lddt: f64,
}

impl PretrainSchedule {
    /// Evaluates the pretraining curve every `stride` steps until the
    /// target is reached (or `max_steps`).
    pub fn curve(&self, model: &ConvergenceModel, stride: u64, max_steps: u64) -> Vec<CurvePoint> {
        let mut out = Vec::new();
        let mut samples = 0.0f64;
        let mut step = 0u64;
        loop {
            let batch = if step < self.phase1_steps {
                self.phase1_batch
            } else {
                self.phase2_batch
            };
            let lddt = model
                .lddt_at(samples, batch)
                .expect("schedule batches within the convergence limit");
            if step.is_multiple_of(stride) || lddt >= self.target_lddt || step >= max_steps {
                out.push(CurvePoint { step, samples, lddt });
            }
            if lddt >= self.target_lddt || step >= max_steps {
                return out;
            }
            samples += batch as f64;
            step += 1;
        }
    }

    /// Total steps to reach the target.
    pub fn steps_to_target(&self, model: &ConvergenceModel) -> u64 {
        self.curve(model, u64::MAX / 2, 1_000_000)
            .last()
            .expect("curve has at least one point")
            .step
    }
}

/// Extension beyond the paper's scope: the **fine-tuning phase**. The
/// original AlphaFold spent ~4 more days fine-tuning at larger crops
/// (384 residues) after the 7-day initial training; ScaleFold only
/// optimizes the initial phase. This models what ScaleFold's optimizations
/// would do to fine-tuning: larger crops raise the attainable asymptote
/// (more context) but slow each step (the `O(n³)` triangle terms).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinetuneExtension {
    /// Fine-tuning crop size (AlphaFold: 384 vs 256 initial).
    pub crop: usize,
    /// Asymptote unlocked by the larger crop.
    pub l_inf: f64,
    /// Target lDDT-Cα for the fine-tuned model.
    pub target_lddt: f64,
    /// Global batch size.
    pub batch: usize,
}

impl Default for FinetuneExtension {
    fn default() -> Self {
        FinetuneExtension {
            crop: 384,
            // The larger crop and fine-tune losses unlock a higher ceiling;
            // 0.98 calibrates the phase to the ~5-10k fine-tuning steps the
            // AlphaFold recipe actually uses.
            l_inf: 0.98,
            target_lddt: 0.94,
            batch: 128,
        }
    }
}

impl FinetuneExtension {
    /// Step-time multiplier of the larger crop versus the 256-residue
    /// initial training: pair-track work is O(crop²·c) with O(crop³)
    /// triangle terms; empirically ≈ (crop/256)^2.5.
    pub fn step_multiplier(&self) -> f64 {
        (self.crop as f64 / 256.0).powf(2.5)
    }

    /// Steps to reach the fine-tune target starting from the initial
    /// training's endpoint, under a convergence model whose asymptote the
    /// larger crop raises.
    pub fn steps_from(&self, model: &ConvergenceModel, start_samples: f64) -> Option<u64> {
        let lifted = ConvergenceModel {
            l_inf: self.l_inf,
            ..*model
        };
        lifted.steps_to(start_samples, self.target_lddt, self.batch)
    }

    /// Wall-clock hours of the fine-tuning phase given the initial
    /// training's step time at crop 256.
    pub fn hours(&self, model: &ConvergenceModel, start_samples: f64, base_step_s: f64) -> Option<f64> {
        let steps = self.steps_from(model, start_samples)?;
        Some(steps as f64 * base_step_s * self.step_multiplier() / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finetune_extension_reaches_higher_target() {
        let m = ConvergenceModel::default();
        let ext = FinetuneExtension::default();
        // Starting where initial training ends (0.9 at ~12.8M samples).
        let start = m.samples_to(0.9, 256).expect("reachable");
        // 0.94 is beyond the initial asymptote (0.94 bound) but within the
        // fine-tune asymptote.
        assert!(m.steps_to(start, ext.target_lddt, 128).is_none() || m.l_inf > ext.target_lddt);
        let steps = ext.steps_from(&m, start).expect("reachable with lifted asymptote");
        assert!(steps > 1000, "fine-tuning is not instant: {steps}");
        // With ScaleFold-optimized 0.65 s steps at crop 256, fine-tuning
        // lands in tens of hours — far below the original 4 days but
        // slower per-step than initial training.
        let hours = ext.hours(&m, start, 0.65).expect("reachable");
        assert!(hours < 96.0, "fine-tune {hours:.1} h vs original 4 days");
        assert!(ext.step_multiplier() > 2.0);
    }

    #[test]
    fn milestones_match_paper() {
        let m = ConvergenceModel::default();
        // 0.8 by 5000 steps at bs128.
        let l1 = m.lddt_at(5000.0 * 128.0, 128).expect("bs ok");
        assert!((0.78..0.83).contains(&l1), "phase-1 lddt {l1:.3}");
        // 0.9 between 50k and 60k total steps (phase 2 at bs256).
        let s = PretrainSchedule::default();
        let steps = s.steps_to_target(&m);
        assert!(
            (45_000..65_000).contains(&steps),
            "steps to 0.9: {steps}"
        );
    }

    #[test]
    fn curve_is_monotone() {
        let m = ConvergenceModel::default();
        let s = PretrainSchedule::default();
        let curve = s.curve(&m, 1000, 100_000);
        assert!(curve.windows(2).all(|w| w[1].lddt >= w[0].lddt));
        assert!(curve.first().expect("nonempty").lddt < 0.5);
        assert!(curve.last().expect("nonempty").lddt >= 0.9);
    }

    #[test]
    fn oversized_batch_fails_to_converge() {
        let m = ConvergenceModel::default();
        assert!(m.lddt_at(1e7, 512).is_none());
        assert!(m.samples_to(0.9, 512).is_none());
        assert!(m.lddt_at(1e7, 256).is_some());
    }

    #[test]
    fn samples_to_inverts_lddt_at() {
        let m = ConvergenceModel::default();
        for target in [0.5, 0.7, 0.8, 0.9] {
            let n = m.samples_to(target, 128).expect("reachable");
            let l = m.lddt_at(n, 128).expect("bs ok");
            assert!((l - target).abs() < 1e-6, "target {target}: got {l}");
        }
    }

    #[test]
    fn steps_to_accounts_for_head_start() {
        let m = ConvergenceModel::default();
        let cold = m.steps_to(0.0, 0.85, 256).expect("reachable");
        let warm = m.steps_to(2e6, 0.85, 256).expect("reachable");
        assert!(warm < cold);
        // Already past target: zero steps.
        let n09 = m.samples_to(0.9, 256).expect("reachable");
        assert_eq!(m.steps_to(n09 + 1.0, 0.9, 256), Some(0));
    }

    #[test]
    fn asymptote_is_never_exceeded() {
        let m = ConvergenceModel::default();
        assert!(m.lddt_at(1e12, 128).expect("bs ok") < m.l_inf);
        assert!(m.samples_to(m.l_inf, 128).is_none());
    }
}
