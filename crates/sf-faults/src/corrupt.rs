//! Byte-level checkpoint corruption: the storage half of the fault model.
//!
//! Long multi-day runs hit torn writes, bad sectors, and truncated files;
//! these helpers produce exactly those artifacts deterministically so the
//! checkpoint layer's CRC + fallback logic can be drilled in tests.

use std::fs;
use std::io;
use std::path::Path;

/// Flips bit `bit` (0–7) of byte `byte_index` in the file at `path`.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read or written, or an
/// `InvalidInput` error if `byte_index` is out of range.
pub fn flip_bit(path: impl AsRef<Path>, byte_index: usize, bit: u8) -> io::Result<()> {
    let path = path.as_ref();
    let mut bytes = fs::read(path)?;
    let Some(b) = bytes.get_mut(byte_index) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "byte index {byte_index} out of range for {} ({} bytes)",
                path.display(),
                fs::metadata(path).map(|m| m.len()).unwrap_or(0)
            ),
        ));
    };
    *b ^= 1 << (bit % 8);
    fs::write(path, bytes)
}

/// Truncates the file at `path` to its first `keep_bytes` bytes (a torn
/// write / partial flush).
///
/// # Errors
///
/// Returns an I/O error if the file cannot be opened or resized.
pub fn truncate(path: impl AsRef<Path>, keep_bytes: u64) -> io::Result<()> {
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep_bytes)?;
    f.sync_all()
}

/// File length in bytes (convenience for choosing corruption offsets).
///
/// # Errors
///
/// Returns an I/O error if the file's metadata cannot be read.
pub fn file_len(path: impl AsRef<Path>) -> io::Result<u64> {
    Ok(fs::metadata(path)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sf_faults_{}_{name}", std::process::id()))
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let p = temp_path("flip");
        fs::write(&p, [0u8; 8]).expect("write");
        flip_bit(&p, 3, 1).expect("flip");
        let bytes = fs::read(&p).expect("read");
        assert_eq!(bytes[3], 0b10);
        assert!(bytes.iter().enumerate().all(|(i, &b)| i == 3 || b == 0));
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn flip_bit_out_of_range_is_error() {
        let p = temp_path("flip_oob");
        fs::write(&p, [0u8; 4]).expect("write");
        assert!(flip_bit(&p, 100, 0).is_err());
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn truncate_shortens_file() {
        let p = temp_path("trunc");
        fs::write(&p, [7u8; 100]).expect("write");
        truncate(&p, 33).expect("truncate");
        assert_eq!(file_len(&p).expect("len"), 33);
        let _ = fs::remove_file(&p);
    }
}
