//! Regenerates Figure 11: from-scratch pretraining to 0.9 avg lDDT-Ca.
fn main() {
    sf_bench::banner("Figure 11: pretraining from scratch");
    println!("{}", scalefold::experiments::fig11());
}
