//! Parameter-store checkpointing: a simple self-describing binary format
//! (no external dependencies), used to pause/resume training and to ship
//! the MLPerf-style "initialized from predefined checkpoint" setting.
//!
//! Format (little-endian):
//! ```text
//! magic   b"SFCK"            4 bytes
//! version u32                  = 1
//! count   u64                  number of parameters
//! repeat count times:
//!   name_len u32, name bytes (UTF-8)
//!   rank u32, dims u64 x rank
//!   data f32 x prod(dims)
//! ```

use crate::params::ParamStore;
use sf_tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SFCK";
const VERSION: u32 = 1;

/// Errors from checkpoint (de)serialization.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a ScaleFold checkpoint or is a newer version.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Format(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl ParamStore {
    /// Serializes every parameter to `writer` in the checkpoint format.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on write failure.
    pub fn save_to<W: Write>(&self, mut writer: W) -> Result<(), CheckpointError> {
        writer.write_all(MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        writer.write_all(&(self.len() as u64).to_le_bytes())?;
        for (name, tensor) in self.iter() {
            let bytes = name.as_bytes();
            writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
            writer.write_all(bytes)?;
            writer.write_all(&(tensor.rank() as u32).to_le_bytes())?;
            for &d in tensor.dims() {
                writer.write_all(&(d as u64).to_le_bytes())?;
            }
            for &x in tensor.data() {
                writer.write_all(&x.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes a checkpoint produced by [`ParamStore::save_to`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Format`] if the magic/version mismatch or
    /// the stream is truncated/corrupt, [`CheckpointError::Io`] on read
    /// failure.
    pub fn load_from<R: Read>(mut reader: R) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CheckpointError::Format("bad magic".into()));
        }
        let version = read_u32(&mut reader)?;
        if version != VERSION {
            return Err(CheckpointError::Format(format!(
                "unsupported version {version}"
            )));
        }
        let count = read_u64(&mut reader)? as usize;
        let mut store = ParamStore::new();
        for _ in 0..count {
            let name_len = read_u32(&mut reader)? as usize;
            if name_len > 1 << 20 {
                return Err(CheckpointError::Format("oversized name".into()));
            }
            let mut name_bytes = vec![0u8; name_len];
            reader.read_exact(&mut name_bytes)?;
            let name = String::from_utf8(name_bytes)
                .map_err(|_| CheckpointError::Format("non-utf8 parameter name".into()))?;
            let rank = read_u32(&mut reader)? as usize;
            if rank > 16 {
                return Err(CheckpointError::Format("implausible tensor rank".into()));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(read_u64(&mut reader)? as usize);
            }
            let elems: usize = dims.iter().product();
            if elems > 1 << 31 {
                return Err(CheckpointError::Format("implausible tensor size".into()));
            }
            let mut data = Vec::with_capacity(elems);
            let mut buf = [0u8; 4];
            for _ in 0..elems {
                reader.read_exact(&mut buf)?;
                data.push(f32::from_le_bytes(buf));
            }
            let tensor = Tensor::from_vec(data, &dims)
                .map_err(|e| CheckpointError::Format(format!("tensor: {e}")))?;
            store.insert(name, tensor);
        }
        Ok(store)
    }

    /// Saves to a file path.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on file-system failure.
    pub fn save_file(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let f = std::fs::File::create(path)?;
        self.save_to(io::BufWriter::new(f))
    }

    /// Loads from a file path.
    ///
    /// # Errors
    ///
    /// See [`ParamStore::load_from`].
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let f = std::fs::File::open(path)?;
        Self::load_from(io::BufReader::new(f))
    }
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> Result<u64, CheckpointError> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.insert("a.weight", Tensor::randn(&[3, 4], 1));
        s.insert("a.bias", Tensor::randn(&[4], 2));
        s.insert("scalarish", Tensor::scalar(2.5));
        s
    }

    #[test]
    fn round_trip_in_memory() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.save_to(&mut buf).expect("write to vec");
        let loaded = ParamStore::load_from(buf.as_slice()).expect("read back");
        assert_eq!(loaded.len(), store.len());
        for (name, t) in store.iter() {
            assert_eq!(loaded.get(name).expect("present"), t, "{name}");
        }
    }

    #[test]
    fn round_trip_via_file() {
        let store = sample_store();
        let path = std::env::temp_dir().join("sf_ckpt_test.bin");
        store.save_file(&path).expect("save");
        let loaded = ParamStore::load_file(&path).expect("load");
        assert_eq!(loaded.get("a.weight"), store.get("a.weight"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            ParamStore::load_from(&b"NOTACKPT"[..]),
            Err(CheckpointError::Format(_))
        ));
        // Truncated stream.
        let store = sample_store();
        let mut buf = Vec::new();
        store.save_to(&mut buf).expect("write");
        buf.truncate(buf.len() / 2);
        assert!(ParamStore::load_from(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_future_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            ParamStore::load_from(buf.as_slice()),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn empty_store_round_trips() {
        let store = ParamStore::new();
        let mut buf = Vec::new();
        store.save_to(&mut buf).expect("write");
        let loaded = ParamStore::load_from(buf.as_slice()).expect("read");
        assert!(loaded.is_empty());
    }
}
