//! Property tests for the cluster substrate: collective correctness for
//! arbitrary rank counts and payloads, fabric cost-model laws, and
//! data-pipeline queue invariants.

use proptest::prelude::*;
use sf_cluster::collective::{all_gather, all_to_all, ring_all_reduce};
use sf_cluster::straggler::DataPipeState;
use sf_cluster::{FabricSpec, StragglerModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ring all-reduce equals the elementwise mean for any rank count and
    /// buffer length.
    #[test]
    fn ring_all_reduce_is_mean(
        n in 1usize..10,
        len in 0usize..64,
        seed in any::<u32>(),
    ) {
        let mut buffers: Vec<Vec<f32>> = (0..n)
            .map(|r| {
                (0..len)
                    .map(|i| ((seed as usize + r * 37 + i * 11) % 1000) as f32 * 0.01 - 5.0)
                    .collect()
            })
            .collect();
        let expect: Vec<f32> = (0..len)
            .map(|i| buffers.iter().map(|b| b[i]).sum::<f32>() / n as f32)
            .collect();
        ring_all_reduce(&mut buffers);
        for b in &buffers {
            for (got, want) in b.iter().zip(expect.iter()) {
                prop_assert!((got - want).abs() < 1e-3, "{got} vs {want}");
            }
        }
    }

    /// Ring all-reduce sends exactly `2(n-1)·len` elements in total — the
    /// `2(n-1)/n` per-rank traffic factor priced by
    /// `FabricSpec::all_reduce_s` — even when `len` is not divisible by
    /// `n` (uneven chunks) or there are more ranks than elements (some
    /// chunks empty).
    #[test]
    fn ring_all_reduce_traffic_is_exact(
        n in 2usize..10,
        len in 1usize..64,
        seed in any::<u32>(),
    ) {
        let mut buffers: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..len).map(|i| (seed as usize + r * 3 + i) as f32 * 0.01).collect())
            .collect();
        let stats = ring_all_reduce(&mut buffers);
        // Each of the len elements traverses the ring n-1 times per phase,
        // regardless of how the chunk boundaries fall.
        prop_assert_eq!(stats.elements_sent, 2 * (n - 1) * len);
        prop_assert_eq!(stats.steps, 2 * (n - 1));
        // Cross-check against the analytic bandwidth term: per-rank bytes
        // at unit element size is 2(n-1)/n · len.
        let per_rank = stats.elements_sent as f64 / n as f64;
        let analytic = 2.0 * (n as f64 - 1.0) / n as f64 * len as f64;
        prop_assert!((per_rank - analytic).abs() < 1e-9, "{per_rank} vs {analytic}");
    }

    /// All-to-all is an involution (applying twice restores inputs) when
    /// buffers split evenly.
    #[test]
    fn all_to_all_involution(n in 1usize..8, chunk in 1usize..8, seed in any::<u32>()) {
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..n * chunk).map(|i| (seed as usize + r * 13 + i) as f32).collect())
            .collect();
        let (once, _) = all_to_all(&inputs);
        let (twice, _) = all_to_all(&once);
        prop_assert_eq!(twice, inputs);
    }

    /// All-to-all at lengths *not* divisible by the rank count (including
    /// ranks > length): outputs match the direct chunk-transpose built
    /// from the canonical `c·len/n` boundaries, and exactly `(n-1)·len`
    /// elements cross the wire — the `(n-1)/n` per-rank factor priced by
    /// `FabricSpec::all_to_all_s`.
    #[test]
    fn all_to_all_uneven_matches_direct_transpose(
        n in 2usize..9,
        len in 0usize..20,
        seed in any::<u32>(),
    ) {
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..len).map(|i| (seed as usize + r * 17 + i) as f32).collect())
            .collect();
        let (out, stats) = all_to_all(&inputs);
        let starts: Vec<usize> = (0..=n).map(|c| c * len / n).collect();
        for r in 0..n {
            let direct: Vec<f32> = inputs
                .iter()
                .flat_map(|input| input[starts[r]..starts[r + 1]].to_vec())
                .collect();
            prop_assert_eq!(&out[r], &direct, "rank {} mismatch", r);
        }
        prop_assert_eq!(stats.elements_sent, (n - 1) * len);
    }

    /// All-gather outputs are identical across ranks, contain every shard
    /// in order, and the ring schedule moves exactly `n(n-1)·shard_len`
    /// elements — the `(n-1)` per-rank factor of
    /// `FabricSpec::all_gather_s` — for any shard length (including shards
    /// shorter than the rank count).
    #[test]
    fn all_gather_uniform_outputs(n in 1usize..8, len in 0usize..16, seed in any::<u32>()) {
        let shards: Vec<Vec<f32>> = (0..n)
            .map(|r| (0..len).map(|i| (seed as usize + r * 7 + i) as f32).collect())
            .collect();
        let (out, stats) = all_gather(&shards);
        prop_assert_eq!(out.len(), n);
        for o in &out {
            prop_assert_eq!(o.len(), n * len);
            for (r, shard) in shards.iter().enumerate() {
                prop_assert_eq!(&o[r * len..(r + 1) * len], shard.as_slice());
            }
        }
        if n > 1 && len > 0 {
            prop_assert_eq!(stats.elements_sent, n * (n - 1) * len);
            prop_assert_eq!(stats.steps, n - 1);
        } else {
            prop_assert_eq!(stats.elements_sent, 0);
        }
    }

    /// Collective costs are monotone in message size and satisfy
    /// all_reduce ≈ reduce_scatter + all_gather ≥ all_gather.
    #[test]
    fn fabric_cost_laws(
        bytes in 1.0f64..1e10,
        extra in 1.0f64..1e9,
        ranks in 2usize..64,
    ) {
        let f = FabricSpec::eos();
        prop_assert!(f.all_reduce_s(bytes, ranks) < f.all_reduce_s(bytes + extra, ranks));
        // An all-reduce of a full buffer is two ring phases, i.e. twice an
        // all-gather whose per-rank shard is bytes/n.
        let ar = f.all_reduce_s(bytes, ranks);
        let two_ag = 2.0 * f.all_gather_s(bytes / ranks as f64, ranks);
        prop_assert!((ar - two_ag).abs() < 1e-9 + 0.01 * ar, "ar {ar} vs 2*ag {two_ag}");
        prop_assert!(f.all_to_all_s(bytes, ranks) > 0.0);
    }

    /// The data-pipeline queue never reports negative waits and drains:
    /// with prep always below capacity, waits are identically zero.
    #[test]
    fn pipe_waits_are_sane(
        preps in proptest::collection::vec(0.0f64..100.0, 1..50),
        step in 0.5f64..5.0,
    ) {
        let model = StragglerModel::baseline();
        let mut pipe = DataPipeState::new();
        for &p in &preps {
            let w = pipe.step(&model, p, step);
            prop_assert!(w >= 0.0);
            prop_assert!(pipe.backlog_s() >= 0.0);
        }
        // Cheap stream: zero waits.
        let mut quiet = DataPipeState::new();
        let capacity = step * model.data_workers as f64;
        for _ in 0..20 {
            let w = quiet.step(&model, capacity * 0.5, step);
            prop_assert_eq!(w, 0.0);
        }
    }

    /// Non-blocking waits never exceed blocking waits for the same stream.
    #[test]
    fn nonblocking_dominates_blocking(
        preps in proptest::collection::vec(0.0f64..60.0, 1..40),
        step in 0.5f64..4.0,
    ) {
        let blocking = StragglerModel::baseline();
        let nonblocking = StragglerModel {
            non_blocking_pipeline: true,
            ..blocking
        };
        let mut pb = DataPipeState::new();
        let mut pn = DataPipeState::new();
        let mut total_b = 0.0;
        let mut total_n = 0.0;
        for &p in &preps {
            total_b += pb.step(&blocking, p, step);
            total_n += pn.step(&nonblocking, p, step);
        }
        prop_assert!(total_n <= total_b + 1e-9, "nb {total_n} vs b {total_b}");
    }
}
