//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many config and
//! report types but never serializes them (no format crate is present),
//! so this stub provides the two trait names plus no-op derive macros —
//! enough for every `#[derive(serde::Serialize, serde::Deserialize)]` in
//! the tree to compile offline. If a future PR adds real serialization,
//! replace this with the genuine crate (or extend the derive to emit
//! impls).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
