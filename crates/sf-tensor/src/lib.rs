//! Dense tensor library underpinning the ScaleFold AlphaFold reproduction.
//!
//! This crate provides the numerical substrate for the real (CPU-scale)
//! AlphaFold training stack:
//!
//! - [`Tensor`]: a row-major dense `f32` tensor with shape/stride bookkeeping,
//!   broadcasting binary ops, blocked GEMM, reductions, and activation
//!   functions.
//! - [`bf16::Bf16`] and [`bf16::Fp16`]: software emulation of the reduced
//!   precision formats the paper evaluates (bf16 converges; naive fp16
//!   overflows to infinity/NaN — see `bf16` module tests).
//! - Fused kernels mirroring the paper's Triton kernels, implemented as real
//!   CPU routines: fused [`ops::layernorm`] (output + statistics in one
//!   kernel, two-step reduction backward) and a FlashAttention-style
//!   streaming-softmax [`ops::attention`] with the AlphaFold *pair bias*
//!   term fused in.
//!
//! The fused kernels are verified against their naive multi-pass
//! counterparts in unit and property tests; the performance effect of the
//! fusion at GPU scale is modelled in the `sf-gpusim`/`sf-opgraph` crates.
//!
//! All hot kernels (GEMM, LayerNorm, softmax, attention) execute on the
//! parallel CPU backend in [`pool`]: a dependency-free scoped thread pool
//! whose partitioning preserves a fixed per-element accumulation order, so
//! kernel output is **bit-identical for every thread count** (`SF_THREADS`
//! env var / [`pool::set_num_threads`]; small inputs bypass the pool
//! entirely).
//!
//! # Example
//!
//! ```
//! use sf_tensor::Tensor;
//!
//! # fn main() -> Result<(), sf_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

pub mod bf16;
pub mod ops;
pub mod pool;
pub mod scratch;
mod shape;
mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;

use std::fmt;

/// Error type for all fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (exactly or via broadcasting)
    /// did not.
    ShapeMismatch {
        /// Short description of the operation that failed.
        op: &'static str,
        /// Left-hand / expected shape.
        lhs: Vec<usize>,
        /// Right-hand / actual shape.
        rhs: Vec<usize>,
    },
    /// The number of data elements did not match the product of the
    /// requested dimensions.
    LengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// An axis argument was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// An index was out of bounds along some axis.
    IndexOutOfBounds {
        /// Offending flat or axis index.
        index: usize,
        /// Size of the dimension (or tensor) indexed.
        bound: usize,
    },
    /// Operation received an empty input where at least one element is
    /// required.
    EmptyInput(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected} elements, got {actual}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for size {bound}")
            }
            TensorError::EmptyInput(op) => write!(f, "empty input to {op}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used throughout the crate.
pub type Result<T, E = TensorError> = std::result::Result<T, E>;
