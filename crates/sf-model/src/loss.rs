//! Training losses.
//!
//! Documented substitution: AlphaFold's primary structural loss is FAPE
//! (frame-aligned point error), which requires per-residue rigid frames on
//! the tape. We use a **clamped pairwise distance-map loss**, which is
//! invariant to global rigid motion (the property FAPE's frame alignment
//! buys) and differentiable with the same cost structure. The auxiliary
//! losses — the pair **distogram** cross-entropy and the **masked-MSA**
//! reconstruction (BERT-style) cross-entropy — follow AlphaFold directly.

use crate::config::{ModelConfig, DISTOGRAM_BINS, NUM_AA_TYPES};
use crate::embed::distogram_edges;
use crate::features::FeatureBatch;
use crate::linear::Linear;
use sf_autograd::{Graph, ParamStore, Result, Var};
use sf_tensor::Tensor;

/// Pairs farther than this in the ground truth are excluded from the
/// distance-map loss (the lDDT inclusion radius).
pub const DISTANCE_CUTOFF: f32 = 15.0;

/// Epsilon inside `sqrt` to keep the distance gradient finite at 0.
const DIST_EPS: f32 = 1e-6;

/// Scalar loss terms of one forward pass (values, for logging).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossBreakdown {
    /// Clamped distance-map structural loss.
    pub distance: f32,
    /// Pair distogram cross-entropy.
    pub distogram: f32,
    /// Masked-MSA reconstruction cross-entropy.
    pub masked_msa: f32,
    /// Weighted total.
    pub total: f32,
}

/// Differentiable pairwise-distance matrix `[n, n]` of `[n, 3]` coordinates.
///
/// # Errors
///
/// Propagates shape errors if `coords` is not `[n, 3]`.
pub fn pairwise_distances(g: &mut Graph, coords: Var) -> Result<Var> {
    let n = g.value(coords).dims()[0];
    let xi = g.reshape(coords, &[n, 1, 3])?;
    let xj = g.reshape(coords, &[1, n, 3])?;
    let diff = g.sub(xi, xj)?;
    let sq = g.square(diff)?;
    let d2 = g.sum_axis(sq, 2)?;
    let d2e = g.add_scalar(d2, DIST_EPS)?;
    g.sqrt(d2e)
}

/// Rigid-invariant structural loss: mean squared error between predicted and
/// true pairwise distances over pairs whose true distance is below
/// [`DISTANCE_CUTOFF`], with per-pair residue masking.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn distance_map_loss(
    g: &mut Graph,
    pred_coords: Var,
    true_coords: &Tensor,
    residue_mask: &Tensor,
) -> Result<Var> {
    let n = true_coords.dims()[0];
    let d_pred = pairwise_distances(g, pred_coords)?;
    let d_true = crate::geometry::distance_matrix(true_coords);
    // Pair weights: both residues resolved, true distance < cutoff, i != j.
    let mut w = Tensor::zeros(&[n, n]);
    let mut total_w = 0.0f32;
    for i in 0..n {
        for j in 0..n {
            if i != j
                && residue_mask.data()[i] > 0.0
                && residue_mask.data()[j] > 0.0
                && d_true.data()[i * n + j] < DISTANCE_CUTOFF
            {
                w.data_mut()[i * n + j] = 1.0;
                total_w += 1.0;
            }
        }
    }
    let dt = g.constant(d_true);
    let wv = g.constant(w);
    let err = g.sub(d_pred, dt)?;
    let sq = g.square(err)?;
    let weighted = g.mul(sq, wv)?;
    let sum = g.sum_all(weighted)?;
    g.scale(sum, 1.0 / total_w.max(1.0))
}

/// Cross-entropy of `logits` (last axis = classes) against a one-hot target
/// tensor of the same shape, averaged over positions where
/// `position_weight > 0`.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn cross_entropy(
    g: &mut Graph,
    logits: Var,
    one_hot: &Tensor,
    position_weight: &Tensor,
) -> Result<Var> {
    let p = g.softmax(logits)?;
    let pe = g.add_scalar(p, 1e-9)?;
    let logp = g.ln(pe)?;
    let oh = g.constant(one_hot.clone());
    let picked = g.mul(logp, oh)?;
    let rank = g.value(picked).rank();
    let nll = g.sum_axis(picked, rank - 1)?; // [positions...]
    let wv = g.constant(position_weight.clone());
    let weighted = g.mul(nll, wv)?;
    let sum = g.sum_all(weighted)?;
    let denom = position_weight.sum_all().max(1.0);
    g.scale(sum, -1.0 / denom)
}

/// Distogram head + loss: projects `z` to [`DISTOGRAM_BINS`] logits and
/// cross-entropies against the binned true distances.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn distogram_loss(
    g: &mut Graph,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    z: Var,
    true_coords: &Tensor,
    residue_mask: &Tensor,
) -> Result<Var> {
    let n = cfg.n_res;
    let logits = Linear::new("heads.distogram", cfg.c_z, DISTOGRAM_BINS).apply(g, store, z)?;
    let d_true = crate::geometry::distance_matrix(true_coords);
    let edges = distogram_edges();
    let mut one_hot = Tensor::zeros(&[n, n, DISTOGRAM_BINS]);
    let mut weight = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            if i == j || residue_mask.data()[i] == 0.0 || residue_mask.data()[j] == 0.0 {
                continue;
            }
            let dist = d_true.data()[i * n + j];
            let bin = edges.iter().position(|&e| dist < e).unwrap_or(DISTOGRAM_BINS - 1);
            one_hot.data_mut()[(i * n + j) * DISTOGRAM_BINS + bin] = 1.0;
            weight.data_mut()[i * n + j] = 1.0;
        }
    }
    cross_entropy(g, logits, &one_hot, &weight)
}

/// Masked-MSA head + loss: projects `m` to residue-type logits and
/// cross-entropies against the true identities at masked positions
/// (positions with target index `>= 0`).
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn masked_msa_loss(
    g: &mut Graph,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    m: Var,
    batch: &FeatureBatch,
) -> Result<Var> {
    let (s, r) = (cfg.n_seq, cfg.n_res);
    let logits = Linear::new("heads.masked_msa", cfg.c_m, NUM_AA_TYPES).apply(g, store, m)?;
    let mut one_hot = Tensor::zeros(&[s, r, NUM_AA_TYPES]);
    let mut weight = Tensor::zeros(&[s, r]);
    let mut any = false;
    for si in 0..s {
        for ri in 0..r {
            let target = batch.masked_msa_targets.data()[si * r + ri];
            if target >= 0.0 {
                let t = (target as usize).min(NUM_AA_TYPES - 1);
                one_hot.data_mut()[(si * r + ri) * NUM_AA_TYPES + t] = 1.0;
                weight.data_mut()[si * r + ri] = 1.0;
                any = true;
            }
        }
    }
    if !any {
        // No masked positions in this crop: zero loss, but keep the head's
        // parameters bound so optimizer state stays uniform across steps.
        let zero = g.scale(logits, 0.0)?;
        return g.sum_all(zero);
    }
    cross_entropy(g, logits, &one_hot, &weight)
}

/// Confidence (pLDDT) loss: regresses `sigmoid(plddt_logits)` onto the
/// actual per-residue lDDT of the current prediction (target computed
/// host-side, detached — as in AlphaFold, the confidence head does not
/// shape the structure).
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn plddt_loss(
    g: &mut Graph,
    plddt_logits: Var,
    pred_coords_value: &Tensor,
    true_coords: &Tensor,
    residue_mask: &Tensor,
) -> Result<Var> {
    let n = true_coords.dims()[0];
    let targets =
        crate::metrics::lddt_ca_per_residue(pred_coords_value, true_coords, residue_mask);
    let t = g.constant(Tensor::from_vec(targets, &[n])?.reshape(&[n, 1])?);
    let p = g.sigmoid(plddt_logits)?;
    let err = g.sub(p, t)?;
    let sq = g.square(err)?;
    g.mean_all(sq)
}

/// Combines the losses with AlphaFold-like weights. Returns the total
/// loss variable plus the scalar breakdown.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
#[allow(clippy::too_many_arguments)]
pub fn total_loss(
    g: &mut Graph,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    m: Var,
    z: Var,
    pred_coords: Var,
    plddt_logits: Option<Var>,
    batch: &FeatureBatch,
) -> Result<(Var, LossBreakdown)> {
    let dist = distance_map_loss(g, pred_coords, &batch.true_coords, &batch.residue_mask)?;
    let disto = distogram_loss(g, store, cfg, z, &batch.true_coords, &batch.residue_mask)?;
    let msa = masked_msa_loss(g, store, cfg, m, batch)?;
    // Weights: structural term dominates, matching AlphaFold's 1.0 FAPE /
    // 0.3 distogram / 2.0 masked-MSA ratios rescaled to our loss magnitudes.
    let disto_w = g.scale(disto, 0.3)?;
    let msa_w = g.scale(msa, 0.5)?;
    let t1 = g.add(dist, disto_w)?;
    let mut total = g.add(t1, msa_w)?;
    if let Some(logits) = plddt_logits {
        let coords_value = g.value(pred_coords).clone();
        let pl = plddt_loss(g, logits, &coords_value, &batch.true_coords, &batch.residue_mask)?;
        let pl_w = g.scale(pl, 0.01)?;
        total = g.add(total, pl_w)?;
    }
    let breakdown = LossBreakdown {
        distance: g.value(dist).item(),
        distogram: g.value(disto).item(),
        masked_msa: g.value(msa).item(),
        total: g.value(total).item(),
    };
    Ok((total, breakdown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{transform_coords, Quat, Rigid};

    #[test]
    fn distance_loss_zero_for_perfect_prediction() {
        let cfg = ModelConfig::tiny();
        let batch = FeatureBatch::synthetic(&cfg, 1);
        let mut g = Graph::new();
        let pred = g.constant(batch.true_coords.clone());
        let loss =
            distance_map_loss(&mut g, pred, &batch.true_coords, &batch.residue_mask).unwrap();
        assert!(g.value(loss).item() < 1e-4);
    }

    #[test]
    fn distance_loss_invariant_to_rigid_motion() {
        let cfg = ModelConfig::tiny();
        let batch = FeatureBatch::synthetic(&cfg, 2);
        let moved = transform_coords(
            Rigid {
                rot: Quat::from_axis_angle([1.0, 2.0, 0.5], 1.2),
                trans: [5.0, -2.0, 9.0],
            },
            &batch.true_coords,
        );
        let mut g = Graph::new();
        let pred = g.constant(moved);
        let loss =
            distance_map_loss(&mut g, pred, &batch.true_coords, &batch.residue_mask).unwrap();
        assert!(g.value(loss).item() < 1e-3, "loss {}", g.value(loss).item());
    }

    #[test]
    fn distance_loss_positive_for_wrong_prediction() {
        let cfg = ModelConfig::tiny();
        let batch = FeatureBatch::synthetic(&cfg, 3);
        let mut g = Graph::new();
        let pred = g.constant(Tensor::zeros(&[cfg.n_res, 3]));
        let loss =
            distance_map_loss(&mut g, pred, &batch.true_coords, &batch.residue_mask).unwrap();
        assert!(g.value(loss).item() > 0.5);
    }

    #[test]
    fn distance_loss_is_differentiable() {
        let cfg = ModelConfig::tiny();
        let batch = FeatureBatch::synthetic(&cfg, 4);
        let mut g = Graph::new();
        let pred = g.param(Tensor::randn(&[cfg.n_res, 3], 5).mul_scalar(3.0));
        let loss =
            distance_map_loss(&mut g, pred, &batch.true_coords, &batch.residue_mask).unwrap();
        g.backward(loss).unwrap();
        let grad = g.grad(pred).unwrap();
        assert!(grad.norm() > 0.0);
        assert!(!grad.has_non_finite());
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let mut g = Graph::new();
        // Two positions, 3 classes; logits strongly favour class 0.
        let good = g.constant(
            Tensor::from_vec(vec![10.0, 0.0, 0.0, 10.0, 0.0, 0.0], &[2, 3]).unwrap(),
        );
        let bad = g.constant(
            Tensor::from_vec(vec![0.0, 10.0, 0.0, 0.0, 0.0, 10.0], &[2, 3]).unwrap(),
        );
        let mut one_hot = Tensor::zeros(&[2, 3]);
        one_hot.data_mut()[0] = 1.0;
        one_hot.data_mut()[3] = 1.0;
        let w = Tensor::ones(&[2]);
        let lg = cross_entropy(&mut g, good, &one_hot, &w).unwrap();
        let lb = cross_entropy(&mut g, bad, &one_hot, &w).unwrap();
        assert!(g.value(lg).item() < 0.01);
        assert!(g.value(lb).item() > 5.0);
    }

    #[test]
    fn masked_msa_loss_zero_when_nothing_masked() {
        let cfg = ModelConfig::tiny();
        let batch = FeatureBatch::synthetic(&cfg, 6); // all targets -1
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let m = g.constant(Tensor::randn(&[cfg.n_seq, cfg.n_res, cfg.c_m], 7));
        let loss = masked_msa_loss(&mut g, &mut store, &cfg, m, &batch).unwrap();
        assert_eq!(g.value(loss).item(), 0.0);
        assert!(store.get("heads.masked_msa.weight").is_some());
    }

    #[test]
    fn plddt_loss_zero_when_confidence_matches_quality() {
        // A perfect prediction has per-residue lDDT = 1 everywhere; logits
        // of +inf-ish make sigmoid -> 1, so the loss vanishes.
        let cfg = ModelConfig::tiny();
        let batch = FeatureBatch::synthetic(&cfg, 12);
        let mut g = Graph::new();
        let logits = g.constant(Tensor::full(&[cfg.n_res, 1], 20.0));
        let loss = plddt_loss(
            &mut g,
            logits,
            &batch.true_coords,
            &batch.true_coords,
            &batch.residue_mask,
        )
        .unwrap();
        assert!(g.value(loss).item() < 1e-4);
        // Confidently wrong (logits -> 0 confidence on a perfect structure)
        // is maximally penalized.
        let bad = g.constant(Tensor::full(&[cfg.n_res, 1], -20.0));
        let loss_bad = plddt_loss(
            &mut g,
            bad,
            &batch.true_coords,
            &batch.true_coords,
            &batch.residue_mask,
        )
        .unwrap();
        assert!(g.value(loss_bad).item() > 0.9);
    }

    #[test]
    fn total_loss_combines_and_reports() {
        let cfg = ModelConfig::tiny();
        let mut batch = FeatureBatch::synthetic(&cfg, 8);
        batch.masked_msa_targets.data_mut()[0] = 3.0; // mask one position
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let m = g.constant(Tensor::randn(&[cfg.n_seq, cfg.n_res, cfg.c_m], 9).mul_scalar(0.3));
        let z = g.constant(
            Tensor::randn(&[cfg.n_res, cfg.n_res, cfg.c_z], 10).mul_scalar(0.3),
        );
        let pred = g.constant(Tensor::randn(&[cfg.n_res, 3], 11).mul_scalar(3.0));
        let (total, bd) =
            total_loss(&mut g, &mut store, &cfg, m, z, pred, None, &batch).unwrap();
        assert!(bd.total > 0.0);
        assert!(bd.distance > 0.0);
        assert!(bd.distogram > 0.0);
        assert!(bd.masked_msa > 0.0);
        let expect = bd.distance + 0.3 * bd.distogram + 0.5 * bd.masked_msa;
        assert!((bd.total - expect).abs() < 1e-4);
        assert_eq!(g.value(total).item(), bd.total);
    }
}
