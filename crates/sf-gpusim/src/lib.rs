//! A calibrated GPU performance model.
//!
//! This crate is the "hardware" of the reproduction: since the paper's
//! experiments ran on A100/H100 clusters we do not have, every performance
//! claim is re-derived on a mechanistic model instead of measured on real
//! silicon. The model is deliberately simple and fully documented:
//!
//! - [`DeviceSpec`]: peak math throughput, memory bandwidth, SM count, and
//!   kernel-launch overhead for NVIDIA A100 and H100 (public spec-sheet
//!   numbers).
//! - [`Kernel`]: a unit of GPU work characterized by FLOPs, bytes moved,
//!   achieved-efficiency factor, and launch parallelism. Duration follows
//!   the **roofline**: `max(flops / (peak·eff), bytes / (bw·eff·occ))`,
//!   where occupancy `occ` degrades when the launch has too few blocks to
//!   fill the SMs — the paper's "poor kernel scalability" under DAP.
//! - [`Stream`]: a CUDA-stream timeline with a CPU launch cursor and a GPU
//!   execution cursor; when the CPU cannot launch fast enough (150k tiny
//!   kernels, background CPU peaks, Python GC), the GPU starves — the
//!   paper's "CPU overhead".
//! - [`CudaGraph`] / [`GraphCache`]: capture-once/replay-many execution that
//!   removes per-kernel launch cost, with a cache keyed by shape signature
//!   for AlphaFold's recycling-dependent graphs.
//! - [`autotune`](mod@autotune): a Triton-style tile-configuration
//!   search over the model.

pub mod autotune;
pub mod device;
pub mod graph;
pub mod kernel;
pub mod stream;
pub mod trace;

pub use autotune::{autotune, KernelTemplate, TileConfig};
pub use device::DeviceSpec;
pub use graph::{CudaGraph, GraphCache};
pub use kernel::{Kernel, KernelClass};
pub use stream::{CpuModel, Stream, StreamStats};
pub use trace::{trace_eager, trace_graph, SIM_PID, TID_CPU, TID_GPU};
