//! Model input features — the contract between the data pipeline and the
//! model.

use crate::config::{ModelConfig, DISTOGRAM_BINS, NUM_AA_TYPES};
use sf_tensor::{Tensor, TensorError};

/// One featurized training sample (a crop), as produced by the `sf-data`
/// pipeline and consumed by [`crate::AlphaFold::forward`].
#[derive(Debug, Clone)]
pub struct FeatureBatch {
    /// Target sequence one-hot, `[n_res, NUM_AA_TYPES]`.
    pub target_feat: Tensor,
    /// Clustered MSA features (one-hot + deletions + cluster profile),
    /// `[n_seq, n_res, ModelConfig::msa_feat_dim()]`.
    pub msa_feat: Tensor,
    /// Extra MSA features, `[n_extra_seq, n_res, extra_msa_feat_dim()]`.
    pub extra_msa_feat: Tensor,
    /// Template pair features (distogram one-hot),
    /// `[n_templates, n_res, n_res, DISTOGRAM_BINS]`.
    pub template_feat: Tensor,
    /// Ground-truth Cα coordinates in Å, `[n_res, 3]`.
    pub true_coords: Tensor,
    /// Per-residue resolution mask, `[n_res]` (1 = resolved).
    pub residue_mask: Tensor,
    /// Masked-MSA reconstruction targets: true residue identities at masked
    /// positions, `[n_seq, n_res]` as class indices (`-1` where not masked).
    pub masked_msa_targets: Tensor,
    /// Residue indices after cropping (for relative positional encoding),
    /// `[n_res]`.
    pub residue_index: Tensor,
}

impl FeatureBatch {
    /// Validates shapes against a config.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] naming the offending feature.
    pub fn validate(&self, cfg: &ModelConfig) -> Result<(), TensorError> {
        let checks: [(&str, &Tensor, Vec<usize>); 7] = [
            ("target_feat", &self.target_feat, vec![cfg.n_res, NUM_AA_TYPES]),
            (
                "msa_feat",
                &self.msa_feat,
                vec![cfg.n_seq, cfg.n_res, cfg.msa_feat_dim()],
            ),
            (
                "extra_msa_feat",
                &self.extra_msa_feat,
                vec![cfg.n_extra_seq, cfg.n_res, cfg.extra_msa_feat_dim()],
            ),
            (
                "template_feat",
                &self.template_feat,
                vec![cfg.n_templates, cfg.n_res, cfg.n_res, DISTOGRAM_BINS],
            ),
            ("true_coords", &self.true_coords, vec![cfg.n_res, 3]),
            ("residue_mask", &self.residue_mask, vec![cfg.n_res]),
            ("residue_index", &self.residue_index, vec![cfg.n_res]),
        ];
        for (name, t, dims) in checks {
            if t.dims() != dims.as_slice() {
                return Err(TensorError::ShapeMismatch {
                    op: Box::leak(name.to_string().into_boxed_str()),
                    lhs: dims,
                    rhs: t.dims().to_vec(),
                });
            }
        }
        Ok(())
    }

    /// A deterministic random batch matching `cfg` — handy for tests and
    /// shape-only benchmarks. Coordinates form a smooth helix-like curve so
    /// distance-based losses are well-conditioned.
    pub fn synthetic(cfg: &ModelConfig, seed: u64) -> Self {
        let n = cfg.n_res;
        let mut coords = Tensor::zeros(&[n, 3]);
        for i in 0..n {
            let t = i as f32 * 0.6;
            coords.data_mut()[i * 3] = 4.0 * t.cos() + 0.3 * (seed % 7) as f32;
            coords.data_mut()[i * 3 + 1] = 4.0 * t.sin();
            coords.data_mut()[i * 3 + 2] = 1.5 * i as f32;
        }
        let aa = |s: u64| -> Tensor {
            // Rough one-hot: pick a residue type per position.
            let mut t = Tensor::zeros(&[n, NUM_AA_TYPES]);
            for i in 0..n {
                let ty = ((i as u64 * 7 + s * 13 + 3) % NUM_AA_TYPES as u64) as usize;
                t.data_mut()[i * NUM_AA_TYPES + ty] = 1.0;
            }
            t
        };
        let msa = |rows: usize, w: usize, s: u64| -> Tensor {
            let mut t = Tensor::zeros(&[rows, n, w]);
            for r in 0..rows {
                for i in 0..n {
                    let ty = ((i as u64 * 7 + r as u64 * 31 + s) % NUM_AA_TYPES as u64) as usize;
                    t.data_mut()[(r * n + i) * w + ty] = 1.0;
                }
            }
            t
        };
        FeatureBatch {
            target_feat: aa(seed),
            msa_feat: msa(cfg.n_seq, cfg.msa_feat_dim(), seed),
            extra_msa_feat: msa(cfg.n_extra_seq, cfg.extra_msa_feat_dim(), seed ^ 0x5555),
            template_feat: Tensor::rand_uniform(
                &[cfg.n_templates, n, n, DISTOGRAM_BINS],
                0.0,
                0.2,
                seed ^ 0xAAAA,
            ),
            true_coords: coords,
            residue_mask: Tensor::ones(&[n]),
            masked_msa_targets: Tensor::full(&[cfg.n_seq, n], -1.0),
            residue_index: Tensor::arange(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_batch_validates() {
        let cfg = ModelConfig::tiny();
        let b = FeatureBatch::synthetic(&cfg, 3);
        b.validate(&cfg).unwrap();
    }

    #[test]
    fn validate_catches_wrong_shape() {
        let cfg = ModelConfig::tiny();
        let mut b = FeatureBatch::synthetic(&cfg, 3);
        b.true_coords = Tensor::zeros(&[cfg.n_res + 1, 3]);
        assert!(b.validate(&cfg).is_err());
    }

    #[test]
    fn synthetic_is_deterministic() {
        let cfg = ModelConfig::tiny();
        let a = FeatureBatch::synthetic(&cfg, 9);
        let b = FeatureBatch::synthetic(&cfg, 9);
        assert_eq!(a.msa_feat, b.msa_feat);
        assert_eq!(a.true_coords, b.true_coords);
    }

    #[test]
    fn coords_are_spread_out() {
        let cfg = ModelConfig::tiny();
        let b = FeatureBatch::synthetic(&cfg, 1);
        // Successive residues should be a plausible 2-6 Å apart.
        for i in 0..cfg.n_res - 1 {
            let d: f32 = (0..3)
                .map(|k| {
                    let a = b.true_coords.at(&[i, k]).unwrap();
                    let c = b.true_coords.at(&[i + 1, k]).unwrap();
                    (a - c) * (a - c)
                })
                .sum::<f32>()
                .sqrt();
            assert!(d > 0.5 && d < 10.0, "step {i} distance {d}");
        }
    }
}
