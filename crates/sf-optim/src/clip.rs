//! Gradient clipping by global norm.
//!
//! The naive implementation norms and scales each of AlphaFold's >4000
//! gradient tensors separately (thousands of kernel launches, <1% of
//! theoretical throughput per the paper). The optimized path reuses the
//! distributed-training **gradient buckets**: gradients already live packed
//! in a handful of flat buffers for the all-reduce, so the norm reduces over
//! tens of buffers instead of thousands of tensors — and in the cluster
//! simulator its latency hides under the communication.

use crate::Grads;
use sf_tensor::Tensor;

/// Computes the global L2 norm the naive way: one reduction per tensor,
/// then a host-side combine. Returns the norm.
pub fn global_norm_naive(grads: &Grads) -> f32 {
    grads
        .values()
        .map(|g| {
            let n = g.norm() as f64;
            n * n
        })
        .sum::<f64>()
        .sqrt() as f32
}

/// Clips all gradients in place so the global norm is at most `max_norm`.
/// Returns the pre-clip norm.
///
/// A non-finite norm (NaN/inf gradients) is returned untouched and the
/// gradients are left unscaled: `max_norm / inf == 0` would silently turn
/// infinite gradients into NaN, and `norm > max_norm` is false for NaN, so
/// scaling in either case would corrupt or mask the blow-up. Callers skip
/// the step when `!norm.is_finite()`.
pub fn clip_by_global_norm(grads: &mut Grads, max_norm: f32) -> f32 {
    let norm = global_norm_naive(grads);
    if !norm.is_finite() {
        return norm;
    }
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grads.values_mut() {
            // One more pass per tensor — the second kernel storm.
            g.map_inplace(|x| x * scale);
        }
    }
    norm
}

/// Flat gradient buckets, mirroring PyTorch DDP's communication buffers:
/// gradients are packed into a few contiguous slabs of at most
/// `bucket_bytes` each, in deterministic (sorted-name) order.
#[derive(Debug, Clone)]
pub struct GradBuckets {
    buckets: Vec<Vec<f32>>,
    /// (name, bucket index, offset, original dims) for unpacking.
    layout: Vec<(String, usize, usize, Vec<usize>)>,
}

impl GradBuckets {
    /// Packs `grads` into buckets of at most `bucket_bytes` bytes
    /// (last bucket may be smaller; a tensor larger than the bucket size
    /// gets a bucket of its own).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_bytes < 4` (cannot hold a single f32).
    pub fn pack(grads: &Grads, bucket_bytes: usize) -> Self {
        assert!(bucket_bytes >= 4, "bucket must hold at least one f32");
        let cap = bucket_bytes / 4;
        let mut buckets: Vec<Vec<f32>> = Vec::new();
        let mut layout = Vec::new();
        for (name, g) in grads {
            let need = g.len();
            let fits = buckets
                .last()
                .map(|b| b.len() + need <= cap)
                .unwrap_or(false);
            if !fits {
                buckets.push(Vec::new());
            }
            let idx = buckets.len() - 1;
            let off = buckets[idx].len();
            buckets[idx].extend_from_slice(g.data());
            layout.push((name.clone(), idx, off, g.dims().to_vec()));
        }
        GradBuckets { buckets, layout }
    }

    /// Number of buckets (the paper: "reducing the kernel launch from
    /// thousands to tens").
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Mutable access to the flat slabs (the cluster simulator all-reduces
    /// these directly).
    pub fn buckets_mut(&mut self) -> &mut [Vec<f32>] {
        &mut self.buckets
    }

    /// Read access to the flat slabs.
    pub fn buckets(&self) -> &[Vec<f32>] {
        &self.buckets
    }

    /// Global L2 norm computed over the flat buckets — one reduction per
    /// bucket.
    pub fn global_norm(&self) -> f32 {
        self.buckets
            .iter()
            .map(|b| b.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>())
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Scales every element in place (one pass per bucket).
    pub fn scale(&mut self, s: f32) {
        for b in &mut self.buckets {
            for x in b {
                *x *= s;
            }
        }
    }

    /// Clips to `max_norm` over the buckets; returns the pre-clip norm.
    ///
    /// As with [`clip_by_global_norm`], a non-finite norm leaves the
    /// buckets unscaled and is returned for the caller to act on.
    pub fn clip(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if !norm.is_finite() {
            return norm;
        }
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
        norm
    }

    /// Unpacks the (possibly scaled) buckets back into a gradient map,
    /// restoring each gradient's original shape from the layout.
    pub fn unpack(&self) -> Grads {
        let mut out = Grads::new();
        for (name, idx, off, dims) in &self.layout {
            let len: usize = dims.iter().product();
            let data = self.buckets[*idx][*off..*off + len].to_vec();
            out.insert(
                name.clone(),
                Tensor::from_vec(data, dims).expect("layout dims match packed length"),
            );
        }
        out
    }
}

/// Bucketed global-norm computation (the optimized path): pack once, norm
/// over tens of slabs.
pub fn bucketed_global_norm(grads: &Grads, bucket_bytes: usize) -> f32 {
    GradBuckets::pack(grads, bucket_bytes).global_norm()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_grads() -> Grads {
        let mut g = Grads::new();
        g.insert("a".into(), Tensor::from_vec(vec![3.0], &[1]).unwrap());
        g.insert("b".into(), Tensor::from_vec(vec![4.0], &[1]).unwrap());
        g
    }

    #[test]
    fn naive_norm_is_pythagorean() {
        assert!((global_norm_naive(&sample_grads()) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn clip_scales_down_only_when_needed() {
        let mut g = sample_grads();
        let norm = clip_by_global_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((global_norm_naive(&g) - 1.0).abs() < 1e-5);

        let mut g2 = sample_grads();
        clip_by_global_norm(&mut g2, 100.0);
        assert_eq!(g2["a"].data(), &[3.0]); // untouched
    }

    #[test]
    fn bucketed_norm_matches_naive() {
        let mut g = Grads::new();
        for i in 0..20 {
            g.insert(format!("p{i:02}"), Tensor::randn(&[7, 3], i as u64));
        }
        let naive = global_norm_naive(&g);
        for bucket_bytes in [4, 64, 1024, 1 << 20] {
            let bucketed = bucketed_global_norm(&g, bucket_bytes);
            assert!(
                (naive - bucketed).abs() < 1e-4 * naive,
                "bucket {bucket_bytes}: {bucketed} vs {naive}"
            );
        }
    }

    #[test]
    fn bucket_count_collapses_kernel_count() {
        let mut g = Grads::new();
        for i in 0..4000 {
            g.insert(format!("p{i:04}"), Tensor::from_vec(vec![0.1], &[1]).unwrap());
        }
        let b = GradBuckets::pack(&g, 1024);
        // 4000 one-element tensors -> ~16 buckets of 256 floats.
        assert!(b.num_buckets() <= 20, "{} buckets", b.num_buckets());
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut g = Grads::new();
        g.insert("x".into(), Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        g.insert("y".into(), Tensor::from_vec(vec![4.0, 5.0], &[2]).unwrap());
        let b = GradBuckets::pack(&g, 16);
        let back = b.unpack();
        assert_eq!(back["x"].data(), &[1.0, 2.0, 3.0]);
        assert_eq!(back["y"].data(), &[4.0, 5.0]);
    }

    #[test]
    fn unpack_restores_original_shapes() {
        let mut g = Grads::new();
        g.insert("w".into(), Tensor::randn(&[4, 3], 1));
        g.insert("b".into(), Tensor::randn(&[3], 2));
        g.insert("t".into(), Tensor::randn(&[2, 2, 5], 3));
        let back = GradBuckets::pack(&g, 64).unpack();
        for (name, orig) in &g {
            assert_eq!(back[name].dims(), orig.dims(), "shape lost for {name}");
            assert_eq!(back[name].data(), orig.data());
        }
    }

    #[test]
    fn bucketed_clip_matches_naive_clip() {
        let mut g1 = Grads::new();
        for i in 0..10 {
            g1.insert(format!("p{i}"), Tensor::randn(&[5], 100 + i as u64));
        }
        let mut g2 = g1.clone();

        clip_by_global_norm(&mut g1, 0.5);
        let mut b = GradBuckets::pack(&g2, 64);
        b.clip(0.5);
        let unpacked = b.unpack();
        for (name, t) in &g1 {
            assert!(t.allclose(&unpacked[name], 1e-5), "mismatch at {name}");
        }
        let _ = &mut g2;
    }

    fn grads_with(values: &[f32]) -> Grads {
        let mut g = Grads::new();
        g.insert("ok".into(), Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap());
        g.insert("bad".into(), Tensor::from_vec(values.to_vec(), &[values.len()]).unwrap());
        g
    }

    #[test]
    fn nan_norm_is_surfaced_and_grads_left_alone() {
        let mut g = grads_with(&[f32::NAN, 1.0]);
        let norm = clip_by_global_norm(&mut g, 1.0);
        assert!(norm.is_nan(), "NaN norm must reach the caller, got {norm}");
        // The finite gradient must not have been scaled behind our back.
        assert_eq!(g["ok"].data(), &[3.0, 4.0]);
    }

    #[test]
    fn inf_norm_does_not_nan_poison_gradients() {
        let mut g = grads_with(&[f32::INFINITY, 1.0]);
        let norm = clip_by_global_norm(&mut g, 1.0);
        assert_eq!(norm, f32::INFINITY);
        // Before the fix, scale = max_norm/inf = 0 and inf * 0 = NaN: the
        // blown-up gradient was silently replaced by NaN.
        assert_eq!(g["bad"].data()[0], f32::INFINITY);
        assert_eq!(g["ok"].data(), &[3.0, 4.0]);
    }

    #[test]
    fn bucketed_clip_surfaces_non_finite_norm() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let g = grads_with(&[bad, 1.0]);
            let mut b = GradBuckets::pack(&g, 64);
            let norm = b.clip(1.0);
            assert!(!norm.is_finite(), "norm {norm} should be non-finite");
            let back = b.unpack();
            assert_eq!(back["ok"].data(), &[3.0, 4.0], "finite grads scaled");
        }
    }

    #[test]
    fn zero_grads_do_not_divide_by_zero() {
        let mut g = Grads::new();
        g.insert("z".into(), Tensor::zeros(&[4]));
        let norm = clip_by_global_norm(&mut g, 1.0);
        assert_eq!(norm, 0.0);
        assert!(!g["z"].has_non_finite());
    }
}
