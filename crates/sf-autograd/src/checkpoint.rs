//! Gradient checkpointing: trade recomputation for activation memory.
//!
//! OpenFold depends on gradient checkpointing to fit AlphaFold's `O(n³)`
//! Evoformer activations in GPU memory; ScaleFold's DAP sharding frees
//! enough memory to *disable* it, removing the backward-pass recomputation
//! (§4.1). This module implements the real mechanism so both configurations
//! are runnable and comparable (see `Graph::activation_bytes`).

use crate::graph::{Graph, Var};
use crate::op::Op;
use crate::Result;
use sf_tensor::Tensor;
use std::rc::Rc;

/// A checkpointed segment: rebuilds its sub-network from input values.
///
/// The closure must be *pure* (same inputs ⇒ same outputs) — the usual
/// checkpointing contract.
pub(crate) type CheckpointFn = dyn Fn(&mut Graph, &[Var]) -> Result<Var>;

impl Graph {
    /// Runs `f` as a checkpointed segment.
    ///
    /// Forward: `f` executes on a scratch tape that is thrown away — only
    /// the segment's *output* is stored on this tape (one node), so the
    /// segment's intermediate activations cost no persistent memory.
    /// Backward: `f` is re-executed on a fresh scratch tape and
    /// differentiated to obtain input cotangents.
    ///
    /// # Errors
    ///
    /// Propagates any error from `f` or from the underlying tensor ops.
    ///
    /// # Example
    ///
    /// ```
    /// use sf_autograd::Graph;
    /// use sf_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), sf_autograd::AutogradError> {
    /// let mut g = Graph::new();
    /// let x = g.param(Tensor::from_vec(vec![3.0], &[1])?);
    /// let y = g.checkpoint(&[x], |sub, ins| {
    ///     let sq = sub.square(ins[0])?;
    ///     sub.scale(sq, 2.0) // y = 2 x^2
    /// })?;
    /// let loss = g.sum_all(y)?;
    /// g.backward(loss)?;
    /// assert_eq!(g.grad(x).expect("grad").data(), &[12.0]); // 4x
    /// # Ok(())
    /// # }
    /// ```
    pub fn checkpoint(
        &mut self,
        inputs: &[Var],
        f: impl Fn(&mut Graph, &[Var]) -> Result<Var> + 'static,
    ) -> Result<Var> {
        for &v in inputs {
            self.check(v)?;
        }
        let input_values: Vec<Tensor> =
            inputs.iter().map(|&v| self.value(v).clone()).collect();
        let f: Rc<CheckpointFn> = Rc::new(f);
        // Forward on a scratch tape; keep only the output value.
        let out_value = run_segment(&f, &input_values)?.0;
        Ok(self.push(
            out_value,
            Op::Checkpoint {
                inputs: inputs.to_vec(),
                f,
            },
        ))
    }
}

/// Executes a segment on a fresh tape; returns `(output_value, tape, vars)`.
fn run_segment(
    f: &Rc<CheckpointFn>,
    input_values: &[Tensor],
) -> Result<(Tensor, Graph, Vec<Var>, Var)> {
    let mut sub = Graph::new();
    let vars: Vec<Var> = input_values.iter().map(|t| sub.param(t.clone())).collect();
    let out = f(&mut sub, &vars)?;
    Ok((sub.value(out).clone(), sub, vars, out))
}

/// Re-runs a checkpointed segment and differentiates it, returning one
/// optional gradient per input (None if no gradient flowed).
pub(crate) fn checkpoint_backward(
    f: &Rc<CheckpointFn>,
    input_values: &[Tensor],
    dy: Tensor,
) -> Result<Vec<Option<Tensor>>> {
    let (_, mut sub, vars, out) = run_segment(f, input_values)?;
    sub.backward_seeded(out, dy)?;
    Ok(vars.iter().map(|&v| sub.grad(v).cloned()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_matches_direct() {
        // y = sum( gelu(x W) ) computed directly and checkpointed.
        let x0 = Tensor::randn(&[3, 4], 1);
        let w0 = Tensor::randn(&[4, 5], 2);

        let mut direct = Graph::new();
        let x = direct.param(x0.clone());
        let w = direct.param(w0.clone());
        let h = direct.matmul(x, w).unwrap();
        let a = direct.gelu(h).unwrap();
        let loss = direct.sum_all(a).unwrap();
        direct.backward(loss).unwrap();

        let mut ck = Graph::new();
        let xc = ck.param(x0.clone());
        let wc = ck.param(w0.clone());
        let out = ck
            .checkpoint(&[xc, wc], |sub, ins| {
                let h = sub.matmul(ins[0], ins[1])?;
                sub.gelu(h)
            })
            .unwrap();
        let loss_c = ck.sum_all(out).unwrap();
        ck.backward(loss_c).unwrap();

        assert!(direct.grad(x).unwrap().allclose(ck.grad(xc).unwrap(), 1e-5));
        assert!(direct.grad(w).unwrap().allclose(ck.grad(wc).unwrap(), 1e-5));
    }

    #[test]
    fn checkpoint_reduces_activation_memory() {
        let x0 = Tensor::randn(&[16, 16], 3);
        let build = |g: &mut Graph, x: Var| -> Var {
            let mut h = x;
            for _ in 0..8 {
                h = g.gelu(h).unwrap();
                h = g.square(h).unwrap();
            }
            h
        };
        let mut direct = Graph::new();
        let xd = direct.param(x0.clone());
        let _ = build(&mut direct, xd);
        let direct_bytes = direct.activation_bytes();

        let mut ck = Graph::new();
        let xc = ck.param(x0.clone());
        let _ = ck
            .checkpoint(&[xc], move |sub, ins| {
                let mut h = ins[0];
                for _ in 0..8 {
                    h = sub.gelu(h)?;
                    h = sub.square(h)?;
                }
                Ok(h)
            })
            .unwrap();
        let ck_bytes = ck.activation_bytes();
        assert!(
            ck_bytes * 8 <= direct_bytes,
            "checkpointed {ck_bytes} vs direct {direct_bytes}"
        );
    }

    #[test]
    fn nested_checkpoints() {
        let x0 = Tensor::randn(&[4], 4);
        let mut g = Graph::new();
        let x = g.param(x0.clone());
        let y = g
            .checkpoint(&[x], |sub, ins| {
                let inner = sub.checkpoint(ins, |s2, jns| s2.square(jns[0]))?;
                s_scale(sub, inner, 3.0)
            })
            .unwrap();
        let loss = g.sum_all(y).unwrap();
        g.backward(loss).unwrap();
        // d/dx 3x^2 = 6x
        let expect = x0.mul_scalar(6.0);
        assert!(g.grad(x).unwrap().allclose(&expect, 1e-5));
    }

    fn s_scale(g: &mut Graph, v: Var, s: f32) -> crate::Result<Var> {
        g.scale(v, s)
    }
}
