//! The AlphaFold learning-rate schedule: linear warm-up, plateau, then a
//! step decay (Jumper et al. supplementary Table 4; OpenFold keeps it).

use serde::{Deserialize, Serialize};

/// Warm-up → plateau → decay learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    /// Peak learning rate after warm-up.
    pub peak_lr: f32,
    /// Linear warm-up length in steps (AlphaFold: 1000).
    pub warmup_steps: u64,
    /// Step at which the decay kicks in (AlphaFold: 50k of ~75k initial
    /// training steps).
    pub decay_after: u64,
    /// Multiplicative decay factor applied after `decay_after`
    /// (AlphaFold: 0.95).
    pub decay_factor: f32,
}

impl Default for LrSchedule {
    fn default() -> Self {
        LrSchedule {
            peak_lr: 1e-3,
            warmup_steps: 1000,
            decay_after: 50_000,
            decay_factor: 0.95,
        }
    }
}

impl LrSchedule {
    /// The learning rate at a (0-based) optimizer step.
    pub fn lr_at(&self, step: u64) -> f32 {
        if step < self.warmup_steps {
            self.peak_lr * (step + 1) as f32 / self.warmup_steps.max(1) as f32
        } else if step < self.decay_after {
            self.peak_lr
        } else {
            self.peak_lr * self.decay_factor
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::default();
        assert!(s.lr_at(0) < 0.01 * s.peak_lr + 1e-9);
        assert!((s.lr_at(499) - 0.5 * s.peak_lr).abs() < 0.01 * s.peak_lr);
        assert_eq!(s.lr_at(1000), s.peak_lr);
    }

    #[test]
    fn plateau_holds_peak() {
        let s = LrSchedule::default();
        assert_eq!(s.lr_at(10_000), s.peak_lr);
        assert_eq!(s.lr_at(49_999), s.peak_lr);
    }

    #[test]
    fn decay_applies_after_threshold() {
        let s = LrSchedule::default();
        assert!((s.lr_at(50_000) - 0.95 * s.peak_lr).abs() < 1e-9);
        assert!((s.lr_at(70_000) - 0.95 * s.peak_lr).abs() < 1e-9);
    }

    #[test]
    fn zero_warmup_is_safe() {
        let s = LrSchedule {
            warmup_steps: 0,
            ..LrSchedule::default()
        };
        assert_eq!(s.lr_at(0), s.peak_lr);
    }
}
