//! The roofline kernel cost model.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Classification used by the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// GEMM-like: bound by math throughput.
    MathBound,
    /// Elementwise / reduction / attention-softmax: bound by HBM traffic.
    MemoryBound,
    /// Pure copies / memsets.
    MemoryOp,
}

/// One GPU kernel invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name for profiling breakdowns.
    pub name: String,
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes read + written from HBM.
    pub bytes: f64,
    /// Achieved fraction of the relevant peak (kernel implementation
    /// quality; e.g. the paper measured naive MHA at 26% and naive LN at
    /// 10% of theoretical).
    pub efficiency: f64,
    /// Independent thread blocks in the launch — governs occupancy when the
    /// problem shrinks under DAP.
    pub parallelism: usize,
    /// Tensor-core precision selector for math-bound work ("fp32" / "tf32"
    /// / "bf16").
    pub precision: String,
}

impl Kernel {
    /// A math-bound kernel (GEMM-like).
    pub fn math(name: impl Into<String>, flops: f64, bytes: f64, parallelism: usize) -> Self {
        Kernel {
            name: name.into(),
            flops,
            bytes,
            efficiency: 0.5,
            parallelism,
            precision: "tf32".to_string(),
        }
    }

    /// A memory-bound kernel (elementwise / reduction / softmax).
    pub fn memory(name: impl Into<String>, bytes: f64, parallelism: usize) -> Self {
        Kernel {
            name: name.into(),
            flops: 0.0,
            bytes,
            efficiency: 0.5,
            parallelism,
            precision: "fp32".to_string(),
        }
    }

    /// A pure memory operation (copy / set).
    pub fn memop(name: impl Into<String>, bytes: f64) -> Self {
        Kernel {
            name: name.into(),
            flops: 0.0,
            bytes,
            efficiency: 0.8,
            parallelism: 1024,
            precision: "fp32".to_string(),
        }
    }

    /// Builder: sets the achieved-efficiency factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eff <= 1`.
    pub fn with_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0,1], got {eff}");
        self.efficiency = eff;
        self
    }

    /// Builder: sets the precision selector.
    pub fn with_precision(mut self, p: &str) -> Self {
        self.precision = p.to_string();
        p.clone_into(&mut self.precision);
        self
    }

    /// Classifies per the paper's Table 1 taxonomy: a kernel is math-bound
    /// when its roofline-critical side is FLOPs, a memory-op when it moves
    /// bytes with (almost) no math, else memory-bound.
    pub fn class(&self, device: &DeviceSpec) -> KernelClass {
        if self.flops == 0.0 {
            return if self.name.contains("copy")
                || self.name.contains("memset")
                || self.name.contains("cast")
            {
                KernelClass::MemoryOp
            } else {
                KernelClass::MemoryBound
            };
        }
        let t_math = self.flops / device.peak_flops(&self.precision);
        let t_mem = self.bytes / device.mem_bw_bytes();
        if t_math >= t_mem {
            KernelClass::MathBound
        } else {
            KernelClass::MemoryBound
        }
    }

    /// Occupancy factor in `(0, 1]`: launches with fewer blocks than the
    /// device needs to hide memory latency cannot reach full bandwidth.
    /// We require ~4 resident blocks per SM for full throughput (a standard
    /// rule of thumb); below that, throughput scales linearly with a floor.
    pub fn occupancy(&self, device: &DeviceSpec) -> f64 {
        let full = (device.sm_count * 4) as f64;
        (self.parallelism as f64 / full).clamp(0.05, 1.0)
    }

    /// Execution duration on `device`, in seconds, by the roofline model.
    pub fn duration_s(&self, device: &DeviceSpec) -> f64 {
        let occ = self.occupancy(device);
        let t_math = if self.flops > 0.0 {
            self.flops / (device.peak_flops(&self.precision) * self.efficiency * occ)
        } else {
            0.0
        };
        let t_mem = self.bytes / (device.mem_bw_bytes() * self.efficiency * occ);
        t_math.max(t_mem) + device.kernel_tail_us * 1e-6
    }

    /// Scales the kernel's problem size by `1/n` (what DAP-n does to most
    /// kernels): FLOPs, bytes, and launch parallelism all shrink.
    pub fn shard(&self, n: usize) -> Kernel {
        let n = n.max(1);
        Kernel {
            name: self.name.clone(),
            flops: self.flops / n as f64,
            bytes: self.bytes / n as f64,
            efficiency: self.efficiency,
            // Ceiling division: the shards cover the original work, so the
            // per-shard launch never has *less* relative parallelism.
            parallelism: self.parallelism.div_ceil(n),
            precision: self.precision.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_intuition() {
        let dev = DeviceSpec::a100();
        // Big square GEMM: heavily math-bound.
        let gemm = Kernel::math("gemm", 2.0 * 4096f64.powi(3), 3.0 * 4096.0 * 4096.0 * 4.0, 4096);
        assert_eq!(gemm.class(&dev), KernelClass::MathBound);
        // LayerNorm: pure traffic.
        let ln = Kernel::memory("layernorm", 3.0 * 1e6 * 4.0, 1024);
        assert_eq!(ln.class(&dev), KernelClass::MemoryBound);
        let cp = Kernel::memop("copy_h2d", 1e6);
        assert_eq!(cp.class(&dev), KernelClass::MemoryOp);
    }

    #[test]
    fn duration_scales_with_problem_size() {
        let dev = DeviceSpec::h100();
        let k1 = Kernel::memory("ew", 1e9, 4096);
        let k2 = Kernel::memory("ew", 2e9, 4096);
        assert!(k2.duration_s(&dev) > 1.9 * k1.duration_s(&dev) * 0.9);
    }

    #[test]
    fn small_launches_lose_occupancy() {
        let dev = DeviceSpec::h100();
        let big = Kernel::memory("ln", 1e8, 4096);
        let small = big.shard(64); // DAP-style shrink
        let t_big = big.duration_s(&dev);
        let t_small = small.duration_s(&dev);
        // Perfect scaling would be 64x faster; occupancy loss makes it
        // noticeably worse than 64x.
        assert!(
            t_small > t_big / 64.0 * 1.5,
            "small {t_small} vs ideal {}",
            t_big / 64.0
        );
    }

    #[test]
    fn bf16_halves_memory_time() {
        let dev = DeviceSpec::a100();
        let f32k = Kernel::memory("ew", 4e9, 4096);
        let bf16k = Kernel::memory("ew", 2e9, 4096);
        let r = f32k.duration_s(&dev) / bf16k.duration_s(&dev);
        assert!(r > 1.8 && r < 2.1, "ratio {r}");
    }

    #[test]
    fn higher_efficiency_is_faster() {
        let dev = DeviceSpec::a100();
        let naive = Kernel::memory("mha", 1e9, 2048).with_efficiency(0.26);
        let fused = Kernel::memory("mha_fused", 1e9, 2048).with_efficiency(0.65);
        assert!(fused.duration_s(&dev) < naive.duration_s(&dev));
    }

    #[test]
    fn shard_reduces_all_dimensions() {
        let k = Kernel::math("gemm", 8e9, 4e6, 512);
        let s = k.shard(4);
        assert_eq!(s.flops, 2e9);
        assert_eq!(s.bytes, 1e6);
        assert_eq!(s.parallelism, 128);
        // Sharding by 0 or 1 is identity-ish.
        assert_eq!(k.shard(1).flops, k.flops);
        assert_eq!(k.shard(0).flops, k.flops);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_invalid_efficiency() {
        let _ = Kernel::memory("x", 1.0, 1).with_efficiency(1.5);
    }
}
