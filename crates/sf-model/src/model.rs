//! The full AlphaFold model: embedders → Evoformer stack → structure module,
//! wrapped in the recycling loop.

use crate::config::ModelConfig;
use crate::embed::{
    extra_msa_stack, input_embedder, recycling_embedder, template_pair_stack, RecycledState,
};
use crate::dap::AxialCollectives;
use crate::evoformer::{evoformer_block, evoformer_block_dap, BlockDims};
use crate::features::FeatureBatch;
use crate::loss::{total_loss, LossBreakdown};
use crate::structure::structure_module;
use sf_autograd::{Graph, ParamStore, Result, Var};
use sf_tensor::Tensor;

/// Result of one full forward pass (one training step's compute for one
/// sample).
#[derive(Debug, Clone)]
pub struct ModelOutput {
    /// Final MSA representation, `[n_seq, n_res, c_m]`.
    pub msa: Var,
    /// Final pair representation, `[n_res, n_res, c_z]`.
    pub pair: Var,
    /// Final single representation, `[n_res, c_s]`.
    pub single: Var,
    /// Predicted Cα coordinates, `[n_res, 3]`.
    pub coords: Var,
    /// Total training loss (scalar variable — call `Graph::backward` on it).
    pub loss: Var,
    /// Scalar loss terms for logging.
    pub loss_breakdown: LossBreakdown,
}

/// The AlphaFold model. Owns only the configuration; parameters live in the
/// caller's [`ParamStore`] so they persist across steps and can be shared
/// with optimizers.
///
/// # Example
///
/// ```
/// use sf_autograd::{Graph, ParamStore};
/// use sf_model::{AlphaFold, FeatureBatch, ModelConfig};
///
/// # fn main() -> Result<(), sf_autograd::AutogradError> {
/// let cfg = ModelConfig::tiny();
/// let model = AlphaFold::new(cfg.clone());
/// let batch = FeatureBatch::synthetic(&cfg, 0);
/// let mut store = ParamStore::new();
/// let mut g = Graph::new();
/// let out = model.forward(&mut g, &mut store, &batch)?;
/// g.backward(out.loss)?;
/// assert!(out.loss_breakdown.total.is_finite());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AlphaFold {
    cfg: ModelConfig,
}

impl AlphaFold {
    /// Creates a model for the given configuration.
    pub fn new(cfg: ModelConfig) -> Self {
        AlphaFold { cfg }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Full forward pass **including recycling**: runs
    /// `cfg.recycle_iters - 1` warm iterations without gradient tracking
    /// (their tapes are discarded — AlphaFold only backpropagates the last
    /// iteration), then the final iteration on `g`, attaching the loss.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors; validate the batch first with
    /// [`FeatureBatch::validate`] for friendlier messages.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &mut ParamStore,
        batch: &FeatureBatch,
    ) -> Result<ModelOutput> {
        self.forward_dap(g, store, batch, None)
    }

    /// [`AlphaFold::forward`] under **Dynamic Axial Parallelism**: when an
    /// executor is supplied, every main-stack Evoformer block runs as
    /// [`evoformer_block_dap`] — axial attentions on activation shards,
    /// axis switches through the executor's real all-to-all / all-gather.
    /// The extra-MSA and template stacks stay unsharded (their axial
    /// dimensions are the model's smallest; FastFold likewise applies DAP
    /// to the main Evoformer). `None` (or a 1-rank executor) reproduces
    /// the plain forward exactly.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors and collective-executor value
    /// mismatches.
    pub fn forward_dap(
        &self,
        g: &mut Graph,
        store: &mut ParamStore,
        batch: &FeatureBatch,
        dap: Option<&dyn AxialCollectives>,
    ) -> Result<ModelOutput> {
        let mut prev: Option<RecycledState> = None;
        // Warm (no-grad) recycling iterations on throwaway tapes. DAP
        // shards these too: every recycling iteration pays the same
        // communication the final one does.
        for _ in 1..self.cfg.recycle_iters.max(1) {
            let mut warm = Graph::new();
            let (m, z, coords, _) = self.iteration(&mut warm, store, batch, prev.as_ref(), dap)?;
            let m0 = warm
                .value(m)
                .slice_axis(0, 0, 1)?
                .reshape(&[self.cfg.n_res, self.cfg.c_m])?;
            prev = Some(RecycledState {
                m_first_row: m0,
                z: warm.value(z).clone(),
                coords: warm.value(coords).clone(),
            });
        }
        // Final iteration with gradients.
        let (m, z, coords, plddt) = self.iteration(g, store, batch, prev.as_ref(), dap)?;
        let single = {
            // Re-derive the single representation handle for downstream use.
            let m0 = g.slice_axis(m, 0, 0, 1)?;
            g.reshape(m0, &[self.cfg.n_res, self.cfg.c_m])?
        };
        let (loss, loss_breakdown) =
            total_loss(g, store, &self.cfg, m, z, coords, Some(plddt), batch)?;
        Ok(ModelOutput {
            msa: m,
            pair: z,
            single,
            coords,
            loss,
            loss_breakdown,
        })
    }

    /// One recycling iteration: embed → (recycle inject) → extra-MSA stack →
    /// template stack → Evoformer stack → structure module.
    fn iteration(
        &self,
        g: &mut Graph,
        store: &mut ParamStore,
        batch: &FeatureBatch,
        prev: Option<&RecycledState>,
        dap: Option<&dyn AxialCollectives>,
    ) -> Result<(Var, Var, Var, Var)> {
        let cfg = &self.cfg;
        let (mut m, mut z) = input_embedder(g, store, cfg, batch)?;
        let prev_state;
        let prev = match prev {
            Some(p) => p,
            None => {
                // First iteration recycles zeros (AlphaFold's convention).
                prev_state = RecycledState {
                    m_first_row: Tensor::zeros(&[cfg.n_res, cfg.c_m]),
                    z: Tensor::zeros(&[cfg.n_res, cfg.n_res, cfg.c_z]),
                    coords: Tensor::zeros(&[cfg.n_res, 3]),
                };
                &prev_state
            }
        };
        let (m2, z2) = recycling_embedder(g, store, cfg, m, z, prev)?;
        m = m2;
        z = z2;
        z = template_pair_stack(g, store, cfg, batch, z)?;
        z = extra_msa_stack(g, store, cfg, batch, z)?;

        let dims = BlockDims::main(cfg);
        for i in 0..cfg.evoformer_blocks {
            let prefix = format!("evoformer.block{i}");
            let (m2, z2) = match dap {
                Some(dap) if dap.ranks() > 1 => evoformer_block_dap(
                    g,
                    store,
                    &dims,
                    &prefix,
                    m,
                    z,
                    cfg.gradient_checkpointing,
                    dap,
                )?,
                _ => evoformer_block(g, store, &dims, &prefix, m, z, cfg.gradient_checkpointing)?,
            };
            m = m2;
            z = z2;
        }
        let s = structure_module(g, store, cfg, m, z)?;
        Ok((m, z, s.coords, s.plddt_logits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::lddt_ca;

    #[test]
    fn forward_produces_finite_outputs() {
        let cfg = ModelConfig::tiny();
        let model = AlphaFold::new(cfg.clone());
        let batch = FeatureBatch::synthetic(&cfg, 1);
        batch.validate(&cfg).unwrap();
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let out = model.forward(&mut g, &mut store, &batch).unwrap();
        assert_eq!(g.value(out.coords).dims(), &[cfg.n_res, 3]);
        assert!(!g.value(out.coords).has_non_finite());
        assert!(out.loss_breakdown.total.is_finite());
        assert!(out.loss_breakdown.total > 0.0);
    }

    #[test]
    fn backward_reaches_every_parameter() {
        let cfg = ModelConfig::tiny();
        let model = AlphaFold::new(cfg.clone());
        let batch = FeatureBatch::synthetic(&cfg, 2);
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let out = model.forward(&mut g, &mut store, &batch).unwrap();
        g.backward(out.loss).unwrap();
        let grads = g.grads_by_name().unwrap();
        let mut missing = Vec::new();
        for name in store.names() {
            if !grads.contains_key(&name) {
                missing.push(name);
            }
        }
        assert!(missing.is_empty(), "params without grads: {missing:?}");
    }

    #[test]
    fn recycling_changes_prediction() {
        let mut cfg = ModelConfig::tiny();
        let batch = FeatureBatch::synthetic(&cfg, 3);
        let mut store = ParamStore::new();

        cfg.recycle_iters = 1;
        let m1 = AlphaFold::new(cfg.clone());
        let mut g1 = Graph::new();
        let o1 = m1.forward(&mut g1, &mut store, &batch).unwrap();

        cfg.recycle_iters = 2;
        let m2 = AlphaFold::new(cfg);
        let mut g2 = Graph::new();
        let o2 = m2.forward(&mut g2, &mut store, &batch).unwrap();

        assert!(!g1.value(o1.coords).allclose(g2.value(o2.coords), 1e-7));
    }

    #[test]
    fn checkpointed_model_matches_plain() {
        let mut cfg = ModelConfig::tiny();
        cfg.evoformer_blocks = 1;
        cfg.extra_msa_blocks = 0;
        cfg.template_blocks = 0;
        cfg.n_templates = 0;
        let batch = {
            let mut b = FeatureBatch::synthetic(&cfg, 4);
            b.template_feat = Tensor::zeros(&[0, cfg.n_res, cfg.n_res, 15]);
            b
        };
        let mut store = ParamStore::new();

        cfg.gradient_checkpointing = false;
        let plain = AlphaFold::new(cfg.clone());
        let mut g1 = Graph::new();
        let o1 = plain.forward(&mut g1, &mut store, &batch).unwrap();
        g1.backward(o1.loss).unwrap();
        let grads1 = g1.grads_by_name().unwrap();

        cfg.gradient_checkpointing = true;
        let ck = AlphaFold::new(cfg);
        let mut g2 = Graph::new();
        let o2 = ck.forward(&mut g2, &mut store, &batch).unwrap();
        g2.backward(o2.loss).unwrap();
        let grads2 = g2.grads_by_name().unwrap();

        // Same loss, same gradients, less activation memory.
        assert!((o1.loss_breakdown.total - o2.loss_breakdown.total).abs() < 1e-4);
        for (name, ga) in &grads1 {
            let gb = &grads2[name];
            assert!(ga.allclose(gb, 1e-3), "grad mismatch for {name}");
        }
        assert!(g2.activation_bytes() < g1.activation_bytes());
    }

    #[test]
    fn untrained_model_scores_low_lddt() {
        let cfg = ModelConfig::tiny();
        let model = AlphaFold::new(cfg.clone());
        let batch = FeatureBatch::synthetic(&cfg, 5);
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let out = model.forward(&mut g, &mut store, &batch).unwrap();
        let score = lddt_ca(g.value(out.coords), &batch.true_coords, &batch.residue_mask);
        assert!(score < 0.6, "untrained lddt {score}");
    }
}
