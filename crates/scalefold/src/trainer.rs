//! The real training loop: actual gradient descent on the actual AlphaFold
//! model (tiny scale), wired through the non-blocking data pipeline and the
//! fused Adam+SWA optimizer — every algorithm from the paper, executing for
//! real.
//!
//! The loop is fault-tolerant: data-worker failures surface as
//! [`RecoveryEvent`]s instead of crashes, non-finite gradients skip the
//! optimizer update (the large-scale fp16 failure mode of §3.4), and
//! [`Trainer::resume_latest`] restarts from the newest checkpoint that
//! passes CRC verification. Faults can be injected deterministically with
//! an `sf_faults::FaultPlan` to drill all of this end to end.

use rand::rngs::StdRng;
use crate::dap::{DapGroup, DapStats};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sf_autograd::{CheckpointError, Graph, ParamStore};
use sf_data::featurize::featurize;
use sf_data::loader::{BlockingLoader, Dataset, LoaderConfig, LoaderError, NonBlockingPipeline};
use sf_data::SyntheticDataset;
use sf_faults::{FaultInjector, FaultPlan, FaultyDataset};
use sf_model::loss::LossBreakdown;
use sf_model::metrics::lddt_ca;
use sf_model::{AlphaFold, AxialCollectives, FeatureBatch, ModelConfig};
use sf_optim::{clip_by_global_norm, AdamConfig, FusedAdamSwa, LrSchedule};
use sf_tensor::bf16::Precision;
use sf_tensor::Tensor;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Which data pipeline feeds [`Trainer::train`].
///
/// [`LoaderKind::NonBlocking`] is the paper's pipeline (and the default);
/// [`LoaderKind::Blocking`] reproduces PyTorch `DataLoader` semantics and
/// exists so the data-wait claim is measurable as an A/B: under a straggler
/// sample, the blocking loader's trace shows a large `data_wait` share
/// while the non-blocking trace stays near zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoaderKind {
    /// ScaleFold §3.2: deliver the lowest-index *ready* batch immediately.
    #[default]
    NonBlocking,
    /// Strict sampler order: a slow batch stalls the consumer.
    Blocking,
}

/// Trainer configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Model dimensions (use [`ModelConfig::tiny`]-scale on a CPU).
    pub model: ModelConfig,
    /// Adam hyper-parameters.
    pub adam: AdamConfig,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// SWA decay.
    pub swa_decay: f32,
    /// Global-norm gradient clip threshold.
    pub clip_norm: f32,
    /// Numeric precision for gradients/activations rounding.
    pub precision: Precision,
    /// Synthetic dataset size.
    pub dataset_len: usize,
    /// Data-loader worker threads.
    pub loader_workers: usize,
    /// Which pipeline delivers batches (non-blocking unless A/B-testing
    /// the loaders).
    pub loader: LoaderKind,
    /// Compute threads for the `sf-tensor` parallel CPU backend
    /// (0 = auto: honor `SF_THREADS`, else the machine's core count).
    pub num_threads: usize,
    /// Use the fused attention-softmax-gate kernel in the Evoformer
    /// (`false` = `--no-fused`: the composed op chain, for A/B and
    /// debugging). Overrides `model.fused_kernels` when disabled.
    pub fused_kernels: bool,
    /// Dynamic Axial Parallelism degree (ScaleFold §3.3): shard the
    /// Evoformer's axial activations across this many simulated ranks,
    /// moving them with the real ring collectives. `0` or `1` disables
    /// DAP; the model's `n_seq` and `n_res` must divide evenly.
    #[serde(default = "default_dap")]
    pub dap: usize,
    /// RNG seed.
    pub seed: u64,
}

fn default_dap() -> usize {
    1
}

impl TrainerConfig {
    /// A CPU-friendly configuration for tests and examples.
    pub fn tiny() -> Self {
        TrainerConfig {
            model: ModelConfig::tiny(),
            adam: AdamConfig {
                lr: 1e-3,
                ..AdamConfig::default()
            },
            schedule: LrSchedule {
                peak_lr: 1e-3,
                warmup_steps: 10,
                decay_after: 10_000,
                decay_factor: 0.95,
                decay_every: 10_000,
            },
            swa_decay: 0.99,
            clip_norm: 1.0,
            precision: Precision::F32,
            dataset_len: 16,
            loader_workers: 2,
            loader: LoaderKind::NonBlocking,
            num_threads: 0,
            fused_kernels: true,
            dap: default_dap(),
            seed: 7,
        }
    }
}

/// Per-step training report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Optimizer step index.
    pub step: u64,
    /// Loss terms.
    pub loss: f32,
    /// Structural (distance-map) loss term.
    pub distance_loss: f32,
    /// Pre-clip global gradient norm.
    pub grad_norm: f32,
    /// lDDT-Cα of this step's prediction against the ground truth.
    pub lddt: f32,
    /// Learning rate used.
    pub lr: f32,
    /// True if the optimizer update was skipped because the loss or a
    /// gradient was non-finite (the step still counts; weights are
    /// untouched).
    pub skipped: bool,
}

/// One entry of the trainer's recovery log: a fault survived instead of a
/// crash.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// The data pipeline reported a sample that could not be prepared;
    /// training continued on the remaining samples.
    DataFault {
        /// The loader's typed error.
        error: LoaderError,
    },
    /// A non-finite loss or gradient was detected; the optimizer update
    /// was skipped.
    NonFiniteSkipped {
        /// The step (1-based, as in [`StepReport::step`]) that skipped.
        step: u64,
    },
    /// Weights were restored from a checkpoint directory, possibly
    /// falling back past corrupt files.
    Resumed {
        /// File the weights came from.
        path: PathBuf,
        /// Step number parsed from the file name, if present.
        step: Option<u64>,
        /// Newer files skipped as corrupt/unreadable.
        skipped_files: usize,
    },
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryEvent::DataFault { error } => write!(f, "data fault survived: {error}"),
            RecoveryEvent::NonFiniteSkipped { step } => {
                write!(f, "non-finite gradients at step {step}: optimizer update skipped")
            }
            RecoveryEvent::Resumed {
                path,
                step,
                skipped_files,
            } => write!(
                f,
                "resumed from {} (step {:?}, {} corrupt file(s) skipped)",
                path.display(),
                step,
                skipped_files
            ),
        }
    }
}

/// Outcome of [`Trainer::resume_latest`].
#[derive(Debug)]
pub struct ResumeSummary {
    /// File the weights were restored from.
    pub path: PathBuf,
    /// Step number parsed from the file name, if present.
    pub step: Option<u64>,
    /// Newer files skipped as corrupt/unreadable (path, reason).
    pub skipped: Vec<(PathBuf, String)>,
}

struct FeaturizingDataset {
    records: SyntheticDataset,
    cfg: ModelConfig,
    seed: u64,
}

impl Dataset for FeaturizingDataset {
    type Item = FeatureBatch;

    fn len(&self) -> usize {
        self.records.len()
    }

    fn prepare(&self, index: usize) -> FeatureBatch {
        featurize(&self.records.record(index), &self.cfg, self.seed ^ index as u64)
    }
}

/// The real trainer: owns parameters, optimizer state, and the data
/// pipeline.
///
/// # Example
///
/// ```
/// use scalefold::{Trainer, TrainerConfig};
///
/// let mut cfg = TrainerConfig::tiny();
/// cfg.model.evoformer_blocks = 1;
/// cfg.model.extra_msa_blocks = 0;
/// let mut trainer = Trainer::new(cfg);
/// let reports = trainer.train(2);
/// assert_eq!(reports.len(), 2);
/// assert!(reports.iter().all(|r| r.loss.is_finite()));
/// ```
pub struct Trainer {
    cfg: TrainerConfig,
    model: AlphaFold,
    store: ParamStore,
    optimizer: FusedAdamSwa,
    step: u64,
    rng: StdRng,
    injector: FaultInjector,
    recovery: Vec<RecoveryEvent>,
    dap_group: Option<DapGroup>,
    dap_comm: DapStats,
}

impl Trainer {
    /// Creates a trainer (parameters initialize lazily on the first step).
    pub fn new(cfg: TrainerConfig) -> Self {
        Trainer::with_faults(cfg, FaultPlan::none())
    }

    /// Creates a trainer that injects the faults of `plan` while training —
    /// worker panics and stragglers fire inside the data pipeline,
    /// NaN-gradient steps fire in [`Trainer::train_step`]. The run must
    /// survive all of them; inspect [`Trainer::recovery_log`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.dap > 1` and the model's axial dimensions do not
    /// divide evenly across the DAP ranks (see
    /// [`DapGroup::validate_config`]).
    pub fn with_faults(mut cfg: TrainerConfig, plan: FaultPlan) -> Self {
        if cfg.num_threads > 0 {
            sf_tensor::pool::set_num_threads(cfg.num_threads);
        }
        if !cfg.fused_kernels {
            cfg.model.fused_kernels = false;
        }
        let dap_group = if cfg.dap > 1 {
            if let Err(msg) = DapGroup::validate_config(&cfg.model, cfg.dap) {
                panic!("{msg}");
            }
            Some(DapGroup::new(cfg.dap))
        } else {
            None
        };
        let model = AlphaFold::new(cfg.model.clone());
        let optimizer = FusedAdamSwa::new(cfg.adam, cfg.swa_decay);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Trainer {
            model,
            store: ParamStore::new(),
            optimizer,
            step: 0,
            rng,
            injector: FaultInjector::new(plan),
            recovery: Vec::new(),
            dap_group,
            dap_comm: DapStats::default(),
            cfg,
        }
    }

    /// The parameter store (inspect or checkpoint weights).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Steps taken.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The fault injector driving this trainer (no-op for [`Trainer::new`]).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Every fault survived so far, in order.
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.recovery
    }

    /// Cumulative DAP communication over all steps so far (zero when
    /// `cfg.dap <= 1`). One step's volume is
    /// [`crate::dap::analytic_comm_volume`].
    pub fn dap_comm(&self) -> DapStats {
        self.dap_comm
    }

    /// Runs one optimization step on `batch`.
    ///
    /// # Panics
    ///
    /// Panics if the batch shapes mismatch the model configuration (call
    /// [`FeatureBatch::validate`] upstream) or an internal op fails — both
    /// indicate programming errors rather than recoverable conditions.
    pub fn train_step(&mut self, batch: &FeatureBatch) -> StepReport {
        let mut g = Graph::new();
        let out = {
            let _fwd = sf_trace::span("forward", "forward");
            let dap = self
                .dap_group
                .as_ref()
                .map(|group| group as &dyn AxialCollectives);
            self.model
                .forward_dap(&mut g, &mut self.store, batch, dap)
                .expect("forward pass on validated batch")
        };
        if let Some(group) = &self.dap_group {
            let step_comm = group.take_stats();
            self.dap_comm.all_gather_elements += step_comm.all_gather_elements;
            self.dap_comm.all_to_all_elements += step_comm.all_to_all_elements;
            self.dap_comm.gathers += step_comm.gathers;
            self.dap_comm.switches += step_comm.switches;
        }
        let mut grads = {
            let _bwd = sf_trace::span("backward", "backward");
            g.backward(out.loss).expect("scalar loss");
            let mut grads = g.grads_by_name().expect("consistent bindings");
            // Precision rounding of gradients (bf16 path of §3.4; fp16
            // shows the NaN failure mode at larger scales).
            if self.cfg.precision != Precision::F32 {
                for grad in grads.values_mut() {
                    *grad = self.cfg.precision.quantize(grad);
                }
            }
            grads
        };
        if self.injector.poison_grads_at(self.step) {
            if let Some(grad) = grads.values_mut().next() {
                let mut data = grad.data().to_vec();
                if let Some(first) = data.first_mut() {
                    *first = f32::NAN;
                }
                *grad = Tensor::from_vec(data, grad.dims()).expect("same shape");
            }
        }
        // Non-finite guard: a NaN/Inf loss or gradient (the fp16 blow-up
        // mode at scale) skips the optimizer update instead of destroying
        // the weights. The step still counts so schedules stay aligned
        // across data-parallel replicas. A poisoned gradient surfaces as a
        // non-finite global norm from `clip_by_global_norm`, which leaves
        // the gradients untouched in that case — no elementwise pre-scan
        // needed.
        let _opt = sf_trace::span("optimizer", "optimizer");
        let lr = self.cfg.schedule.lr_at(self.step);
        let norm = clip_by_global_norm(&mut grads, self.cfg.clip_norm);
        let finite = out.loss_breakdown.total.is_finite() && norm.is_finite();
        let grad_norm = if finite {
            self.optimizer.step(&mut self.store, &grads, lr);
            norm
        } else {
            self.recovery.push(RecoveryEvent::NonFiniteSkipped {
                step: self.step + 1,
            });
            f32::NAN
        };
        drop(_opt);
        let lddt = {
            let _metric = sf_trace::span("eval", "lddt");
            lddt_ca(g.value(out.coords), &batch.true_coords, &batch.residue_mask)
        };
        let LossBreakdown { total, distance, .. } = out.loss_breakdown;
        self.step += 1;
        StepReport {
            step: self.step,
            loss: total,
            distance_loss: distance,
            grad_norm,
            lddt,
            lr,
            skipped: !finite,
        }
    }

    /// Trains for `steps` steps, streaming batches through the real
    /// non-blocking pipeline (threads and all).
    ///
    /// Data faults do not abort the run: a sample whose preparation keeps
    /// panicking is recorded in [`Trainer::recovery_log`] and skipped, and
    /// training continues on the remaining samples.
    pub fn train(&mut self, steps: u64) -> Vec<StepReport> {
        let dataset = Arc::new(FaultyDataset::new(
            FeaturizingDataset {
                records: SyntheticDataset::new(self.cfg.seed ^ 0xDA7A, self.cfg.dataset_len),
                cfg: self.cfg.model.clone(),
                seed: self.cfg.seed,
            },
            self.injector.clone(),
        ));
        let mut reports = Vec::with_capacity(steps as usize);
        'outer: loop {
            let epoch = self.rng.gen::<u64>();
            let order = SyntheticDataset::new(self.cfg.seed ^ 0xDA7A, self.cfg.dataset_len)
                .epoch_order(epoch);
            let loader_cfg = LoaderConfig::with_workers(self.cfg.loader_workers);
            type BatchItem = Result<(usize, FeatureBatch), LoaderError>;
            let mut loader: Box<dyn Iterator<Item = BatchItem>> = match self.cfg.loader {
                LoaderKind::NonBlocking => Box::new(NonBlockingPipeline::new(
                    Arc::clone(&dataset),
                    order,
                    loader_cfg,
                )),
                LoaderKind::Blocking => {
                    Box::new(BlockingLoader::new(Arc::clone(&dataset), order, loader_cfg))
                }
            };
            let mut epoch_steps = 0u64;
            loop {
                // One umbrella span per optimizer step, covering the data
                // wait (recorded by the loader inside `next()`) and the
                // train phases — the unit the phase report attributes.
                let step_span = sf_trace::span("step", "step").arg("step", (self.step + 1) as f64);
                let Some(item) = loader.next() else {
                    step_span.cancel(); // end-of-epoch probe, not a step
                    break;
                };
                match item {
                    Ok((_, batch)) => {
                        reports.push(self.train_step(&batch));
                        epoch_steps += 1;
                        if reports.len() as u64 >= steps {
                            break 'outer;
                        }
                    }
                    Err(error) => {
                        step_span.cancel(); // no optimizer step happened
                        self.recovery.push(RecoveryEvent::DataFault { error });
                    }
                }
            }
            if epoch_steps == 0 {
                // Every sample of the epoch failed: no progress is possible,
                // so stop instead of spinning on a fully poisoned dataset.
                break;
            }
        }
        reports
    }

    /// Saves the current weights to `path` (see
    /// `sf_autograd::checkpoint_io` for the format). Used for the MLPerf
    /// "initialized from predefined checkpoint" setting.
    ///
    /// # Errors
    ///
    /// Returns a [`sf_autograd::CheckpointError`] on I/O failure.
    pub fn save_checkpoint(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), sf_autograd::CheckpointError> {
        let _ckpt = sf_trace::span("checkpoint", "save");
        self.store.save_file(path)
    }

    /// Restores weights from a checkpoint produced by
    /// [`Trainer::save_checkpoint`]. Optimizer moments and the step counter
    /// reset (matching the MLPerf benchmark, which restarts the optimizer
    /// from the published weights).
    ///
    /// # Errors
    ///
    /// Returns a [`sf_autograd::CheckpointError`] if the file is missing or
    /// malformed.
    pub fn load_checkpoint(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), sf_autograd::CheckpointError> {
        self.store = ParamStore::load_file(path)?;
        Ok(())
    }

    /// Saves the current weights into `dir` as `ckpt-<step>.sfck`, the
    /// layout [`Trainer::resume_latest`] scans. The write is atomic
    /// (temp file + rename), so a crash mid-save never leaves a torn
    /// checkpoint under the final name.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on I/O failure.
    pub fn save_checkpoint_step(&self, dir: impl AsRef<Path>) -> Result<PathBuf, CheckpointError> {
        let _ckpt = sf_trace::span("checkpoint", "save_step").arg("step", self.step as f64);
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(CheckpointError::Io)?;
        let path = dir.join(format!("ckpt-{:08}.sfck", self.step));
        self.store.save_file(&path)?;
        Ok(path)
    }

    /// Restores weights from the newest *valid* checkpoint in `dir`,
    /// falling back past files that fail CRC verification or cannot be
    /// parsed (bit rot, torn writes). Returns `Ok(None)` when the
    /// directory holds no checkpoints at all.
    ///
    /// On success the step counter is restored from the file name, so
    /// training resumes with the schedule where the checkpoint left off.
    ///
    /// # Errors
    ///
    /// Returns the last [`CheckpointError`] when checkpoints exist but
    /// every one of them is corrupt.
    pub fn resume_latest(
        &mut self,
        dir: impl AsRef<Path>,
    ) -> Result<Option<ResumeSummary>, CheckpointError> {
        let _ckpt = sf_trace::span("checkpoint", "resume");
        let Some(latest) = ParamStore::load_latest_valid(dir)? else {
            return Ok(None);
        };
        self.store = latest.store;
        if let Some(step) = latest.step {
            self.step = step;
        }
        self.recovery.push(RecoveryEvent::Resumed {
            path: latest.path.clone(),
            step: latest.step,
            skipped_files: latest.skipped.len(),
        });
        Ok(Some(ResumeSummary {
            path: latest.path,
            step: latest.step,
            skipped: latest.skipped,
        }))
    }

    /// Builds the in-memory evaluation cache (§3.4's "cached all evaluation
    /// data into the CPU DRAM instead of disk"): featurizes the held-out
    /// samples once, so every evaluation pass skips data preparation.
    pub fn build_eval_cache(&self, n: usize) -> Vec<FeatureBatch> {
        let eval_set = SyntheticDataset::new(self.cfg.seed ^ 0xE7A1, n.max(1));
        (0..n.max(1))
            .map(|i| featurize(&eval_set.record(i), &self.cfg.model, 0xE7A1 ^ i as u64))
            .collect()
    }

    /// Evaluates against a pre-built cache ([`Trainer::build_eval_cache`]).
    /// Identical scores to [`Trainer::evaluate`] on the same sample count —
    /// only the per-pass featurization cost disappears.
    pub fn evaluate_cached(&self, cache: &[FeatureBatch]) -> f32 {
        let _eval = sf_trace::span("eval", "evaluate_cached").arg("samples", cache.len() as f64);
        let mut store = self.optimizer.swa_store();
        if store.is_empty() {
            store = self.store.clone();
        }
        let mut total = 0.0f32;
        for batch in cache {
            let mut g = Graph::new();
            let out = self
                .model
                .forward(&mut g, &mut store, batch)
                .expect("forward pass on cached eval batch");
            total += lddt_ca(g.value(out.coords), &batch.true_coords, &batch.residue_mask);
        }
        total / cache.len().max(1) as f32
    }

    /// Asynchronous evaluation (§3.4): snapshots the SWA weights and runs
    /// the evaluation pass on a **separate thread**, so training can
    /// continue immediately — the functional analogue of offloading
    /// evaluation to dedicated nodes. Join the handle for the score.
    pub fn evaluate_async(&self, n: usize) -> std::thread::JoinHandle<f32> {
        let mut store = self.optimizer.swa_store();
        if store.is_empty() {
            store = self.store.clone();
        }
        let model_cfg = self.cfg.model.clone();
        let seed = self.cfg.seed;
        std::thread::spawn(move || {
            let _eval = sf_trace::span("eval", "evaluate_async").arg("samples", n as f64);
            let model = AlphaFold::new(model_cfg.clone());
            let eval_set = SyntheticDataset::new(seed ^ 0xE7A1, n.max(1));
            let mut total = 0.0f32;
            for i in 0..n.max(1) {
                let batch = featurize(&eval_set.record(i), &model_cfg, 0xE7A1 ^ i as u64);
                let mut g = Graph::new();
                let out = model
                    .forward(&mut g, &mut store, &batch)
                    .expect("forward pass on synthetic eval batch");
                total += lddt_ca(g.value(out.coords), &batch.true_coords, &batch.residue_mask);
            }
            total / n.max(1) as f32
        })
    }

    /// Evaluates mean lDDT-Cα over `n` held-out samples using the
    /// SWA-averaged weights (as the MLPerf recipe evaluates).
    pub fn evaluate(&self, n: usize) -> f32 {
        let _eval = sf_trace::span("eval", "evaluate").arg("samples", n as f64);
        let mut store = self.optimizer.swa_store();
        if store.is_empty() {
            store = self.store.clone();
        }
        let eval_set = SyntheticDataset::new(self.cfg.seed ^ 0xE7A1, n.max(1));
        let mut total = 0.0f32;
        for i in 0..n.max(1) {
            let batch = featurize(&eval_set.record(i), &self.cfg.model, 0xE7A1 ^ i as u64);
            let mut g = Graph::new();
            let out = self
                .model
                .forward(&mut g, &mut store, &batch)
                .expect("forward pass on synthetic eval batch");
            total += lddt_ca(g.value(out.coords), &batch.true_coords, &batch.residue_mask);
        }
        total / n.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> TrainerConfig {
        let mut cfg = TrainerConfig::tiny();
        cfg.model.evoformer_blocks = 1;
        cfg.model.extra_msa_blocks = 0;
        cfg.model.template_blocks = 0;
        cfg.model.n_templates = 1;
        cfg.model.structure_layers = 1;
        cfg.dataset_len = 4;
        cfg
    }

    #[test]
    fn single_step_produces_finite_report() {
        let mut t = Trainer::new(fast_cfg());
        let ds = SyntheticDataset::new(1, 4);
        let batch = featurize(&ds.record(0), &t.cfg.model.clone(), 1);
        let r = t.train_step(&batch);
        assert!(r.loss.is_finite());
        assert!(r.grad_norm > 0.0);
        assert!((0.0..=1.0).contains(&r.lddt));
        assert_eq!(r.step, 1);
    }

    #[test]
    fn loss_decreases_on_repeated_batch() {
        let mut t = Trainer::new(fast_cfg());
        let ds = SyntheticDataset::new(2, 4);
        let cfg = t.cfg.model.clone();
        let batch = featurize(&ds.record(0), &cfg, 2);
        let first = t.train_step(&batch).loss;
        let mut last = first;
        for _ in 0..14 {
            last = t.train_step(&batch).loss;
        }
        assert!(
            last < first,
            "loss should fall on a fixed batch: {first} -> {last}"
        );
    }

    #[test]
    fn train_uses_pipeline_and_counts_steps() {
        let mut t = Trainer::new(fast_cfg());
        let reports = t.train(3);
        assert_eq!(reports.len(), 3);
        assert_eq!(t.step_count(), 3);
        assert!(reports.iter().all(|r| r.loss.is_finite()));
    }

    #[test]
    fn dap_training_matches_unsharded() {
        // DAP-k training follows the unsharded trajectory for k ∈ {1,2,4},
        // fused kernels on and off: the forward is bitwise-identical data
        // movement, so only gradient-accumulation order can drift, and the
        // per-step losses must agree tightly over several updates.
        for fused in [true, false] {
            let mut ref_cfg = fast_cfg();
            ref_cfg.fused_kernels = fused;
            let mut reference = Trainer::new(ref_cfg.clone());
            let ds = SyntheticDataset::new(5, 4);
            let batch = featurize(&ds.record(0), &ref_cfg.model, 5);
            let ref_losses: Vec<f32> =
                (0..3).map(|_| reference.train_step(&batch).loss).collect();

            for k in [2usize, 4] {
                let mut cfg = ref_cfg.clone();
                cfg.dap = k;
                let mut t = Trainer::new(cfg);
                for (i, want) in ref_losses.iter().enumerate() {
                    let got = t.train_step(&batch).loss;
                    assert!(
                        (got - want).abs() <= 1e-4,
                        "fused={fused} k={k} step {i}: loss {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn dap_comm_accumulates_analytic_volume() {
        let mut cfg = fast_cfg();
        cfg.dap = 2;
        let mut t = Trainer::new(cfg.clone());
        let ds = SyntheticDataset::new(6, 4);
        let batch = featurize(&ds.record(0), &cfg.model, 6);
        let steps = 2;
        for _ in 0..steps {
            t.train_step(&batch);
        }
        let per_step = crate::dap::analytic_comm_volume(&cfg.model, 2);
        let total = t.dap_comm();
        assert_eq!(total.all_gather_elements, steps * per_step.all_gather_elements);
        assert_eq!(total.all_to_all_elements, steps * per_step.all_to_all_elements);
        assert_eq!(total.gathers, steps * per_step.gathers);
        assert_eq!(total.switches, steps * per_step.switches);

        // Without DAP nothing is communicated.
        let mut plain = Trainer::new(fast_cfg());
        plain.train_step(&batch);
        assert_eq!(plain.dap_comm(), DapStats::default());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn dap_rejects_uneven_crop() {
        let mut cfg = fast_cfg();
        cfg.model.n_res = 13;
        cfg.dap = 2;
        let _ = Trainer::new(cfg);
    }

    #[test]
    fn warmup_schedule_applies() {
        let mut t = Trainer::new(fast_cfg());
        let reports = t.train(2);
        assert!(reports[0].lr < reports[1].lr);
    }

    #[test]
    fn bf16_training_stays_finite() {
        let mut cfg = fast_cfg();
        cfg.precision = Precision::Bf16;
        let mut t = Trainer::new(cfg);
        let reports = t.train(3);
        assert!(reports.iter().all(|r| r.loss.is_finite() && r.grad_norm.is_finite()));
    }

    #[test]
    fn checkpoint_restores_weights_exactly() {
        let mut t = Trainer::new(fast_cfg());
        let _ = t.train(2);
        let path = std::env::temp_dir().join("sf_trainer_ckpt.bin");
        t.save_checkpoint(&path).expect("save");

        // A fresh trainer restored from the checkpoint produces the same
        // forward outputs as the original.
        let mut fresh = Trainer::new(fast_cfg());
        fresh.load_checkpoint(&path).expect("load");
        let ds = SyntheticDataset::new(99, 2);
        let batch = featurize(&ds.record(0), &fresh.cfg.model.clone(), 99);
        let mut g1 = sf_autograd::Graph::new();
        let model = sf_model::AlphaFold::new(t.cfg.model.clone());
        let o1 = model.forward(&mut g1, &mut t.store.clone(), &batch).expect("fwd");
        let mut g2 = sf_autograd::Graph::new();
        let o2 = model
            .forward(&mut g2, &mut fresh.store.clone(), &batch)
            .expect("fwd");
        assert_eq!(o1.loss_breakdown.total, o2.loss_breakdown.total);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn nan_grad_step_is_skipped_and_only_that_step() {
        // Poison optimizer step 1 (0-based): report 2 must be skipped.
        let mut t = Trainer::with_faults(fast_cfg(), FaultPlan::none().with_nan_grad(1));
        let reports = t.train(3);
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports.iter().map(|r| r.skipped).collect::<Vec<_>>(),
            vec![false, true, false]
        );
        assert!(reports[1].grad_norm.is_nan());
        assert!(t
            .recovery_log()
            .iter()
            .any(|e| matches!(e, RecoveryEvent::NonFiniteSkipped { step: 2 })));
    }

    #[test]
    fn skipped_step_leaves_weights_untouched() {
        let mut t = Trainer::with_faults(fast_cfg(), FaultPlan::none().with_nan_grad(1));
        let _ = t.train(1);
        let before = t.store().clone();
        let reports = t.train(1); // this is the poisoned step
        assert!(reports[0].skipped);
        for name in before.names() {
            assert_eq!(
                before.get(&name).expect("param").data(),
                t.store().get(&name).expect("param").data(),
                "weights changed across a skipped step: {name}"
            );
        }
    }

    #[test]
    fn training_survives_poisoned_sample() {
        let mut cfg = fast_cfg();
        cfg.loader_workers = 2;
        let mut t = Trainer::with_faults(cfg, FaultPlan::none().with_worker_panic(1));
        // More steps than the epoch has healthy samples (3 of 4), so the
        // run must consume the failed slot before finishing.
        let reports = t.train(5);
        assert_eq!(reports.len(), 5);
        assert!(t
            .recovery_log()
            .iter()
            .any(|e| matches!(e, RecoveryEvent::DataFault { .. })));
    }

    #[test]
    fn resume_latest_on_empty_dir_is_none() {
        let dir = std::env::temp_dir().join(format!("sf_resume_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut t = Trainer::new(fast_cfg());
        assert!(t.resume_latest(&dir).expect("scan").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_latest_restores_step_and_weights() {
        let dir = std::env::temp_dir().join(format!("sf_resume_ok_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Trainer::new(fast_cfg());
        let _ = t.train(2);
        let path = t.save_checkpoint_step(&dir).expect("save");
        assert!(path.file_name().is_some());

        let mut fresh = Trainer::new(fast_cfg());
        let summary = fresh.resume_latest(&dir).expect("resume").expect("found");
        assert_eq!(summary.step, Some(2));
        assert_eq!(fresh.step_count(), 2);
        for name in t.store().names() {
            assert_eq!(
                t.store().get(&name).expect("param").data(),
                fresh.store().get(&name).expect("param").data(),
                "restored weights differ: {name}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evaluate_returns_sane_score() {
        let mut t = Trainer::new(fast_cfg());
        let _ = t.train(1);
        let score = t.evaluate(2);
        assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn cached_eval_matches_uncached() {
        let mut t = Trainer::new(fast_cfg());
        let _ = t.train(2);
        let cache = t.build_eval_cache(2);
        assert_eq!(t.evaluate_cached(&cache), t.evaluate(2));
        // The cache is reusable across further training.
        let _ = t.train(1);
        let s = t.evaluate_cached(&cache);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn async_eval_overlaps_training_and_matches_sync() {
        let mut t = Trainer::new(fast_cfg());
        let _ = t.train(2);
        // Launch evaluation, keep training while it runs, then join.
        let handle = t.evaluate_async(2);
        let sync_before = t.evaluate(2);
        let more = t.train(2); // training proceeds while eval runs
        let async_score = handle.join().expect("eval thread");
        assert_eq!(async_score, sync_before, "same snapshot, same score");
        assert_eq!(more.len(), 2);
        // Training moved on: a fresh evaluation now differs in general.
        assert!((0.0..=1.0).contains(&t.evaluate(2)));
    }
}
