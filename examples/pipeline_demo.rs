//! The Figure-5 demonstration with real threads: the blocking (PyTorch
//! DataLoader-style) pipeline versus ScaleFold's non-blocking priority
//! queue, under an injected slow batch.
//!
//! Run with: `cargo run --release --example pipeline_demo`

use sf_data::loader::{BlockingLoader, Dataset, LoaderConfig, NonBlockingPipeline};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The paper's Figure-5 scenario: batch "b" takes far longer to prepare
/// than the others.
struct ScenarioDataset {
    delays_ms: Vec<u64>,
}

impl Dataset for ScenarioDataset {
    type Item = ();

    fn len(&self) -> usize {
        self.delays_ms.len()
    }

    fn prepare(&self, index: usize) {
        std::thread::sleep(Duration::from_millis(self.delays_ms[index]));
    }
}

fn run(label: &str, blocking: bool, delays_ms: Vec<u64>, train_ms: u64) -> Duration {
    let names: Vec<char> = (0..delays_ms.len()).map(|i| (b'a' + i as u8) as char).collect();
    let ds = Arc::new(ScenarioDataset { delays_ms });
    let order: Vec<usize> = (0..ds.len()).collect();
    let cfg = LoaderConfig::with_workers(3);
    let start = Instant::now();
    let mut yielded = Vec::new();
    if blocking {
        for item in BlockingLoader::new(ds, order, cfg) {
            let (idx, _) = item.expect("no faults in this demo");
            yielded.push(names[idx]);
            std::thread::sleep(Duration::from_millis(train_ms)); // "training"
        }
    } else {
        for item in NonBlockingPipeline::new(ds, order, cfg) {
            let (idx, _) = item.expect("no faults in this demo");
            yielded.push(names[idx]);
            std::thread::sleep(Duration::from_millis(train_ms));
        }
    }
    let elapsed = start.elapsed();
    println!(
        "  {label:<28} order {:?}  wall {:>6.0} ms",
        yielded.iter().collect::<String>(),
        elapsed.as_secs_f64() * 1000.0
    );
    elapsed
}

fn main() {
    // Batch "b" is the slow one (like the 7-second batch in Figure 5);
    // training takes 60 ms per batch.
    let delays = vec![40, 400, 40, 40, 40, 40];
    println!("Figure 5 scenario: batch 'b' needs 400 ms prep; a step trains in 60 ms");
    let t_blocking = run("blocking (PyTorch order)", true, delays.clone(), 60);
    let t_nonblocking = run("non-blocking (ScaleFold)", false, delays, 60);
    println!();
    println!(
        "non-blocking pipeline saves {:.0} ms ({:.1}% of the blocking run)",
        (t_blocking - t_nonblocking).as_secs_f64() * 1000.0,
        100.0 * (t_blocking - t_nonblocking).as_secs_f64() / t_blocking.as_secs_f64()
    );
    println!("every batch is still delivered exactly once (best-effort order).");
}
