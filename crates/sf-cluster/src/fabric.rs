//! Interconnect model: NVLink within a node, InfiniBand across nodes, and
//! analytic ring-collective costs.

use serde::{Deserialize, Serialize};

/// Link characteristics of the cluster fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricSpec {
    /// Per-GPU NVLink bandwidth within a node, GB/s (unidirectional).
    pub nvlink_gbs: f64,
    /// Per-GPU InfiniBand bandwidth across nodes, GB/s.
    pub ib_gbs: f64,
    /// Per-hop collective latency, microseconds (launch + wire).
    pub latency_us: f64,
    /// GPUs per node.
    pub gpus_per_node: usize,
}

impl FabricSpec {
    /// NVIDIA Eos-like node: H100 + NVLink4 (450 GB/s/GPU) + NDR400
    /// InfiniBand (~50 GB/s/GPU), 8 GPUs per node.
    pub fn eos() -> Self {
        FabricSpec {
            nvlink_gbs: 450.0,
            ib_gbs: 50.0,
            latency_us: 15.0,
            gpus_per_node: 8,
        }
    }

    /// A100 DGX SuperPod-like node (NVLink3 300 GB/s, HDR200 ~25 GB/s).
    pub fn superpod_a100() -> Self {
        FabricSpec {
            nvlink_gbs: 300.0,
            ib_gbs: 25.0,
            latency_us: 18.0,
            gpus_per_node: 8,
        }
    }

    /// Bandwidth (bytes/s) between `ranks` peers: NVLink when the group
    /// fits inside one node, IB otherwise.
    pub fn group_bw_bytes(&self, ranks: usize) -> f64 {
        if ranks <= self.gpus_per_node {
            self.nvlink_gbs * 1e9
        } else {
            self.ib_gbs * 1e9
        }
    }

    /// Ring all-reduce of `bytes` per rank across `ranks` peers:
    /// `2 (n-1)/n · bytes / bw + 2 (n-1) · latency`.
    pub fn all_reduce_s(&self, bytes: f64, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let n = ranks as f64;
        let bw = self.group_bw_bytes(ranks);
        2.0 * (n - 1.0) / n * bytes / bw + 2.0 * (n - 1.0) * self.latency_us * 1e-6
    }

    /// Ring all-gather of `bytes` (each rank's shard) across `ranks`:
    /// `(n-1) · bytes / bw + (n-1) · latency`.
    pub fn all_gather_s(&self, shard_bytes: f64, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let n = ranks as f64;
        let bw = self.group_bw_bytes(ranks);
        (n - 1.0) * shard_bytes / bw + (n - 1.0) * self.latency_us * 1e-6
    }

    /// All-to-all of `bytes` total per rank across `ranks`.
    pub fn all_to_all_s(&self, bytes: f64, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let n = ranks as f64;
        let bw = self.group_bw_bytes(ranks);
        (n - 1.0) / n * bytes / bw + (n - 1.0) * self.latency_us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_collectives_are_free() {
        let f = FabricSpec::eos();
        assert_eq!(f.all_reduce_s(1e9, 1), 0.0);
        assert_eq!(f.all_gather_s(1e9, 1), 0.0);
        assert_eq!(f.all_to_all_s(1e9, 1), 0.0);
    }

    #[test]
    fn all_reduce_bandwidth_term_dominates_large_messages() {
        let f = FabricSpec::eos();
        // 1 GiB over 8 NVLink ranks: ~2*(7/8)*1GiB/450GBps ≈ 4.2 ms.
        let t = f.all_reduce_s((1u64 << 30) as f64, 8);
        assert!((0.003..0.006).contains(&t), "{t}");
    }

    #[test]
    fn latency_term_dominates_small_messages() {
        let f = FabricSpec::eos();
        let t = f.all_reduce_s(1024.0, 8);
        let latency_floor = 2.0 * 7.0 * 15e-6;
        assert!(t >= latency_floor);
        assert!(t < latency_floor * 1.1);
    }

    #[test]
    fn cross_node_groups_use_ib() {
        let f = FabricSpec::eos();
        let intra = f.all_gather_s(1e8, 8);
        let inter = f.all_gather_s(1e8, 16);
        // 16 ranks leave the node: slower despite similar (n-1) factor.
        assert!(inter > 5.0 * intra);
    }

    #[test]
    fn all_reduce_scales_weakly_with_ranks() {
        // The (n-1)/n factor saturates: 64 vs 256 ranks differ little in
        // the bandwidth term.
        let f = FabricSpec::eos();
        let t64 = f.all_reduce_s(1e9, 64);
        let t256 = f.all_reduce_s(1e9, 256);
        assert!(t256 > t64); // latency grows
        let bw_term = |n: f64| 2.0 * (n - 1.0) / n;
        assert!((bw_term(256.0) / bw_term(64.0)) < 1.02);
    }
}
