//! The batch-preparation cost model (the paper's Figure 4).
//!
//! The paper: "Depending on the data sample's initial sequence length and
//! multi-sequence alignment size, the batch preparation time varies
//! significantly" — sorted times span roughly three scales, with ~10% of
//! batches dramatically slower, and those slow batches block the default
//! pipeline.

use crate::protein::{ProteinRecord, SyntheticDataset};
use serde::{Deserialize, Serialize};

/// Analytic prep-time model: cost in seconds as a function of the sample's
/// sequence length and MSA depth, plus a heavy-tailed alignment-processing
/// term.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrepTimeModel {
    /// Fixed per-batch overhead in seconds (decompression, dispatch).
    pub base_s: f64,
    /// Cost per residue-row of MSA processing, seconds per (residue × seq).
    pub per_cell_s: f64,
    /// Cost per MSA sequence for clustering/dedup, seconds.
    pub per_seq_s: f64,
}

impl Default for PrepTimeModel {
    fn default() -> Self {
        // Calibrated so the sorted distribution over the synthetic dataset
        // spans ~0.05 s .. ~30 s (three orders), matching Figure 4's shape,
        // with a median well under one training step (~2 s).
        PrepTimeModel {
            base_s: 0.05,
            per_cell_s: 1.2e-6,
            per_seq_s: 1.0e-3,
        }
    }
}

impl PrepTimeModel {
    /// Prep time for a record, in seconds.
    pub fn prep_seconds(&self, record: &ProteinRecord) -> f64 {
        self.prep_seconds_for(record.len(), record.msa_depth)
    }

    /// Prep time from raw (length, MSA depth).
    pub fn prep_seconds_for(&self, len: usize, msa_depth: usize) -> f64 {
        self.base_s
            + self.per_cell_s * len as f64 * msa_depth as f64
            + self.per_seq_s * msa_depth as f64
    }

    /// Sorted prep times for the first `n` records of a dataset — the data
    /// behind Figure 4.
    pub fn sorted_prep_times(&self, dataset: &SyntheticDataset, n: usize) -> Vec<f64> {
        let n = n.min(dataset.len());
        let mut times: Vec<f64> = (0..n)
            .map(|i| self.prep_seconds(&dataset.record(i)))
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        times
    }

    /// Fraction of samples slower than `threshold_s`.
    pub fn slow_fraction(&self, dataset: &SyntheticDataset, n: usize, threshold_s: f64) -> f64 {
        let times = self.sorted_prep_times(dataset, n);
        if times.is_empty() {
            return 0.0;
        }
        times.iter().filter(|&&t| t > threshold_s).count() as f64 / times.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_inputs() {
        let m = PrepTimeModel::default();
        assert!(m.prep_seconds_for(100, 100) < m.prep_seconds_for(200, 100));
        assert!(m.prep_seconds_for(100, 100) < m.prep_seconds_for(100, 200));
    }

    #[test]
    fn figure4_shape_three_orders_of_magnitude() {
        let d = SyntheticDataset::new(11, 2000);
        let m = PrepTimeModel::default();
        let times = m.sorted_prep_times(&d, 2000);
        let min = times.first().copied().unwrap();
        let max = times.last().copied().unwrap();
        assert!(
            max / min >= 100.0,
            "spread {min:.3}..{max:.3} is under two orders"
        );
        // Sorted output really is sorted.
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn figure4_slow_tail_near_ten_percent() {
        // ~10% of batches take significantly longer than a training step
        // (~2 s in the paper's setup).
        let d = SyntheticDataset::new(12, 3000);
        let m = PrepTimeModel::default();
        let frac = m.slow_fraction(&d, 3000, 2.0);
        assert!(
            (0.02..0.30).contains(&frac),
            "slow fraction {frac} outside plausible band"
        );
    }

    #[test]
    fn median_is_well_under_a_step() {
        let d = SyntheticDataset::new(13, 1001);
        let m = PrepTimeModel::default();
        let times = m.sorted_prep_times(&d, 1001);
        let median = times[times.len() / 2];
        assert!(median < 2.0, "median prep {median}");
    }
}
