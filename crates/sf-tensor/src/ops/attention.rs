//! Multi-head attention with the AlphaFold *pair bias* term.
//!
//! AlphaFold's MHA variant adds a learned bias derived from the pair
//! representation to the attention logits before the softmax
//! (`MSARowAttentionWithPairBias`, Fig. 6 of the paper). This extra term is
//! why stock FlashAttention kernels were inapplicable and the ScaleFold
//! authors wrote a custom fused kernel.
//!
//! Two implementations are provided:
//!
//! - [`naive_attention`]: materializes the full logits matrix — the
//!   reference, and the memory-hungry path the paper starts from.
//! - [`flash_attention`]: a FlashAttention-style kernel that tiles over keys
//!   with a streaming (online) softmax, folding the pair bias into each tile.
//!   It never materializes the logits matrix.
//!
//! Both return identical results to within f32 tolerance (tested, including
//! property tests).

use crate::ops::matmul::matmul_bt;
use crate::ops::softmax::{softmax, OnlineSoftmax};
use crate::ops::vexp::vexp;
use crate::pool::{parallel_for, SendPtr};
use crate::scratch;
use crate::shape::Shape;
use crate::tensor::broadcast_strides;
use crate::{Result, Tensor, TensorError};

/// Additive logit penalty for masked-out keys (matches
/// [`crate::ops::softmax::masked_softmax`]): large enough that masked
/// probabilities underflow to exactly zero whenever the row keeps at least
/// one valid key, finite so fully-masked rows stay NaN-free. On a fully
/// masked row the penalty cancels in the softmax but its f32 absorption
/// quantizes the O(1) logits to ~2e-3, so such rows are only
/// *approximately* uniform — callers mask padding queries downstream.
pub const MASK_NEG: f32 = -3.0e4;

/// Key-tile width for the flash kernel. Small enough to exercise multi-tile
/// paths in tests; on a GPU this would be the Triton `BLOCK_N`.
pub const FLASH_TILE: usize = 16;

/// Query rows per parallel work item (the Triton `BLOCK_M` analogue): each
/// item packs K^T once and amortizes it over this many query rows.
pub const FLASH_Q_BLOCK: usize = 32;

fn check_qkv(q: &Tensor, k: &Tensor, v: &Tensor) -> Result<(usize, usize, usize, usize)> {
    let rank = q.rank();
    if rank < 2 || k.rank() != rank || v.rank() != rank {
        return Err(TensorError::ShapeMismatch {
            op: "attention rank",
            lhs: q.dims().to_vec(),
            rhs: k.dims().to_vec(),
        });
    }
    let d = q.dims()[rank - 1];
    let s_q = q.dims()[rank - 2];
    let s_k = k.dims()[rank - 2];
    if k.dims()[rank - 1] != d
        || v.dims()[rank - 2] != s_k
        || q.dims()[..rank - 2] != k.dims()[..rank - 2]
        || k.dims()[..rank - 2] != v.dims()[..rank - 2]
    {
        return Err(TensorError::ShapeMismatch {
            op: "attention qkv",
            lhs: q.dims().to_vec(),
            rhs: v.dims().to_vec(),
        });
    }
    let batch: usize = q.dims()[..rank - 2].iter().product();
    Ok((batch, s_q, s_k, d))
}

fn check_bias(q: &Tensor, s_q: usize, s_k: usize, bias: &Tensor) -> Result<Shape> {
    let mut logit_dims = q.dims()[..q.rank() - 2].to_vec();
    logit_dims.push(s_q);
    logit_dims.push(s_k);
    let logits_shape = Shape::new(&logit_dims);
    if !bias.shape().broadcastable_to(&logits_shape) {
        return Err(TensorError::ShapeMismatch {
            op: "attention bias",
            lhs: bias.dims().to_vec(),
            rhs: logit_dims,
        });
    }
    Ok(logits_shape)
}

/// Reference attention: `softmax(q @ k^T * scale + bias) @ v`.
///
/// `q: [..., S_q, D]`, `k/v: [..., S_k, D]`; `bias` (if any) must broadcast
/// to `[..., S_q, S_k]`. Typical AlphaFold usage passes
/// bias `[H, S_q, S_k]` against `q: [B, H, S_q, D]`.
///
/// # Errors
///
/// Returns an error on any shape incompatibility.
pub fn naive_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    bias: Option<&Tensor>,
    scale: f32,
) -> Result<Tensor> {
    check_qkv(q, k, v)?;
    let mut logits = matmul_bt(q, k)?.mul_scalar(scale);
    if let Some(b) = bias {
        check_bias(q, logits.dims()[logits.rank() - 2], logits.dims()[logits.rank() - 1], b)?;
        logits = logits.add(b)?;
    }
    let probs = softmax(&logits)?;
    probs.matmul(v)
}

/// Broadcast-strided reader for a side input (pair bias or mask) shaped to
/// broadcast against the logits `[batch..., s_q, s_k]`. Batch base offsets
/// are precomputed so rows can be read in any order on any thread.
struct LogitsBcast<'a> {
    data: &'a [f32],
    row_stride: usize,
    col_stride: usize,
    batch_offs: Vec<usize>,
}

impl LogitsBcast<'_> {
    #[inline(always)]
    fn at(&self, b: usize, i: usize, j: usize) -> f32 {
        self.data[self.batch_offs[b] + i * self.row_stride + j * self.col_stride]
    }
}

fn logits_bcast<'a>(
    t: &'a Tensor,
    q: &Tensor,
    s_q: usize,
    s_k: usize,
    batch: usize,
) -> Result<LogitsBcast<'a>> {
    let logits_shape = check_bias(q, s_q, s_k, t)?;
    let st = broadcast_strides(t.shape(), &logits_shape);
    let rank = st.len();
    let batch_dims = &q.dims()[..q.rank() - 2];
    let mut batch_offs = Vec::with_capacity(batch);
    let mut batch_idx = vec![0usize; batch_dims.len()];
    for _ in 0..batch {
        batch_offs.push(
            batch_idx
                .iter()
                .zip(st.iter())
                .map(|(&i, &s)| i * s)
                .sum::<usize>(),
        );
        let mut axis = batch_dims.len();
        while axis > 0 {
            axis -= 1;
            batch_idx[axis] += 1;
            if batch_idx[axis] < batch_dims[axis] {
                break;
            }
            batch_idx[axis] = 0;
        }
    }
    Ok(LogitsBcast {
        data: t.data(),
        row_stride: st[rank - 2],
        col_stride: st[rank - 1],
        batch_offs,
    })
}

/// Result of [`attention_fused`]: the (possibly gated) output plus the
/// per-row softmax statistics the fused backward needs.
#[derive(Debug, Clone)]
pub struct FusedAttention {
    /// Attention output, gated when a gate was supplied: `[..., S_q, D]`.
    pub out: Tensor,
    /// Pre-gate attention output `P @ V`, saved only when a gate was
    /// supplied (otherwise it equals `out`).
    pub att: Option<Tensor>,
    /// Per-query-row log-sum-exp of the scaled/biased/masked logits,
    /// `[batch..., S_q]` — enough to recompute any probability tile in the
    /// backward pass without storing the `[S_q, S_k]` probability tensor.
    pub lse: Tensor,
}

impl FusedAttention {
    /// The pre-gate attention output (`out` itself when ungated).
    pub fn pre_gate(&self) -> &Tensor {
        self.att.as_ref().unwrap_or(&self.out)
    }
}

/// Gradients returned by [`attention_fused_backward`].
#[derive(Debug, Clone)]
pub struct FusedAttentionGrads {
    pub dq: Tensor,
    pub dk: Tensor,
    pub dv: Tensor,
    /// Present iff a bias was supplied (sum-reduced to the bias shape).
    pub dbias: Option<Tensor>,
    /// Present iff a gate was supplied.
    pub dgate: Option<Tensor>,
}

/// Shared tiled kernel behind [`flash_attention`] and [`attention_fused`].
///
/// One work item per (batch, query-row block) — the paper's (batch, head)
/// parallelization with the row axis split for load balance. Each item
/// packs its batch element's K transposed into thread-local scratch, so a
/// tile of logits accumulates *vectorized across the tile lanes* (the
/// plain q·k dot product is a serial FP chain the compiler cannot
/// vectorize). Per logit the accumulation still runs over the head dim in
/// one fixed ascending pass, and each row's tile-by-tile online-softmax
/// order is fixed, so output is bit-identical for every thread count.
fn flash_core(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    bias: Option<&Tensor>,
    mask: Option<&Tensor>,
    gate: Option<&Tensor>,
    scale: f32,
) -> Result<FusedAttention> {
    let (batch, s_q, s_k, d) = check_qkv(q, k, v)?;
    let mut out_dims = q.dims().to_vec();
    *out_dims.last_mut().expect("rank >= 2") = d;
    let bias_rd = bias.map(|b| logits_bcast(b, q, s_q, s_k, batch)).transpose()?;
    let mask_rd = mask.map(|m| logits_bcast(m, q, s_q, s_k, batch)).transpose()?;
    if let Some(g) = gate {
        if g.dims() != out_dims.as_slice() {
            return Err(TensorError::ShapeMismatch {
                op: "attention gate",
                lhs: g.dims().to_vec(),
                rhs: out_dims,
            });
        }
    }
    let mut lse_dims = q.dims()[..q.rank() - 2].to_vec();
    lse_dims.push(s_q);
    let mut att = Tensor::zeros(&out_dims);
    let mut gated = gate.map(|_| Tensor::zeros(&out_dims));
    let mut lse = Tensor::zeros(&lse_dims);
    if batch == 0 || s_q == 0 {
        return Ok(match gated {
            Some(g) => FusedAttention { out: g, att: Some(att), lse },
            None => FusedAttention { out: att, att: None, lse },
        });
    }

    let att_ptr = SendPtr::new(att.data_mut());
    let gated_ptr = gated.as_mut().map(|g| SendPtr::new(g.data_mut()));
    let lse_ptr = SendPtr::new(lse.data_mut());
    let (qd, kd, vd) = (q.data(), k.data(), v.data());
    let gd = gate.map(|g| g.data());
    let qb_per_mat = s_q.div_ceil(FLASH_Q_BLOCK);
    let n_tasks = batch * qb_per_mat;
    let task_cost = FLASH_Q_BLOCK.min(s_q) * s_k * (2 * d + 8);
    parallel_for(n_tasks, task_cost, |range| {
        let mut logits_tile = [0.0f32; FLASH_TILE];
        scratch::with_scratch(d * s_k, |kt| {
            // K^T pack is reused across the row blocks of one batch
            // element; consecutive items usually share it.
            let mut packed_for = usize::MAX;
            for item in range {
                let b = item / qb_per_mat;
                let i0 = (item % qb_per_mat) * FLASH_Q_BLOCK;
                let i1 = (i0 + FLASH_Q_BLOCK).min(s_q);
                let q_base = b * s_q * d;
                let kv_base = b * s_k * d;
                if packed_for != b {
                    for j in 0..s_k {
                        let krow = &kd[kv_base + j * d..kv_base + (j + 1) * d];
                        for (kk, &kv) in krow.iter().enumerate() {
                            kt[kk * s_k + j] = kv;
                        }
                    }
                    packed_for = b;
                }
                for i in i0..i1 {
                    let qrow = &qd[q_base + i * d..q_base + (i + 1) * d];
                    // SAFETY: each item owns its block of output rows.
                    let orow = unsafe { att_ptr.slice_mut(q_base + i * d, d) };
                    let mut state = OnlineSoftmax::new();
                    let mut j0 = 0usize;
                    while j0 < s_k {
                        let j1 = (j0 + FLASH_TILE).min(s_k);
                        let tile = j1 - j0;
                        // Tile logits: q · k_j, accumulated lane-parallel
                        // over the tile from the packed K^T rows.
                        let lt = &mut logits_tile[..tile];
                        lt.fill(0.0);
                        for (kk, &qv) in qrow.iter().enumerate() {
                            let ktrow = &kt[kk * s_k + j0..kk * s_k + j1];
                            for (l, &kv) in lt.iter_mut().zip(ktrow.iter()) {
                                *l += qv * kv;
                            }
                        }
                        // Scale + pair bias + mask folded into the tile —
                        // the logits matrix is never materialized.
                        for (t, l) in lt.iter_mut().enumerate() {
                            let mut val = *l * scale;
                            if let Some(rd) = bias_rd.as_ref() {
                                val += rd.at(b, i, j0 + t);
                            }
                            if let Some(rd) = mask_rd.as_ref() {
                                if rd.at(b, i, j0 + t) == 0.0 {
                                    val += MASK_NEG;
                                }
                            }
                            *l = val;
                        }
                        let vals = &vd[kv_base + j0 * d..kv_base + j1 * d];
                        state.fold_tile(&logits_tile[..tile], vals, orow);
                        j0 = j1;
                    }
                    state.finish(orow);
                    // SAFETY: one lse slot per row, owned by this item.
                    let lse_slot = unsafe { lse_ptr.slice_mut(b * s_q + i, 1) };
                    lse_slot[0] = state.logsumexp();
                    // Sigmoid-gate epilogue, fused while the output row is
                    // hot (pre-gate row kept for the backward pass).
                    if let (Some(gp), Some(gdat)) = (gated_ptr.as_ref(), gd) {
                        // SAFETY: same row ownership as `orow`.
                        let grow = unsafe { gp.slice_mut(q_base + i * d, d) };
                        let gsrc = &gdat[q_base + i * d..q_base + (i + 1) * d];
                        for ((o, &a), &g) in grow.iter_mut().zip(orow.iter()).zip(gsrc.iter()) {
                            *o = a / (1.0 + vexp(-g));
                        }
                    }
                }
            }
        });
    });
    Ok(match gated {
        Some(g) => FusedAttention { out: g, att: Some(att), lse },
        None => FusedAttention { out: att, att: None, lse },
    })
}

/// Fused FlashAttention-style attention with pair bias.
///
/// Tiles over the key axis in blocks of [`FLASH_TILE`], maintaining the
/// online-softmax state per query row. The logits matrix is never
/// materialized; per-tile logits live in a `[FLASH_TILE]` scratch buffer.
/// Bias is read through broadcast strides, so a `[H, S_q, S_k]` bias against
/// `[B, H, S_q, D]` queries costs no extra memory.
///
/// # Errors
///
/// Returns an error on any shape incompatibility.
pub fn flash_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    bias: Option<&Tensor>,
    scale: f32,
) -> Result<Tensor> {
    let _sp = sf_trace::span("kernel", "flash_attention");
    Ok(flash_core(q, k, v, bias, None, None, scale)?.out)
}

/// The fully fused attention head — the CPU analogue of ScaleFold's custom
/// Triton kernel: `sigmoid(gate) ⊙ softmax(q @ k^T · scale + bias + maskneg) @ v`
/// in one pass over the key tiles. Scale, pair bias, mask penalty, and the
/// sigmoid-gate epilogue are folded into the tile loop, so neither the
/// logits nor the bias+mask sum is ever materialized as a tensor. Per-row
/// log-sum-exp statistics are saved for the matching fused backward.
///
/// - `bias`/`mask` (optional) must broadcast to `[batch..., S_q, S_k]`;
///   mask entries equal to zero add [`MASK_NEG`] to the logit. The mask is
///   a non-differentiable input.
/// - `gate` (optional) must match the output shape exactly.
///
/// # Errors
///
/// Returns an error on any shape incompatibility.
pub fn attention_fused(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    bias: Option<&Tensor>,
    mask: Option<&Tensor>,
    gate: Option<&Tensor>,
    scale: f32,
) -> Result<FusedAttention> {
    let _sp = sf_trace::span("kernel", "attention_fused");
    flash_core(q, k, v, bias, mask, gate, scale)
}

/// Fused backward for [`attention_fused`]: softmax-backward is folded into
/// the attention gradient instead of running as a standalone op, and the
/// probability tensor is **recomputed in a single pass** from the saved
/// per-row log-sum-exp (`p = exp(scale·qkᵀ + bias + maskneg − lse)`) rather
/// than re-running the three-pass softmax or storing `[S_q, S_k]` floats
/// from the forward.
///
/// Uses the FlashAttention `D`-trick: the softmax-backward row reduction
/// `D_i = Σ_j p_ij·dp_ij` equals `datt_i · att_i`, so it comes from the
/// *saved output* instead of another pass over the probabilities.
///
/// `att` is the **pre-gate** forward output ([`FusedAttention::pre_gate`]),
/// `dy` the gradient of the (gated) output.
///
/// # Errors
///
/// Returns an error on any shape incompatibility.
#[allow(clippy::too_many_arguments)]
pub fn attention_fused_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    bias: Option<&Tensor>,
    mask: Option<&Tensor>,
    gate: Option<&Tensor>,
    att: &Tensor,
    lse: &Tensor,
    scale: f32,
    dy: &Tensor,
) -> Result<FusedAttentionGrads> {
    let _sp = sf_trace::span("kernel", "attention_fused_bwd");
    let (batch, s_q, s_k, _d) = check_qkv(q, k, v)?;

    // Gate epilogue backward: datt = dy ⊙ σ(g); dgate = dy ⊙ att ⊙ σ(g)(1−σ(g)).
    let (datt, dgate) = match gate {
        Some(g) => {
            let mut datt = Tensor::zeros(dy.dims());
            let mut dgate = Tensor::zeros(g.dims());
            let n = dy.len();
            let datt_ptr = SendPtr::new(datt.data_mut());
            let dgate_ptr = SendPtr::new(dgate.data_mut());
            let (dyd, gd, attd) = (dy.data(), g.data(), att.data());
            parallel_for(n, 6, |range| {
                let lo = range.start;
                let len = range.end - range.start;
                // SAFETY: element ranges from parallel_for are disjoint.
                let da = unsafe { datt_ptr.slice_mut(lo, len) };
                let dg = unsafe { dgate_ptr.slice_mut(lo, len) };
                for off in 0..len {
                    let i = lo + off;
                    let sig = 1.0 / (1.0 + vexp(-gd[i]));
                    da[off] = dyd[i] * sig;
                    dg[off] = dyd[i] * attd[i] * sig * (1.0 - sig);
                }
            });
            (datt, Some(dgate))
        }
        None => (dy.clone(), None),
    };

    // Recompute probabilities in ONE pass from the saved row stats: the
    // GEMM gives raw q·kᵀ; scale/bias/mask/−lse/exp fold into a single
    // in-place sweep (no max scan, no sum pass).
    let mut p = matmul_bt(q, k)?;
    let bias_rd = bias.map(|b| logits_bcast(b, q, s_q, s_k, batch)).transpose()?;
    let mask_rd = mask.map(|m| logits_bcast(m, q, s_q, s_k, batch)).transpose()?;
    {
        let rows = batch * s_q;
        let p_ptr = SendPtr::new(p.data_mut());
        let lsed = lse.data();
        parallel_for(rows, s_k * 8, |range| {
            for r in range {
                let (b, i) = (r / s_q, r % s_q);
                let row_lse = lsed[r];
                // SAFETY: row ranges from parallel_for are disjoint.
                let row = unsafe { p_ptr.slice_mut(r * s_k, s_k) };
                for (j, l) in row.iter_mut().enumerate() {
                    let mut val = *l * scale;
                    if let Some(rd) = bias_rd.as_ref() {
                        val += rd.at(b, i, j);
                    }
                    if let Some(rd) = mask_rd.as_ref() {
                        if rd.at(b, i, j) == 0.0 {
                            val += MASK_NEG;
                        }
                    }
                    *l = vexp(val - row_lse);
                }
            }
        });
    }

    let dv = p.matmul_at(&datt)?;
    // dp, then dlogits = p ⊙ (dp − D) fused in place with the D-trick
    // rowdot (saves the standalone softmax-backward pass).
    let mut dp = datt.matmul_bt(v)?;
    {
        let rows = batch * s_q;
        let d = att.dims()[att.rank() - 1];
        let dp_ptr = SendPtr::new(dp.data_mut());
        let (pd, dattd, attd) = (p.data(), datt.data(), att.data());
        parallel_for(rows, s_k * 4 + d * 2, |range| {
            for r in range {
                let mut rowdot = 0.0f32;
                for (da, a) in dattd[r * d..(r + 1) * d]
                    .iter()
                    .zip(attd[r * d..(r + 1) * d].iter())
                {
                    rowdot += da * a;
                }
                // SAFETY: row ranges from parallel_for are disjoint.
                let dprow = unsafe { dp_ptr.slice_mut(r * s_k, s_k) };
                for (dl, &pv) in dprow.iter_mut().zip(pd[r * s_k..(r + 1) * s_k].iter()) {
                    *dl = pv * (*dl - rowdot);
                }
            }
        });
    }

    let dq = dp.matmul(k)?.mul_scalar(scale);
    let dk = dp.matmul_at(q)?.mul_scalar(scale);
    let dbias = match bias {
        Some(b) => Some(dp.reduce_to(b.dims())?),
        None => None,
    };
    Ok(FusedAttentionGrads { dq, dk, dv, dbias, dgate })
}

/// Gated attention output: `sigmoid(gate) * attention`, the full AlphaFold
/// attention head (the gate is another linear projection of the input).
/// This is the *composed* formulation — [`attention_fused`] computes the
/// same thing in one kernel.
///
/// # Errors
///
/// Returns an error if `gate`'s shape mismatches the attention output.
pub fn gated_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    bias: Option<&Tensor>,
    gate: &Tensor,
    scale: f32,
) -> Result<Tensor> {
    let att = flash_attention(q, k, v, bias, scale)?;
    gate.sigmoid().mul(&att)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_matches_naive_no_bias() {
        let q = Tensor::randn(&[2, 3, 20, 8], 1);
        let k = Tensor::randn(&[2, 3, 20, 8], 2);
        let v = Tensor::randn(&[2, 3, 20, 8], 3);
        let scale = 1.0 / 8f32.sqrt();
        let a = naive_attention(&q, &k, &v, None, scale).unwrap();
        let b = flash_attention(&q, &k, &v, None, scale).unwrap();
        assert!(a.allclose(&b, 1e-4));
    }

    #[test]
    fn flash_matches_naive_with_pair_bias() {
        // q: [B, H, S, D]; bias: [H, S, S] broadcast over B — the AlphaFold
        // MSARowAttentionWithPairBias layout.
        let (b, h, s, d) = (2, 4, 19, 8);
        let q = Tensor::randn(&[b, h, s, d], 4);
        let k = Tensor::randn(&[b, h, s, d], 5);
        let v = Tensor::randn(&[b, h, s, d], 6);
        let bias = Tensor::randn(&[h, s, s], 7);
        let scale = 1.0 / (d as f32).sqrt();
        let out1 = naive_attention(&q, &k, &v, Some(&bias), scale).unwrap();
        let out2 = flash_attention(&q, &k, &v, Some(&bias), scale).unwrap();
        assert!(out1.allclose(&out2, 1e-4));
    }

    #[test]
    fn flash_handles_non_tile_multiple_lengths() {
        // s_k not a multiple of FLASH_TILE exercises the ragged last tile.
        let q = Tensor::randn(&[1, 5, 4], 8);
        let k = Tensor::randn(&[1, FLASH_TILE + 3, 4], 9);
        let v = Tensor::randn(&[1, FLASH_TILE + 3, 4], 10);
        let a = naive_attention(&q, &k, &v, None, 0.5).unwrap();
        let b = flash_attention(&q, &k, &v, None, 0.5).unwrap();
        assert!(a.allclose(&b, 1e-4));
    }

    #[test]
    fn attention_uniform_when_logits_constant() {
        // Zero queries -> uniform softmax -> output = mean of values.
        let q = Tensor::zeros(&[1, 2, 4]);
        let k = Tensor::randn(&[1, 6, 4], 11);
        let v = Tensor::randn(&[1, 6, 4], 12);
        let out = flash_attention(&q, &k, &v, None, 1.0).unwrap();
        let mean_v = v.mean_axis(1).unwrap();
        for r in 0..2 {
            for c in 0..4 {
                assert!(
                    (out.at(&[0, r, c]).unwrap() - mean_v.at(&[0, c]).unwrap()).abs() < 1e-5
                );
            }
        }
    }

    #[test]
    fn bias_shifts_attention() {
        let q = Tensor::zeros(&[1, 1, 3, 4]);
        let k = Tensor::zeros(&[1, 1, 3, 4]);
        let v = Tensor::from_vec(
            vec![
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0,
            ],
            &[1, 1, 3, 4],
        )
        .unwrap();
        // Strong bias towards key 2 for every query.
        let mut bias = Tensor::zeros(&[1, 3, 3]);
        for i in 0..3 {
            bias.set(&[0, i, 2], 50.0).unwrap();
        }
        let out = flash_attention(&q, &k, &v, Some(&bias), 1.0).unwrap();
        for i in 0..3 {
            assert!(out.at(&[0, 0, i, 2]).unwrap() > 0.999);
        }
    }

    #[test]
    fn gated_attention_zero_gate_zeroes_output() {
        let q = Tensor::randn(&[1, 4, 4], 13);
        let k = Tensor::randn(&[1, 4, 4], 14);
        let v = Tensor::randn(&[1, 4, 4], 15);
        let gate = Tensor::full(&[1, 4, 4], -100.0); // sigmoid -> 0
        let out = gated_attention(&q, &k, &v, None, &gate, 1.0).unwrap();
        assert!(out.abs().max_all().unwrap() < 1e-6);
    }

    #[test]
    fn rejects_shape_mismatches() {
        let q = Tensor::zeros(&[1, 4, 8]);
        let k = Tensor::zeros(&[1, 4, 6]);
        let v = Tensor::zeros(&[1, 4, 8]);
        assert!(naive_attention(&q, &k, &v, None, 1.0).is_err());
        let k2 = Tensor::zeros(&[2, 4, 8]);
        assert!(flash_attention(&q, &k2, &v, None, 1.0).is_err());
        let bad_bias = Tensor::zeros(&[5, 5]);
        let k3 = Tensor::zeros(&[1, 4, 8]);
        assert!(flash_attention(&q, &k3, &v, Some(&bad_bias), 1.0).is_err());
    }
}
