//! Functional collectives: the *algorithms* behind the simulator's cost
//! model, implemented for real on in-memory buffers.
//!
//! The cluster simulator prices collectives analytically; this module runs
//! them. [`ring_all_reduce`] is the actual two-phase ring algorithm
//! (reduce-scatter then all-gather over `n-1` steps each) used by NCCL,
//! operating on per-rank buffers — it powers the real data-parallel
//! trainer in the `scalefold` crate and verifies that the `2(n-1)/n`
//! traffic factor in [`crate::FabricSpec::all_reduce_s`] corresponds to a
//! real schedule.

use sf_tensor::Tensor;

/// Statistics of one collective execution (validates the analytic model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollectiveStats {
    /// Total elements sent across all ranks and steps.
    pub elements_sent: usize,
    /// Communication steps (latency terms) per rank.
    pub steps: usize,
}

/// In-place **mean** all-reduce over per-rank buffers using the two-phase
/// ring algorithm. After the call every buffer holds the elementwise mean
/// of all inputs.
///
/// # Panics
///
/// Panics if the buffers differ in length.
pub fn ring_all_reduce(buffers: &mut [Vec<f32>]) -> CollectiveStats {
    let n = buffers.len();
    if n <= 1 {
        return CollectiveStats::default();
    }
    let len = buffers[0].len();
    for b in buffers.iter() {
        assert_eq!(b.len(), len, "all-reduce buffers must match in length");
    }
    if len == 0 {
        return CollectiveStats::default();
    }

    // Chunk boundaries: chunk c covers [starts[c], starts[c+1]).
    let starts: Vec<usize> = (0..=n).map(|c| c * len / n).collect();
    let mut sent = 0usize;

    // Phase 1: reduce-scatter. After n-1 steps, rank r holds the full sum
    // of chunk (r+1) mod n.
    for step in 0..n - 1 {
        for rank in 0..n {
            // Rank sends chunk (rank - step) to rank+1, which accumulates.
            let chunk = (rank + n - step) % n;
            let (lo, hi) = (starts[chunk], starts[chunk + 1]);
            let dst = (rank + 1) % n;
            // Split-borrow the two ranks' buffers.
            let (src_buf, dst_buf) = two_mut(buffers, rank, dst);
            for i in lo..hi {
                dst_buf[i] += src_buf[i];
            }
            sent += hi - lo;
        }
    }
    // Phase 2: all-gather the reduced chunks around the ring.
    for step in 0..n - 1 {
        for rank in 0..n {
            // Rank holds the fully-reduced chunk (rank + 1 - step); pass it on.
            let chunk = (rank + 1 + n - step) % n;
            let (lo, hi) = (starts[chunk], starts[chunk + 1]);
            let dst = (rank + 1) % n;
            let (src_buf, dst_buf) = two_mut(buffers, rank, dst);
            dst_buf[lo..hi].copy_from_slice(&src_buf[lo..hi]);
            sent += hi - lo;
        }
    }
    // Mean.
    let inv = 1.0 / n as f32;
    for b in buffers.iter_mut() {
        for x in b.iter_mut() {
            *x *= inv;
        }
    }
    CollectiveStats {
        elements_sent: sent,
        steps: 2 * (n - 1),
    }
}

/// All-gather: concatenates every rank's shard (in rank order) into each
/// rank's output.
///
/// # Panics
///
/// Panics if shards differ in length.
pub fn all_gather(shards: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let n = shards.len();
    if n == 0 {
        return Vec::new();
    }
    let len = shards[0].len();
    for s in shards {
        assert_eq!(s.len(), len, "all-gather shards must match in length");
    }
    let mut full = Vec::with_capacity(n * len);
    for s in shards {
        full.extend_from_slice(s);
    }
    vec![full; n]
}

/// All-to-all: rank `r`'s output chunk `c` is rank `c`'s input chunk `r`
/// (the DAP axis-switch primitive).
///
/// # Panics
///
/// Panics if any rank's input does not split evenly into `n` chunks.
pub fn all_to_all(inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let len = inputs[0].len();
    assert!(len.is_multiple_of(n), "all-to-all needs n-divisible buffers");
    let chunk = len / n;
    (0..n)
        .map(|r| {
            let mut out = Vec::with_capacity(len);
            for (c, input) in inputs.iter().enumerate() {
                let _ = c;
                out.extend_from_slice(&input[r * chunk..(r + 1) * chunk]);
            }
            out
        })
        .collect()
}

/// Mean all-reduce over per-rank *tensors* (gradient averaging for data
/// parallelism): flattens, ring-reduces, restores shapes.
///
/// # Panics
///
/// Panics if the tensors' shapes differ across ranks.
pub fn all_reduce_tensors(tensors: &mut [Tensor]) -> CollectiveStats {
    if tensors.len() <= 1 {
        return CollectiveStats::default();
    }
    let dims = tensors[0].dims().to_vec();
    for t in tensors.iter() {
        assert_eq!(t.dims(), dims.as_slice(), "rank tensors must match shapes");
    }
    let mut buffers: Vec<Vec<f32>> = tensors.iter().map(|t| t.data().to_vec()).collect();
    let stats = ring_all_reduce(&mut buffers);
    for (t, b) in tensors.iter_mut().zip(buffers) {
        t.data_mut().copy_from_slice(&b);
    }
    stats
}

fn two_mut<T>(slice: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = slice.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean(buffers: &[Vec<f32>]) -> Vec<f32> {
        let n = buffers.len();
        let len = buffers[0].len();
        let mut out = vec![0.0f32; len];
        for b in buffers {
            for (o, x) in out.iter_mut().zip(b.iter()) {
                *o += x;
            }
        }
        for o in &mut out {
            *o /= n as f32;
        }
        out
    }

    #[test]
    fn ring_all_reduce_equals_naive_mean() {
        for n in [2usize, 3, 4, 7, 8] {
            for len in [1usize, 5, 16, 33] {
                let mut buffers: Vec<Vec<f32>> = (0..n)
                    .map(|r| (0..len).map(|i| (r * 31 + i) as f32 * 0.5 - 3.0).collect())
                    .collect();
                let expect = naive_mean(&buffers);
                ring_all_reduce(&mut buffers);
                for (r, b) in buffers.iter().enumerate() {
                    for (i, (&got, &want)) in b.iter().zip(expect.iter()).enumerate() {
                        assert!(
                            (got - want).abs() < 1e-4,
                            "n={n} len={len} rank {r} idx {i}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_traffic_matches_analytic_factor() {
        // The analytic model prices 2(n-1)/n x bytes per rank; the real
        // ring sends exactly that (in elements, summed over ranks).
        let n = 8usize;
        let len = 64usize;
        let mut buffers = vec![vec![1.0f32; len]; n];
        let stats = ring_all_reduce(&mut buffers);
        let per_rank = stats.elements_sent as f64 / n as f64;
        let analytic = 2.0 * (n as f64 - 1.0) / n as f64 * len as f64;
        assert!(
            (per_rank - analytic).abs() <= 2.0 * n as f64,
            "per-rank {per_rank} vs analytic {analytic}"
        );
        assert_eq!(stats.steps, 2 * (n - 1));
    }

    #[test]
    fn single_rank_is_identity() {
        let mut buffers = vec![vec![1.0, 2.0, 3.0]];
        let stats = ring_all_reduce(&mut buffers);
        assert_eq!(buffers[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(stats.elements_sent, 0);
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let shards = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let out = all_gather(&shards);
        assert_eq!(out.len(), 3);
        for o in &out {
            assert_eq!(o, &vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        }
    }

    #[test]
    fn all_to_all_is_a_transpose() {
        // 2 ranks, chunks of 2.
        let inputs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let out = all_to_all(&inputs);
        assert_eq!(out[0], vec![1.0, 2.0, 5.0, 6.0]);
        assert_eq!(out[1], vec![3.0, 4.0, 7.0, 8.0]);
        // Applying it twice restores the input.
        let back = all_to_all(&out);
        assert_eq!(back, inputs);
    }

    #[test]
    fn all_reduce_tensors_averages() {
        let mut ts = vec![
            Tensor::from_vec(vec![1.0, 2.0], &[2]).expect("sized"),
            Tensor::from_vec(vec![3.0, 6.0], &[2]).expect("sized"),
        ];
        all_reduce_tensors(&mut ts);
        assert_eq!(ts[0].data(), &[2.0, 4.0]);
        assert_eq!(ts[1].data(), &[2.0, 4.0]);
    }
}
