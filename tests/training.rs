//! Longer-horizon real-training tests: convergence behaviour of the actual
//! model, precision effects, and SWA evaluation.

use scalefold::{Trainer, TrainerConfig};
use sf_model::ModelConfig;
use sf_tensor::bf16::Precision;

fn base_cfg() -> TrainerConfig {
    let mut cfg = TrainerConfig::tiny();
    cfg.model = ModelConfig::tiny();
    cfg.model.evoformer_blocks = 1;
    cfg.model.extra_msa_blocks = 0;
    cfg.model.template_blocks = 0;
    cfg.model.structure_layers = 1;
    cfg.model.n_res = 8;
    cfg.model.n_seq = 3;
    cfg.model.n_extra_seq = 4;
    cfg.dataset_len = 2;
    cfg.schedule.warmup_steps = 4;
    cfg
}

#[test]
fn loss_trend_is_downward_over_30_steps() {
    let mut trainer = Trainer::new(base_cfg());
    let reports = trainer.train(30);
    let early: f32 = reports[..6].iter().map(|r| r.loss).sum::<f32>() / 6.0;
    let late: f32 = reports[24..].iter().map(|r| r.loss).sum::<f32>() / 6.0;
    assert!(
        late < 0.9 * early,
        "expected >=10% loss reduction: {early:.4} -> {late:.4}"
    );
    assert!(reports.iter().all(|r| r.loss.is_finite()));
}

#[test]
fn lddt_improves_or_holds_with_training() {
    let mut trainer = Trainer::new(base_cfg());
    let reports = trainer.train(30);
    let early: f32 = reports[..6].iter().map(|r| r.lddt).sum::<f32>() / 6.0;
    let late: f32 = reports[24..].iter().map(|r| r.lddt).sum::<f32>() / 6.0;
    // Structure quality is noisy at this scale; it must at least not
    // collapse while the loss falls.
    assert!(late >= early - 0.05, "lddt degraded: {early:.3} -> {late:.3}");
}

#[test]
fn bf16_training_tracks_f32_training() {
    // The paper's §3.4: bf16 converges. At tiny scale, the bf16 loss curve
    // must stay close to the f32 curve.
    let mut f32_trainer = Trainer::new(base_cfg());
    let mut bf16_cfg = base_cfg();
    bf16_cfg.precision = Precision::Bf16;
    let mut bf16_trainer = Trainer::new(bf16_cfg);

    let f32_reports = f32_trainer.train(12);
    let bf16_reports = bf16_trainer.train(12);
    let f32_last = f32_reports.last().expect("reports").loss;
    let bf16_last = bf16_reports.last().expect("reports").loss;
    assert!(bf16_last.is_finite());
    assert!(
        (bf16_last - f32_last).abs() < 0.5 * f32_last.abs().max(0.1),
        "bf16 {bf16_last:.4} vs f32 {f32_last:.4}"
    );
}

#[test]
fn grad_clipping_engages_under_large_lr() {
    let mut cfg = base_cfg();
    cfg.schedule.peak_lr = 0.05;
    cfg.schedule.warmup_steps = 0;
    cfg.clip_norm = 0.5;
    let mut trainer = Trainer::new(cfg);
    let reports = trainer.train(6);
    // With an aggressive LR, raw gradient norms must exceed the clip
    // threshold at least once (so clipping actually did something) and the
    // run must stay finite.
    assert!(reports.iter().any(|r| r.grad_norm > 0.5));
    assert!(reports.iter().all(|r| r.loss.is_finite()));
}

#[test]
fn swa_evaluation_is_stable() {
    let mut trainer = Trainer::new(base_cfg());
    let _ = trainer.train(10);
    let e1 = trainer.evaluate(2);
    let e2 = trainer.evaluate(2);
    assert_eq!(e1, e2, "evaluation must be deterministic");
    assert!((0.0..=1.0).contains(&e1));
}

#[test]
fn deterministic_training_given_fixed_batches() {
    // The non-blocking pipeline yields in a timing-dependent order (the
    // paper: "the overall data sample order could thus vary across
    // different training instances"), so end-to-end `train()` is only
    // deterministic up to batch order. With explicit batches, training is
    // bitwise deterministic.
    use sf_data::featurize::featurize;
    use sf_data::SyntheticDataset;
    let cfg = base_cfg();
    let ds = SyntheticDataset::new(1, 4);
    let batches: Vec<_> = (0..4)
        .map(|i| featurize(&ds.record(i), &cfg.model, i as u64))
        .collect();
    let run = || {
        let mut t = Trainer::new(base_cfg());
        batches.iter().map(|b| t.train_step(b)).collect::<Vec<_>>()
    };
    let r1 = run();
    let r2 = run();
    for (a, b) in r1.iter().zip(r2.iter()) {
        assert_eq!(a.loss, b.loss);
        assert_eq!(a.grad_norm, b.grad_norm);
        assert_eq!(a.lddt, b.lddt);
    }
}

#[test]
fn pipeline_training_order_varies_but_set_is_stable() {
    // Two pipeline-driven runs may reorder batches, but the multiset of
    // losses over one epoch of a fixed dataset is the same.
    let mut cfg = base_cfg();
    cfg.dataset_len = 4;
    let collect = || {
        let mut t = Trainer::new(cfg.clone());
        let mut losses: Vec<f32> = t.train(4).iter().map(|r| r.loss).collect();
        losses.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        losses
    };
    // First step of both runs starts from identical weights, so the sorted
    // first-epoch losses agree.
    let a = collect();
    let b = collect();
    // Losses depend on batch order after step 1 (weights changed), so only
    // sanity-check structure, not equality.
    assert_eq!(a.len(), b.len());
    assert!(a.iter().all(|l| l.is_finite()));
    assert!(b.iter().all(|l| l.is_finite()));
}

#[test]
fn long_training_improves_lddt_substantially() {
    // A longer horizon on a slightly bigger model: the tiny AlphaFold must
    // move clearly towards its training structures.
    let mut cfg = base_cfg();
    cfg.model.evoformer_blocks = 2;
    cfg.model.n_res = 10;
    cfg.dataset_len = 3;
    let mut trainer = Trainer::new(cfg);
    let reports = trainer.train(120);
    let early: f32 = reports[..10].iter().map(|r| r.lddt).sum::<f32>() / 10.0;
    let late: f32 = reports[110..].iter().map(|r| r.lddt).sum::<f32>() / 10.0;
    assert!(
        late > early + 0.08,
        "expected a clear lDDT gain: {early:.3} -> {late:.3}"
    );
    let early_loss: f32 = reports[..10].iter().map(|r| r.loss).sum::<f32>() / 10.0;
    let late_loss: f32 = reports[110..].iter().map(|r| r.loss).sum::<f32>() / 10.0;
    assert!(late_loss < 0.5 * early_loss, "loss {early_loss:.3} -> {late_loss:.3}");
}
