//! The AlphaFold model topology, built on the [`sf_autograd`] tape.
//!
//! This crate implements the architecture described in Jumper et al. (2021)
//! and reproduced by OpenFold — the training workload that ScaleFold
//! optimizes. All four top-level parts from the paper's Figure 1 are here:
//!
//! - **Input embeddings** ([`embed`]): MSA/target featurization into the
//!   initial MSA (`m`) and pair (`z`) representations, with relative
//!   positional encoding, plus the template pair stack and extra-MSA stack.
//! - **Evoformer stack** ([`evoformer`]): the nine-module block of the
//!   paper's Figure 2 — MSA row attention *with pair bias*, MSA column
//!   attention, MSA transition, outer product mean, triangle multiplicative
//!   updates (outgoing/incoming), triangle attention (starting/ending node),
//!   and pair transition.
//! - **Structure module** ([`structure`]): iterative coordinate refinement
//!   from the single representation (an IPA-style attention with
//!   distance-derived bias; see module docs for the documented
//!   simplification versus full rigid-frame IPA).
//! - **Recycling** ([`model`]): the outer loop feeding previous-iteration
//!   embeddings and predicted geometry back into the next iteration.
//!
//! Losses ([`loss`]) use rigid-invariant distance-map objectives plus the
//! masked-MSA auxiliary task; quality is measured with a real
//! [lDDT-Cα](metrics::lddt_ca) implementation. Rigid-body geometry
//! (quaternions, frames) lives in [`geometry`].
//!
//! Scale note: the topology is exact, the widths/depths are configurable.
//! [`ModelConfig::paper`] reproduces AlphaFold's published dimensions
//! (48 Evoformer blocks, `c_m = 256`, `c_z = 128`, crop 256 — the sizes the
//! performance model in `sf-opgraph` costs out), while [`ModelConfig::tiny`]
//! is small enough to *actually train* on a CPU in tests and examples.

pub mod config;
pub mod dap;
pub mod embed;
pub mod evoformer;
pub mod features;
pub mod frames;
pub mod geometry;
pub mod inference;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod structure;

pub use config::ModelConfig;
pub use dap::{AxialCollectives, LocalAxial};
pub use features::FeatureBatch;
pub use model::{AlphaFold, ModelOutput};
