//! GPU-memory footprint model — the paper's "High Memory Consumption"
//! challenge (§2.2): AlphaFold has only 97M parameters, but Evoformer
//! activations are `O(n³)` per attention call, so without gradient
//! checkpointing the training state of even one sample does not fit in a
//! single GPU. DAP shards those activations, which is what lets ScaleFold
//! *disable* checkpointing (§4.1).

use serde::{Deserialize, Serialize};
use sf_gpusim::DeviceSpec;
use sf_model::ModelConfig;

/// Bytes in one GiB.
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Estimated training-memory footprint of one rank, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Parameters + gradients + Adam moments + SWA average (5 copies).
    pub states_bytes: f64,
    /// Activations retained for backward.
    pub activations_bytes: f64,
    /// Workspace / fragmentation / NCCL buffers allowance.
    pub overhead_bytes: f64,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total_bytes(&self) -> f64 {
        self.states_bytes + self.activations_bytes + self.overhead_bytes
    }

    /// Total GiB.
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() / GIB
    }

    /// True if this footprint fits on `device`.
    pub fn fits(&self, device: &DeviceSpec) -> bool {
        self.total_gib() <= device.mem_capacity_gib
    }
}

/// Estimates the per-rank memory footprint.
///
/// Activation accounting: for every attention call the logits matrix
/// (`O(n³)` for the triangle attentions: rows × res × res) plus the
/// persistent m/z activations per block, all retained for backward when
/// `checkpointing` is off; with checkpointing only per-block boundary
/// tensors persist. DAP divides the activation term by `dap`.
pub fn estimate(
    cfg: &ModelConfig,
    dap: usize,
    checkpointing: bool,
    bf16: bool,
) -> MemoryFootprint {
    let elem = if bf16 { 2.0 } else { 4.0 };
    let params = cfg.approx_param_count() as f64;
    // Parameters live in fp32 master copies regardless; grads/moments too.
    let states_bytes = params * 4.0 * 5.0;

    let (s, r) = (cfg.n_seq as f64, cfg.n_res as f64);
    let s_e = cfg.n_extra_seq as f64;
    let h = cfg.msa_heads as f64;
    let hp = cfg.pair_heads as f64;

    // Per-block retained activations (forward values needed by backward).
    let m_act = s * r * cfg.c_m as f64;
    let z_act = r * r * cfg.c_z as f64;
    // Attention logits: MSA row (s·h·r·r), MSA col (r·h·s·s), two triangle
    // attentions (r·hp·r·r each) — the O(n^3) terms. Backward needs both
    // the post-bias logits and the softmax probabilities, plus the dropout
    // mask on the probabilities: ~2.5 retained copies per call.
    let logits = 2.5 * (s * h * r * r + r * h * s * s + 2.0 * r * hp * r * r);
    // Transitions: 4x-expanded hidden activations.
    let transitions = (s * r * cfg.c_m as f64 + r * r * cfg.c_z as f64)
        * cfg.transition_factor as f64;
    // Triangle-mult hidden channels.
    let tri_mul = 2.0 * r * r * cfg.c_hidden_mul as f64;
    let per_block = (4.0 * m_act + 6.0 * z_act + logits + transitions + tri_mul) * elem;

    let blocks = cfg.evoformer_blocks as f64;
    let extra_blocks = cfg.extra_msa_blocks as f64;
    let extra_per_block = {
        let m_e = s_e * r * cfg.c_e as f64;
        let logits_e = s_e * h * r * r + r * h * s_e * s_e;
        (4.0 * m_e + 6.0 * z_act + logits_e + transitions) * elem
    };

    let activations_full = blocks * per_block + extra_blocks * extra_per_block;
    let activations_ckpt = (blocks + extra_blocks) * (m_act + z_act) * elem + per_block;
    let mut activations_bytes = if checkpointing {
        activations_ckpt
    } else {
        activations_full
    };
    activations_bytes /= dap.max(1) as f64;

    MemoryFootprint {
        states_bytes,
        activations_bytes,
        overhead_bytes: 6.0 * GIB,
    }
}

/// Whether checkpointing can be disabled for `(cfg, dap, bf16)` on `device`
/// — the gate ScaleFold's DAP opens (§4.1).
pub fn fits_without_checkpointing(
    cfg: &ModelConfig,
    dap: usize,
    bf16: bool,
    device: &DeviceSpec,
) -> bool {
    estimate(cfg, dap, false, bf16).fits(device)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_without_ckpt_needs_dap() {
        // The paper's §4.1: only after applying DAP could checkpointing be
        // disabled. At DAP-1 the full activation set must NOT fit; at DAP-8
        // it must.
        let cfg = ModelConfig::paper();
        let dev = DeviceSpec::h100();
        assert!(
            !fits_without_checkpointing(&cfg, 1, true, &dev),
            "DAP-1 without checkpointing should blow 80 GiB: {:.1} GiB",
            estimate(&cfg, 1, false, true).total_gib()
        );
        assert!(
            fits_without_checkpointing(&cfg, 8, true, &dev),
            "DAP-8 without checkpointing should fit: {:.1} GiB",
            estimate(&cfg, 8, false, true).total_gib()
        );
    }

    #[test]
    fn checkpointing_fits_even_at_dap1() {
        // OpenFold's actual configuration: checkpointing on, single GPU.
        let cfg = ModelConfig::paper();
        let dev = DeviceSpec::a100();
        let f = estimate(&cfg, 1, true, true);
        assert!(f.fits(&dev), "checkpointed footprint {:.1} GiB", f.total_gib());
    }

    #[test]
    fn activations_dwarf_parameters_without_ckpt() {
        // The paper: 97M parameters but "the volume of intermediate
        // activations during training is enormous".
        let cfg = ModelConfig::paper();
        let f = estimate(&cfg, 1, false, false);
        assert!(
            f.activations_bytes > 10.0 * f.states_bytes,
            "activations {:.1} GiB vs states {:.1} GiB",
            f.activations_bytes / GIB,
            f.states_bytes / GIB
        );
    }

    #[test]
    fn dap_divides_activations_linearly() {
        let cfg = ModelConfig::paper();
        let f1 = estimate(&cfg, 1, false, false);
        let f4 = estimate(&cfg, 4, false, false);
        let ratio = f1.activations_bytes / f4.activations_bytes;
        assert!((ratio - 4.0).abs() < 1e-9);
        // States do not shard under DAP (replicated parameters).
        assert_eq!(f1.states_bytes, f4.states_bytes);
    }

    #[test]
    fn bf16_halves_activations_only() {
        let cfg = ModelConfig::paper();
        let f32f = estimate(&cfg, 1, false, false);
        let bf16f = estimate(&cfg, 1, false, true);
        assert!((bf16f.activations_bytes - 0.5 * f32f.activations_bytes).abs() < 1.0);
        assert_eq!(bf16f.states_bytes, f32f.states_bytes);
    }
}
