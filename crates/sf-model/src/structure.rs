//! The structure module: iterative coordinate refinement from the single
//! representation.
//!
//! Each residue carries a **rigid frame** (unit quaternion + translation)
//! composed differentiably on the tape via [`crate::frames`] — AlphaFold's
//! backbone update (Algorithm 23). Each layer runs attention over residues
//! whose logits combine (a) a pair-derived bias and (b) a learned per-head
//! penalty on the *current* pairwise squared distances (the inductive bias
//! IPA's point-attention term provides), then predicts a quaternion update
//! and a local-frame translation which compose onto the frames. The
//! documented simplification versus full IPA is the attention value path:
//! we attend over scalar channels rather than per-head 3-D points.
//!
//! This module is deliberately **not** DAP-parallelizable, matching the
//! paper's observation that the Structure Module is serial. Its layers are
//! serial *across* iterations, but each layer's GEMM / LayerNorm /
//! attention kernels still run on the intra-op parallel CPU backend
//! (`sf_tensor::pool`), which is bit-identical at every thread count.

use crate::config::ModelConfig;
use crate::evoformer::transition;
use crate::frames::FrameBatch;
use crate::linear::{layer_norm, Linear};
use sf_autograd::{Graph, ParamStore, Result, Var};
use sf_tensor::Tensor;

/// Output of the structure module.
#[derive(Debug, Clone, Copy)]
pub struct StructureOutput {
    /// Predicted Cα coordinates, `[n_res, 3]`.
    pub coords: Var,
    /// Final single representation, `[n_res, c_s]`.
    pub single: Var,
    /// Per-residue predicted-confidence logits (pLDDT head), `[n_res, 1]`.
    pub plddt_logits: Var,
}

/// Runs the structure module from the MSA first row and pair representation.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn structure_module(
    g: &mut Graph,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    m: Var,
    z: Var,
) -> Result<StructureOutput> {
    let heads = cfg.pair_heads.max(1);
    let c_s = cfg.c_s;
    let d = c_s / heads.max(1);
    let r = cfg.n_res;

    // Single representation from the MSA first row.
    let m0 = g.slice_axis(m, 0, 0, 1)?;
    let m0 = g.reshape(m0, &[r, cfg.c_m])?;
    let m0_ln = layer_norm(g, store, "structure.ln_m", cfg.c_m, m0)?;
    let mut s = Linear::new("structure.single", cfg.c_m, c_s).apply(g, store, m0_ln)?;

    // Pair bias shared across layers: [R, R, c_z] -> [h, R, R].
    let z_ln = layer_norm(g, store, "structure.ln_z", cfg.c_z, z)?;
    let pair_bias_rr =
        Linear::no_bias("structure.pair_bias", cfg.c_z, heads).apply(g, store, z_ln)?;
    let pair_bias = g.permute(pair_bias_rr, &[2, 0, 1])?;

    // "Black hole" initialization: identity frames, all residues at the
    // origin (AlphaFold Algorithm 20 line 1).
    let mut frames = FrameBatch::identity(g, r);

    let mut plddt_logits = None;
    for layer in 0..cfg.structure_layers {
        let p = format!("structure.layer{layer}");
        let x = frames.trans;

        // Distance-penalty bias from the current coordinates:
        // bias[h,i,j] = -softplus(w_h) * |x_i - x_j|^2 (per-head learned
        // weight; softplus keeps the penalty attractive).
        let xi = g.reshape(x, &[r, 1, 3])?;
        let xj = g.reshape(x, &[1, r, 3])?;
        let diff = g.sub(xi, xj)?;
        let sq = g.square(diff)?;
        let d2 = g.sum_axis(sq, 2)?; // [R, R]
        let d2b = g.reshape(d2, &[1, r, r])?;
        let w = g.use_param_or_init(store, &format!("{p}.dist_weight"), || {
            Tensor::full(&[heads, 1, 1], -2.0)
        });
        let wexp = g.exp(w)?; // positive per-head scale (exp as softplus stand-in)
        let wneg = g.neg(wexp)?;
        let dist_bias = g.mul(wneg, d2b)?; // [h, R, R]
        let bias = g.add(pair_bias, dist_bias)?;

        // Attention over residues (batch dim = heads).
        let s_ln = layer_norm(g, store, &format!("{p}.ln"), c_s, s)?;
        let q = Linear::no_bias(format!("{p}.q"), c_s, heads * d).apply(g, store, s_ln)?;
        let k = Linear::no_bias(format!("{p}.k"), c_s, heads * d).apply(g, store, s_ln)?;
        let v = Linear::no_bias(format!("{p}.v"), c_s, heads * d).apply(g, store, s_ln)?;
        let to_heads = |g: &mut Graph, t: Var| -> Result<Var> {
            let rs = g.reshape(t, &[r, heads, d])?;
            g.permute(rs, &[1, 0, 2])
        };
        let qh = to_heads(g, q)?;
        let kh = to_heads(g, k)?;
        let vh = to_heads(g, v)?;
        let att = g.attention(qh, kh, vh, Some(bias), 1.0 / (d as f32).sqrt())?;
        let att_r = g.permute(att, &[1, 0, 2])?;
        let att_flat = g.reshape(att_r, &[r, heads * d])?;
        let upd = Linear::new(format!("{p}.out"), heads * d, c_s).apply(g, store, att_flat)?;
        s = g.add(s, upd)?;
        s = transition(g, store, c_s, 2, &format!("{p}.trans"), s)?;

        // Backbone update (Algorithm 23): a quaternion update from the
        // single representation (imaginary part, scaled small so early
        // steps stay near identity) plus a local-frame translation.
        let imag_raw = Linear::new(format!("{p}.quat"), c_s, 3).apply(g, store, s)?;
        let imag = g.scale(imag_raw, 0.1)?;
        let dt = Linear::new(format!("{p}.coords"), c_s, 3).apply(g, store, s)?;
        frames = frames.compose_update(g, imag, dt)?;

        if layer == cfg.structure_layers - 1 {
            plddt_logits =
                Some(Linear::new("structure.plddt", c_s, 1).apply(g, store, s)?);
        }
    }

    let plddt_logits = match plddt_logits {
        Some(v) => v,
        // structure_layers == 0: degenerate but well-defined.
        None => Linear::new("structure.plddt", c_s, 1).apply(g, store, s)?,
    };
    Ok(StructureOutput {
        coords: frames.trans,
        single: s,
        plddt_logits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: &ModelConfig, seed: u64) -> (Graph, ParamStore, StructureOutput) {
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let m = g.constant(Tensor::randn(&[cfg.n_seq, cfg.n_res, cfg.c_m], seed).mul_scalar(0.5));
        let z = g.constant(
            Tensor::randn(&[cfg.n_res, cfg.n_res, cfg.c_z], seed ^ 1).mul_scalar(0.5),
        );
        let out = structure_module(&mut g, &mut store, cfg, m, z).unwrap();
        (g, store, out)
    }

    #[test]
    fn output_shapes() {
        let cfg = ModelConfig::tiny();
        let (g, _, out) = run(&cfg, 1);
        assert_eq!(g.value(out.coords).dims(), &[cfg.n_res, 3]);
        assert_eq!(g.value(out.single).dims(), &[cfg.n_res, cfg.c_s]);
        assert_eq!(g.value(out.plddt_logits).dims(), &[cfg.n_res, 1]);
        assert!(!g.value(out.coords).has_non_finite());
    }

    #[test]
    fn coords_move_from_origin() {
        let cfg = ModelConfig::tiny();
        let (g, _, out) = run(&cfg, 2);
        assert!(g.value(out.coords).norm() > 1e-3);
    }

    #[test]
    fn gradients_flow_to_structure_params() {
        let cfg = ModelConfig::tiny();
        let (mut g, store, out) = run(&cfg, 3);
        let loss = {
            let sq = g.square(out.coords).unwrap();
            g.sum_all(sq).unwrap()
        };
        g.backward(loss).unwrap();
        let grads = g.grads_by_name().unwrap();
        assert!(grads["structure.single.weight"].norm() > 0.0);
        assert!(grads["structure.layer0.coords.weight"].norm() > 0.0);
        assert!(grads.contains_key("structure.layer0.dist_weight"));
        let _ = store;
    }

    #[test]
    fn different_pair_repr_changes_structure() {
        let cfg = ModelConfig::tiny();
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let m = g.constant(Tensor::randn(&[cfg.n_seq, cfg.n_res, cfg.c_m], 7).mul_scalar(0.5));
        let z1 = g.constant(Tensor::randn(&[cfg.n_res, cfg.n_res, cfg.c_z], 8).mul_scalar(0.5));
        let z2 = g.constant(Tensor::randn(&[cfg.n_res, cfg.n_res, cfg.c_z], 9).mul_scalar(0.5));
        let o1 = structure_module(&mut g, &mut store, &cfg, m, z1).unwrap();
        let o2 = structure_module(&mut g, &mut store, &cfg, m, z2).unwrap();
        assert!(!g.value(o1.coords).allclose(g.value(o2.coords), 1e-7));
    }
}
