//! No-op derive macros for the offline serde stub: accepting the derive
//! (and any `#[serde(...)]` attributes) is all the workspace needs, since
//! nothing ever calls serialization.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
