//! Microbenchmarks of the training subroutines §3.3.1 fuses: Adam + SWA
//! (separate passes vs the single fused pass) and gradient clipping
//! (per-tensor vs bucketed over DDP-style buffers).

use criterion::{criterion_group, criterion_main, Criterion};
use sf_autograd::ParamStore;
use sf_optim::{clip_by_global_norm, Adam, AdamConfig, FusedAdamSwa, GradBuckets, Grads, Swa};
use sf_tensor::Tensor;
use std::hint::black_box;

/// A parameter set shaped like the paper's pain point: many small tensors.
fn many_small_params(tensors: usize, elems: usize) -> (ParamStore, Grads) {
    let mut store = ParamStore::new();
    let mut grads = Grads::new();
    for i in 0..tensors {
        let name = format!("p{i:05}");
        store.insert(name.clone(), Tensor::randn(&[elems], i as u64));
        grads.insert(name, Tensor::randn(&[elems], 10_000 + i as u64));
    }
    (store, grads)
}

fn bench_adam_swa(c: &mut Criterion) {
    let mut group = c.benchmark_group("adam_swa");
    group.sample_size(10);
    let (tensors, elems) = (400usize, 256usize);
    group.bench_function("unfused_adam_then_swa", |b| {
        let (store, grads) = many_small_params(tensors, elems);
        b.iter_batched(
            || (store.clone(), Adam::new(AdamConfig::default()), Swa::new(0.999)),
            |(mut store, mut adam, mut swa)| {
                adam.step(&mut store, black_box(&grads), 1e-3);
                swa.update(&store);
                store
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("fused_adam_swa", |b| {
        let (store, grads) = many_small_params(tensors, elems);
        b.iter_batched(
            || (store.clone(), FusedAdamSwa::new(AdamConfig::default(), 0.999)),
            |(mut store, mut fused)| {
                fused.step(&mut store, black_box(&grads), 1e-3);
                store
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_grad_clip(c: &mut Criterion) {
    let mut group = c.benchmark_group("grad_clip");
    group.sample_size(10);
    let (_, grads) = many_small_params(2000, 64);
    group.bench_function("per_tensor_norm_and_scale", |b| {
        b.iter_batched(
            || grads.clone(),
            |mut g| {
                black_box(clip_by_global_norm(&mut g, 0.5));
                g
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("bucketed_norm_and_scale", |b| {
        b.iter_batched(
            || GradBuckets::pack(&grads, 25 * 1024 * 1024),
            |mut buckets| {
                black_box(buckets.clip(0.5));
                buckets
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_adam_swa, bench_grad_clip);
criterion_main!(benches);
