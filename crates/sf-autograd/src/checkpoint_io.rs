//! Parameter-store checkpointing: a simple self-describing binary format
//! (no external dependencies), used to pause/resume training and to ship
//! the MLPerf-style "initialized from predefined checkpoint" setting.
//!
//! Version 2 format (little-endian):
//! ```text
//! magic   b"SFCK"            4 bytes
//! version u32                  = 2
//! count   u64                  number of parameters
//! repeat count times:
//!   name_len u32, name bytes (UTF-8)
//!   rank u32, dims u64 x rank
//!   data f32 x prod(dims)
//!   crc32 u32                  CRC-32 (IEEE) of name + dims + data bytes
//! ```
//!
//! Version 1 (no per-tensor CRC) is still read. Writers always produce
//! v2, and [`ParamStore::save_file`] is atomic: the bytes land in a
//! temporary file in the target directory, are fsynced, and are renamed
//! over the destination — a crash mid-write never leaves a torn
//! checkpoint under the final name.

use crate::params::ParamStore;
use sf_tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"SFCK";
const VERSION_V1: u32 = 1;
const VERSION: u32 = 2;

/// Errors from checkpoint (de)serialization.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a ScaleFold checkpoint or is a newer version.
    Format(String),
    /// The file parses but a tensor's CRC does not match (bit rot, torn
    /// write, or deliberate corruption).
    Corrupt {
        /// Parameter whose payload failed verification.
        name: String,
        /// CRC stored in the file.
        expected: u32,
        /// CRC of the bytes actually read.
        actual: u32,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
            CheckpointError::Corrupt {
                name,
                expected,
                actual,
            } => write!(
                f,
                "corrupt checkpoint: parameter '{name}' crc {actual:#010x} != stored {expected:#010x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };

    /// Starts a fresh digest.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = Self::TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finishes the digest.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// One-shot digest of `bytes`.
    pub fn of(bytes: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(bytes);
        c.finalize()
    }
}

/// Result of scanning a checkpoint directory for the newest valid file.
#[derive(Debug)]
pub struct LatestCheckpoint {
    /// The store loaded from the newest valid file.
    pub store: ParamStore,
    /// Path it was loaded from.
    pub path: PathBuf,
    /// Step number parsed from the file name, if the name carries one.
    pub step: Option<u64>,
    /// Newer files that were skipped as corrupt/unreadable, newest first.
    pub skipped: Vec<(PathBuf, String)>,
}

impl ParamStore {
    /// Serializes every parameter to `writer` in the v2 checkpoint format
    /// (per-tensor CRC32).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on write failure.
    pub fn save_to<W: Write>(&self, mut writer: W) -> Result<(), CheckpointError> {
        writer.write_all(MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        writer.write_all(&(self.len() as u64).to_le_bytes())?;
        for (name, tensor) in self.iter() {
            let mut crc = Crc32::new();
            let bytes = name.as_bytes();
            writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
            writer.write_all(bytes)?;
            crc.update(bytes);
            writer.write_all(&(tensor.rank() as u32).to_le_bytes())?;
            for &d in tensor.dims() {
                let le = (d as u64).to_le_bytes();
                writer.write_all(&le)?;
                crc.update(&le);
            }
            for &x in tensor.data() {
                let le = x.to_le_bytes();
                writer.write_all(&le)?;
                crc.update(&le);
            }
            writer.write_all(&crc.finalize().to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes a checkpoint produced by [`ParamStore::save_to`]
    /// (v2, CRC-verified) or by a v1 writer (no CRC).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Format`] if the magic/version mismatch
    /// or the stream is truncated, [`CheckpointError::Corrupt`] if a
    /// tensor's CRC fails, and [`CheckpointError::Io`] on read failure.
    pub fn load_from<R: Read>(mut reader: R) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CheckpointError::Format("bad magic".into()));
        }
        let version = read_u32(&mut reader)?;
        if version != VERSION_V1 && version != VERSION {
            return Err(CheckpointError::Format(format!(
                "unsupported version {version}"
            )));
        }
        let count = read_u64(&mut reader)? as usize;
        let mut store = ParamStore::new();
        for _ in 0..count {
            let mut crc = Crc32::new();
            let name_len = read_u32(&mut reader)? as usize;
            if name_len > 1 << 20 {
                return Err(CheckpointError::Format("oversized name".into()));
            }
            let mut name_bytes = vec![0u8; name_len];
            reader.read_exact(&mut name_bytes)?;
            crc.update(&name_bytes);
            let name = String::from_utf8(name_bytes)
                .map_err(|_| CheckpointError::Format("non-utf8 parameter name".into()))?;
            let rank = read_u32(&mut reader)? as usize;
            if rank > 16 {
                return Err(CheckpointError::Format("implausible tensor rank".into()));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                let mut buf = [0u8; 8];
                reader.read_exact(&mut buf)?;
                crc.update(&buf);
                dims.push(u64::from_le_bytes(buf) as usize);
            }
            let elems: usize = dims.iter().product();
            if elems > 1 << 31 {
                return Err(CheckpointError::Format("implausible tensor size".into()));
            }
            let mut data = Vec::with_capacity(elems);
            let mut buf = [0u8; 4];
            for _ in 0..elems {
                reader.read_exact(&mut buf)?;
                crc.update(&buf);
                data.push(f32::from_le_bytes(buf));
            }
            if version >= VERSION {
                let expected = read_u32(&mut reader)?;
                let actual = crc.finalize();
                if expected != actual {
                    return Err(CheckpointError::Corrupt {
                        name,
                        expected,
                        actual,
                    });
                }
            }
            let tensor = Tensor::from_vec(data, &dims)
                .map_err(|e| CheckpointError::Format(format!("tensor: {e}")))?;
            store.insert(name, tensor);
        }
        Ok(store)
    }

    /// Saves to a file path **atomically**: writes `<path>.tmp-<pid>`,
    /// fsyncs it, and renames it over `path`. A crash mid-save leaves at
    /// worst a stale temp file, never a torn checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on file-system failure.
    pub fn save_file(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let tmp = temp_sibling(path);
        let result = (|| -> Result<(), CheckpointError> {
            let f = std::fs::File::create(&tmp)?;
            let mut w = io::BufWriter::new(f);
            self.save_to(&mut w)?;
            w.flush()?;
            w.get_ref().sync_all()?;
            std::fs::rename(&tmp, path)?;
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Loads from a file path.
    ///
    /// # Errors
    ///
    /// See [`ParamStore::load_from`].
    pub fn load_file(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let f = std::fs::File::open(path)?;
        Self::load_from(io::BufReader::new(f))
    }

    /// Scans `dir` for `*.sfck` checkpoints, newest first (by the step
    /// number embedded in the file name, falling back to name order), and
    /// loads the newest file that passes CRC/format verification —
    /// corrupt or truncated files are skipped and reported, not fatal.
    ///
    /// Returns `Ok(None)` if the directory holds no checkpoint files at
    /// all.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the directory cannot be read,
    /// or the *last* *decoding* error if every candidate file is invalid.
    pub fn load_latest_valid(dir: impl AsRef<Path>) -> Result<Option<LatestCheckpoint>, CheckpointError> {
        let mut candidates: Vec<(Option<u64>, PathBuf)> = std::fs::read_dir(dir.as_ref())?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                (path.extension().and_then(|e| e.to_str()) == Some("sfck"))
                    .then(|| (step_from_name(&path), path))
            })
            .collect();
        // Newest first: highest parsed step, then reverse-lexicographic.
        candidates.sort_by(|a, b| b.cmp(a));
        if candidates.is_empty() {
            return Ok(None);
        }
        let mut skipped = Vec::new();
        let mut last_err = None;
        for (step, path) in candidates {
            match Self::load_file(&path) {
                Ok(store) => {
                    return Ok(Some(LatestCheckpoint {
                        store,
                        path,
                        step,
                        skipped,
                    }))
                }
                Err(e) => {
                    skipped.push((path, e.to_string()));
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| CheckpointError::Format("no checkpoint candidates".into())))
    }
}

/// Extracts a trailing step number from names like `ckpt-000042.sfck`.
fn step_from_name(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    let digits: String = stem
        .chars()
        .rev()
        .take_while(char::is_ascii_digit)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    digits.parse().ok()
}

fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".tmp-{}", std::process::id()));
    path.with_file_name(name)
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> Result<u64, CheckpointError> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Serializes `store` in the **v1** format (no CRCs). Kept for
/// compatibility tests: v1 files must stay readable under v2 code.
pub fn save_v1<W: Write>(store: &ParamStore, mut writer: W) -> Result<(), CheckpointError> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION_V1.to_le_bytes())?;
    writer.write_all(&(store.len() as u64).to_le_bytes())?;
    for (name, tensor) in store.iter() {
        let bytes = name.as_bytes();
        writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
        writer.write_all(bytes)?;
        writer.write_all(&(tensor.rank() as u32).to_le_bytes())?;
        for &d in tensor.dims() {
            writer.write_all(&(d as u64).to_le_bytes())?;
        }
        for &x in tensor.data() {
            writer.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.insert("a.weight", Tensor::randn(&[3, 4], 1));
        s.insert("a.bias", Tensor::randn(&[4], 2));
        s.insert("scalarish", Tensor::scalar(2.5));
        s
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sf_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(Crc32::of(b"123456789"), 0xCBF43926);
        assert_eq!(Crc32::of(b""), 0);
    }

    #[test]
    fn round_trip_in_memory() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.save_to(&mut buf).expect("write to vec");
        let loaded = ParamStore::load_from(buf.as_slice()).expect("read back");
        assert_eq!(loaded.len(), store.len());
        for (name, t) in store.iter() {
            assert_eq!(loaded.get(name).expect("present"), t, "{name}");
        }
    }

    #[test]
    fn round_trip_via_file() {
        let dir = temp_dir("roundtrip");
        let store = sample_store();
        let path = dir.join("ckpt.sfck");
        store.save_file(&path).expect("save");
        let loaded = ParamStore::load_file(&path).expect("load");
        assert_eq!(loaded.get("a.weight"), store.get("a.weight"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_checkpoints_still_load() {
        let store = sample_store();
        let mut buf = Vec::new();
        save_v1(&store, &mut buf).expect("v1 write");
        let loaded = ParamStore::load_from(buf.as_slice()).expect("v1 read under v2 code");
        assert_eq!(loaded.len(), store.len());
        for (name, t) in store.iter() {
            assert_eq!(loaded.get(name).expect("present"), t, "{name}");
        }
    }

    #[test]
    fn bit_flip_in_payload_is_detected() {
        let store = sample_store();
        let mut buf = Vec::new();
        store.save_to(&mut buf).expect("write");
        // Flip one bit inside the first tensor's data region (past the
        // 16-byte header and the first name).
        let idx = buf.len() / 2;
        buf[idx] ^= 0x10;
        // A flip in tensor data surfaces as Corrupt; one in a length
        // field may misalign the stream into a Format or EOF error — any
        // typed error counts, a silent success does not.
        assert!(
            ParamStore::load_from(buf.as_slice()).is_err(),
            "corruption not detected"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            ParamStore::load_from(&b"NOTACKPT"[..]),
            Err(CheckpointError::Format(_))
        ));
        // Truncated stream.
        let store = sample_store();
        let mut buf = Vec::new();
        store.save_to(&mut buf).expect("write");
        buf.truncate(buf.len() / 2);
        assert!(ParamStore::load_from(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_future_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            ParamStore::load_from(buf.as_slice()),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn empty_store_round_trips() {
        let store = ParamStore::new();
        let mut buf = Vec::new();
        store.save_to(&mut buf).expect("write");
        let loaded = ParamStore::load_from(buf.as_slice()).expect("read");
        assert!(loaded.is_empty());
    }

    #[test]
    fn save_file_leaves_no_temp_behind() {
        let dir = temp_dir("atomic");
        let path = dir.join("ckpt-000001.sfck");
        sample_store().save_file(&path).expect("save");
        let names: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .collect();
        assert_eq!(names, vec!["ckpt-000001.sfck"], "{names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_valid_skips_corrupt_newest() {
        let dir = temp_dir("latest");
        let store = sample_store();
        store.save_file(dir.join("ckpt-000010.sfck")).expect("save old");
        store.save_file(dir.join("ckpt-000020.sfck")).expect("save new");
        // Corrupt the newest file.
        let newest = dir.join("ckpt-000020.sfck");
        let mut bytes = std::fs::read(&newest).expect("read");
        let idx = bytes.len() - 10;
        bytes[idx] ^= 0xFF;
        std::fs::write(&newest, bytes).expect("rewrite");

        let latest = ParamStore::load_latest_valid(&dir)
            .expect("scan")
            .expect("found one");
        assert_eq!(latest.step, Some(10));
        assert!(latest.path.ends_with("ckpt-000010.sfck"));
        assert_eq!(latest.skipped.len(), 1);
        assert_eq!(latest.store.len(), store.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_valid_empty_dir_is_none() {
        let dir = temp_dir("empty");
        assert!(ParamStore::load_latest_valid(&dir).expect("scan").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_valid_all_corrupt_is_error() {
        let dir = temp_dir("allbad");
        std::fs::write(dir.join("ckpt-000001.sfck"), b"garbage").expect("write");
        assert!(ParamStore::load_latest_valid(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
