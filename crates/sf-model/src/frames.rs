//! Differentiable rigid-frame algebra **on the autograd tape**: quaternion
//! normalization, Hamilton products, and point rotation expressed as graph
//! ops, so the structure module can compose per-residue backbone frames the
//! way AlphaFold's Algorithm 23 does — with gradients flowing through the
//! whole rotation chain.
//!
//! Layouts: a batch of quaternions is `[n, 4]` (`w, x, y, z`), translations
//! and points are `[n, 3]`. The non-differentiable reference algebra lives
//! in [`crate::geometry`]; unit tests check the two agree.

use sf_autograd::{Graph, Result, Var};

/// Small epsilon inside the normalization square root.
const NORM_EPS: f32 = 1e-8;

/// Splits `[n, 4]` quaternions into `(w, x, y, z)` columns of shape `[n, 1]`.
fn split4(g: &mut Graph, q: Var) -> Result<[Var; 4]> {
    Ok([
        g.slice_axis(q, 1, 0, 1)?,
        g.slice_axis(q, 1, 1, 2)?,
        g.slice_axis(q, 1, 2, 3)?,
        g.slice_axis(q, 1, 3, 4)?,
    ])
}

/// Splits `[n, 3]` points into `(x, y, z)` columns of shape `[n, 1]`.
fn split3(g: &mut Graph, p: Var) -> Result<[Var; 3]> {
    Ok([
        g.slice_axis(p, 1, 0, 1)?,
        g.slice_axis(p, 1, 1, 2)?,
        g.slice_axis(p, 1, 2, 3)?,
    ])
}

/// Normalizes each quaternion row to unit length (differentiably).
///
/// # Errors
///
/// Propagates shape errors if `q` is not `[n, 4]`.
pub fn quat_normalize(g: &mut Graph, q: Var) -> Result<Var> {
    let sq = g.square(q)?;
    let sum = g.sum_axis(sq, 1)?; // [n]
    let n = g.value(sum).dims()[0];
    let sum2 = g.reshape(sum, &[n, 1])?;
    let eps = g.add_scalar(sum2, NORM_EPS)?;
    let norm = g.sqrt(eps)?;
    g.div(q, norm)
}

/// Hamilton product of two `[n, 4]` quaternion batches (apply `b` first).
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn quat_multiply(g: &mut Graph, a: Var, b: Var) -> Result<Var> {
    let [aw, ax, ay, az] = split4(g, a)?;
    let [bw, bx, by, bz] = split4(g, b)?;
    // w = aw bw - ax bx - ay by - az bz
    let w = {
        let t0 = g.mul(aw, bw)?;
        let t1 = g.mul(ax, bx)?;
        let t2 = g.mul(ay, by)?;
        let t3 = g.mul(az, bz)?;
        let s = g.sub(t0, t1)?;
        let s = g.sub(s, t2)?;
        g.sub(s, t3)?
    };
    // x = aw bx + ax bw + ay bz - az by
    let x = {
        let t0 = g.mul(aw, bx)?;
        let t1 = g.mul(ax, bw)?;
        let t2 = g.mul(ay, bz)?;
        let t3 = g.mul(az, by)?;
        let s = g.add(t0, t1)?;
        let s = g.add(s, t2)?;
        g.sub(s, t3)?
    };
    // y = aw by - ax bz + ay bw + az bx
    let y = {
        let t0 = g.mul(aw, by)?;
        let t1 = g.mul(ax, bz)?;
        let t2 = g.mul(ay, bw)?;
        let t3 = g.mul(az, bx)?;
        let s = g.sub(t0, t1)?;
        let s = g.add(s, t2)?;
        g.add(s, t3)?
    };
    // z = aw bz + ax by - ay bx + az bw
    let z = {
        let t0 = g.mul(aw, bz)?;
        let t1 = g.mul(ax, by)?;
        let t2 = g.mul(ay, bx)?;
        let t3 = g.mul(az, bw)?;
        let s = g.add(t0, t1)?;
        let s = g.sub(s, t2)?;
        g.add(s, t3)?
    };
    g.concat(&[w, x, y, z], 1)
}

/// Rotates `[n, 3]` points by `[n, 4]` **unit** quaternions, row-wise.
///
/// Uses the expansion `p' = p + 2 w (u × p) + 2 (u × (u × p))` with
/// `u = (x, y, z)` — all elementwise ops, no per-row matrices.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn quat_rotate(g: &mut Graph, q: Var, p: Var) -> Result<Var> {
    let [w, qx, qy, qz] = split4(g, q)?;
    let [px, py, pz] = split3(g, p)?;

    // c1 = u x p
    let cross = |g: &mut Graph,
                 (ax, ay, az): (Var, Var, Var),
                 (bx, by, bz): (Var, Var, Var)|
     -> Result<(Var, Var, Var)> {
        let cx = {
            let t0 = g.mul(ay, bz)?;
            let t1 = g.mul(az, by)?;
            g.sub(t0, t1)?
        };
        let cy = {
            let t0 = g.mul(az, bx)?;
            let t1 = g.mul(ax, bz)?;
            g.sub(t0, t1)?
        };
        let cz = {
            let t0 = g.mul(ax, by)?;
            let t1 = g.mul(ay, bx)?;
            g.sub(t0, t1)?
        };
        Ok((cx, cy, cz))
    };
    let u = (qx, qy, qz);
    let (c1x, c1y, c1z) = cross(g, u, (px, py, pz))?;
    let (c2x, c2y, c2z) = cross(g, u, (c1x, c1y, c1z))?;

    let out_axis = |g: &mut Graph, p0: Var, c1: Var, c2: Var| -> Result<Var> {
        let wc1 = g.mul(w, c1)?;
        let wc1_2 = g.scale(wc1, 2.0)?;
        let c2_2 = g.scale(c2, 2.0)?;
        let s = g.add(p0, wc1_2)?;
        g.add(s, c2_2)
    };
    let ox = out_axis(g, px, c1x, c2x)?;
    let oy = out_axis(g, py, c1y, c2y)?;
    let oz = out_axis(g, pz, c1z, c2z)?;
    g.concat(&[ox, oy, oz], 1)
}

/// A batch of rigid frames on the tape: unit quaternions `[n, 4]` and
/// translations `[n, 3]`.
#[derive(Debug, Clone, Copy)]
pub struct FrameBatch {
    /// Rotations (unit quaternions).
    pub quat: Var,
    /// Translations.
    pub trans: Var,
}

impl FrameBatch {
    /// Identity frames for `n` residues (constants on the tape).
    pub fn identity(g: &mut Graph, n: usize) -> Self {
        let mut q = sf_tensor::Tensor::zeros(&[n, 4]);
        for i in 0..n {
            q.data_mut()[i * 4] = 1.0;
        }
        FrameBatch {
            quat: g.constant(q),
            trans: g.constant(sf_tensor::Tensor::zeros(&[n, 3])),
        }
    }

    /// Composes an update onto these frames (AlphaFold's backbone update):
    /// the update quaternion is built from a predicted `[n, 3]` imaginary
    /// part `b` as `(1, b) / |(1, b)|`, and the predicted translation `dt`
    /// is applied in the *local* frame: `t' = t + R(q') dt`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying ops.
    pub fn compose_update(
        &self,
        g: &mut Graph,
        imag: Var,
        dt: Var,
    ) -> Result<FrameBatch> {
        let n = g.value(imag).dims()[0];
        let ones = g.constant(sf_tensor::Tensor::ones(&[n, 1]));
        let dq = g.concat(&[ones, imag], 1)?;
        let dq = quat_normalize(g, dq)?;
        let q_new = quat_multiply(g, self.quat, dq)?;
        let q_new = quat_normalize(g, q_new)?; // fight drift
        let dt_world = quat_rotate(g, q_new, dt)?;
        let t_new = g.add(self.trans, dt_world)?;
        Ok(FrameBatch {
            quat: q_new,
            trans: t_new,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Quat;
    use sf_tensor::Tensor;

    fn quat_tensor(qs: &[Quat]) -> Tensor {
        let mut t = Tensor::zeros(&[qs.len(), 4]);
        for (i, q) in qs.iter().enumerate() {
            t.data_mut()[i * 4] = q.w;
            t.data_mut()[i * 4 + 1] = q.x;
            t.data_mut()[i * 4 + 2] = q.y;
            t.data_mut()[i * 4 + 3] = q.z;
        }
        t
    }

    fn sample_quats() -> Vec<Quat> {
        vec![
            Quat::from_axis_angle([0.0, 0.0, 1.0], 0.9),
            Quat::from_axis_angle([1.0, 0.5, -0.2], 2.1),
            Quat::from_axis_angle([-0.3, 1.0, 0.9], 0.4),
        ]
    }

    #[test]
    fn normalize_produces_unit_rows() {
        let mut g = Graph::new();
        let q = g.constant(Tensor::randn(&[5, 4], 1).mul_scalar(3.0));
        let qn = quat_normalize(&mut g, q).unwrap();
        for row in g.value(qn).data().chunks(4) {
            let n: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4, "norm {n}");
        }
    }

    #[test]
    fn tape_multiply_matches_reference() {
        let a = sample_quats();
        let b: Vec<Quat> = sample_quats().into_iter().rev().collect();
        let mut g = Graph::new();
        let av = g.constant(quat_tensor(&a));
        let bv = g.constant(quat_tensor(&b));
        let prod = quat_multiply(&mut g, av, bv).unwrap();
        for (i, (qa, qb)) in a.iter().zip(b.iter()).enumerate() {
            let expect = qa.mul(*qb);
            let row = &g.value(prod).data()[i * 4..(i + 1) * 4];
            for (got, want) in row.iter().zip([expect.w, expect.x, expect.y, expect.z]) {
                assert!((got - want).abs() < 1e-5, "row {i}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn tape_rotation_matches_reference() {
        let qs = sample_quats();
        let points = [[1.0f32, -2.0, 0.5], [0.3, 0.7, -1.1], [2.0, 0.0, 0.0]];
        let mut p = Tensor::zeros(&[3, 3]);
        for (i, pt) in points.iter().enumerate() {
            p.data_mut()[i * 3..(i + 1) * 3].copy_from_slice(pt);
        }
        let mut g = Graph::new();
        let qv = g.constant(quat_tensor(&qs));
        let pv = g.constant(p);
        let rotated = quat_rotate(&mut g, qv, pv).unwrap();
        for (i, (q, pt)) in qs.iter().zip(points.iter()).enumerate() {
            let expect = q.rotate(*pt);
            let row = &g.value(rotated).data()[i * 3..(i + 1) * 3];
            for (got, want) in row.iter().zip(expect) {
                assert!((got - want).abs() < 1e-4, "row {i}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn rotation_is_differentiable() {
        let mut g = Graph::new();
        let q = g.param(Tensor::from_vec(vec![1.0, 0.1, -0.2, 0.3], &[1, 4]).unwrap());
        let qn = quat_normalize(&mut g, q).unwrap();
        let p = g.param(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap());
        let r = quat_rotate(&mut g, qn, p).unwrap();
        let loss = g.sum_all(r).unwrap();
        g.backward(loss).unwrap();
        assert!(g.grad(q).expect("quat grad").norm() > 0.0);
        assert!(g.grad(p).expect("point grad").norm() > 0.0);
    }

    #[test]
    fn identity_frames_do_nothing() {
        let mut g = Graph::new();
        let frames = FrameBatch::identity(&mut g, 4);
        let p = g.constant(Tensor::randn(&[4, 3], 2));
        let rotated = quat_rotate(&mut g, frames.quat, p).unwrap();
        assert!(g.value(rotated).allclose(g.value(p), 1e-5));
    }

    #[test]
    fn compose_update_accumulates_translation() {
        let mut g = Graph::new();
        let frames = FrameBatch::identity(&mut g, 2);
        let zero_imag = g.constant(Tensor::zeros(&[2, 3]));
        let dt = g.constant(Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0], &[2, 3]).unwrap());
        let f1 = frames.compose_update(&mut g, zero_imag, dt).unwrap();
        let f2 = f1.compose_update(&mut g, zero_imag, dt).unwrap();
        // Identity rotation: translations simply add.
        assert!(g
            .value(f2.trans)
            .allclose(&Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0, 4.0, 0.0], &[2, 3]).unwrap(), 1e-5));
        // Quaternions stay unit.
        for row in g.value(f2.quat).data().chunks(4) {
            let n: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn composed_rotations_match_sequential_reference() {
        // Two successive 45° z-rotations == one 90° z-rotation.
        let mut g = Graph::new();
        let frames = FrameBatch::identity(&mut g, 1);
        let half = (std::f32::consts::FRAC_PI_4 / 2.0).tan(); // tan(22.5°)
        let imag = g.constant(Tensor::from_vec(vec![0.0, 0.0, half], &[1, 3]).unwrap());
        let zero_dt = g.constant(Tensor::zeros(&[1, 3]));
        let f1 = frames.compose_update(&mut g, imag, zero_dt).unwrap();
        let f2 = f1.compose_update(&mut g, imag, zero_dt).unwrap();
        let p = g.constant(Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3]).unwrap());
        let rotated = quat_rotate(&mut g, f2.quat, p).unwrap();
        let expect = Quat::from_axis_angle([0.0, 0.0, 1.0], std::f32::consts::FRAC_PI_2)
            .rotate([1.0, 0.0, 0.0]);
        for (got, want) in g.value(rotated).data().iter().zip(expect) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }
}
