//! Operator-graph node types.

use serde::{Deserialize, Serialize};
use sf_gpusim::Kernel;

/// Which model part an op belongs to (drives the per-module profile and the
/// DAP sharding decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleTag {
    /// Input embedders (MSA/target/relpos/recycling).
    Embedding,
    /// Template pair stack.
    Template,
    /// Extra-MSA stack.
    ExtraMsa,
    /// Main Evoformer stack.
    Evoformer,
    /// Structure module — serial, not DAP-parallelizable.
    Structure,
    /// Loss heads.
    Heads,
    /// Optimizer / SWA / gradient clipping.
    Optimizer,
}

impl ModuleTag {
    /// True if DAP can shard this module's kernels (the paper: data
    /// pipeline and Structure Module are serial; optimizer shards by
    /// parameter, not by DAP).
    pub fn dap_shardable(self) -> bool {
        !matches!(self, ModuleTag::Structure | ModuleTag::Optimizer)
    }
}

/// Fine-grained op kind (drives which fusion pass touches the op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense matrix multiply.
    Gemm,
    /// A GEMM that is one of a bundleable pre-attention projection group.
    ProjectionGemm,
    /// Attention core matmul (QK^T or PV).
    AttentionGemm,
    /// Softmax sub-kernel (max / exp-sum / normalize).
    Softmax,
    /// Attention glue (bias add, gating, masking).
    AttentionElementwise,
    /// LayerNorm sub-kernel (mean / var / normalize / affine).
    LayerNorm,
    /// Generic fusable elementwise (residual add, activation, scale).
    Elementwise,
    /// Reduction that is not LN/softmax (sums, means).
    Reduction,
    /// Transpose / reshape / concat realized as a copy.
    MemOp,
    /// Per-tensor Adam update sub-kernel.
    AdamUpdate,
    /// Per-tensor SWA update sub-kernel.
    SwaUpdate,
    /// Per-tensor gradient-clip sub-kernel (norm or scale).
    GradClip,
    /// Already-fused kernel produced by an optimization pass.
    Fused,
}

/// One node of the step graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    /// The kernel cost model.
    pub kernel: Kernel,
    /// Owning model part.
    pub module: ModuleTag,
    /// Fine-grained kind.
    pub kind: OpKind,
    /// Group id linking sub-kernels that a fusion pass may merge (e.g. the
    /// 5 kernels of one LayerNorm share a group, the 4 projection GEMMs
    /// before one attention share a group).
    pub fuse_group: u64,
}

impl OpNode {
    /// Creates a node.
    pub fn new(kernel: Kernel, module: ModuleTag, kind: OpKind, fuse_group: u64) -> Self {
        OpNode {
            kernel,
            module,
            kind,
            fuse_group,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shardability() {
        assert!(ModuleTag::Evoformer.dap_shardable());
        assert!(ModuleTag::ExtraMsa.dap_shardable());
        assert!(!ModuleTag::Structure.dap_shardable());
        assert!(!ModuleTag::Optimizer.dap_shardable());
    }
}
