//! Stochastic weight averaging (exponential moving average of parameters),
//! used by the OpenFold/MLPerf training recipe to stabilize convergence —
//! evaluation runs on the averaged weights.

use sf_autograd::ParamStore;
use sf_tensor::Tensor;
use std::collections::BTreeMap;

/// EMA-based stochastic weight averaging (the unfused baseline: one pass per
/// parameter tensor, on top of Adam's passes).
#[derive(Debug, Clone)]
pub struct Swa {
    decay: f32,
    average: BTreeMap<String, Tensor>,
    updates: u64,
}

impl Swa {
    /// Creates an averager with the given EMA decay (MLPerf OpenFold uses
    /// 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `(0, 1)`.
    pub fn new(decay: f32) -> Self {
        assert!(
            decay > 0.0 && decay < 1.0,
            "SWA decay must be in (0, 1), got {decay}"
        );
        Swa {
            decay,
            average: BTreeMap::new(),
            updates: 0,
        }
    }

    /// The EMA decay.
    pub fn decay(&self) -> f32 {
        self.decay
    }

    /// Number of updates folded so far.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Folds the current parameters into the running average
    /// (`avg = decay * avg + (1 - decay) * param`; first call copies).
    pub fn update(&mut self, store: &ParamStore) {
        self.updates += 1;
        for (name, param) in store.iter() {
            match self.average.get_mut(name) {
                Some(avg) => {
                    for (a, p) in avg.data_mut().iter_mut().zip(param.data().iter()) {
                        *a = self.decay * *a + (1.0 - self.decay) * p;
                    }
                }
                None => {
                    self.average.insert(name.to_string(), param.clone());
                }
            }
        }
    }

    /// The averaged value of one parameter.
    pub fn averaged(&self, name: &str) -> Option<&Tensor> {
        self.average.get(name)
    }

    /// Materializes a [`ParamStore`] holding the averaged weights (what
    /// evaluation runs on).
    pub fn to_store(&self) -> ParamStore {
        let mut s = ParamStore::new();
        for (name, avg) in &self.average {
            s.insert(name.clone(), avg.clone());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_copies() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::from_vec(vec![4.0], &[1]).unwrap());
        let mut swa = Swa::new(0.9);
        swa.update(&store);
        assert_eq!(swa.averaged("w").unwrap().data(), &[4.0]);
    }

    #[test]
    fn ema_tracks_with_lag() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::from_vec(vec![0.0], &[1]).unwrap());
        let mut swa = Swa::new(0.5);
        swa.update(&store);
        store.insert("w", Tensor::from_vec(vec![10.0], &[1]).unwrap());
        swa.update(&store);
        // 0.5 * 0 + 0.5 * 10 = 5.
        assert_eq!(swa.averaged("w").unwrap().data(), &[5.0]);
    }

    #[test]
    fn average_smooths_oscillation() {
        let mut store = ParamStore::new();
        let mut swa = Swa::new(0.99);
        for i in 0..500 {
            let v = if i % 2 == 0 { 1.0 } else { -1.0 };
            store.insert("w", Tensor::from_vec(vec![v], &[1]).unwrap());
            swa.update(&store);
        }
        // The EMA of an alternating series stays near 0.
        assert!(swa.averaged("w").unwrap().data()[0].abs() < 0.1);
    }

    #[test]
    fn to_store_round_trip() {
        let mut store = ParamStore::new();
        store.insert("a", Tensor::ones(&[3]));
        store.insert("b", Tensor::zeros(&[2]));
        let mut swa = Swa::new(0.9);
        swa.update(&store);
        let avg_store = swa.to_store();
        assert_eq!(avg_store.len(), 2);
        assert_eq!(avg_store.get("a").unwrap().sum_all(), 3.0);
    }

    #[test]
    #[should_panic(expected = "SWA decay")]
    fn rejects_bad_decay() {
        let _ = Swa::new(1.5);
    }
}
