//! Per-rank, per-step random delays: the two straggler sources §3.1 blames
//! for imbalanced communication — the data pipeline (slow batches blocking
//! the default loader) and sporadic background CPU peaks on cluster hosts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sf_data::{PrepTimeModel, SyntheticDataset};

/// Configuration of the straggler injection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerModel {
    /// Use the non-blocking priority-queue pipeline (ScaleFold) instead of
    /// the in-order blocking loader (PyTorch default).
    pub non_blocking_pipeline: bool,
    /// Data-pipeline worker processes per rank.
    pub data_workers: usize,
    /// Probability a rank suffers a background CPU peak in a given step.
    pub cpu_peak_prob: f64,
    /// Extra host delay when a CPU peak hits, seconds.
    pub cpu_peak_s: f64,
    /// Python GC enabled (adds periodic pauses; `gc.disable()` removes).
    pub gc_enabled: bool,
    /// GC pause length, seconds, roughly every [`Self::GC_PERIOD`] steps.
    pub gc_pause_s: f64,
}

impl StragglerModel {
    /// Steps between GC pauses when GC is enabled.
    pub const GC_PERIOD: u64 = 8;

    /// The unoptimized baseline: blocking loader, GC on.
    pub fn baseline() -> Self {
        StragglerModel {
            non_blocking_pipeline: false,
            data_workers: 8,
            cpu_peak_prob: 0.03,
            cpu_peak_s: 0.25,
            gc_enabled: true,
            gc_pause_s: 0.12,
        }
    }

    /// The fully-optimized configuration: non-blocking pipeline, GC off.
    pub fn optimized() -> Self {
        StragglerModel {
            non_blocking_pipeline: true,
            data_workers: 8,
            cpu_peak_prob: 0.03,
            cpu_peak_s: 0.25,
            gc_enabled: false,
            gc_pause_s: 0.12,
        }
    }

    /// No stragglers at all (the "global synchronization" ideal used to
    /// quantify imbalance in Figure 3).
    pub fn none() -> Self {
        StragglerModel {
            non_blocking_pipeline: true,
            data_workers: 64,
            cpu_peak_prob: 0.0,
            cpu_peak_s: 0.0,
            gc_enabled: false,
            gc_pause_s: 0.0,
        }
    }

    /// Draws one batch-preparation time from the dataset distribution.
    pub fn sample_prep_s(
        dataset: &SyntheticDataset,
        prep: &PrepTimeModel,
        rng: &mut StdRng,
    ) -> f64 {
        let idx = rng.gen_range(0..dataset.len());
        prep.prep_seconds(&dataset.record(idx))
    }

    /// Host-side delay (CPU peak + GC pause) for one rank at one step.
    pub fn host_delay_s(&self, rng: &mut StdRng, step: u64) -> f64 {
        let _ = step;
        let mut d = 0.0;
        if self.cpu_peak_prob > 0.0 && rng.gen::<f64>() < self.cpu_peak_prob {
            d += self.cpu_peak_s * rng.gen_range(0.5..1.5);
        }
        // Each rank's Python GC fires on its own schedule (roughly every
        // GC_PERIOD steps) — desynchronized, so it creates imbalance.
        if self.gc_enabled && rng.gen::<f64>() < 1.0 / Self::GC_PERIOD as f64 {
            d += self.gc_pause_s;
        }
        d
    }

    /// Deterministic per-rank RNG.
    // (kept below)
    pub fn rank_rng(seed: u64, rank: usize) -> StdRng {
        StdRng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E3779B97F4A7C15))
    }
}

/// Persistent per-rank data-pipeline queue state.
///
/// The loader's `data_workers` processes prepare batches concurrently, so
/// each training step contributes `workers × step` seconds of preparation
/// capacity. Preparation demand beyond capacity accumulates as *backlog*.
///
/// - **Blocking** loader (PyTorch default, Figure 5 i): any backlog on the
///   head-of-line batch stalls the consumer; the stall drains the backlog
///   at the worker rate.
/// - **Non-blocking** pipeline (ScaleFold, Figure 5 ii): ready batches are
///   yielded out of order, so backlog only stalls the consumer once it
///   exceeds the whole prefetch window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DataPipeState {
    backlog_s: f64,
}

impl DataPipeState {
    /// Fresh (empty queue) state.
    pub fn new() -> Self {
        DataPipeState::default()
    }

    /// Current backlog (diagnostic).
    pub fn backlog_s(&self) -> f64 {
        self.backlog_s
    }

    /// Advances one step: the loader prepares the next batch (cost
    /// `prep_s`) with `model.data_workers` of parallel capacity over a step
    /// of `step_compute_s`. Returns the consumer stall, in seconds.
    pub fn step(
        &mut self,
        model: &StragglerModel,
        prep_s: f64,
        step_compute_s: f64,
    ) -> f64 {
        let workers = model.data_workers.max(1) as f64;
        let capacity = step_compute_s * workers;
        self.backlog_s = (self.backlog_s + prep_s - capacity).max(0.0);
        let wait = if model.non_blocking_pipeline {
            // Out-of-order delivery: a slow batch parks on one worker while
            // the rest keep feeding the consumer, so the effective
            // reordering window spans the whole prefetch horizon. Only a
            // *sustained* overload (mean prep demand exceeding worker
            // supply) surfaces as waiting.
            let window = 64.0 * capacity;
            ((self.backlog_s - window) / workers).max(0.0)
        } else {
            // In-order delivery: any backlog stalls; the stall itself lets
            // the workers catch up.
            self.backlog_s / workers
        };
        // The stall gives the loader wait x workers seconds of catch-up.
        self.backlog_s = (self.backlog_s - wait * workers).max(0.0);
        wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SyntheticDataset, PrepTimeModel) {
        (SyntheticDataset::new(5, 500), PrepTimeModel::default())
    }

    #[test]
    fn non_blocking_waits_far_less() {
        let (ds, prep) = setup();
        let steps = 2000;
        let wait = |model: StragglerModel| -> f64 {
            let mut rng = StragglerModel::rank_rng(1, 0);
            let mut pipe = DataPipeState::new();
            (0..steps)
                .map(|_| {
                    let p = StragglerModel::sample_prep_s(&ds, &prep, &mut rng);
                    pipe.step(&model, p, 2.0)
                })
                .sum::<f64>()
        };
        let blocking = wait(StragglerModel::baseline());
        let non_blocking = wait(StragglerModel::optimized());
        assert!(
            non_blocking < 0.35 * blocking + 1e-9,
            "non-blocking {non_blocking:.2}s vs blocking {blocking:.2}s"
        );
    }

    #[test]
    fn blocking_wait_shrinks_with_faster_steps_reversed() {
        // Faster training steps leave less slack: data waits grow — the
        // paper's observation that dataloading matters more as compute
        // optimizations land.
        let (ds, prep) = setup();
        let model = StragglerModel::baseline();
        let total = |step: f64| -> f64 {
            let mut rng = StragglerModel::rank_rng(2, 0);
            let mut pipe = DataPipeState::new();
            (0..2000)
                .map(|_| {
                    let p = StragglerModel::sample_prep_s(&ds, &prep, &mut rng);
                    pipe.step(&model, p, step)
                })
                .sum::<f64>()
        };
        assert!(total(0.5) > total(4.0));
    }

    #[test]
    fn backlog_drains_after_stall() {
        let model = StragglerModel::baseline();
        let mut pipe = DataPipeState::new();
        // One huge batch creates backlog; a stall drains it.
        let w = pipe.step(&model, 100.0, 2.0);
        assert!(w > 0.0);
        assert!(pipe.backlog_s() < 1e-9, "backlog {}", pipe.backlog_s());
        // Subsequent cheap batches: no stall.
        assert_eq!(pipe.step(&model, 0.1, 2.0), 0.0);
    }

    #[test]
    fn non_blocking_window_absorbs_one_slow_batch() {
        let model = StragglerModel::optimized();
        let mut pipe = DataPipeState::new();
        // Even a monster batch is absorbed by out-of-order delivery.
        let w = pipe.step(&model, 100.0, 2.0);
        assert_eq!(w, 0.0);
        // Sustained overload (every batch slower than total worker supply)
        // eventually surfaces.
        let mut stalled = false;
        for _ in 0..2000 {
            stalled |= pipe.step(&model, 40.0, 2.0) > 0.0;
        }
        assert!(stalled);
    }

    #[test]
    fn host_delay_respects_flags() {
        let quiet = StragglerModel::none();
        let mut rng = StragglerModel::rank_rng(3, 1);
        for step in 0..100 {
            assert_eq!(quiet.host_delay_s(&mut rng, step), 0.0);
        }
        let noisy = StragglerModel::baseline();
        let mut rng = StragglerModel::rank_rng(3, 1);
        let total: f64 = (0..200).map(|s| noisy.host_delay_s(&mut rng, s)).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn gc_disable_removes_pauses() {
        let mut with_gc = StragglerModel::baseline();
        with_gc.cpu_peak_prob = 0.0;
        let mut without = with_gc;
        without.gc_enabled = false;
        let run = |m: StragglerModel| -> f64 {
            let mut rng = StragglerModel::rank_rng(4, 2);
            (0..64).map(|s| m.host_delay_s(&mut rng, s)).sum()
        };
        assert!(run(with_gc) > 0.0);
        assert_eq!(run(without), 0.0);
    }

    #[test]
    fn rank_rngs_are_decorrelated_but_deterministic() {
        let mut a1 = StragglerModel::rank_rng(7, 0);
        let mut a2 = StragglerModel::rank_rng(7, 0);
        let mut b = StragglerModel::rank_rng(7, 1);
        let x1: f64 = a1.gen();
        let x2: f64 = a2.gen();
        let y: f64 = b.gen();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }
}
