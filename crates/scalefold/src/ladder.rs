//! The step-by-step optimization ladder of Figure 8: apply the paper's
//! optimizations cumulatively and report the step time after each.

use crate::optimizations::{build_graph, OptimizationSet};
use serde::{Deserialize, Serialize};
use sf_cluster::{ClusterConfig, ClusterSim, FabricSpec, StragglerModel};
use sf_gpusim::DeviceSpec;
use sf_model::ModelConfig;

/// One rung of the Figure-8 ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderEntry {
    /// Optimization added at this stage.
    pub name: String,
    /// Mean step time on A100, seconds.
    pub a100_step_s: f64,
    /// Mean step time on H100, seconds.
    pub h100_step_s: f64,
    /// Cumulative speedup versus the A100 reference.
    pub a100_speedup: f64,
    /// Cumulative speedup versus the H100 reference.
    pub h100_speedup: f64,
}

/// Simulated mean step time (128-way DP, stragglers included) for one
/// optimization set on one device.
pub fn cluster_step_s(cfg: &ModelConfig, opts: &OptimizationSet, device: DeviceSpec) -> f64 {
    let graph = build_graph(cfg, opts);
    let fabric = if device.name == "A100" {
        FabricSpec::superpod_a100()
    } else {
        FabricSpec::eos()
    };
    let mut straggler = if opts.nonblocking_loader {
        StragglerModel::optimized()
    } else {
        StragglerModel::baseline()
    };
    straggler.gc_enabled = !opts.disable_gc;
    let cc = ClusterConfig {
        device,
        fabric,
        dp: 128,
        dap: opts.dap,
        cuda_graph: opts.cuda_graph,
        bf16_comm: opts.bf16,
        overlap_fraction: 0.5,
        autotune: opts.triton_ln,
        variable_recycling: false,
        straggler,
        seed: 0x1adde4,
    };
    ClusterSim::new(&graph, cc).mean_step_s(40)
}

/// The cumulative stages of Figure 8, in the paper's order.
#[allow(clippy::type_complexity)]
pub fn ladder_stages(cfg: &ModelConfig) -> Vec<LadderEntry> {
    let stages: Vec<(&str, Box<dyn Fn(&mut OptimizationSet)>)> = vec![
        ("reference", Box::new(|_o: &mut OptimizationSet| {})),
        ("+ GEMM batching", Box::new(|o| o.gemm_batching = true)),
        ("+ non-blocking dataloader", Box::new(|o| o.nonblocking_loader = true)),
        ("+ bfloat16", Box::new(|o| o.bf16 = true)),
        ("+ Triton MHA", Box::new(|o| o.triton_mha = true)),
        ("+ Triton LayerNorm", Box::new(|o| o.triton_ln = true)),
        ("+ fused Adam+SWA", Box::new(|o| o.fused_adam_swa = true)),
        (
            "+ DAP-8, no grad ckpt, CUDA graph",
            Box::new(|o| {
                o.dap = 8;
                o.no_grad_checkpointing = true;
                o.cuda_graph = true;
            }),
        ),
        ("+ disable GC", Box::new(|o| o.disable_gc = true)),
        ("+ torch.compile", Box::new(|o| o.torch_compile = true)),
    ];

    let mut opts = OptimizationSet::none();
    let mut out = Vec::with_capacity(stages.len());
    let mut ref_a100 = 0.0;
    let mut ref_h100 = 0.0;
    for (i, (name, apply)) in stages.into_iter().enumerate() {
        apply(&mut opts);
        let a100 = cluster_step_s(cfg, &opts, DeviceSpec::a100());
        let h100 = cluster_step_s(cfg, &opts, DeviceSpec::h100());
        if i == 0 {
            ref_a100 = a100;
            ref_h100 = h100;
        }
        out.push(LadderEntry {
            name: name.to_string(),
            a100_step_s: a100,
            h100_step_s: h100,
            a100_speedup: ref_a100 / a100,
            h100_speedup: ref_h100 / h100,
        });
    }
    out
}

/// Figure 8's counterfactual: DAP-8 with checkpointing disabled but **no**
/// CUDA graph — the paper found this *slower* than DAP-4 (1.52× vs more),
/// because the shrunk kernels expose the CPU.
pub fn dap8_without_cuda_graph(cfg: &ModelConfig) -> (f64, f64) {
    let mut with_graph = OptimizationSet::scalefold_dap(8);
    with_graph.async_eval = false;
    let mut without = with_graph;
    without.cuda_graph = false;
    let dev = DeviceSpec::h100();
    (
        cluster_step_s(cfg, &without, dev.clone()),
        cluster_step_s(cfg, &with_graph, dev),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_reference_magnitudes() {
        // Paper: reference 6.76 s (A100), 4.07 s (H100); H100 ≈ 1.66×.
        let cfg = ModelConfig::paper();
        let entries = ladder_stages(&cfg);
        let r = &entries[0];
        assert!((4.0..14.0).contains(&r.a100_step_s), "A100 ref {:.2}", r.a100_step_s);
        assert!((2.5..9.0).contains(&r.h100_step_s), "H100 ref {:.2}", r.h100_step_s);
        let ratio = r.a100_step_s / r.h100_step_s;
        assert!((1.2..2.2).contains(&ratio), "H100 gain {ratio:.2}");
    }

    #[test]
    fn ladder_is_monotonically_nonincreasing() {
        let cfg = ModelConfig::paper();
        let entries = ladder_stages(&cfg);
        for w in entries.windows(2) {
            assert!(
                w[1].h100_step_s <= w[0].h100_step_s * 1.05,
                "{} regressed: {:.3} -> {:.3}",
                w[1].name,
                w[0].h100_step_s,
                w[1].h100_step_s
            );
        }
    }

    #[test]
    fn final_speedup_matches_paper_band() {
        // Paper: ~6.2× cumulative on H100. The simulated ratio depends on
        // the sampled straggler stream, so the band is generous on both
        // sides.
        let cfg = ModelConfig::paper();
        let entries = ladder_stages(&cfg);
        let last = entries.last().expect("stages");
        assert!(
            (3.5..11.0).contains(&last.h100_speedup),
            "final H100 speedup {:.2}",
            last.h100_speedup
        );
    }

    #[test]
    fn cuda_graph_is_what_makes_dap8_win() {
        // Paper: DAP-8 without CUDA graph reached only 1.52× (worse than
        // DAP-4); with the graph, 1.79×.
        let cfg = ModelConfig::paper();
        let (without, with) = dap8_without_cuda_graph(&cfg);
        assert!(
            with < without,
            "with graph {with:.3} must beat without {without:.3}"
        );
    }
}
