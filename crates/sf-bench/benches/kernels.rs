//! Microbenchmarks of the real CPU kernels behind the paper's Triton
//! fusions: naive vs fused LayerNorm, naive vs flash attention with pair
//! bias, and individual vs bundled projection GEMMs (Figure 8's kernel
//! stages, measured for real at CPU scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sf_tensor::ops::attention::{flash_attention, naive_attention};
use sf_tensor::ops::layernorm::{fused_backward, fused_forward, naive_backward, naive_forward, LN_EPS};
use sf_tensor::ops::matmul::batched_linear;
use sf_tensor::Tensor;
use std::hint::black_box;

fn bench_layernorm(c: &mut Criterion) {
    let mut group = c.benchmark_group("layernorm");
    group.sample_size(20);
    for &rows in &[256usize, 2048] {
        let cols = 128;
        let x = Tensor::randn(&[rows, cols], 1);
        let gamma = Tensor::ones(&[cols]);
        let beta = Tensor::zeros(&[cols]);
        group.bench_with_input(BenchmarkId::new("naive_fwd", rows), &rows, |b, _| {
            b.iter(|| naive_forward(black_box(&x), &gamma, &beta, LN_EPS).expect("ln"))
        });
        group.bench_with_input(BenchmarkId::new("fused_fwd", rows), &rows, |b, _| {
            b.iter(|| fused_forward(black_box(&x), &gamma, &beta, LN_EPS).expect("ln"))
        });
        let (_, stats) = fused_forward(&x, &gamma, &beta, LN_EPS).expect("ln");
        let dy = Tensor::randn(&[rows, cols], 2);
        group.bench_with_input(BenchmarkId::new("naive_bwd", rows), &rows, |b, _| {
            b.iter(|| naive_backward(black_box(&dy), &x, &gamma, &stats).expect("ln bwd"))
        });
        group.bench_with_input(BenchmarkId::new("fused_bwd", rows), &rows, |b, _| {
            b.iter(|| fused_backward(black_box(&dy), &x, &gamma, &stats, 64).expect("ln bwd"))
        });
    }
    group.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("mha_pair_bias");
    group.sample_size(15);
    for &s in &[32usize, 96] {
        let (h, d) = (4usize, 16usize);
        let q = Tensor::randn(&[h, s, d], 3);
        let k = Tensor::randn(&[h, s, d], 4);
        let v = Tensor::randn(&[h, s, d], 5);
        let bias = Tensor::randn(&[h, s, s], 6);
        let scale = 1.0 / (d as f32).sqrt();
        group.bench_with_input(BenchmarkId::new("naive", s), &s, |b, _| {
            b.iter(|| {
                naive_attention(black_box(&q), &k, &v, Some(&bias), scale).expect("attn")
            })
        });
        group.bench_with_input(BenchmarkId::new("flash", s), &s, |b, _| {
            b.iter(|| {
                flash_attention(black_box(&q), &k, &v, Some(&bias), scale).expect("attn")
            })
        });
    }
    group.finish();
}

fn bench_gemm_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_batching");
    group.sample_size(20);
    let (rows, cin, cout) = (512usize, 64usize, 64usize);
    let x = Tensor::randn(&[rows, cin], 7);
    let ws: Vec<Tensor> = (0..4).map(|i| Tensor::randn(&[cout, cin], 10 + i)).collect();
    group.bench_function("four_separate_gemms", |b| {
        b.iter(|| {
            for w in &ws {
                black_box(
                    black_box(&x)
                        .matmul(&w.transpose().expect("2d"))
                        .expect("gemm"),
                );
            }
        })
    });
    group.bench_function("bundled_batched_gemm", |b| {
        let refs: Vec<&Tensor> = ws.iter().collect();
        let biases = vec![None; 4];
        b.iter(|| black_box(batched_linear(black_box(&x), &refs, &biases).expect("bundle")))
    });
    group.finish();
}

criterion_group!(benches, bench_layernorm, bench_attention, bench_gemm_batching);
criterion_main!(benches);
