//! Input embeddings: MSA/target featurization, relative positional encoding,
//! the recycling embedder, the extra-MSA stack, and the template pair stack
//! (the "Input Embeddings" box of the paper's Figure 1).

use crate::config::{ModelConfig, DISTOGRAM_BINS};
use crate::evoformer::{evoformer_block_ext, pair_block, BlockDims};
use crate::features::FeatureBatch;
use crate::linear::{layer_norm, Linear};
use sf_autograd::{Graph, ParamStore, Result, Var};
use sf_tensor::Tensor;

/// Relative-position clipping radius (AlphaFold uses 32).
pub const RELPOS_K: usize = 32;

/// Distogram bin edges in Å for recycling / template features.
pub fn distogram_edges() -> Vec<f32> {
    // 15 bins from 3.25 Å to 21 Å (AlphaFold's recycling binning, reduced
    // resolution).
    let lo = 3.25f32;
    let hi = 21.0f32;
    (1..DISTOGRAM_BINS)
        .map(|i| lo + (hi - lo) * i as f32 / DISTOGRAM_BINS as f32)
        .collect()
}

/// One-hot distogram `[n, n, DISTOGRAM_BINS]` of pairwise Cα distances.
pub fn distogram_one_hot(coords: &Tensor) -> Tensor {
    let d = crate::geometry::distance_matrix(coords);
    let n = coords.dims()[0];
    let edges = distogram_edges();
    let mut out = Tensor::zeros(&[n, n, DISTOGRAM_BINS]);
    for i in 0..n {
        for j in 0..n {
            let dist = d.at(&[i, j]).expect("in range");
            let bin = edges.iter().position(|&e| dist < e).unwrap_or(DISTOGRAM_BINS - 1);
            out.data_mut()[(i * n + j) * DISTOGRAM_BINS + bin] = 1.0;
        }
    }
    out
}

/// One-hot relative-position features `[n, n, 2*RELPOS_K + 1]` from residue
/// indices.
pub fn relpos_one_hot(residue_index: &Tensor) -> Tensor {
    let n = residue_index.dims()[0];
    let w = 2 * RELPOS_K + 1;
    let mut out = Tensor::zeros(&[n, n, w]);
    for i in 0..n {
        for j in 0..n {
            let d = residue_index.data()[i] - residue_index.data()[j];
            let clipped = (d.round() as i64).clamp(-(RELPOS_K as i64), RELPOS_K as i64);
            let bin = (clipped + RELPOS_K as i64) as usize;
            out.data_mut()[(i * n + j) * w + bin] = 1.0;
        }
    }
    out
}

/// Initial MSA and pair representations from the raw features
/// (AlphaFold Algorithm 3). Returns `(m, z)`.
///
/// # Errors
///
/// Propagates shape errors (a mismatch indicates features inconsistent with
/// `cfg` — call [`FeatureBatch::validate`] first for a better message).
pub fn input_embedder(
    g: &mut Graph,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    batch: &FeatureBatch,
) -> Result<(Var, Var)> {
    let msa_feat = g.constant(batch.msa_feat.clone());
    let target_feat = g.constant(batch.target_feat.clone());

    // m = linear(msa_feat) + linear(target_feat) broadcast over sequences.
    let m_msa = Linear::new("embed.msa", cfg.msa_feat_dim(), cfg.c_m).apply(g, store, msa_feat)?;
    let m_tgt =
        Linear::new("embed.target_m", cfg.target_feat_dim(), cfg.c_m).apply(g, store, target_feat)?;
    let m_tgt_b = g.reshape(m_tgt, &[1, cfg.n_res, cfg.c_m])?;
    let m = g.add(m_msa, m_tgt_b)?;

    // z = a_i + b_j + relpos embedding.
    let a = Linear::new("embed.target_zi", cfg.target_feat_dim(), cfg.c_z)
        .apply(g, store, target_feat)?;
    let b = Linear::new("embed.target_zj", cfg.target_feat_dim(), cfg.c_z)
        .apply(g, store, target_feat)?;
    let a_col = g.reshape(a, &[cfg.n_res, 1, cfg.c_z])?;
    let b_row = g.reshape(b, &[1, cfg.n_res, cfg.c_z])?;
    let z0 = g.add(a_col, b_row)?;
    let relpos = g.constant(relpos_one_hot(&batch.residue_index));
    let rel_emb =
        Linear::new("embed.relpos", 2 * RELPOS_K + 1, cfg.c_z).apply(g, store, relpos)?;
    let z = g.add(z0, rel_emb)?;
    Ok((m, z))
}

/// Previous-iteration values fed back by recycling (plain tensors —
/// recycling inputs are detached, as in AlphaFold training).
#[derive(Debug, Clone)]
pub struct RecycledState {
    /// First row of the previous MSA representation, `[n_res, c_m]`.
    pub m_first_row: Tensor,
    /// Previous pair representation, `[n_res, n_res, c_z]`.
    pub z: Tensor,
    /// Previous predicted Cα coordinates, `[n_res, 3]`.
    pub coords: Tensor,
}

/// The recycling embedder (AlphaFold Algorithm 32): injects the previous
/// iteration's embeddings and predicted geometry.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn recycling_embedder(
    g: &mut Graph,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    m: Var,
    z: Var,
    prev: &RecycledState,
) -> Result<(Var, Var)> {
    // m[0] += LN(prev_m[0]): build a [S, R, c_m] delta that is zero on rows
    // 1..S.
    let prev_m = g.constant(prev.m_first_row.clone());
    let prev_m_ln = layer_norm(g, store, "recycle.ln_m", cfg.c_m, prev_m)?;
    let row0 = g.reshape(prev_m_ln, &[1, cfg.n_res, cfg.c_m])?;
    let m2 = if cfg.n_seq > 1 {
        let zeros = g.constant(Tensor::zeros(&[cfg.n_seq - 1, cfg.n_res, cfg.c_m]));
        let delta = g.concat(&[row0, zeros], 0)?;
        g.add(m, delta)?
    } else {
        g.add(m, row0)?
    };

    // z += LN(prev_z) + distogram(prev_coords) embedding.
    let prev_z = g.constant(prev.z.clone());
    let prev_z_ln = layer_norm(g, store, "recycle.ln_z", cfg.c_z, prev_z)?;
    let z2 = g.add(z, prev_z_ln)?;
    let disto = g.constant(distogram_one_hot(&prev.coords));
    let disto_emb =
        Linear::new("recycle.distogram", DISTOGRAM_BINS, cfg.c_z).apply(g, store, disto)?;
    let z3 = g.add(z2, disto_emb)?;
    Ok((m2, z3))
}

/// The extra-MSA stack: embeds the unclustered MSA at width `c_e` and runs
/// `extra_msa_blocks` Evoformer blocks whose *pair* output feeds the main
/// stack. Returns the updated `z`.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn extra_msa_stack(
    g: &mut Graph,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    batch: &FeatureBatch,
    z: Var,
) -> Result<Var> {
    if cfg.extra_msa_blocks == 0 {
        // No stack: skip the embedder too, so no dead parameters exist.
        return Ok(z);
    }
    let feat = g.constant(batch.extra_msa_feat.clone());
    let mut me =
        Linear::new("extra_msa.embed", cfg.extra_msa_feat_dim(), cfg.c_e).apply(g, store, feat)?;
    let dims = BlockDims::extra(cfg);
    let mut z = z;
    for i in 0..cfg.extra_msa_blocks {
        // The extra stack uses *global* column attention (Algorithm 19):
        // thousands of unclustered sequences make full column attention
        // prohibitively large.
        let (m2, z2) = evoformer_block_ext(
            g,
            store,
            &dims,
            &format!("extra_msa.block{i}"),
            me,
            z,
            false,
            true,
        )?;
        me = m2;
        z = z2;
    }
    Ok(z)
}

/// The template pair stack (AlphaFold Algorithms 16–17): embeds each
/// template's distogram features, refines each with pair-only Evoformer
/// blocks, then merges templates into `z` with **pointwise attention** —
/// for every residue pair `(i, j)`, a query derived from `z[i, j]` attends
/// over the `T` template embeddings at the same position, so informative
/// templates are weighted per pair rather than averaged.
///
/// # Errors
///
/// Propagates shape errors from the underlying ops.
pub fn template_pair_stack(
    g: &mut Graph,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    batch: &FeatureBatch,
    z: Var,
) -> Result<Var> {
    if cfg.n_templates == 0 {
        return Ok(z);
    }
    let feat = g.constant(batch.template_feat.clone());
    let dims = BlockDims::template(cfg);
    let mut refined = Vec::with_capacity(cfg.n_templates);
    for t in 0..cfg.n_templates {
        let ft = g.slice_axis(feat, 0, t, t + 1)?;
        let ft2 = g.reshape(ft, &[cfg.n_res, cfg.n_res, DISTOGRAM_BINS])?;
        let mut zt =
            Linear::new("template.embed", DISTOGRAM_BINS, cfg.c_t).apply(g, store, ft2)?;
        for b in 0..cfg.template_blocks {
            zt = pair_block(g, store, &dims, &format!("template.block{b}"), zt)?;
        }
        let zt4 = g.reshape(zt, &[1, cfg.n_res, cfg.n_res, cfg.c_t])?;
        refined.push(zt4);
    }
    let stacked = g.concat(&refined, 0)?; // [T, R, R, c_t]
    let merged = template_pointwise_attention(g, store, cfg, z, stacked)?;
    g.add(z, merged)
}

/// Pointwise attention over templates (Algorithm 17): query from `z`
/// (shape `[R, R, c_z]`), keys/values from the refined template embeddings
/// (`[T, R, R, c_t]`), attending over the template axis independently for
/// every `(i, j)`.
fn template_pointwise_attention(
    g: &mut Graph,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    z: Var,
    templates: Var,
) -> Result<Var> {
    let (r, t) = (cfg.n_res, cfg.n_templates);
    let heads = cfg.pair_heads.max(1);
    let d = cfg.c_hidden_pair.max(1);
    let hd = heads * d;

    let q = Linear::no_bias("template.point_q", cfg.c_z, hd).apply(g, store, z)?;
    // [R, R, hd] -> [R*R, heads, 1, d]
    let qh = g.reshape(q, &[r * r, heads, 1, d])?;
    let k = Linear::no_bias("template.point_k", cfg.c_t, hd).apply(g, store, templates)?;
    let v = Linear::no_bias("template.point_v", cfg.c_t, hd).apply(g, store, templates)?;
    // [T, R, R, hd] -> [R*R, heads, T, d]
    let to_kv = |g: &mut Graph, x: Var| -> Result<Var> {
        let r5 = g.reshape(x, &[t, r * r, heads, d])?;
        g.permute(r5, &[1, 2, 0, 3])
    };
    let kh = to_kv(g, k)?;
    let vh = to_kv(g, v)?;
    let scale = 1.0 / (d as f32).sqrt();
    let att = g.attention(qh, kh, vh, None, scale)?; // [R*R, heads, 1, d]
    let flat = g.reshape(att, &[r, r, hd])?;
    Linear::new("template.point_out", hd, cfg.c_z).apply(g, store, flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relpos_one_hot_structure() {
        let idx = Tensor::arange(5);
        let r = relpos_one_hot(&idx);
        assert_eq!(r.dims(), &[5, 5, 2 * RELPOS_K + 1]);
        // Diagonal is the center bin.
        assert_eq!(r.at(&[2, 2, RELPOS_K]).unwrap(), 1.0);
        // i=4, j=0 -> offset +4.
        assert_eq!(r.at(&[4, 0, RELPOS_K + 4]).unwrap(), 1.0);
        // Each pair has exactly one hot bin.
        assert_eq!(r.sum_all(), 25.0);
    }

    #[test]
    fn relpos_clips_long_range() {
        let mut idx = Tensor::zeros(&[2]);
        idx.data_mut()[1] = 500.0;
        let r = relpos_one_hot(&idx);
        assert_eq!(r.at(&[1, 0, 2 * RELPOS_K]).unwrap(), 1.0);
        assert_eq!(r.at(&[0, 1, 0]).unwrap(), 1.0);
    }

    #[test]
    fn distogram_one_hot_bins() {
        let coords =
            Tensor::from_vec(vec![0.0, 0.0, 0.0, 100.0, 0.0, 0.0], &[2, 3]).unwrap();
        let d = distogram_one_hot(&coords);
        // Self-distance 0 -> first bin; 100 Å -> last bin.
        assert_eq!(d.at(&[0, 0, 0]).unwrap(), 1.0);
        assert_eq!(d.at(&[0, 1, DISTOGRAM_BINS - 1]).unwrap(), 1.0);
        assert_eq!(d.sum_all(), 4.0);
    }

    #[test]
    fn input_embedder_shapes() {
        let cfg = ModelConfig::tiny();
        let batch = FeatureBatch::synthetic(&cfg, 1);
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let (m, z) = input_embedder(&mut g, &mut store, &cfg, &batch).unwrap();
        assert_eq!(g.value(m).dims(), &[cfg.n_seq, cfg.n_res, cfg.c_m]);
        assert_eq!(g.value(z).dims(), &[cfg.n_res, cfg.n_res, cfg.c_z]);
        assert!(!g.value(m).has_non_finite());
    }

    #[test]
    fn recycling_embedder_adds_information() {
        let cfg = ModelConfig::tiny();
        let batch = FeatureBatch::synthetic(&cfg, 2);
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let (m, z) = input_embedder(&mut g, &mut store, &cfg, &batch).unwrap();
        let prev = RecycledState {
            m_first_row: Tensor::randn(&[cfg.n_res, cfg.c_m], 3),
            z: Tensor::randn(&[cfg.n_res, cfg.n_res, cfg.c_z], 4),
            coords: batch.true_coords.clone(),
        };
        let (m2, z2) = recycling_embedder(&mut g, &mut store, &cfg, m, z, &prev).unwrap();
        assert_eq!(g.value(m2).dims(), g.value(m).dims());
        assert!(!g.value(m2).allclose(g.value(m), 1e-7));
        assert!(!g.value(z2).allclose(g.value(z), 1e-7));
        // Rows 1.. of m must be unchanged (only row 0 receives recycled MSA).
        let before = g.value(m).slice_axis(0, 1, cfg.n_seq).unwrap();
        let after = g.value(m2).slice_axis(0, 1, cfg.n_seq).unwrap();
        assert!(before.allclose(&after, 1e-6));
    }

    #[test]
    fn extra_msa_and_template_stacks_update_pair() {
        let cfg = ModelConfig::tiny();
        let batch = FeatureBatch::synthetic(&cfg, 5);
        let mut g = Graph::new();
        let mut store = ParamStore::new();
        let (_, z) = input_embedder(&mut g, &mut store, &cfg, &batch).unwrap();
        let z1 = extra_msa_stack(&mut g, &mut store, &cfg, &batch, z).unwrap();
        assert!(!g.value(z1).allclose(g.value(z), 1e-7));
        let z2 = template_pair_stack(&mut g, &mut store, &cfg, &batch, z1).unwrap();
        assert!(!g.value(z2).allclose(g.value(z1), 1e-7));
        assert_eq!(g.value(z2).dims(), &[cfg.n_res, cfg.n_res, cfg.c_z]);
    }
}
