//! Microbenchmark for the vectorized `exp` family: libm vs the polynomial
//! `vexp` (scalar loop, `vexp_inplace`, `vexp_shift_sum`), plus a pass
//! breakdown of `softmax_row` at the kernel-bench shape. Run with
//! `cargo run --release -p sf-tensor --example vexp_bench`.
use sf_tensor::ops::softmax::softmax_row;
use sf_tensor::ops::vexp::{striped_max, vexp, vexp_inplace, vexp_shift_sum};
use std::time::Instant;

fn best_of<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let n = 1 << 22;
    let base: Vec<f32> = (0..n).map(|i| (i % 177) as f32 * 0.1 - 8.0).collect();
    let mut buf = base.clone();

    let libm_ms = best_of(3, || {
        buf.copy_from_slice(&base);
        for v in buf.iter_mut() {
            *v = v.exp();
        }
        std::hint::black_box(&buf);
    });
    let scalar_ms = best_of(3, || {
        buf.copy_from_slice(&base);
        for v in buf.iter_mut() {
            *v = vexp(*v);
        }
        std::hint::black_box(&buf);
    });
    let inplace_ms = best_of(3, || {
        buf.copy_from_slice(&base);
        vexp_inplace(&mut buf);
        std::hint::black_box(&buf);
    });
    let ss_ms = best_of(3, || {
        buf.copy_from_slice(&base);
        std::hint::black_box(vexp_shift_sum(&mut buf, 0.5));
    });
    println!("exp/elt over {n} elts:");
    println!("  libm {libm_ms:.2}ms  scalar-vexp {scalar_ms:.2}ms  inplace {inplace_ms:.2}ms  shift_sum {ss_ms:.2}ms");

    // softmax_row pass breakdown at the kernel-bench row length (256).
    let inner = 256usize;
    let serial_max_ms = best_of(3, || {
        let mut acc = 0.0f32;
        for row in base.chunks(inner) {
            acc += row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        }
        std::hint::black_box(acc);
    });
    let striped_max_ms = best_of(3, || {
        let mut acc = 0.0f32;
        for row in base.chunks(inner) {
            acc += striped_max(row);
        }
        std::hint::black_box(acc);
    });
    let normalize_ms = best_of(3, || {
        for v in buf.iter_mut() {
            *v *= 1.000_1;
        }
        std::hint::black_box(&buf);
    });
    let softmax_row_ms = best_of(3, || {
        buf.copy_from_slice(&base);
        for row in buf.chunks_mut(inner) {
            softmax_row(row);
        }
        std::hint::black_box(&buf);
    });
    let copy_ms = best_of(3, || {
        buf.copy_from_slice(&base);
        std::hint::black_box(&buf);
    });
    println!("softmax passes ({} rows of {inner}):", n / inner);
    println!(
        "  serial-max {serial_max_ms:.2}ms  striped-max {striped_max_ms:.2}ms  normalize {normalize_ms:.2}ms  copy {copy_ms:.2}ms  softmax_row {softmax_row_ms:.2}ms"
    );
}
