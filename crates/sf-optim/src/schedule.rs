//! The AlphaFold learning-rate schedule: linear warm-up, plateau, then a
//! step decay (Jumper et al. supplementary Table 4; OpenFold keeps it).

use serde::{Deserialize, Serialize};

/// Warm-up → plateau → decay learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    /// Peak learning rate after warm-up.
    pub peak_lr: f32,
    /// Linear warm-up length in steps (AlphaFold: 1000).
    pub warmup_steps: u64,
    /// Step at which the decay kicks in (AlphaFold: 50k of ~75k initial
    /// training steps).
    pub decay_after: u64,
    /// Multiplicative decay factor applied per decay interval after
    /// `decay_after` (AlphaFold: 0.95).
    pub decay_factor: f32,
    /// Interval (in steps) between decay applications: at step
    /// `decay_after + i * decay_every` the rate becomes
    /// `peak_lr * decay_factor^(i + 1)` — a compounding step decay.
    /// `0` disables compounding (a single decay at `decay_after`, the
    /// pre-fix behaviour).
    #[serde(default = "default_decay_every")]
    pub decay_every: u64,
}

fn default_decay_every() -> u64 {
    50_000
}

impl Default for LrSchedule {
    fn default() -> Self {
        LrSchedule {
            peak_lr: 1e-3,
            warmup_steps: 1000,
            decay_after: 50_000,
            decay_factor: 0.95,
            decay_every: default_decay_every(),
        }
    }
}

impl LrSchedule {
    /// The learning rate at a (0-based) optimizer step.
    pub fn lr_at(&self, step: u64) -> f32 {
        if step < self.warmup_steps {
            self.peak_lr * (step + 1) as f32 / self.warmup_steps.max(1) as f32
        } else if step < self.decay_after {
            self.peak_lr
        } else {
            // Compounding step decay: the factor applies once at
            // `decay_after` and again every `decay_every` steps. The old
            // code applied it exactly once regardless of how far past the
            // threshold training ran.
            let applications = 1 + (step - self.decay_after)
                .checked_div(self.decay_every)
                .unwrap_or(0);
            self.peak_lr * self.decay_factor.powi(applications.min(i32::MAX as u64) as i32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::default();
        assert!(s.lr_at(0) < 0.01 * s.peak_lr + 1e-9);
        assert!((s.lr_at(499) - 0.5 * s.peak_lr).abs() < 0.01 * s.peak_lr);
        assert_eq!(s.lr_at(1000), s.peak_lr);
    }

    #[test]
    fn plateau_holds_peak() {
        let s = LrSchedule::default();
        assert_eq!(s.lr_at(10_000), s.peak_lr);
        assert_eq!(s.lr_at(49_999), s.peak_lr);
    }

    #[test]
    fn first_decay_at_threshold_is_unchanged() {
        // Behaviour at `decay_after` itself is pinned to the old value:
        // exactly one application of the factor.
        let s = LrSchedule::default();
        assert!((s.lr_at(50_000) - 0.95 * s.peak_lr).abs() < 1e-9);
        assert!((s.lr_at(99_999) - 0.95 * s.peak_lr).abs() < 1e-9);
    }

    #[test]
    fn decay_compounds_every_interval() {
        let s = LrSchedule {
            decay_every: 10_000,
            ..LrSchedule::default()
        };
        assert!((s.lr_at(50_000) - 0.95 * s.peak_lr).abs() < 1e-9);
        assert!((s.lr_at(59_999) - 0.95 * s.peak_lr).abs() < 1e-9);
        // One interval past the threshold: factor applies a second time.
        // The pre-fix schedule returned 0.95 * peak here.
        assert!((s.lr_at(60_000) - 0.95f32.powi(2) * s.peak_lr).abs() < 1e-9);
        assert!((s.lr_at(80_000) - 0.95f32.powi(4) * s.peak_lr).abs() < 1e-9);
    }

    #[test]
    fn zero_decay_every_is_single_decay() {
        let s = LrSchedule {
            decay_every: 0,
            ..LrSchedule::default()
        };
        assert!((s.lr_at(50_000) - 0.95 * s.peak_lr).abs() < 1e-9);
        assert!((s.lr_at(1_000_000) - 0.95 * s.peak_lr).abs() < 1e-9);
    }

    #[test]
    fn zero_warmup_is_safe() {
        let s = LrSchedule {
            warmup_steps: 0,
            ..LrSchedule::default()
        };
        assert_eq!(s.lr_at(0), s.peak_lr);
    }
}
