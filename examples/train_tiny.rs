//! Full real training run on the CPU: a tiny AlphaFold learning to fold
//! synthetic proteins, with SWA, gradient clipping, LR warm-up, and the
//! non-blocking data pipeline — the paper's training recipe end to end.
//!
//! Run with: `cargo run --release --example train_tiny`

use scalefold::{Trainer, TrainerConfig};

fn main() {
    let mut cfg = TrainerConfig::tiny();
    cfg.model.evoformer_blocks = 2;
    cfg.model.extra_msa_blocks = 1;
    cfg.model.n_res = 10;
    cfg.dataset_len = 6;
    cfg.schedule.warmup_steps = 5;
    let steps = 30;

    println!(
        "training AlphaFold(tiny: {} evoformer blocks, {} residues) for {steps} steps",
        cfg.model.evoformer_blocks, cfg.model.n_res
    );
    let mut trainer = Trainer::new(cfg);
    let reports = trainer.train(steps);

    for chunk in reports.chunks(5) {
        let last = chunk.last().expect("nonempty chunk");
        let mean_loss: f32 = chunk.iter().map(|r| r.loss).sum::<f32>() / chunk.len() as f32;
        let mean_lddt: f32 = chunk.iter().map(|r| r.lddt).sum::<f32>() / chunk.len() as f32;
        println!(
            "  steps {:>3}-{:>3}: mean loss {:>8.4}  mean lDDT-Ca {:.3}  lr {:.2e}",
            chunk[0].step, last.step, mean_loss, mean_lddt, last.lr
        );
    }

    let first5: f32 = reports[..5].iter().map(|r| r.loss).sum::<f32>() / 5.0;
    let last5: f32 = reports[reports.len() - 5..].iter().map(|r| r.loss).sum::<f32>() / 5.0;
    println!();
    println!("loss: first-5 mean {first5:.4} -> last-5 mean {last5:.4}");
    println!("eval lDDT-Ca on held-out synthetic proteins (SWA weights): {:.3}", trainer.evaluate(3));
    if last5 < first5 {
        println!("the model is learning.");
    } else {
        println!("warning: no improvement at this budget (try more steps).");
    }
}
