//! Inference utilities: decoding the model's heads into the artifacts
//! downstream users consume — expected distance matrices, contact maps, and
//! per-residue confidence.

use crate::config::{ModelConfig, DISTOGRAM_BINS};
use crate::embed::distogram_edges;
use crate::linear::Linear;
use sf_autograd::{Graph, ParamStore, Result, Var};
use sf_tensor::ops::softmax::softmax;
use sf_tensor::Tensor;

/// Decoded pair-level predictions.
#[derive(Debug, Clone)]
pub struct PairPredictions {
    /// Expected pairwise distance (Å) under the distogram, `[n, n]`.
    pub expected_distance: Tensor,
    /// Contact probability (distance < `contact_cutoff`), `[n, n]`.
    pub contact_probability: Tensor,
    /// The cutoff used for contacts, Å.
    pub contact_cutoff: f32,
}

/// Bin centers of the distogram (midpoints of the edges, with the first
/// and last bins centered just inside their open ends).
pub fn distogram_bin_centers() -> Vec<f32> {
    let edges = distogram_edges();
    let mut centers = Vec::with_capacity(DISTOGRAM_BINS);
    centers.push(edges[0] - 0.5);
    for w in edges.windows(2) {
        centers.push(0.5 * (w[0] + w[1]));
    }
    centers.push(edges[edges.len() - 1] + 0.5);
    centers
}

/// Decodes distogram logits `[n, n, DISTOGRAM_BINS]` into expected
/// distances and contact probabilities.
///
/// # Errors
///
/// Returns an error if the logits' last dimension is not
/// [`DISTOGRAM_BINS`].
pub fn decode_distogram(logits: &Tensor, contact_cutoff: f32) -> Result<PairPredictions> {
    let dims = logits.dims();
    let bins = *dims.last().ok_or(sf_tensor::TensorError::EmptyInput("distogram"))?;
    if bins != DISTOGRAM_BINS {
        return Err(sf_tensor::TensorError::ShapeMismatch {
            op: "distogram bins",
            lhs: vec![DISTOGRAM_BINS],
            rhs: vec![bins],
        }
        .into());
    }
    let n = dims[0];
    let probs = softmax(logits)?;
    let centers = distogram_bin_centers();
    let edges = distogram_edges();
    let mut expected = Tensor::zeros(&[n, n]);
    let mut contact = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            let mut e = 0.0f32;
            let mut c = 0.0f32;
            for (b, &center) in centers.iter().enumerate() {
                let p = probs.at(&[i, j, b])?;
                e += p * center;
                // A bin is a "contact bin" if its upper edge is below the
                // cutoff (the last bin never is).
                let upper = edges.get(b).copied().unwrap_or(f32::INFINITY);
                if upper <= contact_cutoff {
                    c += p;
                }
            }
            expected.set(&[i, j], e)?;
            contact.set(&[i, j], c)?;
        }
    }
    Ok(PairPredictions {
        expected_distance: expected,
        contact_probability: contact,
        contact_cutoff,
    })
}

/// Runs the distogram head on a pair representation and decodes it — the
/// full inference path from `z` to contacts.
///
/// # Errors
///
/// Propagates shape errors from the head projection or decoding.
pub fn predict_contacts(
    g: &mut Graph,
    store: &mut ParamStore,
    cfg: &ModelConfig,
    z: Var,
    contact_cutoff: f32,
) -> Result<PairPredictions> {
    let logits = Linear::new("heads.distogram", cfg.c_z, DISTOGRAM_BINS).apply(g, store, z)?;
    decode_distogram(g.value(logits), contact_cutoff)
}

/// Converts pLDDT logits `[n, 1]` into per-residue confidence in `[0, 100]`
/// (the conventional pLDDT scale).
pub fn plddt_scores(logits: &Tensor) -> Vec<f32> {
    logits
        .data()
        .iter()
        .map(|&l| 100.0 / (1.0 + sf_tensor::ops::vexp::vexp(-l)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlphaFold, FeatureBatch};

    #[test]
    fn bin_centers_are_ordered_and_bracket_edges() {
        let centers = distogram_bin_centers();
        let edges = distogram_edges();
        assert_eq!(centers.len(), DISTOGRAM_BINS);
        assert!(centers.windows(2).all(|w| w[0] < w[1]));
        assert!(centers[0] < edges[0]);
        assert!(*centers.last().expect("nonempty") > *edges.last().expect("nonempty"));
    }

    #[test]
    fn peaked_distogram_decodes_to_bin_center() {
        // Logits massively favouring bin 3 -> expected distance = center 3.
        let n = 2;
        let mut logits = Tensor::zeros(&[n, n, DISTOGRAM_BINS]);
        for i in 0..n {
            for j in 0..n {
                logits.set(&[i, j, 3], 50.0).expect("in range");
            }
        }
        let pred = decode_distogram(&logits, 8.0).expect("well-formed");
        let centers = distogram_bin_centers();
        for i in 0..n {
            for j in 0..n {
                let e = pred.expected_distance.at(&[i, j]).expect("ok");
                assert!((e - centers[3]).abs() < 1e-3, "{e} vs {}", centers[3]);
            }
        }
        // Bin 3's upper edge is well under 8 Å -> contact probability ~1.
        assert!(pred.contact_probability.at(&[0, 1]).expect("ok") > 0.99);
    }

    #[test]
    fn uniform_distogram_gives_mean_distance() {
        let logits = Tensor::zeros(&[1, 1, DISTOGRAM_BINS]);
        let pred = decode_distogram(&logits, 8.0).expect("well-formed");
        let centers = distogram_bin_centers();
        let mean: f32 = centers.iter().sum::<f32>() / centers.len() as f32;
        assert!((pred.expected_distance.item() - mean).abs() < 1e-3);
        // Contact probability strictly between 0 and 1.
        let c = pred.contact_probability.item();
        assert!(c > 0.0 && c < 1.0);
    }

    #[test]
    fn rejects_wrong_bin_count() {
        let bad = Tensor::zeros(&[2, 2, DISTOGRAM_BINS + 1]);
        assert!(decode_distogram(&bad, 8.0).is_err());
    }

    #[test]
    fn full_inference_path_from_model() {
        let mut cfg = ModelConfig::tiny();
        cfg.evoformer_blocks = 1;
        cfg.extra_msa_blocks = 0;
        cfg.template_blocks = 0;
        let batch = FeatureBatch::synthetic(&cfg, 11);
        let model = AlphaFold::new(cfg.clone());
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let out = model.forward(&mut g, &mut store, &batch).expect("forward");
        let pred = predict_contacts(&mut g, &mut store, &cfg, out.pair, 8.0).expect("decode");
        assert_eq!(pred.expected_distance.dims(), &[cfg.n_res, cfg.n_res]);
        assert!(!pred.expected_distance.has_non_finite());
        let c01 = pred.contact_probability.at(&[0, 1]).expect("ok");
        assert!((0.0..=1.0).contains(&c01));
    }

    #[test]
    fn plddt_scores_map_to_percent() {
        let logits = Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[3, 1]).expect("sized");
        let s = plddt_scores(&logits);
        assert!(s[0] < 1.0);
        assert!((s[1] - 50.0).abs() < 1e-3);
        assert!(s[2] > 99.0);
    }
}
