//! Property tests for the model substrate: quaternion/rigid algebra laws,
//! lDDT invariances, distogram/relpos structure, and loss invariants.

use proptest::prelude::*;
use sf_model::embed::{distogram_one_hot, relpos_one_hot, RELPOS_K};
use sf_model::geometry::{distance_matrix, transform_coords, Quat, Rigid};
use sf_model::metrics::{lddt_ca, lddt_ca_per_residue};
use sf_tensor::Tensor;

fn arb_quat() -> impl Strategy<Value = Quat> {
    (
        -1.0f32..1.0,
        -1.0f32..1.0,
        -1.0f32..1.0,
        0.01f32..std::f32::consts::PI,
    )
        .prop_map(|(x, y, z, angle)| Quat::from_axis_angle([x, y, z + 0.01], angle))
}

fn arb_rigid() -> impl Strategy<Value = Rigid> {
    (arb_quat(), -20.0f32..20.0, -20.0f32..20.0, -20.0f32..20.0)
        .prop_map(|(rot, x, y, z)| Rigid { rot, trans: [x, y, z] })
}

fn arb_coords(n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-15.0f32..15.0, n * 3)
        .prop_map(move |v| Tensor::from_vec(v, &[n, 3]).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unit quaternions stay unit under the Hamilton product.
    #[test]
    fn quat_product_preserves_norm(a in arb_quat(), b in arb_quat()) {
        let n = a.mul(b).norm();
        prop_assert!((n - 1.0).abs() < 1e-4, "norm {n}");
    }

    /// Rotation preserves vector length.
    #[test]
    fn rotation_preserves_length(
        q in arb_quat(),
        p in proptest::array::uniform3(-10.0f32..10.0),
    ) {
        let r = q.rotate(p);
        let before = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        let after = (r[0] * r[0] + r[1] * r[1] + r[2] * r[2]).sqrt();
        prop_assert!((before - after).abs() < 1e-3 * (1.0 + before));
    }

    /// Rigid composition is associative (within f32 tolerance).
    #[test]
    fn rigid_composition_associative(
        a in arb_rigid(),
        b in arb_rigid(),
        c in arb_rigid(),
        p in proptest::array::uniform3(-5.0f32..5.0),
    ) {
        let left = a.compose(b).compose(c).apply(p);
        let right = a.compose(b.compose(c)).apply(p);
        for (l, r) in left.iter().zip(right.iter()) {
            prop_assert!((l - r).abs() < 1e-2, "{l} vs {r}");
        }
    }

    /// `inverse` really inverts, for points anywhere.
    #[test]
    fn rigid_inverse_round_trip(
        r in arb_rigid(),
        p in proptest::array::uniform3(-10.0f32..10.0),
    ) {
        let back = r.inverse().apply(r.apply(p));
        for (b, o) in back.iter().zip(p.iter()) {
            prop_assert!((b - o).abs() < 1e-2, "{b} vs {o}");
        }
    }

    /// Pairwise distances are invariant under any rigid motion, so lDDT of
    /// a rigidly-moved prediction is exactly 1.
    #[test]
    fn lddt_rigid_invariance(r in arb_rigid(), coords in arb_coords(8)) {
        let moved = transform_coords(r, &coords);
        let mask = Tensor::ones(&[8]);
        let score = lddt_ca(&moved, &coords, &mask);
        // Score is 1 unless no pair qualified (degenerate all-far case).
        let d = distance_matrix(&coords);
        let any_pair = (0..8).any(|i| (0..8).any(|j| i != j && d.at(&[i, j]).expect("ok") < 15.0));
        if any_pair {
            prop_assert!(score > 0.999, "score {score}");
        }
    }

    /// The pair-count-weighted mean of per-residue lDDT equals the global
    /// score exactly (each ordered pair contributes to exactly one
    /// residue's numerator and the global numerator).
    #[test]
    fn per_residue_lddt_consistent(coords in arb_coords(6), noise_seed in any::<u64>()) {
        let noisy = coords
            .add(&Tensor::randn(&[6, 3], noise_seed).mul_scalar(0.5))
            .expect("same shape");
        let mask = Tensor::ones(&[6]);
        let per = lddt_ca_per_residue(&noisy, &coords, &mask);
        let global = lddt_ca(&noisy, &coords, &mask);
        for &p in &per {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        // Recompute per-residue qualifying-pair counts for the weighting.
        let d = distance_matrix(&coords);
        let pair_count = |i: usize| -> usize {
            (0..6)
                .filter(|&j| j != i && d.at(&[i, j]).expect("ok") < 15.0)
                .count()
        };
        let counts: Vec<usize> = (0..6).map(pair_count).collect();
        let total: usize = counts.iter().sum();
        if total > 0 {
            let weighted: f32 = per
                .iter()
                .zip(counts.iter())
                .map(|(&p, &c)| p * c as f32)
                .sum::<f32>()
                / total as f32;
            prop_assert!(
                (weighted - global).abs() < 1e-4,
                "weighted {weighted} vs global {global}"
            );
        }
    }

    /// Distogram one-hot has exactly one hot bin per pair.
    #[test]
    fn distogram_one_hot_rows(coords in arb_coords(5)) {
        let d = distogram_one_hot(&coords);
        prop_assert_eq!(d.sum_all(), 25.0);
        prop_assert_eq!(d.max_all().expect("nonempty"), 1.0);
    }

    /// Relative-position encoding is one-hot per pair and symmetric about
    /// the center bin under index swap.
    #[test]
    fn relpos_structure(n in 2usize..12, offset in 0u32..100) {
        let mut idx = Tensor::zeros(&[n]);
        for i in 0..n {
            idx.data_mut()[i] = (i as u32 + offset) as f32;
        }
        let r = relpos_one_hot(&idx);
        prop_assert_eq!(r.sum_all(), (n * n) as f32);
        // Swap symmetry: bin(i,j) + bin(j,i) = 2 * center.
        for i in 0..n {
            for j in 0..n {
                let bin_ij = (0..2 * RELPOS_K + 1)
                    .position(|b| r.at(&[i, j, b]).expect("ok") == 1.0)
                    .expect("one-hot");
                let bin_ji = (0..2 * RELPOS_K + 1)
                    .position(|b| r.at(&[j, i, b]).expect("ok") == 1.0)
                    .expect("one-hot");
                prop_assert_eq!(bin_ij + bin_ji, 2 * RELPOS_K);
            }
        }
    }
}
