//! Regenerates Table 1: the kernel breakdown of one reference training step.
fn main() {
    sf_bench::banner("Table 1: kernel breakdown");
    println!("{}", scalefold::experiments::table1());
}
