//! Regenerates the scalability claim: throughput vs GPU count for OpenFold
//! (DP-only, capped at 256), FastFold (512), and ScaleFold (2048 training
//! GPUs via DP 256 x DAP-8).
fn main() {
    sf_bench::banner("Scalability: 2048 training GPUs");
    let points = scalefold::experiments::scaling();
    print!("{}", scalefold::experiments::format_scaling(&points));
}
