//! GPU device specifications (public spec-sheet numbers).

use serde::{Deserialize, Serialize};

/// Peak capabilities of one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name ("A100", "H100").
    pub name: String,
    /// Peak dense FP32 tensor-core-free throughput, TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak dense TF32 tensor-core throughput, TFLOP/s.
    pub tf32_tflops: f64,
    /// Peak dense BF16 tensor-core throughput, TFLOP/s.
    pub bf16_tflops: f64,
    /// HBM bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Streaming multiprocessor count.
    pub sm_count: usize,
    /// HBM capacity, GiB.
    pub mem_capacity_gib: f64,
    /// CPU-side cost per eager operator launch, microseconds. This is the
    /// full framework dispatch path (Python -> dispatcher -> cudaLaunch),
    /// not just the driver call — the cost CUDA Graphs eliminate.
    pub kernel_launch_us: f64,
    /// Fixed GPU-side kernel tail/setup latency, microseconds.
    pub kernel_tail_us: f64,
    /// CPU-side cost of replaying a captured CUDA graph (one
    /// `cudaGraphLaunch` driver call), microseconds.
    pub graph_launch_us: f64,
}

impl DeviceSpec {
    /// NVIDIA A100-SXM4-80GB.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100".to_string(),
            fp32_tflops: 19.5,
            tf32_tflops: 156.0,
            bf16_tflops: 312.0,
            mem_bw_gbs: 2039.0,
            sm_count: 108,
            mem_capacity_gib: 80.0,
            kernel_launch_us: 25.0,
            kernel_tail_us: 2.0,
            graph_launch_us: 10.0,
        }
    }

    /// NVIDIA H100-SXM5-80GB.
    pub fn h100() -> Self {
        DeviceSpec {
            name: "H100".to_string(),
            fp32_tflops: 67.0,
            tf32_tflops: 495.0,
            bf16_tflops: 989.0,
            mem_bw_gbs: 3350.0,
            sm_count: 132,
            mem_capacity_gib: 80.0,
            kernel_launch_us: 25.0,
            kernel_tail_us: 1.5,
            graph_launch_us: 10.0,
        }
    }

    /// Peak math throughput in FLOP/s for the given tensor-core precision
    /// selector (`"fp32"`, `"tf32"`, `"bf16"`).
    pub fn peak_flops(&self, precision: &str) -> f64 {
        let tflops = match precision {
            "bf16" => self.bf16_tflops,
            "tf32" => self.tf32_tflops,
            _ => self.fp32_tflops,
        };
        tflops * 1e12
    }

    /// Memory bandwidth in bytes/s.
    pub fn mem_bw_bytes(&self) -> f64 {
        self.mem_bw_gbs * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_outclasses_a100() {
        let a = DeviceSpec::a100();
        let h = DeviceSpec::h100();
        assert!(h.bf16_tflops > 2.5 * a.bf16_tflops);
        assert!(h.mem_bw_gbs > a.mem_bw_gbs);
        // Memory bandwidth grows less than math: memory-bound workloads
        // (like OpenFold) gain less from H100 — the paper's 1.66× ref
        // speedup, far below the 3× math ratio.
        assert!(h.mem_bw_gbs / a.mem_bw_gbs < 2.0);
    }

    #[test]
    fn precision_selector() {
        let h = DeviceSpec::h100();
        assert_eq!(h.peak_flops("bf16"), 989.0e12);
        assert_eq!(h.peak_flops("tf32"), 495.0e12);
        assert_eq!(h.peak_flops("fp32"), 67.0e12);
        assert_eq!(h.peak_flops("unknown"), 67.0e12);
    }
}
