//! Synthetic protein records standing in for the OpenFold dataset.
//!
//! What matters for this reproduction is (a) plausible geometry for the
//! model's structural losses and (b) realistic *distributions* of sequence
//! length and MSA depth, because those drive batch-preparation time (the
//! paper's Figure 4). Both follow log-normal-like laws in the PDB; we sample
//! accordingly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sf_model::config::NUM_AA_TYPES;
use sf_tensor::Tensor;

/// One synthetic protein: sequence, alignments metadata, and Cα geometry.
#[derive(Debug, Clone)]
pub struct ProteinRecord {
    /// Stable sample id.
    pub id: u64,
    /// Residue types, values in `0..NUM_AA_TYPES`.
    pub sequence: Vec<u8>,
    /// Number of sequences in this sample's MSA (drives prep cost).
    pub msa_depth: usize,
    /// Cα coordinates in Å, `[len, 3]`.
    pub coords: Tensor,
}

impl ProteinRecord {
    /// Sequence length.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// True if the record has no residues.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

/// Deterministic synthetic dataset: record `i` is a pure function of
/// `(seed, i)`.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    seed: u64,
    len: usize,
}

impl SyntheticDataset {
    /// A dataset of `len` samples derived from `seed`.
    pub fn new(seed: u64, len: usize) -> Self {
        SyntheticDataset { seed, len }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Generates record `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn record(&self, index: usize) -> ProteinRecord {
        assert!(index < self.len, "index {index} out of {}", self.len);
        let mut rng = StdRng::seed_from_u64(self.seed ^ (index as u64).wrapping_mul(0x9E3779B97F4A7C15));

        // Length: log-normal around ~250 residues, clamped to [40, 2000].
        let ln_len: f32 = 5.4 + 0.6 * normal(&mut rng);
        let len = (ln_len.exp() as usize).clamp(40, 2000);

        // MSA depth: log-normal spanning ~1e1..1e4 (the long tail is what
        // makes some batches slow to prepare).
        let ln_depth: f32 = 5.0 + 1.6 * normal(&mut rng);
        let msa_depth = (ln_depth.exp() as usize).clamp(8, 50_000);

        let sequence: Vec<u8> = (0..len)
            .map(|_| rng.gen_range(0..NUM_AA_TYPES as u8))
            .collect();

        // Geometry: a self-avoiding-ish random walk of ~3.8 Å steps with
        // slowly-drifting direction (helix/coil flavor), giving realistic
        // local distances for lDDT and distance losses.
        let mut coords = Tensor::zeros(&[len, 3]);
        let (mut x, mut y, mut z) = (0.0f32, 0.0f32, 0.0f32);
        let mut theta: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let mut phi: f32 = rng.gen_range(-0.5..0.5);
        for i in 0..len {
            coords.data_mut()[i * 3] = x;
            coords.data_mut()[i * 3 + 1] = y;
            coords.data_mut()[i * 3 + 2] = z;
            theta += rng.gen_range(-0.6..0.6);
            phi += rng.gen_range(-0.3..0.3);
            phi = phi.clamp(-1.2, 1.2);
            let step = 3.8f32;
            x += step * theta.cos() * phi.cos();
            y += step * theta.sin() * phi.cos();
            z += step * phi.sin();
        }

        ProteinRecord {
            id: (self.seed << 20) ^ index as u64,
            sequence,
            msa_depth,
            coords,
        }
    }

    /// A shuffled epoch order (Fisher–Yates, deterministic in `epoch`).
    pub fn epoch_order(&self, epoch: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len).collect();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(epoch.wrapping_mul(0x2545F4914F6CDD1D)));
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        order
    }
}

fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_deterministic() {
        let d = SyntheticDataset::new(7, 100);
        let a = d.record(42);
        let b = d.record(42);
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.coords, b.coords);
        assert_eq!(a.msa_depth, b.msa_depth);
    }

    #[test]
    fn records_differ_by_index() {
        let d = SyntheticDataset::new(7, 100);
        assert_ne!(d.record(0).sequence, d.record(1).sequence);
    }

    #[test]
    fn lengths_are_plausible_and_spread() {
        let d = SyntheticDataset::new(3, 300);
        let lens: Vec<usize> = (0..300).map(|i| d.record(i).len()).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(min >= 40);
        assert!(max <= 2000);
        assert!(max > 3 * min, "length spread too small: {min}..{max}");
        let mean = lens.iter().sum::<usize>() as f32 / lens.len() as f32;
        assert!((100.0..600.0).contains(&mean), "mean length {mean}");
    }

    #[test]
    fn msa_depth_heavy_tail() {
        let d = SyntheticDataset::new(4, 500);
        let mut depths: Vec<usize> = (0..500).map(|i| d.record(i).msa_depth).collect();
        depths.sort_unstable();
        // Spread of at least two orders of magnitude between p5 and p95.
        let p5 = depths[25];
        let p95 = depths[475];
        assert!(p95 >= 100 * p5.max(1) / 2, "p5 {p5} p95 {p95}");
    }

    #[test]
    fn successive_residues_are_bonded_distance() {
        let d = SyntheticDataset::new(5, 10);
        let r = d.record(0);
        for i in 0..r.len() - 1 {
            let dx = r.coords.at(&[i, 0]).unwrap() - r.coords.at(&[i + 1, 0]).unwrap();
            let dy = r.coords.at(&[i, 1]).unwrap() - r.coords.at(&[i + 1, 1]).unwrap();
            let dz = r.coords.at(&[i, 2]).unwrap() - r.coords.at(&[i + 1, 2]).unwrap();
            let dist = (dx * dx + dy * dy + dz * dz).sqrt();
            assert!((dist - 3.8).abs() < 0.1, "step {i}: {dist}");
        }
    }

    #[test]
    fn epoch_order_is_permutation_and_varies() {
        let d = SyntheticDataset::new(6, 50);
        let o1 = d.epoch_order(0);
        let o2 = d.epoch_order(1);
        let mut s1 = o1.clone();
        s1.sort_unstable();
        assert_eq!(s1, (0..50).collect::<Vec<_>>());
        assert_ne!(o1, o2);
        assert_eq!(d.epoch_order(0), o1); // deterministic
    }
}
