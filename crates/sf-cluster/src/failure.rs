//! Failure-aware run-time estimation: what rank failures and checkpoint
//! cadence do to time-to-convergence.
//!
//! At the paper's 2080-GPU scale, hardware failures are a scheduling fact:
//! with a per-rank MTBF of a few years, a multi-hour run across thousands
//! of ranks sees a meaningful probability of losing at least one rank. A
//! failure manifests as a hung NCCL collective (detected after a timeout),
//! followed by a job restart, a checkpoint reload, and replay of every
//! step since the last checkpoint. Checkpointing more often shrinks the
//! replay but pays a per-save stall — the classic trade-off this module
//! quantifies.
//!
//! Two entry points on [`ClusterSim`]:
//!
//! - [`ClusterSim::expected_run_time`]: a closed-form expectation over the
//!   failure process (good for sweeping grids of checkpoint intervals ×
//!   failure rates, see [`ClusterSim::convergence_tradeoff`]).
//! - [`ClusterSim::simulate_with_failures`]: a deterministic sampled run
//!   that consumes the scheduled rank failures of an
//!   `sf_faults::FaultPlan`, for drills with known failure times.

use crate::sim::ClusterSim;
use serde::{Deserialize, Serialize};
use sf_faults::FaultPlan;

/// Failure and recovery cost model for a distributed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time between failures of a *single* rank, seconds. The job
    /// fails when any rank fails, so the job-level rate scales with rank
    /// count. `f64::INFINITY` disables failures.
    pub rank_mtbf_s: f64,
    /// Time for the healthy ranks to notice a dead peer: the NCCL-style
    /// collective timeout, seconds.
    pub collective_timeout_s: f64,
    /// Scheduler restart + process re-spawn + NCCL re-init, seconds.
    pub restart_s: f64,
    /// Reading and broadcasting the checkpoint on restart, seconds.
    pub ckpt_load_s: f64,
    /// Per-save stall while training writes a checkpoint, seconds.
    pub ckpt_save_s: f64,
}

impl Default for FailureModel {
    /// Plausible large-cluster defaults: 30-year per-rank MTBF (so a
    /// 2080-rank job fails about every 5 days of wall-clock), 10-minute
    /// collective timeout (NCCL's default is 30 min; tuned jobs lower
    /// it), 5-minute restart, 60 s checkpoint load, 20 s checkpoint save.
    fn default() -> Self {
        FailureModel {
            rank_mtbf_s: 30.0 * 365.25 * 24.0 * 3600.0,
            collective_timeout_s: 600.0,
            restart_s: 300.0,
            ckpt_load_s: 60.0,
            ckpt_save_s: 20.0,
        }
    }
}

impl FailureModel {
    /// No failures, free checkpoints — estimates reduce to pure compute.
    pub fn none() -> Self {
        FailureModel {
            rank_mtbf_s: f64::INFINITY,
            collective_timeout_s: 0.0,
            restart_s: 0.0,
            ckpt_load_s: 0.0,
            ckpt_save_s: 0.0,
        }
    }

    /// Probability that *some* rank fails during one step of `step_s`
    /// seconds on `ranks` ranks: `1 - exp(-ranks * step_s / mtbf)`
    /// (independent exponential lifetimes).
    pub fn per_step_failure_prob(&self, ranks: usize, step_s: f64) -> f64 {
        if !self.rank_mtbf_s.is_finite() || self.rank_mtbf_s <= 0.0 {
            return 0.0;
        }
        1.0 - (-(ranks as f64) * step_s / self.rank_mtbf_s).exp()
    }

    /// Fixed cost of one failure before any replay: detection (collective
    /// timeout) + restart + checkpoint load.
    pub fn per_failure_fixed_s(&self) -> f64 {
        self.collective_timeout_s + self.restart_s + self.ckpt_load_s
    }
}

/// Expected wall-clock decomposition of a failure-prone run
/// ([`ClusterSim::expected_run_time`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunEstimate {
    /// Steps in the run.
    pub steps: u64,
    /// Checkpoint every this many steps.
    pub ckpt_interval: u64,
    /// Mean per-step seconds the estimate was built from.
    pub step_s: f64,
    /// Pure training compute: `steps * step_s`.
    pub compute_s: f64,
    /// Expected number of job failures over the run.
    pub expected_failures: f64,
    /// Expected steps re-executed because they post-dated the last
    /// checkpoint when a failure hit.
    pub expected_replayed_steps: f64,
    /// Total checkpoint-save stall, seconds.
    pub checkpoint_overhead_s: f64,
    /// Detection + restart + reload + replay, seconds (expected).
    pub failure_overhead_s: f64,
    /// Expected end-to-end wall-clock, seconds.
    pub expected_total_s: f64,
}

/// One deterministic failure consumed by
/// [`ClusterSim::simulate_with_failures`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureHit {
    /// Step at which the rank died.
    pub step: u64,
    /// The rank that died.
    pub rank: usize,
    /// Steps replayed from the last checkpoint (includes the failed step).
    pub replayed_steps: u64,
}

/// Result of a sampled failure run.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRun {
    /// End-to-end wall-clock including failures and checkpoints, seconds.
    pub total_s: f64,
    /// Wall-clock of the same run with no failures and no checkpoint
    /// stalls, seconds.
    pub ideal_s: f64,
    /// Checkpoints written.
    pub checkpoint_saves: u64,
    /// Every failure that fired, in step order.
    pub failures: Vec<FailureHit>,
}

/// One cell of [`ClusterSim::convergence_tradeoff`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Checkpoint interval of this cell, steps.
    pub ckpt_interval: u64,
    /// Per-rank MTBF of this cell, seconds.
    pub rank_mtbf_s: f64,
    /// The closed-form estimate at this cell.
    pub estimate: RunEstimate,
}

impl ClusterSim {
    /// Closed-form expected wall-clock of a `steps`-step run that
    /// checkpoints every `ckpt_interval` steps under failure model `fm`,
    /// with the mean step time taken from a short simulated sample.
    ///
    /// See [`ClusterSim::expected_run_time_with_step`] for the model; use
    /// that variant directly to sweep many configurations without
    /// re-simulating the step time.
    pub fn expected_run_time(&self, steps: u64, ckpt_interval: u64, fm: &FailureModel) -> RunEstimate {
        let step_s = self.mean_step_s(steps.clamp(1, 40));
        self.expected_run_time_with_step(step_s, steps, ckpt_interval, fm)
    }

    /// The closed-form model behind [`ClusterSim::expected_run_time`],
    /// parameterized by a fixed per-step time.
    ///
    /// - Each step fails with probability `p = 1 - exp(-ranks·t/mtbf)`,
    ///   so the run expects `steps · p` failures (first-order: failures
    ///   during replayed work are folded into the same rate).
    /// - A failure costs detection (collective timeout) + restart +
    ///   checkpoint load, plus replay of the steps since the last
    ///   checkpoint — on average `(k-1)/2` completed steps for interval
    ///   `k`, plus re-running the failed step itself.
    /// - Checkpoint saves stall training `ckpt_save_s` each, every
    ///   `ckpt_interval` steps.
    pub fn expected_run_time_with_step(
        &self,
        step_s: f64,
        steps: u64,
        ckpt_interval: u64,
        fm: &FailureModel,
    ) -> RunEstimate {
        let interval = ckpt_interval.max(1);
        let ranks = self.config().total_ranks();
        let p = fm.per_step_failure_prob(ranks, step_s);
        let compute_s = steps as f64 * step_s;
        let saves = steps / interval;
        let checkpoint_overhead_s = saves as f64 * fm.ckpt_save_s;
        let expected_failures = steps as f64 * p;
        let replay_per_failure = (interval as f64 - 1.0) / 2.0 + 1.0;
        let expected_replayed_steps = expected_failures * replay_per_failure;
        let failure_overhead_s = expected_failures * fm.per_failure_fixed_s()
            + expected_replayed_steps * step_s;
        RunEstimate {
            steps,
            ckpt_interval: interval,
            step_s,
            compute_s,
            expected_failures,
            expected_replayed_steps,
            checkpoint_overhead_s,
            failure_overhead_s,
            expected_total_s: compute_s + checkpoint_overhead_s + failure_overhead_s,
        }
    }

    /// Sweeps the checkpoint-interval × failure-rate grid: every
    /// combination of `intervals` and `rank_mtbfs_s` (other recovery
    /// costs taken from `fm`), with the step time simulated once and
    /// shared across cells. Row-major: intervals outer, MTBFs inner.
    pub fn convergence_tradeoff(
        &self,
        steps: u64,
        intervals: &[u64],
        rank_mtbfs_s: &[f64],
        fm: &FailureModel,
    ) -> Vec<TradeoffPoint> {
        let step_s = self.mean_step_s(steps.clamp(1, 40));
        let mut grid = Vec::with_capacity(intervals.len() * rank_mtbfs_s.len());
        for &interval in intervals {
            for &mtbf in rank_mtbfs_s {
                let cell = FailureModel {
                    rank_mtbf_s: mtbf,
                    ..*fm
                };
                grid.push(TradeoffPoint {
                    ckpt_interval: interval,
                    rank_mtbf_s: mtbf,
                    estimate: self.expected_run_time_with_step(step_s, steps, interval, &cell),
                });
            }
        }
        grid
    }

    /// Deterministic failure drill: runs the per-step simulation and
    /// injects the rank failures scheduled in `plan`
    /// (`FaultPlan::with_rank_failure`). Each failure at step `s` costs
    /// detection + restart + reload (from `fm`) plus replay of every step
    /// since the last checkpoint, including `s` itself; checkpoints are
    /// written every `ckpt_interval` steps at `fm.ckpt_save_s` each.
    pub fn simulate_with_failures(
        &self,
        steps: u64,
        ckpt_interval: u64,
        fm: &FailureModel,
        plan: &FaultPlan,
    ) -> FailureRun {
        let interval = ckpt_interval.max(1);
        let breakdowns = self.simulate(steps);
        let scheduled = plan.rank_failures();
        let mut total_s = 0.0f64;
        let mut ideal_s = 0.0f64;
        let mut checkpoint_saves = 0u64;
        let mut last_ckpt_step = 0u64; // first step not yet checkpointed
        let mut replay_buffer_s = 0.0f64; // step time since last checkpoint
        let mut failures = Vec::new();
        for (i, b) in breakdowns.iter().enumerate() {
            let step = i as u64;
            ideal_s += b.total_s;
            for &(s, rank) in &scheduled {
                if s != step {
                    continue;
                }
                // The step was in flight when the rank died: its partial
                // work plus everything since the last checkpoint is lost
                // and re-executed after recovery.
                let replayed = step - last_ckpt_step + 1;
                total_s += fm.per_failure_fixed_s() + replay_buffer_s + b.total_s;
                failures.push(FailureHit {
                    step,
                    rank,
                    replayed_steps: replayed,
                });
            }
            total_s += b.total_s;
            replay_buffer_s += b.total_s;
            if (step + 1).is_multiple_of(interval) {
                checkpoint_saves += 1;
                total_s += fm.ckpt_save_s;
                last_ckpt_step = step + 1;
                replay_buffer_s = 0.0;
            }
        }
        FailureRun {
            total_s,
            ideal_s,
            checkpoint_saves,
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ClusterConfig;
    use sf_model::ModelConfig;
    use sf_opgraph::builder::StepGraph;

    fn sim() -> ClusterSim {
        let g = StepGraph::reference(&ModelConfig::paper(), 1);
        ClusterSim::new(&g, ClusterConfig::eos(8, 2))
    }

    #[test]
    fn no_failures_means_pure_compute() {
        let s = sim();
        let est = s.expected_run_time_with_step(1.0, 100, 10, &FailureModel::none());
        assert_eq!(est.expected_failures, 0.0);
        assert_eq!(est.failure_overhead_s, 0.0);
        assert_eq!(est.checkpoint_overhead_s, 0.0);
        assert_eq!(est.expected_total_s, 100.0);
    }

    #[test]
    fn per_step_prob_scales_with_ranks_and_step_time() {
        let fm = FailureModel {
            rank_mtbf_s: 1_000_000.0,
            ..FailureModel::default()
        };
        let p1 = fm.per_step_failure_prob(100, 1.0);
        assert!(p1 > 0.0 && p1 < 1.0);
        assert!(fm.per_step_failure_prob(200, 1.0) > p1, "more ranks, more risk");
        assert!(fm.per_step_failure_prob(100, 2.0) > p1, "longer steps, more risk");
        assert_eq!(FailureModel::none().per_step_failure_prob(10_000, 10.0), 0.0);
    }

    #[test]
    fn more_failures_never_speed_up_convergence() {
        let s = sim();
        let fm = FailureModel::default();
        let mut last = f64::NEG_INFINITY;
        // Sweep failure rate upward (MTBF downward): expected time must
        // be non-decreasing.
        for mtbf in [f64::INFINITY, 1e9, 1e7, 1e5, 1e3] {
            let cell = FailureModel {
                rank_mtbf_s: mtbf,
                ..fm
            };
            let est = s.expected_run_time_with_step(1.0, 1000, 50, &cell);
            assert!(
                est.expected_total_s >= last,
                "mtbf {mtbf:e}: {} < {last}",
                est.expected_total_s
            );
            last = est.expected_total_s;
        }
    }

    #[test]
    fn sparser_checkpoints_never_speed_up_convergence_at_free_saves() {
        // With a free save, sparser checkpointing only grows the replay
        // tail: expected time is non-decreasing in the interval.
        let s = sim();
        let fm = FailureModel {
            rank_mtbf_s: 1e6,
            ckpt_save_s: 0.0,
            ..FailureModel::default()
        };
        let mut last = f64::NEG_INFINITY;
        for interval in [1u64, 5, 25, 125, 1000] {
            let est = s.expected_run_time_with_step(1.0, 1000, interval, &fm);
            assert!(
                est.expected_total_s >= last,
                "interval {interval}: {} < {last}",
                est.expected_total_s
            );
            last = est.expected_total_s;
        }
    }

    #[test]
    fn costly_saves_make_interval_tradeoff_u_shaped() {
        // With a real save cost the curve has an interior optimum: the
        // densest and the sparsest cadence are both beaten by a middle one.
        // MTBF 1e4 s on 16 ranks ≈ 1.6 expected failures over the run, so
        // the sparse cadence pays ~2300 s of replay while the dense one
        // pays 30 000 s of saves; interval 50 beats both.
        let s = sim();
        let fm = FailureModel {
            rank_mtbf_s: 1e4,
            ckpt_save_s: 30.0,
            ..FailureModel::default()
        };
        let totals: Vec<f64> = [1u64, 50, 1000]
            .iter()
            .map(|&k| s.expected_run_time_with_step(1.0, 1000, k, &fm).expected_total_s)
            .collect();
        assert!(totals[1] < totals[0], "mid {} vs dense {}", totals[1], totals[0]);
        assert!(totals[1] < totals[2], "mid {} vs sparse {}", totals[1], totals[2]);
    }

    #[test]
    fn tradeoff_grid_covers_all_cells() {
        let s = sim();
        let grid = s.convergence_tradeoff(
            200,
            &[10, 50, 200],
            &[1e9, 1e7, 1e5],
            &FailureModel::default(),
        );
        assert_eq!(grid.len(), 9);
        // Same step time everywhere; each cell reflects its own knobs.
        assert!(grid.windows(2).all(|w| w[0].estimate.step_s == w[1].estimate.step_s));
        for p in &grid {
            assert_eq!(p.estimate.ckpt_interval, p.ckpt_interval);
            assert!(p.estimate.expected_total_s >= p.estimate.compute_s);
        }
    }

    #[test]
    fn sampled_run_charges_scheduled_failures() {
        let s = sim();
        let fm = FailureModel {
            rank_mtbf_s: f64::INFINITY,
            collective_timeout_s: 10.0,
            restart_s: 5.0,
            ckpt_load_s: 2.0,
            ckpt_save_s: 1.0,
        };
        let clean = s.simulate_with_failures(20, 5, &fm, &FaultPlan::none());
        assert!(clean.failures.is_empty());
        assert_eq!(clean.checkpoint_saves, 4);
        assert!(clean.total_s > clean.ideal_s, "saves cost time");

        let plan = FaultPlan::none().with_rank_failure(3, 12);
        let faulty = s.simulate_with_failures(20, 5, &fm, &plan);
        assert_eq!(faulty.failures.len(), 1);
        let hit = faulty.failures[0];
        assert_eq!((hit.step, hit.rank), (12, 3));
        // Last checkpoint before step 12 was after step 9: replay 10,11,12.
        assert_eq!(hit.replayed_steps, 3);
        assert!(
            faulty.total_s > clean.total_s + fm.per_failure_fixed_s(),
            "failure must cost at least detection+restart+reload"
        );
        // Deterministic: same plan, same bill.
        assert_eq!(faulty, s.simulate_with_failures(20, 5, &fm, &plan));
    }
}
