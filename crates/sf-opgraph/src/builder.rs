//! Expands a [`ModelConfig`] into the full kernel sequence of one training
//! step (forward with recycling, backward, optimizer), with per-kernel
//! FLOP/byte sizing derived from the tensor shapes.
//!
//! Naive-implementation efficiencies are calibrated to the paper's §2.2
//! profile: stock MHA reaches ~26% of theoretical, stock LayerNorm ~10%,
//! the optimizer subroutines <10%.

use crate::ops::{ModuleTag, OpKind, OpNode};
use serde::{Deserialize, Serialize};
use sf_gpusim::Kernel;
use sf_model::ModelConfig;

/// Bytes per element in full precision.
const F32: f64 = 4.0;

/// Achieved-efficiency calibration for naive (unfused) kernels, from the
/// paper's profiling: LN 10%, MHA 26%, optimizer ≈10%, SWA <5%, clip <1%.
pub mod eff {
    /// Stock cuBLAS GEMM.
    pub const GEMM: f64 = 0.60;
    /// Naive LayerNorm sub-kernels.
    pub const LN_NAIVE: f64 = 0.50;
    /// Fused (Triton) LayerNorm.
    pub const LN_FUSED: f64 = 0.80;
    /// Naive attention softmax/glue sub-kernels.
    pub const MHA_NAIVE: f64 = 0.65;
    /// Fused (FlashAttention-style) MHA kernel.
    pub const MHA_FUSED: f64 = 0.80;
    /// Generic eager elementwise.
    pub const ELEMENTWISE: f64 = 0.70;
    /// torch.compile-fused elementwise.
    pub const ELEMENTWISE_FUSED: f64 = 0.80;
    /// Copies / transposes.
    pub const MEMOP: f64 = 0.60;
    /// Naive per-tensor Adam.
    pub const ADAM_NAIVE: f64 = 0.15;
    /// Naive per-tensor SWA.
    pub const SWA_NAIVE: f64 = 0.05;
    /// Naive per-tensor grad clip.
    pub const CLIP_NAIVE: f64 = 0.08;
    /// Fused optimizer kernels.
    pub const OPTIMIZER_FUSED: f64 = 0.70;
}

/// The kernel sequence of one training step plus workload metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepGraph {
    /// Kernels in issue order.
    pub ops: Vec<OpNode>,
    /// Number of distinct parameter/gradient tensors (drives optimizer
    /// kernel counts; >4000 in AlphaFold).
    pub param_tensors: usize,
    /// Total trainable elements.
    pub param_elements: f64,
    /// Activation bytes per Evoformer block (for DAP comm-volume modeling).
    pub block_activation_bytes: f64,
    /// Host synchronization points (op indices): the CPU drains the GPU
    /// queue here (recycling control flow, grad-norm checks, data waits).
    pub syncs: Vec<usize>,
    next_group: u64,
}

impl StepGraph {
    /// Builds the **reference** (unfused, fp32, eager) step graph:
    /// `recycle_fwd` forward-only recycling iterations plus one forward +
    /// backward iteration, then optimizer/SWA/clip kernels.
    pub fn reference(cfg: &ModelConfig, recycle_fwd: usize) -> Self {
        Self::build(cfg, recycle_fwd, false)
    }

    /// Like [`StepGraph::reference`] but with **gradient checkpointing**:
    /// the backward pass re-executes the forward kernels (recompute) before
    /// differentiating — OpenFold's memory workaround, which ScaleFold
    /// disables once DAP frees enough memory (§4.1).
    pub fn reference_checkpointed(cfg: &ModelConfig, recycle_fwd: usize) -> Self {
        Self::build(cfg, recycle_fwd, true)
    }

    fn build(cfg: &ModelConfig, recycle_fwd: usize, grad_checkpointing: bool) -> Self {
        let mut g = StepGraph {
            ops: Vec::new(),
            param_tensors: estimate_param_tensors(cfg),
            param_elements: cfg.approx_param_count() as f64,
            block_activation_bytes: block_activation_bytes(cfg),
            syncs: Vec::new(),
            next_group: 0,
        };
        // Warm recycling iterations: forward only. Each iteration boundary
        // is a host sync (the recycling decision is data-dependent).
        for _ in 0..recycle_fwd {
            g.forward(cfg);
            g.syncs.push(g.ops.len());
        }
        // Final iteration: forward + backward.
        let fwd_start = g.ops.len();
        g.forward(cfg);
        let fwd_ops: Vec<OpNode> = g.ops[fwd_start..].to_vec();
        if grad_checkpointing {
            // Checkpointing re-runs the forward inside the backward.
            g.ops.extend(fwd_ops.iter().cloned());
        }
        g.append_backward(&fwd_ops);
        // Optimizer waits on the gradient-norm check.
        g.syncs.push(g.ops.len());
        g.optimizer(cfg);
        g
    }

    fn group(&mut self) -> u64 {
        self.next_group += 1;
        self.next_group
    }

    // ------------------------------------------------------------------
    // Forward expansion
    // ------------------------------------------------------------------

    fn forward(&mut self, cfg: &ModelConfig) {
        let (s, r) = (cfg.n_seq as f64, cfg.n_res as f64);
        self.embedding(cfg);
        // Template pair stack: pair-only blocks per template.
        for _ in 0..cfg.n_templates * cfg.template_blocks {
            self.pair_track(cfg, ModuleTag::Template, r, cfg.c_t as f64, cfg.c_t as f64);
        }
        // Extra-MSA stack.
        for _ in 0..cfg.extra_msa_blocks {
            self.msa_track(cfg, ModuleTag::ExtraMsa, cfg.n_extra_seq as f64, r, cfg.c_e as f64);
            self.pair_track(cfg, ModuleTag::ExtraMsa, r, cfg.c_z as f64, cfg.c_hidden_mul as f64);
        }
        // Main Evoformer stack.
        for _ in 0..cfg.evoformer_blocks {
            self.msa_track(cfg, ModuleTag::Evoformer, s, r, cfg.c_m as f64);
            self.pair_track(cfg, ModuleTag::Evoformer, r, cfg.c_z as f64, cfg.c_hidden_mul as f64);
        }
        self.structure(cfg);
        self.heads(cfg);
    }

    /// MSA-side modules of one Evoformer block: row attention w/ pair bias,
    /// column attention, MSA transition, outer product mean.
    fn msa_track(&mut self, cfg: &ModelConfig, module: ModuleTag, s: f64, r: f64, c_m: f64) {
        let h = cfg.msa_heads as f64;
        let d = cfg.c_hidden_msa as f64;
        let c_z = cfg.c_z as f64;

        // --- MSA row attention with pair bias ---
        self.layer_norm_group(module, s * r, c_m);
        self.layer_norm_group(module, r * r, c_z);
        // Pair-bias projection + permute.
        self.gemm(module, OpKind::Gemm, r * r, c_z, h, 0);
        self.memop(module, r * r * h * F32);
        self.attention(module, cfg, s, r, r, c_m, h, d, true);
        // --- MSA column attention ---
        self.layer_norm_group(module, s * r, c_m);
        self.attention(module, cfg, r, s, s, c_m, h, d, false);
        // --- MSA transition ---
        self.transition(module, s * r, c_m, cfg.transition_factor as f64);
        // --- Outer product mean ---
        let c_opm = cfg.c_opm as f64;
        self.layer_norm_group(module, s * r, c_m);
        let opm_group = self.group();
        self.gemm(module, OpKind::ProjectionGemm, s * r, c_m, c_opm, opm_group);
        self.gemm(module, OpKind::ProjectionGemm, s * r, c_m, c_opm, opm_group);
        // einsum('sic,sjd->ijcd'): one big GEMM [r*c, s] x [s, r*c].
        self.gemm(module, OpKind::Gemm, r * c_opm, s, r * c_opm, 0);
        self.memop(module, r * r * c_opm * c_opm * F32); // permute
        self.elementwise(module, r * r * c_opm * c_opm, 1); // mean scale
        self.gemm(module, OpKind::Gemm, r * r, c_opm * c_opm, c_z, 0);
        self.elementwise(module, r * r * c_z, 2); // bias + residual
    }

    /// Pair-side modules: two triangle multiplications, two triangle
    /// attentions, pair transition.
    fn pair_track(&mut self, cfg: &ModelConfig, module: ModuleTag, r: f64, c_z: f64, c_mul: f64) {
        let h = cfg.pair_heads as f64;
        let d = cfg.c_hidden_pair as f64;
        // --- Triangle multiplications (outgoing + incoming) ---
        for _ in 0..2 {
            self.layer_norm_group(module, r * r, c_z);
            let proj_group = self.group();
            for _ in 0..4 {
                // a/b projections and gates.
                self.gemm(module, OpKind::ProjectionGemm, r * r, c_z, c_mul, proj_group);
            }
            self.elementwise(module, r * r * c_mul, 4); // sigmoid x2, mul x2
            self.memop(module, r * r * c_mul * F32 * 2.0); // channel-major permutes
            // Batched per-channel GEMM: c_mul matrices of [r, r] x [r, r].
            self.gemm_batched(module, c_mul, r, r, r);
            self.memop(module, r * r * c_mul * F32); // permute back
            self.layer_norm_group(module, r * r, c_mul);
            self.gemm(module, OpKind::Gemm, r * r, c_mul, c_z, 0);
            self.gemm(module, OpKind::Gemm, r * r, c_z, c_z, 0); // out gate
            self.elementwise(module, r * r * c_z, 3); // sigmoid, mul, residual
        }
        // --- Triangle attentions (starting + ending node) ---
        for ending in [false, true] {
            self.layer_norm_group(module, r * r, c_z);
            if ending {
                self.memop(module, r * r * c_z * F32); // transpose in
            }
            self.gemm(module, OpKind::Gemm, r * r, c_z, h, 0); // triangle bias
            self.memop(module, r * r * h * F32);
            self.attention(module, cfg, r, r, r, c_z, h, d, true);
            if ending {
                self.memop(module, r * r * c_z * F32); // transpose out
            }
        }
        // --- Pair transition ---
        self.transition(module, r * r, c_z, cfg.transition_factor as f64);
    }

    /// Gated MHA: 4 bundleable projections, QK^T, bias add, softmax (3
    /// sub-kernels), PV, gating, output projection, residual.
    #[allow(clippy::too_many_arguments)]
    fn attention(
        &mut self,
        module: ModuleTag,
        _cfg: &ModelConfig,
        batch: f64,
        s_q: f64,
        s_k: f64,
        c_in: f64,
        h: f64,
        d: f64,
        bias: bool,
    ) {
        let hd = h * d;
        let proj_group = self.group();
        for _ in 0..4 {
            // Q, K, V, gate — the GEMM-batching candidates.
            self.gemm(module, OpKind::ProjectionGemm, batch * s_q, c_in, hd, proj_group);
        }
        for _ in 0..4 {
            self.memop(module, batch * s_q * hd * F32); // head reshapes
        }
        let att_group = self.group();
        let logits = batch * h * s_q * s_k;
        // QK^T.
        self.push(
            Kernel::math(
                "attn_qk",
                2.0 * logits * d,
                (batch * h * (s_q + s_k) * d + logits) * F32,
                (batch * h * s_q) as usize,
            )
            .with_efficiency(eff::GEMM),
            module,
            OpKind::AttentionGemm,
            att_group,
        );
        if bias {
            self.push(
                Kernel::memory("attn_bias_add", 2.0 * logits * F32, (batch * h) as usize)
                    .with_efficiency(eff::MHA_NAIVE),
                module,
                OpKind::AttentionElementwise,
                att_group,
            );
        }
        // Softmax: max, exp+sum, normalize — each a full pass over logits.
        for name in ["softmax_stats", "softmax_norm"] {
            self.push(
                Kernel::memory(name, 2.0 * logits * F32, (batch * h * s_q) as usize)
                    .with_efficiency(eff::MHA_NAIVE),
                module,
                OpKind::Softmax,
                att_group,
            );
        }
        // PV.
        self.push(
            Kernel::math(
                "attn_pv",
                2.0 * logits * d,
                (logits + batch * h * (s_q + s_k) * d) * F32,
                (batch * h * s_q) as usize,
            )
            .with_efficiency(eff::GEMM),
            module,
            OpKind::AttentionGemm,
            att_group,
        );
        // Gating: sigmoid + mul.
        self.push(
            Kernel::memory("attn_gate", 3.0 * batch * s_q * hd * F32, (batch * s_q) as usize)
                .with_efficiency(eff::MHA_NAIVE),
            module,
            OpKind::AttentionElementwise,
            att_group,
        );
        self.memop(module, batch * s_q * hd * F32); // heads merge
        self.gemm(module, OpKind::Gemm, batch * s_q, hd, c_in, 0); // output proj
        self.elementwise(module, batch * s_q * c_in, 2); // bias + residual
    }

    /// Transition (2-layer MLP): LN, two GEMMs, activation, residual.
    fn transition(&mut self, module: ModuleTag, rows: f64, c: f64, factor: f64) {
        self.layer_norm_group(module, rows, c);
        self.gemm(module, OpKind::Gemm, rows, c, c * factor, 0);
        self.elementwise(module, rows * c * factor, 2); // bias + relu
        self.gemm(module, OpKind::Gemm, rows, c * factor, c, 0);
        self.elementwise(module, rows * c, 2); // bias + residual
    }

    /// Naive LayerNorm: 4 memory-bound sub-kernels (mean, variance,
    /// normalize, affine), each a full pass over the input.
    fn layer_norm_group(&mut self, module: ModuleTag, rows: f64, cols: f64) {
        let group = self.group();
        let bytes = rows * cols * F32;
        // Framework glue: shape/stride bookkeeping copies around each LN.
        self.push(
            sf_gpusim::Kernel::memop("cast_glue", 4096.0),
            module,
            OpKind::MemOp,
            0,
        );
        // PyTorch's eager LN runs as a statistics pass plus an apply pass;
        // at 2 passes x 40% achieved bandwidth it lands near the paper's
        // "10% of theoretical" for the whole normalization.
        for name in ["ln_stats", "ln_apply"] {
            self.push(
                Kernel::memory(name, 2.0 * bytes, rows as usize).with_efficiency(eff::LN_NAIVE),
                module,
                OpKind::LayerNorm,
                group,
            );
        }
    }

    fn embedding(&mut self, cfg: &ModelConfig) {
        let (s, r) = (cfg.n_seq as f64, cfg.n_res as f64);
        let (c_m, c_z) = (cfg.c_m as f64, cfg.c_z as f64);
        self.gemm(ModuleTag::Embedding, OpKind::Gemm, s * r, cfg.msa_feat_dim() as f64, c_m, 0);
        self.gemm(ModuleTag::Embedding, OpKind::Gemm, r, 21.0, c_m, 0);
        self.gemm(ModuleTag::Embedding, OpKind::Gemm, r, 21.0, c_z, 0);
        self.gemm(ModuleTag::Embedding, OpKind::Gemm, r, 21.0, c_z, 0);
        self.gemm(ModuleTag::Embedding, OpKind::Gemm, r * r, 65.0, c_z, 0);
        self.elementwise(ModuleTag::Embedding, s * r * c_m, 2);
        self.elementwise(ModuleTag::Embedding, r * r * c_z, 3);
        // Recycling embedder: two LNs + distogram embed.
        self.layer_norm_group(ModuleTag::Embedding, r, c_m);
        self.layer_norm_group(ModuleTag::Embedding, r * r, c_z);
        self.gemm(ModuleTag::Embedding, OpKind::Gemm, r * r, 15.0, c_z, 0);
        self.elementwise(ModuleTag::Embedding, r * r * c_z, 2);
        // Extra-MSA embed.
        self.gemm(
            ModuleTag::Embedding,
            OpKind::Gemm,
            cfg.n_extra_seq as f64 * r,
            cfg.extra_msa_feat_dim() as f64,
            cfg.c_e as f64,
            0,
        );
        // Host-to-device feature copies.
        self.memop(
            ModuleTag::Embedding,
            (s * cfg.msa_feat_dim() as f64 + cfg.n_extra_seq as f64 * cfg.extra_msa_feat_dim() as f64)
                * r
                * F32,
        );
    }

    /// The structure module — the paper's *serial module* (plus the data
    /// pipeline): attention over residues + coordinate updates per layer.
    fn structure(&mut self, cfg: &ModelConfig) {
        let r = cfg.n_res as f64;
        let c_s = cfg.c_s as f64;
        let h = cfg.pair_heads.max(1) as f64;
        self.layer_norm_group(ModuleTag::Structure, r, cfg.c_m as f64);
        self.gemm(ModuleTag::Structure, OpKind::Gemm, r, cfg.c_m as f64, c_s, 0);
        self.layer_norm_group(ModuleTag::Structure, r * r, cfg.c_z as f64);
        self.gemm(ModuleTag::Structure, OpKind::Gemm, r * r, cfg.c_z as f64, h, 0);
        for _ in 0..cfg.structure_layers {
            // Distance bias computation.
            self.elementwise(ModuleTag::Structure, r * r * 3.0, 3);
            self.layer_norm_group(ModuleTag::Structure, r, c_s);
            // IPA-style attention: small problem — this is why the module
            // does not scale (s_q = r only, tiny parallelism).
            self.attention(ModuleTag::Structure, cfg, 1.0, r, r, c_s, h, c_s / h, true);
            self.transition(ModuleTag::Structure, r, c_s, 2.0);
            self.gemm(ModuleTag::Structure, OpKind::Gemm, r, c_s, 3.0, 0);
            self.elementwise(ModuleTag::Structure, r * 3.0, 1);
        }
    }

    fn heads(&mut self, cfg: &ModelConfig) {
        let r = cfg.n_res as f64;
        self.gemm(ModuleTag::Heads, OpKind::Gemm, r * r, cfg.c_z as f64, 15.0, 0);
        self.gemm(
            ModuleTag::Heads,
            OpKind::Gemm,
            cfg.n_seq as f64 * r,
            cfg.c_m as f64,
            21.0,
            0,
        );
        self.elementwise(ModuleTag::Heads, r * r * 15.0, 4); // softmax-ish + loss glue
        self.elementwise(ModuleTag::Heads, r * r, 4); // distance loss chain
    }

    // ------------------------------------------------------------------
    // Backward expansion
    // ------------------------------------------------------------------

    /// Appends the backward pass for `fwd_ops`: each GEMM spawns two
    /// backward GEMMs (dX and dW); LN groups get a 4-kernel backward with
    /// ~1.5× traffic; softmax/elementwise get one same-size kernel each;
    /// memops replay.
    fn append_backward(&mut self, fwd_ops: &[OpNode]) {
        let mut bwd: Vec<OpNode> = Vec::new();
        for op in fwd_ops.iter().rev() {
            match op.kind {
                OpKind::Gemm | OpKind::ProjectionGemm | OpKind::AttentionGemm => {
                    for suffix in ["_dgrad", "_wgrad"] {
                        let mut k = op.kernel.clone();
                        k.name = format!("{}{suffix}", op.kernel.name);
                        bwd.push(OpNode::new(k, op.module, op.kind, op.fuse_group));
                    }
                }
                OpKind::LayerNorm => {
                    let mut k = op.kernel.clone();
                    k.name = format!("{}_bwd", op.kernel.name);
                    k.bytes *= 1.5;
                    bwd.push(OpNode::new(k, op.module, op.kind, op.fuse_group));
                }
                OpKind::Softmax
                | OpKind::AttentionElementwise
                | OpKind::Elementwise
                | OpKind::Reduction => {
                    let mut k = op.kernel.clone();
                    k.name = format!("{}_bwd", op.kernel.name);
                    bwd.push(OpNode::new(k, op.module, op.kind, op.fuse_group));
                }
                OpKind::MemOp => {
                    bwd.push(op.clone());
                }
                OpKind::AdamUpdate | OpKind::SwaUpdate | OpKind::GradClip | OpKind::Fused => {}
            }
        }
        self.ops.extend(bwd);
    }

    // ------------------------------------------------------------------
    // Optimizer expansion
    // ------------------------------------------------------------------

    /// Per-tensor optimizer kernel storm: Adam (4 kernels/tensor), SWA (2),
    /// gradient clipping (2: partial norm + scale) — the paper's 15% of
    /// step time at <10% efficiency.
    fn optimizer(&mut self, _cfg: &ModelConfig) {
        let tensors = self.param_tensors;
        let avg_elems = self.param_elements / tensors as f64;
        let group_adam = self.group();
        let group_swa = self.group();
        let group_clip = self.group();
        for _ in 0..tensors {
            // Gradient zeroing and the clip concat copy (the paper: "The
            // concatenation and scaling operation each launches numerous
            // CUDA kernels for every gradient tensors").
            self.push(
                Kernel::memop("memset_zero_grad", avg_elems * F32),
                ModuleTag::Optimizer,
                OpKind::MemOp,
                0,
            );
            self.push(
                Kernel::memop("copy_clip_concat", 2.0 * avg_elems * F32),
                ModuleTag::Optimizer,
                OpKind::MemOp,
                group_clip,
            );
            // Gradient clipping: per-tensor norm, then per-tensor scale.
            for name in ["clip_norm", "clip_scale"] {
                self.push(
                    Kernel::memory(name, 2.0 * avg_elems * F32, 8)
                        .with_efficiency(eff::CLIP_NAIVE),
                    ModuleTag::Optimizer,
                    OpKind::GradClip,
                    group_clip,
                );
            }
            // Adam: m update, v update, bias-corrected update, apply.
            for name in ["adam_m", "adam_v", "adam_update", "adam_apply"] {
                self.push(
                    Kernel::memory(name, 3.0 * avg_elems * F32, 8)
                        .with_efficiency(eff::ADAM_NAIVE),
                    ModuleTag::Optimizer,
                    OpKind::AdamUpdate,
                    group_adam,
                );
            }
            // SWA: read param + average, write average.
            for name in ["swa_read_mul", "swa_write"] {
                self.push(
                    Kernel::memory(name, 3.0 * avg_elems * F32, 8)
                        .with_efficiency(eff::SWA_NAIVE),
                    ModuleTag::Optimizer,
                    OpKind::SwaUpdate,
                    group_swa,
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Small push helpers
    // ------------------------------------------------------------------

    fn push(&mut self, kernel: Kernel, module: ModuleTag, kind: OpKind, group: u64) {
        self.ops.push(OpNode::new(kernel, module, kind, group));
    }

    /// `[rows, k] @ [k, n]` GEMM with bias-free sizing.
    fn gemm(&mut self, module: ModuleTag, kind: OpKind, rows: f64, k: f64, n: f64, group: u64) {
        let flops = 2.0 * rows * k * n;
        let bytes = (rows * k + k * n + rows * n) * F32;
        let par = (rows / 32.0).max(1.0) as usize;
        self.push(
            Kernel::math("gemm", flops, bytes, par).with_efficiency(eff::GEMM),
            module,
            kind,
            group,
        );
    }

    /// Batched GEMM: `batch` × `[m, k] @ [k, n]`.
    fn gemm_batched(&mut self, module: ModuleTag, batch: f64, m: f64, k: f64, n: f64) {
        let flops = 2.0 * batch * m * k * n;
        let bytes = batch * (m * k + k * n + m * n) * F32;
        self.push(
            Kernel::math("gemm_batched", flops, bytes, (batch * m / 32.0).max(1.0) as usize)
                .with_efficiency(eff::GEMM),
            module,
            OpKind::Gemm,
            0,
        );
    }

    /// A run of `count` eager elementwise kernels over `elems` elements
    /// (bias adds, activations, residuals...). Consecutive ones share a
    /// fuse group for the torch.compile pass.
    fn elementwise(&mut self, module: ModuleTag, elems: f64, count: usize) {
        let group = self.group();
        // Framework glue: one broadcast/cast copy accompanies each run.
        self.push(
            sf_gpusim::Kernel::memop("cast_glue", 4096.0),
            module,
            OpKind::MemOp,
            0,
        );
        for _ in 0..count {
            self.push(
                Kernel::memory("elementwise", 2.0 * elems * F32, (elems / 1024.0).max(1.0) as usize)
                    .with_efficiency(eff::ELEMENTWISE),
                module,
                OpKind::Elementwise,
                group,
            );
        }
    }

    fn memop(&mut self, module: ModuleTag, bytes: f64) {
        self.push(
            Kernel::memop("permute_copy", 2.0 * bytes),
            module,
            OpKind::MemOp,
            0,
        );
    }
}

/// Estimates the number of distinct parameter tensors ("over four thousand
/// gradient tensors" in the paper).
pub fn estimate_param_tensors(cfg: &ModelConfig) -> usize {
    // ~70 tensors per Evoformer block (weights, biases, LN affines across 9
    // modules), plus embedders/structure/heads.
    let blocks =
        cfg.evoformer_blocks + cfg.extra_msa_blocks + cfg.template_blocks * cfg.n_templates;
    blocks * 70 + cfg.structure_layers * 20 + 60
}

/// Bytes of m + z activations for one Evoformer block at full precision
/// (drives DAP all-gather volume).
pub fn block_activation_bytes(cfg: &ModelConfig) -> f64 {
    let m = cfg.n_seq as f64 * cfg.n_res as f64 * cfg.c_m as f64;
    let z = cfg.n_res as f64 * cfg.n_res as f64 * cfg.c_z as f64;
    (m + z) * F32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_graph_kernel_count_matches_table1_scale() {
        // The paper: "Each step of the AlphaFold training launches over
        // 150,000 operators" (Table 1 total: 150,887).
        let g = StepGraph::reference(&ModelConfig::paper(), 3);
        let n = g.ops.len();
        assert!(
            (100_000..220_000).contains(&n),
            "kernel count {n} not in Table-1 scale"
        );
    }

    #[test]
    fn param_tensor_count_over_four_thousand() {
        let t = estimate_param_tensors(&ModelConfig::paper());
        assert!((4000..7000).contains(&t), "param tensors {t}");
    }

    #[test]
    fn tiny_config_builds_fast_and_small() {
        let g = StepGraph::reference(&ModelConfig::tiny(), 0);
        assert!(g.ops.len() < 20_000);
        assert!(!g.ops.is_empty());
    }

    #[test]
    fn recycling_multiplies_forward_work() {
        let cfg = ModelConfig::paper();
        let g0 = StepGraph::reference(&cfg, 0);
        let g3 = StepGraph::reference(&cfg, 3);
        // Optimizer tail is fixed; three extra forwards add substantially.
        assert!(g3.ops.len() > g0.ops.len() + 30_000);
    }

    #[test]
    fn backward_contains_two_gemms_per_forward_gemm() {
        let cfg = ModelConfig::tiny();
        let g = StepGraph::reference(&cfg, 0);
        let fwd_gemms = g
            .ops
            .iter()
            .filter(|o| {
                matches!(o.kind, OpKind::Gemm | OpKind::ProjectionGemm | OpKind::AttentionGemm)
                    && !o.kernel.name.ends_with("grad")
            })
            .count();
        let bwd_gemms = g
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o.kind,
                    OpKind::Gemm | OpKind::ProjectionGemm | OpKind::AttentionGemm
                ) && o.kernel.name.ends_with("grad")
            })
            .count();
        assert_eq!(bwd_gemms, 2 * fwd_gemms);
    }

    #[test]
    fn checkpointing_adds_recompute_work() {
        let cfg = ModelConfig::paper();
        let plain = StepGraph::reference(&cfg, 1);
        let ckpt = StepGraph::reference_checkpointed(&cfg, 1);
        assert!(ckpt.ops.len() > plain.ops.len() + 10_000);
        let bytes = |g: &StepGraph| g.ops.iter().map(|o| o.kernel.bytes).sum::<f64>();
        assert!(bytes(&ckpt) > 1.15 * bytes(&plain));
    }

    #[test]
    fn block_activation_bytes_paper_scale() {
        // m: 128x256x256 f32 = 33.5 MB, z: 256x256x128 f32 = 33.5 MB.
        let b = block_activation_bytes(&ModelConfig::paper());
        assert!((60e6..80e6).contains(&b), "bytes {b}");
    }
}
