//! The Figure-3 decomposition: attribute the gap between DAP-n's actual
//! step time and the theoretical optimum to its root causes by subtracting
//! idealized configurations, exactly as the paper does ("we ablated the
//! contribution from each potential factor by subtracting the measured step
//! time with the corresponding theoretically optimal time").

use crate::sim::{ClusterConfig, ClusterSim};
use crate::straggler::StragglerModel;
use serde::{Deserialize, Serialize};
use sf_gpusim::CpuModel;
use sf_opgraph::builder::StepGraph;
use sf_opgraph::dap::shard;
use sf_opgraph::ops::ModuleTag;
use sf_opgraph::profile::step_time;

/// Seconds of per-step time attributed to each scalability barrier at a
/// given DAP degree (the bars of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityBreakdown {
    /// DAP degree.
    pub dap: usize,
    /// Actual mean step time, seconds.
    pub actual_s: f64,
    /// Theoretically optimal step time (perfect n× scaling of the DAP-1
    /// GPU-busy time), seconds.
    pub ideal_s: f64,
    /// Exposed kernel-launch/CPU time (eliminated by CUDA graphs).
    pub cpu_overhead_s: f64,
    /// Serial modules (structure module) that DAP cannot shard.
    pub serial_modules_s: f64,
    /// Occupancy loss of DAP-shrunk kernels.
    pub kernel_scalability_s: f64,
    /// Balanced collective cost of DAP.
    pub comm_overhead_s: f64,
    /// Extra waiting caused by stragglers at synchronization points.
    pub imbalance_s: f64,
}

impl ScalabilityBreakdown {
    /// Computes the decomposition for `dap` on a `dp`-way job.
    pub fn compute(graph: &StepGraph, dp: usize, dap: usize) -> Self {
        let base_cfg = ClusterConfig::eos(dp, dap);
        let device = base_cfg.device.clone();

        // Actual: eager, stragglers on.
        let actual = ClusterSim::new(graph, base_cfg.clone()).mean_step_s(60);

        // (1) CPU overhead: eager vs CUDA-graph on the sharded graph.
        let sharded = shard(graph, dap);
        let eager = step_time(&sharded, &device, CpuModel::healthy(), false);
        let graphed = step_time(&sharded, &device, CpuModel::healthy(), true);
        let cpu_overhead_s = (eager.total_s - graphed.total_s).max(0.0);

        // (2) Serial modules: busy-time delta between the real sharding and
        // a hypothetical graph where even the serial modules shard.
        let all_sharded = shard_everything(graph, dap);
        let busy = |g: &StepGraph| step_time(g, &device, CpuModel::healthy(), true).gpu_busy_s;
        let serial_modules_s = (busy(&sharded) - busy(&all_sharded)).max(0.0);

        // (3) Kernel scalability: all-sharded busy time vs perfect 1/n of
        // the unsharded busy time (occupancy losses of small kernels).
        let full_busy = busy(graph);
        let ideal_s = full_busy / dap as f64;
        let kernel_scalability_s = (busy(&all_sharded) - ideal_s).max(0.0);

        // (4) Communication overhead: the balanced DAP collective cost.
        let mut quiet_cfg = base_cfg.clone();
        quiet_cfg.straggler = StragglerModel::none();
        let quiet_sim = ClusterSim::new(graph, quiet_cfg);
        let comm_overhead_s = quiet_sim.dap_comm_s() + quiet_sim.dp_comm_exposed_s();

        // (5) Imbalance: actual minus the same job with global
        // synchronization (no stragglers) — the paper's estimation method.
        let quiet_total = quiet_sim.mean_step_s(60);
        let imbalance_s = (actual - quiet_total).max(0.0);

        ScalabilityBreakdown {
            dap,
            actual_s: actual,
            ideal_s,
            cpu_overhead_s,
            serial_modules_s,
            kernel_scalability_s,
            comm_overhead_s,
            imbalance_s,
        }
    }

    /// Sum of attributed components.
    pub fn attributed_s(&self) -> f64 {
        self.cpu_overhead_s
            + self.serial_modules_s
            + self.kernel_scalability_s
            + self.comm_overhead_s
            + self.imbalance_s
    }

    /// Gap between actual and ideal.
    pub fn gap_s(&self) -> f64 {
        (self.actual_s - self.ideal_s).max(0.0)
    }
}

/// Hypothetical sharding of *everything* including serial modules — the
/// counterfactual used to isolate their contribution.
fn shard_everything(graph: &StepGraph, n: usize) -> StepGraph {
    let mut out = graph.clone();
    for op in &mut out.ops {
        if op.module != ModuleTag::Optimizer {
            op.kernel = op.kernel.shard(n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_model::ModelConfig;

    fn graph() -> StepGraph {
        StepGraph::reference(&ModelConfig::paper(), 1)
    }

    #[test]
    fn components_are_nonnegative_and_bounded() {
        let g = graph();
        for dap in [2, 4, 8] {
            let b = ScalabilityBreakdown::compute(&g, 128, dap);
            assert!(b.actual_s > b.ideal_s, "dap {dap}");
            for v in [
                b.cpu_overhead_s,
                b.serial_modules_s,
                b.kernel_scalability_s,
                b.comm_overhead_s,
                b.imbalance_s,
            ] {
                assert!(v >= 0.0);
                assert!(v < b.actual_s);
            }
        }
    }

    #[test]
    fn imbalance_grows_with_dap_scale_relative() {
        // Figure 3: at larger DAP the imbalance share becomes substantial.
        let g = graph();
        let b2 = ScalabilityBreakdown::compute(&g, 128, 2);
        let b8 = ScalabilityBreakdown::compute(&g, 128, 8);
        let share = |b: &ScalabilityBreakdown| b.imbalance_s / b.actual_s;
        assert!(
            share(&b8) > share(&b2),
            "imbalance share dap8 {:.3} vs dap2 {:.3}",
            share(&b8),
            share(&b2)
        );
    }

    #[test]
    fn cpu_overhead_share_significant_at_small_dap() {
        let g = graph();
        let b2 = ScalabilityBreakdown::compute(&g, 128, 2);
        assert!(
            b2.cpu_overhead_s + b2.serial_modules_s > 0.1 * b2.gap_s(),
            "cpu {:.3} serial {:.3} gap {:.3}",
            b2.cpu_overhead_s,
            b2.serial_modules_s,
            b2.gap_s()
        );
    }

    #[test]
    fn baseline_dap_speedups_match_paper_band() {
        // Paper §3.1: DAP-2 1.42x, DAP-4 1.57x, DAP-8 no further gain.
        let g = graph();
        let t1 = ClusterSim::new(&g, ClusterConfig::eos(128, 1)).mean_step_s(40);
        let t2 = ClusterSim::new(&g, ClusterConfig::eos(128, 2)).mean_step_s(40);
        let t4 = ClusterSim::new(&g, ClusterConfig::eos(128, 4)).mean_step_s(40);
        let t8 = ClusterSim::new(&g, ClusterConfig::eos(128, 8)).mean_step_s(40);
        let (s2, s4, s8) = (t1 / t2, t1 / t4, t1 / t8);
        assert!((1.1..2.2).contains(&s2), "DAP-2 speedup {s2:.2}");
        assert!(s4 > s2, "DAP-4 {s4:.2} <= DAP-2 {s2:.2}");
        assert!((1.2..2.6).contains(&s4), "DAP-4 speedup {s4:.2}");
        // DAP-8 plateaus: within 25% of DAP-4.
        assert!(
            (s8 - s4).abs() / s4 < 0.35,
            "DAP-8 {s8:.2} should plateau near DAP-4 {s4:.2}"
        );
    }
}
