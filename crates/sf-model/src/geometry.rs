//! Rigid-body geometry: quaternions, rotations, and residue frames.
//!
//! AlphaFold represents each residue's backbone as a rigid transform
//! (rotation + translation). These utilities implement that algebra as plain
//! `f32` math (outside the autograd tape): they are used by the synthetic
//! data generator, the lDDT metric, and structure-module tests. The
//! trainable structure module itself refines coordinates directly (see
//! [`crate::structure`] for the documented simplification).

use sf_tensor::Tensor;

/// A unit quaternion `(w, x, y, z)` representing a 3-D rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f32,
    /// Vector part x.
    pub x: f32,
    /// Vector part y.
    pub y: f32,
    /// Vector part z.
    pub z: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::identity()
    }
}

impl Quat {
    /// The identity rotation.
    pub fn identity() -> Self {
        Quat { w: 1.0, x: 0.0, y: 0.0, z: 0.0 }
    }

    /// Rotation of `angle` radians about a (not necessarily unit) axis.
    pub fn from_axis_angle(axis: [f32; 3], angle: f32) -> Self {
        let n = (axis[0] * axis[0] + axis[1] * axis[1] + axis[2] * axis[2]).sqrt();
        if n == 0.0 {
            return Quat::identity();
        }
        let (s, c) = ((angle / 2.0).sin(), (angle / 2.0).cos());
        Quat {
            w: c,
            x: axis[0] / n * s,
            y: axis[1] / n * s,
            z: axis[2] / n * s,
        }
    }

    /// Hamilton product `self * other` (apply `other` first).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Quat) -> Quat {
        Quat {
            w: self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            x: self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            y: self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            z: self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        }
    }

    /// The inverse rotation (conjugate, assuming unit norm).
    pub fn conjugate(self) -> Quat {
        Quat { w: self.w, x: -self.x, y: -self.y, z: -self.z }
    }

    /// Quaternion norm.
    pub fn norm(self) -> f32 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalized (unit) quaternion.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n == 0.0 {
            return Quat::identity();
        }
        Quat { w: self.w / n, x: self.x / n, y: self.y / n, z: self.z / n }
    }

    /// Rotates a point.
    pub fn rotate(self, p: [f32; 3]) -> [f32; 3] {
        let m = self.to_matrix();
        [
            m[0][0] * p[0] + m[0][1] * p[1] + m[0][2] * p[2],
            m[1][0] * p[0] + m[1][1] * p[1] + m[1][2] * p[2],
            m[2][0] * p[0] + m[2][1] * p[1] + m[2][2] * p[2],
        ]
    }

    /// The equivalent 3×3 rotation matrix.
    pub fn to_matrix(self) -> [[f32; 3]; 3] {
        let Quat { w, x, y, z } = self.normalized();
        [
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ]
    }
}

/// A rigid transform: rotation then translation (`x ↦ R x + t`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rigid {
    /// Rotation component.
    pub rot: Quat,
    /// Translation component.
    pub trans: [f32; 3],
}

impl Rigid {
    /// The identity transform.
    pub fn identity() -> Self {
        Rigid::default()
    }

    /// Applies the transform to a point.
    pub fn apply(self, p: [f32; 3]) -> [f32; 3] {
        let r = self.rot.rotate(p);
        [r[0] + self.trans[0], r[1] + self.trans[1], r[2] + self.trans[2]]
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(self, other: Rigid) -> Rigid {
        let t = self.rot.rotate(other.trans);
        Rigid {
            rot: self.rot.mul(other.rot).normalized(),
            trans: [
                t[0] + self.trans[0],
                t[1] + self.trans[1],
                t[2] + self.trans[2],
            ],
        }
    }

    /// The inverse transform.
    pub fn inverse(self) -> Rigid {
        let rinv = self.rot.conjugate();
        let t = rinv.rotate(self.trans);
        Rigid { rot: rinv, trans: [-t[0], -t[1], -t[2]] }
    }
}

/// Applies a rigid transform to every row of an `[n, 3]` coordinate tensor.
///
/// # Panics
///
/// Panics if `coords` is not `[n, 3]`.
pub fn transform_coords(r: Rigid, coords: &Tensor) -> Tensor {
    assert_eq!(coords.dims().len(), 2);
    assert_eq!(coords.dims()[1], 3);
    let mut out = coords.clone();
    for row in out.data_mut().chunks_mut(3) {
        let p = r.apply([row[0], row[1], row[2]]);
        row.copy_from_slice(&p);
    }
    out
}

/// Pairwise Euclidean distance matrix of `[n, 3]` coordinates → `[n, n]`.
///
/// # Panics
///
/// Panics if `coords` is not `[n, 3]`.
pub fn distance_matrix(coords: &Tensor) -> Tensor {
    assert_eq!(coords.dims().len(), 2);
    assert_eq!(coords.dims()[1], 3);
    let n = coords.dims()[0];
    let d = coords.data();
    let mut out = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = d[i * 3] - d[j * 3];
            let dy = d[i * 3 + 1] - d[j * 3 + 1];
            let dz = d[i * 3 + 2] - d[j * 3 + 2];
            let dist = (dx * dx + dy * dy + dz * dz).sqrt();
            out.data_mut()[i * n + j] = dist;
            out.data_mut()[j * n + i] = dist;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    fn close3(a: [f32; 3], b: [f32; 3], tol: f32) -> bool {
        a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn quat_identity_rotation() {
        let p = [1.0, 2.0, 3.0];
        assert!(close3(Quat::identity().rotate(p), p, 1e-6));
    }

    #[test]
    fn quat_quarter_turn_about_z() {
        let q = Quat::from_axis_angle([0.0, 0.0, 1.0], FRAC_PI_2);
        assert!(close3(q.rotate([1.0, 0.0, 0.0]), [0.0, 1.0, 0.0], 1e-5));
        assert!(close3(q.rotate([0.0, 1.0, 0.0]), [-1.0, 0.0, 0.0], 1e-5));
    }

    #[test]
    fn quat_composition_matches_sequential_rotation() {
        let q1 = Quat::from_axis_angle([1.0, 0.5, -0.2], 0.7);
        let q2 = Quat::from_axis_angle([-0.3, 1.0, 0.9], 1.9);
        let p = [0.4, -1.2, 2.2];
        let seq = q1.rotate(q2.rotate(p));
        let comp = q1.mul(q2).rotate(p);
        assert!(close3(seq, comp, 1e-5));
    }

    #[test]
    fn quat_conjugate_inverts() {
        let q = Quat::from_axis_angle([0.2, 0.4, 0.9], 2.1);
        let p = [3.0, -1.0, 0.5];
        assert!(close3(q.conjugate().rotate(q.rotate(p)), p, 1e-5));
    }

    #[test]
    fn rotation_matrix_is_orthonormal() {
        let m = Quat::from_axis_angle([1.0, 2.0, 3.0], 1.1).to_matrix();
        for i in 0..3 {
            for j in 0..3 {
                let dot: f32 = (0..3).map(|k| m[i][k] * m[j][k]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-5);
            }
        }
        // Determinant +1 (proper rotation).
        let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
        assert!((det - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rigid_compose_and_inverse() {
        let a = Rigid {
            rot: Quat::from_axis_angle([0.0, 1.0, 0.0], 0.8),
            trans: [1.0, -2.0, 0.5],
        };
        let b = Rigid {
            rot: Quat::from_axis_angle([1.0, 0.0, 1.0], PI / 3.0),
            trans: [-0.5, 0.3, 2.0],
        };
        let p = [0.7, 0.7, -0.7];
        assert!(close3(a.compose(b).apply(p), a.apply(b.apply(p)), 1e-4));
        assert!(close3(a.inverse().apply(a.apply(p)), p, 1e-4));
    }

    #[test]
    fn distance_matrix_properties() {
        let coords = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 4.0, 0.0],
            &[3, 3],
        )
        .unwrap();
        let d = distance_matrix(&coords);
        assert_eq!(d.at(&[0, 0]).unwrap(), 0.0);
        assert_eq!(d.at(&[0, 1]).unwrap(), 3.0);
        assert_eq!(d.at(&[0, 2]).unwrap(), 4.0);
        assert_eq!(d.at(&[1, 2]).unwrap(), 5.0);
        assert_eq!(d.at(&[2, 1]).unwrap(), 5.0);
    }

    #[test]
    fn distances_invariant_under_rigid_motion() {
        let coords = Tensor::randn(&[6, 3], 3).mul_scalar(5.0);
        let r = Rigid {
            rot: Quat::from_axis_angle([0.3, -0.5, 1.0], 2.4),
            trans: [10.0, -3.0, 7.0],
        };
        let moved = transform_coords(r, &coords);
        let d1 = distance_matrix(&coords);
        let d2 = distance_matrix(&moved);
        assert!(d1.allclose(&d2, 1e-3));
    }
}
