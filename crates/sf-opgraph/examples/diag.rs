use sf_opgraph::builder::StepGraph;
use sf_opgraph::profile::{step_time, ModuleProfile, Table1};
use sf_gpusim::{CpuModel, DeviceSpec};
use sf_model::ModelConfig;

fn main() {
    let g = StepGraph::reference(&ModelConfig::paper(), 3);
    println!("total ops: {}", g.ops.len());
    let dev = DeviceSpec::a100();
    let t = Table1::compute(&g, &dev, CpuModel::healthy());
    println!("{t:#?}");
    let p = ModuleProfile::compute(&g, &dev);
    println!("{p:#?}");
    let st = step_time(&g, &dev, CpuModel::healthy(), false);
    println!("A100 eager: {st:?}");
    let sh = step_time(&g, &DeviceSpec::h100(), CpuModel::healthy(), false);
    println!("H100 eager: {sh:?}");
    // count projection gemms
    let proj = g.ops.iter().filter(|o| matches!(o.kind, sf_opgraph::OpKind::ProjectionGemm)).count();
    println!("projection gemms: {proj}");
    let ew = g.ops.iter().filter(|o| matches!(o.kind, sf_opgraph::OpKind::Elementwise)).count();
    println!("elementwise: {ew}");
}
