//! Regenerates Figure 5: the blocking vs non-blocking pipeline timeline —
//! with real threads, using the paper's exact scenario (slow batch "b"
//! takes longer than a training step; batch "c" is ready first).

use sf_data::loader::{BlockingLoader, Dataset, LoaderConfig, NonBlockingPipeline};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Paper scenario, scaled 1 s → 20 ms: batches a/b/c/d with prep times
/// 2/7/2/2 "seconds" and training steps of 4 "seconds".
const SCALE_MS: u64 = 20;

struct PaperScenario;

impl Dataset for PaperScenario {
    type Item = char;

    fn len(&self) -> usize {
        4
    }

    fn prepare(&self, index: usize) -> char {
        let prep = [2u64, 7, 2, 2][index];
        std::thread::sleep(Duration::from_millis(prep * SCALE_MS));
        [b'a', b'b', b'c', b'd'][index] as char
    }
}

fn run(blocking: bool) -> (String, Duration) {
    let ds = Arc::new(PaperScenario);
    let order = vec![0, 1, 2, 3];
    let cfg = LoaderConfig::with_workers(2);
    let start = Instant::now();
    let mut yielded = String::new();
    let train = Duration::from_millis(4 * SCALE_MS);
    if blocking {
        for item in BlockingLoader::new(ds, order, cfg) {
            let (_, c) = item.expect("no faults in the paper scenario");
            yielded.push(c);
            std::thread::sleep(train);
        }
    } else {
        for item in NonBlockingPipeline::new(ds, order, cfg) {
            let (_, c) = item.expect("no faults in the paper scenario");
            yielded.push(c);
            std::thread::sleep(train);
        }
    }
    (yielded, start.elapsed())
}

fn main() {
    sf_bench::banner("Figure 5: blocking vs non-blocking data pipeline");
    println!("scenario: prep a=2 b=7 c=2 d=2, training step=4 (x{SCALE_MS} ms)");
    let (order_b, t_b) = run(true);
    let (order_nb, t_nb) = run(false);
    println!("(i)  PyTorch-style blocking : yields \"{order_b}\"  wall {:.0} ms", t_b.as_secs_f64() * 1000.0);
    println!("(ii) ScaleFold non-blocking : yields \"{order_nb}\"  wall {:.0} ms", t_nb.as_secs_f64() * 1000.0);
    println!();
    println!(
        "non-blocking saved {:.0} ms; the slow batch 'b' was deferred, not blocking",
        (t_b.saturating_sub(t_nb)).as_secs_f64() * 1000.0
    );
    assert_ne!(order_nb.find('b'), Some(1), "b should yield late");
}
