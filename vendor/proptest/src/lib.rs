//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`any`], [`Just`], `prop_oneof!`,
//! `collection::vec`, `array::uniform3`, and the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Inputs are drawn from a deterministic per-test RNG (seeded from the
//! test name and case index, overridable via `PROPTEST_SEED`). There is
//! **no shrinking**: a failing case panics with the regular assert
//! message. That trades minimal counterexamples for zero dependencies,
//! which is the right trade in a registry-less build environment.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng, Standard};

/// The RNG handed to strategies while generating one test case.
pub struct TestRng {
    inner: StdRng,
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives the cases of one `proptest!`-generated test.
pub struct TestRunner {
    cases: u32,
    base_seed: u64,
}

impl TestRunner {
    /// Builds a runner for the named test.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the test name keeps distinct tests on distinct
        // deterministic streams.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(|s| s ^ h)
            .unwrap_or(h);
        TestRunner {
            cases: config.cases,
            base_seed,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The deterministic RNG for case `i`.
    pub fn rng_for_case(&self, i: u32) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(
                self.base_seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
            ),
        }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

impl<T: Clone> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: SampleRange<T>,
{
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Clone> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Uniform choice between type-erased alternatives (see `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds from pre-boxed arms (used by the `prop_oneof!` macro).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].gen_value(rng)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes acceptable to [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSize {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSize for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy yielding `Vec`s of `element` with length drawn from
    /// `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies (`proptest::array::uniformN`).

    use super::{Strategy, TestRng};

    /// Strategy yielding `[V; N]` from one element strategy.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn gen_value(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.gen_value(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($fname:ident => $n:literal),*) => {$(
            /// Array strategy applying one element strategy per slot.
            pub fn $fname<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }

    uniform_fns!(uniform2 => 2, uniform3 => 3, uniform4 => 4);
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Boxes a strategy for `prop_oneof!`. A function rather than an `as`
/// cast so type inference flows from the arms to the common value type.
#[doc(hidden)]
pub fn __box_strategy<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    Box::new(strategy)
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::__box_strategy($arm)),+])
    };
}

/// Asserts inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` item macro: expands each
/// `#[test] fn name(bindings in strategies) { body }` into a `#[test]`
/// that runs the body over `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $pat = $crate::Strategy::gen_value(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRunner;

    fn dims() -> impl Strategy<Value = usize> {
        1usize..9
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (dims(), 0.0f64..1.0), s in any::<u64>()) {
            prop_assert!((1..9).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            let _ = s;
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(1u8..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1usize), 5usize..8, (2usize..3).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || (5..8).contains(&x) || x == 20, "{x}");
        }

        #[test]
        fn arrays(p in crate::array::uniform3(-1.0f32..1.0)) {
            prop_assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let runner = TestRunner::new(ProptestConfig::with_cases(4), "seed_test");
        let a: Vec<u64> = (0..4).map(|i| any::<u64>().gen_value(&mut runner.rng_for_case(i))).collect();
        let b: Vec<u64> = (0..4).map(|i| any::<u64>().gen_value(&mut runner.rng_for_case(i))).collect();
        assert_eq!(a, b);
    }
}
