//! Kernel benchmark baseline for the parallel CPU backend.
//!
//! Times the hot kernels (batched GEMM, LayerNorm, softmax, flash
//! attention, fused gated attention) at AlphaFold-like shapes in three
//! configurations:
//!
//! 1. **seed serial** — the reference kernels the repo started with
//!    ([`sf_tensor::ops::matmul::gemm_block`], `naive_forward`,
//!    a plain per-row softmax loop, `naive_attention`);
//! 2. **opt serial** — the register-tiled / fused kernels pinned to one
//!    thread (`sf_tensor::pool::set_num_threads(1)`);
//! 3. **parallel** — the same kernels at the requested thread count.
//!
//! Every timing takes the best of several iterations after a warmup run, so
//! the numbers are floor latencies, not averages polluted by allocator or
//! scheduler noise. Outputs are cross-checked against the references before
//! timing; a silent numerical regression fails the benchmark instead of
//! producing a fast-but-wrong number.
//!
//! The report serializes to JSON by hand (no serde_json in the tree) and is
//! written to `BENCH_kernels.json` by `scalefold bench-kernels` and the
//! `sf-bench` `kernels` binary.

use std::time::Instant;

use sf_tensor::ops::attention::{attention_fused, flash_attention, FLASH_TILE, MASK_NEG};
use sf_tensor::ops::layernorm::fused_forward;
use sf_tensor::ops::matmul::{gemm_block, matmul};
use sf_tensor::ops::softmax::softmax;
use sf_tensor::pool;
use sf_tensor::Tensor;

/// The seed repo's production LayerNorm: serial rows, scalar Welford
/// recurrence (loop-carried divide) for the statistics. Kept here verbatim
/// as the benchmark's "before" kernel.
fn seed_layer_norm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
    let inner = *x.dims().last().expect("rank >= 1");
    let mut out = x.clone();
    let (gd, bd) = (gamma.data(), beta.data());
    for row in out.data_mut().chunks_mut(inner) {
        let mut mean = 0.0f32;
        let mut m2 = 0.0f32;
        for (i, &v) in row.iter().enumerate() {
            let delta = v - mean;
            mean += delta / (i + 1) as f32;
            m2 += delta * (v - mean);
        }
        let var = m2 / inner as f32;
        let rstd = 1.0 / (var + eps).sqrt();
        for (v, (&g, &b)) in row.iter_mut().zip(gd.iter().zip(bd.iter())) {
            *v = (*v - mean) * rstd * g + b;
        }
    }
    out
}

/// The seed repo's softmax row kernel: serial max fold and a scalar
/// `f32::exp` (libm call) per element. Kept here verbatim as the
/// benchmark's "before" kernel — the production `softmax_row` now runs on
/// the 8-lane polynomial `vexp`.
fn seed_softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// The seed repo's online-softmax recurrence with scalar `f32::exp`. The
/// production `OnlineSoftmax` now uses the vectorized `vexp`, so the seed
/// attention keeps its own scalar copy to stay an honest baseline.
struct SeedOnlineSoftmax {
    max: f32,
    denom: f32,
}

impl SeedOnlineSoftmax {
    fn new() -> Self {
        SeedOnlineSoftmax { max: f32::NEG_INFINITY, denom: 0.0 }
    }

    fn fold_tile(&mut self, logits: &[f32], values: &[f32], acc: &mut [f32]) {
        let d = acc.len();
        let tile_max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let new_max = self.max.max(tile_max);
        if new_max == f32::NEG_INFINITY {
            return;
        }
        if self.max != new_max {
            let scale = if self.max == f32::NEG_INFINITY {
                0.0
            } else {
                (self.max - new_max).exp()
            };
            for a in acc.iter_mut() {
                *a *= scale;
            }
            self.denom *= scale;
        }
        for (j, &l) in logits.iter().enumerate() {
            let w = (l - new_max).exp();
            self.denom += w;
            let vrow = &values[j * d..(j + 1) * d];
            for (a, &v) in acc.iter_mut().zip(vrow.iter()) {
                *a += w * v;
            }
        }
        self.max = new_max;
    }

    fn finish(&self, acc: &mut [f32]) {
        if self.denom > 0.0 {
            let inv = 1.0 / self.denom;
            for a in acc.iter_mut() {
                *a *= inv;
            }
        }
    }
}

/// The seed repo's production attention: the serial flash kernel with a
/// scalar q·k dot product per logit (a serial FP chain per key). Kept here
/// verbatim as the benchmark's "before" kernel; bias handling is dropped to
/// the common `[H, S_q, S_k]`-broadcast case the bench exercises.
fn seed_flash_attention(q: &Tensor, k: &Tensor, v: &Tensor, bias: &Tensor, scale: f32) -> Tensor {
    let dims = q.dims();
    let (s_q, d) = (dims[dims.len() - 2], dims[dims.len() - 1]);
    let s_k = k.dims()[k.rank() - 2];
    let batch = q.len() / (s_q * d);
    let heads = bias.dims()[0];
    let mut out = Tensor::zeros(dims);
    let mut logits_tile = [0.0f32; FLASH_TILE];
    let (qd, kd, vd, bb) = (q.data(), k.data(), v.data(), bias.data());
    for b in 0..batch {
        let q_base = b * s_q * d;
        let kv_base = b * s_k * d;
        let bias_base = (b % heads) * s_q * s_k;
        for i in 0..s_q {
            let qrow = &qd[q_base + i * d..q_base + (i + 1) * d];
            let orow = &mut out.data_mut()[q_base + i * d..q_base + (i + 1) * d];
            let mut state = SeedOnlineSoftmax::new();
            let mut j0 = 0usize;
            while j0 < s_k {
                let j1 = (j0 + FLASH_TILE).min(s_k);
                for (t, j) in (j0..j1).enumerate() {
                    let krow = &kd[kv_base + j * d..kv_base + (j + 1) * d];
                    let mut dot = 0.0f32;
                    for (&qv, &kv) in qrow.iter().zip(krow.iter()) {
                        dot += qv * kv;
                    }
                    logits_tile[t] = dot * scale + bb[bias_base + i * s_k + j];
                }
                let vals = &vd[kv_base + j0 * d..kv_base + j1 * d];
                state.fold_tile(&logits_tile[..j1 - j0], vals, orow);
                j0 = j1;
            }
            state.finish(orow);
        }
    }
    out
}

/// Timings for one kernel at one shape, in milliseconds.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel name (`matmul_batched`, `layer_norm`, `softmax`, `attention`).
    pub name: &'static str,
    /// Human-readable shape description.
    pub shape: String,
    /// Best time of the seed (pre-optimization) serial reference kernel.
    pub seed_serial_ms: f64,
    /// Best time of the optimized kernel pinned to one thread.
    pub opt_serial_ms: f64,
    /// Best time of the optimized kernel at the report's thread count.
    pub parallel_ms: f64,
    /// Best time of the *composed* (unfused, current-primitives) op chain
    /// at the report's thread count — only for rows where a fused kernel
    /// replaces a multi-op chain (`attention_fused`). This is exactly the
    /// path the `--no-fused` escape hatch executes.
    pub composed_ms: Option<f64>,
}

impl KernelTiming {
    /// Speedup of the optimized serial kernel over the seed kernel.
    pub fn speedup_opt_vs_seed(&self) -> f64 {
        self.seed_serial_ms / self.opt_serial_ms
    }

    /// Speedup of the parallel kernel over the seed kernel.
    pub fn speedup_parallel_vs_seed(&self) -> f64 {
        self.seed_serial_ms / self.parallel_ms
    }

    /// Speedup of the parallel kernel over its own one-thread run.
    pub fn speedup_parallel_vs_opt(&self) -> f64 {
        self.opt_serial_ms / self.parallel_ms
    }

    /// Speedup of the fused kernel over the composed op chain (rows with a
    /// `composed_ms` measurement only). Uses the *best* fused time across
    /// the serial and parallel runs: on hosts with fewer cores than the
    /// requested thread count the oversubscribed parallel run is pure
    /// scheduler noise, and a de-fusion regression shows up in both runs
    /// anyway.
    pub fn speedup_fused_vs_composed(&self) -> Option<f64> {
        self.composed_ms
            .map(|c| c / self.parallel_ms.min(self.opt_serial_ms))
    }
}

/// A full benchmark run: one [`KernelTiming`] per kernel.
#[derive(Debug, Clone)]
pub struct KernelBenchReport {
    /// Thread count used for the parallel column.
    pub threads: usize,
    /// Physical parallelism of the benchmarking host. When this is 1 the
    /// parallel column can only match the serial column — thread speedups
    /// need real cores.
    pub host_cores: usize,
    /// Per-kernel timings.
    pub timings: Vec<KernelTiming>,
}

impl KernelBenchReport {
    /// Renders the report as pretty-printed JSON (hand-rolled; the tree has
    /// no serde_json).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"benchmark\": \"scalefold bench-kernels\",\n");
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str("  \"kernels\": [\n");
        for (i, t) in self.timings.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", t.name));
            s.push_str(&format!("      \"shape\": \"{}\",\n", t.shape));
            s.push_str(&format!(
                "      \"seed_serial_ms\": {:.4},\n",
                t.seed_serial_ms
            ));
            s.push_str(&format!("      \"opt_serial_ms\": {:.4},\n", t.opt_serial_ms));
            s.push_str(&format!("      \"parallel_ms\": {:.4},\n", t.parallel_ms));
            if let (Some(c), Some(f)) = (t.composed_ms, t.speedup_fused_vs_composed()) {
                s.push_str(&format!("      \"composed_ms\": {c:.4},\n"));
                s.push_str(&format!("      \"speedup_fused_vs_composed\": {f:.2},\n"));
            }
            s.push_str(&format!(
                "      \"speedup_opt_vs_seed\": {:.2},\n",
                t.speedup_opt_vs_seed()
            ));
            s.push_str(&format!(
                "      \"speedup_parallel_vs_seed\": {:.2},\n",
                t.speedup_parallel_vs_seed()
            ));
            s.push_str(&format!(
                "      \"speedup_parallel_vs_opt\": {:.2}\n",
                t.speedup_parallel_vs_opt()
            ));
            s.push_str(if i + 1 == self.timings.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Renders a fixed-width text table for terminal output.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<16} {:<28} {:>12} {:>12} {:>12} {:>8} {:>8}\n",
            "kernel", "shape", "seed_ms", "serial_ms", "parallel_ms", "xSeed", "xSerial"
        ));
        for t in &self.timings {
            s.push_str(&format!(
                "{:<16} {:<28} {:>12.4} {:>12.4} {:>12.4} {:>8.2} {:>8.2}\n",
                t.name,
                t.shape,
                t.seed_serial_ms,
                t.opt_serial_ms,
                t.parallel_ms,
                t.speedup_parallel_vs_seed(),
                t.speedup_parallel_vs_opt()
            ));
            if let (Some(c), Some(f)) = (t.composed_ms, t.speedup_fused_vs_composed()) {
                s.push_str(&format!(
                    "{:<16} {:<28} {:>12} {:>12.4} {:>12} {:>8} {:>7.2}x\n",
                    "", "  vs composed chain", "", c, "", "fused", f
                ));
            }
        }
        s
    }

    /// CI guard against silent de-fusion: the vectorized softmax must beat
    /// the seed scalar path, and the fused attention kernel must not be
    /// slower than the composed (`--no-fused`) op chain it replaces.
    /// Thresholds are deliberately lenient (shared CI runners are noisy) —
    /// this catches *regressions to the unfused world*, not missed wins.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn check_fused(&self) -> Result<(), String> {
        let softmax = self
            .timings
            .iter()
            .find(|t| t.name == "softmax")
            .ok_or("no softmax row in report")?;
        if softmax.speedup_opt_vs_seed() < 1.2 {
            return Err(format!(
                "fused softmax regressed below the composed path: {:.4} ms vs seed {:.4} ms ({:.2}x < 1.2x)",
                softmax.opt_serial_ms,
                softmax.seed_serial_ms,
                softmax.speedup_opt_vs_seed()
            ));
        }
        let fused = self
            .timings
            .iter()
            .find(|t| t.name == "attention_fused")
            .ok_or("no attention_fused row in report")?;
        match fused.speedup_fused_vs_composed() {
            Some(r) if r < 0.9 => Err(format!(
                "fused attention regressed below the composed chain: {:.4} ms vs composed {:.4} ms ({r:.2}x < 0.9x)",
                fused.parallel_ms,
                fused.composed_ms.unwrap_or(f64::NAN)
            )),
            Some(_) => Ok(()),
            None => Err("attention_fused row has no composed_ms measurement".into()),
        }
    }
}

/// Times `f` (already warmed up once) and returns the best of `iters` runs
/// in milliseconds.
fn best_of<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f(); // Warmup: page in buffers, spin up pool workers.
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Benchmark scale: full AlphaFold-like shapes for the CLI/binary, tiny
/// shapes for smoke tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// AlphaFold-like shapes (the acceptance-criteria sizes).
    Full,
    /// Tiny shapes, for tests.
    Quick,
}

struct BenchShapes {
    iters: usize,
    /// Batched matmul: `[b, m, k] @ [b, k, n]`.
    mm: (usize, usize, usize, usize),
    /// LayerNorm / softmax over an MSA-like activation `[s, r, c]`.
    msa: (usize, usize, usize),
    /// Attention `q/k/v: [b, h, s, d]` with bias `[h, s, s]`.
    attn: (usize, usize, usize, usize),
}

impl BenchShapes {
    fn for_scale(scale: BenchScale) -> Self {
        match scale {
            // MSA row attention at 128 sequences x 256 residues is the
            // paper's hot loop; matmul is the issue's acceptance shape.
            BenchScale::Full => BenchShapes {
                iters: 5,
                mm: (8, 128, 64, 128),
                msa: (128, 256, 64),
                attn: (8, 8, 256, 32),
            },
            BenchScale::Quick => BenchShapes {
                iters: 2,
                mm: (2, 16, 8, 16),
                msa: (4, 8, 16),
                attn: (2, 2, 16, 8),
            },
        }
    }
}

/// Runs the benchmark at `threads` compute threads (0 = auto) and returns
/// the report. The global thread count is restored afterwards.
///
/// # Panics
///
/// Panics if an optimized kernel's output diverges from its serial
/// reference — a fast-but-wrong kernel must not produce a baseline.
pub fn run(threads: usize, scale: BenchScale) -> KernelBenchReport {
    run_mode(threads, scale, true)
}

/// [`run`] with the fused/composed switch exposed: `fused == false` times
/// the composed op chain in the `attention_fused` row's opt/parallel slots
/// instead of the fused kernel, mirroring the `--no-fused` escape hatch.
/// The `composed_ms` column is measured either way, so the two reports are
/// directly comparable.
///
/// # Panics
///
/// Panics if an optimized kernel's output diverges from its serial
/// reference — a fast-but-wrong kernel must not produce a baseline.
pub fn run_mode(threads: usize, scale: BenchScale, fused: bool) -> KernelBenchReport {
    let prev = pool::num_threads();
    if threads > 0 {
        pool::set_num_threads(threads);
    }
    let nthreads = pool::num_threads();
    let sh = BenchShapes::for_scale(scale);
    let iters = sh.iters;

    let mut timings = Vec::new();

    // --- Batched matmul -------------------------------------------------
    {
        let (b, m, k, n) = sh.mm;
        let a = Tensor::randn(&[b, m, k], 11);
        let bt = Tensor::randn(&[b, k, n], 12);
        let (ad, bd) = (a.data(), bt.data());

        // Cross-check first: the seed gemm_block loop and the tiled kernel
        // must agree to rounding.
        let mut seed_out = vec![0.0f32; b * m * n];
        for i in 0..b {
            gemm_block(
                &ad[i * m * k..(i + 1) * m * k],
                &bd[i * k * n..(i + 1) * k * n],
                &mut seed_out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        let opt = matmul(&a, &bt).expect("bench matmul");
        let seed_t = Tensor::from_vec(seed_out, &[b, m, n]).expect("bench seed shape");
        assert!(
            opt.allclose(&seed_t, 1e-4),
            "tiled matmul diverged from gemm_block reference"
        );

        let seed_serial_ms = best_of(iters, || {
            let mut c = vec![0.0f32; b * m * n];
            for i in 0..b {
                gemm_block(
                    &ad[i * m * k..(i + 1) * m * k],
                    &bd[i * k * n..(i + 1) * k * n],
                    &mut c[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            std::hint::black_box(&c);
        });
        pool::set_num_threads(1);
        let opt_serial_ms = best_of(iters, || {
            std::hint::black_box(matmul(&a, &bt).expect("bench matmul"));
        });
        pool::set_num_threads(nthreads);
        let parallel_ms = best_of(iters, || {
            std::hint::black_box(matmul(&a, &bt).expect("bench matmul"));
        });
        timings.push(KernelTiming {
            name: "matmul_batched",
            shape: format!("[{b},{m},{k}] @ [{b},{k},{n}]"),
            seed_serial_ms,
            opt_serial_ms,
            parallel_ms,
            composed_ms: None,
        });
    }

    // --- LayerNorm ------------------------------------------------------
    {
        let (s, r, c) = sh.msa;
        let x = Tensor::randn(&[s, r, c], 21);
        let gamma = Tensor::ones(&[c]);
        let beta = Tensor::zeros(&[c]);
        let eps = 1e-5;

        let seed_y = seed_layer_norm(&x, &gamma, &beta, eps);
        let (opt_y, _) = fused_forward(&x, &gamma, &beta, eps).expect("bench ln");
        assert!(
            opt_y.allclose(&seed_y, 1e-4),
            "fused layernorm diverged from the seed Welford kernel"
        );

        let seed_serial_ms = best_of(iters, || {
            std::hint::black_box(seed_layer_norm(&x, &gamma, &beta, eps));
        });
        pool::set_num_threads(1);
        let opt_serial_ms = best_of(iters, || {
            std::hint::black_box(fused_forward(&x, &gamma, &beta, eps).expect("bench ln"));
        });
        pool::set_num_threads(nthreads);
        let parallel_ms = best_of(iters, || {
            std::hint::black_box(fused_forward(&x, &gamma, &beta, eps).expect("bench ln"));
        });
        timings.push(KernelTiming {
            name: "layer_norm",
            shape: format!("[{s},{r},{c}]"),
            seed_serial_ms,
            opt_serial_ms,
            parallel_ms,
            composed_ms: None,
        });
    }

    // --- Softmax --------------------------------------------------------
    {
        let (s, r, c) = sh.msa;
        // Attention-logit layout: one [r, r] score matrix per (sequence,
        // head); c plays the head count here to keep sizes MSA-like.
        let x = Tensor::randn(&[s, r, r.min(c) * 4], 31);
        let inner = *x.dims().last().expect("rank 3");
        let rows = x.len() / inner;

        let seed_softmax = |x: &Tensor| {
            let mut y = x.clone();
            for row in y.data_mut().chunks_mut(inner) {
                seed_softmax_row(row);
            }
            y
        };
        let seed_y = seed_softmax(&x);
        let opt_y = softmax(&x).expect("bench softmax");
        assert!(
            opt_y.allclose(&seed_y, 1e-5),
            "parallel softmax diverged from row-loop reference"
        );

        let seed_serial_ms = best_of(iters, || {
            std::hint::black_box(seed_softmax(&x));
        });
        pool::set_num_threads(1);
        let opt_serial_ms = best_of(iters, || {
            std::hint::black_box(softmax(&x).expect("bench softmax"));
        });
        pool::set_num_threads(nthreads);
        let parallel_ms = best_of(iters, || {
            std::hint::black_box(softmax(&x).expect("bench softmax"));
        });
        timings.push(KernelTiming {
            name: "softmax",
            shape: format!("[{},{},{}] ({} rows)", s, r, inner, rows),
            seed_serial_ms,
            opt_serial_ms,
            parallel_ms,
            composed_ms: None,
        });
    }

    // --- Fused attention ------------------------------------------------
    {
        let (b, h, s, d) = sh.attn;
        let q = Tensor::randn(&[b, h, s, d], 41);
        let k = Tensor::randn(&[b, h, s, d], 42);
        let v = Tensor::randn(&[b, h, s, d], 43);
        let bias = Tensor::randn(&[h, s, s], 44);
        let scale = 1.0 / (d as f32).sqrt();

        let seed_y = seed_flash_attention(&q, &k, &v, &bias, scale);
        let opt_y = flash_attention(&q, &k, &v, Some(&bias), scale).expect("bench attn");
        assert!(
            opt_y.allclose(&seed_y, 1e-4),
            "flash attention diverged from the seed serial kernel"
        );

        let seed_serial_ms = best_of(iters, || {
            std::hint::black_box(seed_flash_attention(&q, &k, &v, &bias, scale));
        });
        pool::set_num_threads(1);
        let opt_serial_ms = best_of(iters, || {
            std::hint::black_box(
                flash_attention(&q, &k, &v, Some(&bias), scale).expect("bench attn"),
            );
        });
        pool::set_num_threads(nthreads);
        let parallel_ms = best_of(iters, || {
            std::hint::black_box(
                flash_attention(&q, &k, &v, Some(&bias), scale).expect("bench attn"),
            );
        });
        timings.push(KernelTiming {
            name: "attention",
            shape: format!("q/k/v [{b},{h},{s},{d}] + bias [{h},{s},{s}]"),
            seed_serial_ms,
            opt_serial_ms,
            parallel_ms,
            composed_ms: None,
        });
    }

    // --- Fused gated attention ------------------------------------------
    // The full evoformer head: scale + pair bias + mask penalty + softmax +
    // sigmoid gate, in one pass over the tiles. Three contenders:
    //   seed      — materialized bias+mask add, seed flash kernel (scalar
    //               exp), separate scalar sigmoid-gate multiply;
    //   composed  — the same chain on today's primitives (what `--no-fused`
    //               executes), timed into `composed_ms`;
    //   fused     — `attention_fused`, logits and gate never materialized.
    {
        let (b, h, s, d) = sh.attn;
        let q = Tensor::randn(&[b, h, s, d], 51);
        let k = Tensor::randn(&[b, h, s, d], 52);
        let v = Tensor::randn(&[b, h, s, d], 53);
        let bias = Tensor::randn(&[h, s, s], 54);
        let gate = Tensor::randn(&[b, h, s, d], 55);
        // Pair mask zeroing the last eighth of the keys, as padded crops do.
        let mask = {
            let mut m = Tensor::ones(&[h, s, s]);
            for row in m.data_mut().chunks_mut(s) {
                for mv in row[s - s / 8..].iter_mut() {
                    *mv = 0.0;
                }
            }
            m
        };
        let scale = 1.0 / (d as f32).sqrt();

        let seed_chain = || {
            let biased = {
                let mut t = bias.clone();
                for (bv, &mv) in t.data_mut().iter_mut().zip(mask.data().iter()) {
                    if mv == 0.0 {
                        *bv += MASK_NEG;
                    }
                }
                t
            };
            let att = seed_flash_attention(&q, &k, &v, &biased, scale);
            let mut y = att;
            for (yv, &gv) in y.data_mut().iter_mut().zip(gate.data().iter()) {
                *yv /= 1.0 + (-gv).exp();
            }
            y
        };
        let composed_chain = || {
            let penalty = mask.map(|mv| if mv == 0.0 { MASK_NEG } else { 0.0 });
            let biased = bias.add(&penalty).expect("bench bias+mask");
            let att = flash_attention(&q, &k, &v, Some(&biased), scale).expect("bench attn");
            gate.sigmoid().mul(&att).expect("bench gate")
        };
        let fused_chain = || {
            attention_fused(&q, &k, &v, Some(&bias), Some(&mask), Some(&gate), scale)
                .expect("bench fused attn")
                .out
        };

        let seed_y = seed_chain();
        let composed_y = composed_chain();
        let fused_y = fused_chain();
        assert!(
            composed_y.allclose(&seed_y, 1e-4),
            "composed gated attention diverged from the seed chain"
        );
        assert!(
            fused_y.allclose(&composed_y, 1e-4),
            "fused gated attention diverged from the composed chain"
        );

        let seed_serial_ms = best_of(iters, || {
            std::hint::black_box(seed_chain());
        });
        pool::set_num_threads(1);
        let opt_serial_ms = best_of(iters, || {
            if fused {
                std::hint::black_box(fused_chain());
            } else {
                std::hint::black_box(composed_chain());
            }
        });
        pool::set_num_threads(nthreads);
        let parallel_ms = best_of(iters, || {
            if fused {
                std::hint::black_box(fused_chain());
            } else {
                std::hint::black_box(composed_chain());
            }
        });
        let composed_ms = best_of(iters, || {
            std::hint::black_box(composed_chain());
        });
        timings.push(KernelTiming {
            name: "attention_fused",
            shape: format!("q/k/v/g [{b},{h},{s},{d}] + bias/mask [{h},{s},{s}]"),
            seed_serial_ms,
            opt_serial_ms,
            parallel_ms,
            composed_ms: Some(composed_ms),
        });
    }

    pool::set_num_threads(prev);
    KernelBenchReport {
        threads: nthreads,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_sane_report() {
        let report = run(2, BenchScale::Quick);
        assert_eq!(report.threads, 2);
        assert_eq!(report.timings.len(), 5);
        for t in &report.timings {
            assert!(t.seed_serial_ms.is_finite() && t.seed_serial_ms >= 0.0);
            assert!(t.opt_serial_ms.is_finite() && t.opt_serial_ms >= 0.0);
            assert!(t.parallel_ms.is_finite() && t.parallel_ms >= 0.0);
            assert!(t.speedup_parallel_vs_seed() > 0.0);
        }
        let names: Vec<_> = report.timings.iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            [
                "matmul_batched",
                "layer_norm",
                "softmax",
                "attention",
                "attention_fused"
            ]
        );
        let fused = report.timings.last().expect("fused row");
        assert!(fused.composed_ms.is_some());
        assert!(fused.speedup_fused_vs_composed().expect("ratio") > 0.0);
    }

    #[test]
    fn no_fused_mode_still_reports_composed_column() {
        let report = run_mode(1, BenchScale::Quick, false);
        let fused = report
            .timings
            .iter()
            .find(|t| t.name == "attention_fused")
            .expect("fused row");
        assert!(fused.composed_ms.is_some());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = KernelBenchReport {
            threads: 4,
            host_cores: 8,
            timings: vec![KernelTiming {
                name: "matmul_batched",
                shape: "[8,128,64] @ [8,64,128]".into(),
                seed_serial_ms: 2.0,
                opt_serial_ms: 1.0,
                parallel_ms: 0.5,
                composed_ms: Some(1.5),
            }],
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"speedup_parallel_vs_seed\": 4.00"));
        assert!(json.contains("\"speedup_parallel_vs_opt\": 2.00"));
        assert!(json.contains("\"composed_ms\": 1.5000"));
        assert!(json.contains("\"speedup_fused_vs_composed\": 3.00"));
        let table = report.to_table();
        assert!(table.contains("matmul_batched"));
    }
}
