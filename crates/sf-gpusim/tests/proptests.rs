//! Property tests for the GPU performance model: roofline laws, stream
//! accounting identities, graph-cache behaviour, and autotuner soundness.

use proptest::prelude::*;
use sf_gpusim::{
    autotune, CpuModel, CudaGraph, DeviceSpec, GraphCache, Kernel, KernelTemplate, Stream,
    TileConfig,
};

fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (1.0f64..1e12, 1.0f64..1e10, 1usize..10_000, 0.05f64..1.0).prop_map(
        |(flops, bytes, par, eff)| {
            Kernel::math("k", flops, bytes, par).with_efficiency(eff)
        },
    )
}

fn arb_kernels() -> impl Strategy<Value = Vec<Kernel>> {
    proptest::collection::vec(arb_kernel(), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Duration is positive and monotone in both FLOPs and bytes.
    #[test]
    fn roofline_monotone(k in arb_kernel(), scale in 1.1f64..10.0) {
        let dev = DeviceSpec::h100();
        let base = k.duration_s(&dev);
        prop_assert!(base > 0.0);
        let mut more_math = k.clone();
        more_math.flops *= scale;
        prop_assert!(more_math.duration_s(&dev) >= base);
        let mut more_bytes = k.clone();
        more_bytes.bytes *= scale;
        prop_assert!(more_bytes.duration_s(&dev) >= base);
    }

    /// Sharding never makes a single kernel slower.
    #[test]
    fn shard_never_slower(k in arb_kernel(), n in 1usize..16) {
        let dev = DeviceSpec::a100();
        prop_assert!(k.shard(n).duration_s(&dev) <= k.duration_s(&dev) + 1e-12);
    }

    /// Stream accounting identity: total = busy + exposed, all
    /// non-negative; graph mode never exceeds eager mode.
    #[test]
    fn stream_accounting(ks in arb_kernels(), slowdown in 1.0f64..8.0) {
        let s = Stream::new(DeviceSpec::h100(), CpuModel::contended(slowdown));
        let eager = s.run_eager(&ks);
        prop_assert!((eager.total_s - eager.gpu_busy_s - eager.cpu_exposed_s).abs() < 1e-9);
        prop_assert!(eager.cpu_exposed_s >= 0.0);
        let graph = s.run_graph(&ks);
        prop_assert!(graph.total_s <= eager.total_s + 1e-9);
        prop_assert!((graph.gpu_busy_s - eager.gpu_busy_s).abs() < 1e-9);
    }

    /// Sync points only ever add time to an eager run.
    #[test]
    fn syncs_never_speed_up(ks in arb_kernels(), sync_at in 0usize..40) {
        let s = Stream::new(DeviceSpec::a100(), CpuModel::healthy());
        let plain = s.run_eager(&ks).total_s;
        let synced = s.run_eager_with_syncs(&ks, &[sync_at.min(ks.len())]).total_s;
        prop_assert!(synced >= plain - 1e-12);
    }

    /// Graph-cache replay is never slower than its own capture, and hits
    /// accumulate correctly.
    #[test]
    fn graph_cache_behaviour(ks in arb_kernels(), replays in 1usize..5) {
        let s = Stream::new(DeviceSpec::h100(), CpuModel::healthy());
        let mut cache = GraphCache::new();
        let first = cache.run(&s, "key", &ks).total_s;
        for _ in 0..replays {
            let replay = cache.run(&s, "key", &ks).total_s;
            prop_assert!(replay <= first + 1e-9);
        }
        prop_assert_eq!(cache.stats().misses, 1);
        prop_assert_eq!(cache.stats().hits, replays);
        // Standalone capture cost >= replay cost.
        let g = CudaGraph::capture(&s, &ks);
        prop_assert!(g.capture_cost_s() >= g.replay(&s).total_s - 1e-9);
    }

    /// The autotuner never returns a config worse than the default, for
    /// arbitrary problem shapes, on either device.
    #[test]
    fn autotune_sound(rows in 1usize..100_000, cols in 1usize..1024) {
        for dev in [DeviceSpec::a100(), DeviceSpec::h100()] {
            let t = KernelTemplate::layer_norm(rows, cols, 8.0);
            let (best, tuned) = autotune(&t, &dev);
            let default = t.duration_s(TileConfig::default_config(), &dev);
            prop_assert!(tuned <= default + 1e-15, "{rows}x{cols} on {}", dev.name);
            prop_assert!(tuned > 0.0);
            // The chosen config reproduces the reported time.
            prop_assert!((t.duration_s(best, &dev) - tuned).abs() < 1e-15);
        }
    }
}
