//! Fused-vs-composed equivalence of the attention tape node.
//!
//! `Graph::attention_fused` (one kernel: scale + bias + mask penalty +
//! online softmax + sigmoid gate, backward from recomputed row stats) must
//! agree with the composed tape chain
//! `mul(sigmoid(gate), attention(q, k, v, bias + maskneg))` to ≤1e-5
//! relative — forward values AND every input gradient — for every on/off
//! combination of bias, mask, and gate, across random shapes.

use proptest::prelude::*;
use sf_autograd::{Graph, Var};
use sf_tensor::ops::attention::MASK_NEG;
use sf_tensor::Tensor;

const TOL: f32 = 1e-5;

struct Inputs {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    bias: Option<Tensor>,
    mask: Option<Tensor>,
    gate: Option<Tensor>,
    scale: f32,
    dy: Tensor,
}

fn make_inputs(
    (b, h, s, d): (usize, usize, usize, usize),
    seed: u64,
    with_bias: bool,
    with_mask: bool,
    with_gate: bool,
) -> Inputs {
    Inputs {
        q: Tensor::randn(&[b, h, s, d], seed),
        k: Tensor::randn(&[b, h, s, d], seed ^ 1),
        v: Tensor::randn(&[b, h, s, d], seed ^ 2),
        bias: with_bias.then(|| Tensor::randn(&[h, s, s], seed ^ 3)),
        // Every query row keeps at least one valid key (the masking
        // contract: padding queries are masked downstream). On a fully
        // masked row the additive MASK_NEG penalty absorbs the O(1) logits
        // into -3e4, and the two paths round that absorption differently —
        // there is no 1e-5 equivalence to test there.
        mask: with_mask.then(|| {
            let mut m = Tensor::randn(&[h, s, s], seed ^ 4).map(|x| if x > -0.8 { 1.0 } else { 0.0 });
            for (r, row) in m.data_mut().chunks_mut(s).enumerate() {
                if row.iter().all(|&x| x == 0.0) {
                    row[r % s] = 1.0;
                }
            }
            m
        }),
        gate: with_gate.then(|| Tensor::randn(&[b, h, s, d], seed ^ 5)),
        scale: 1.0 / (d as f32).sqrt(),
        dy: Tensor::randn(&[b, h, s, d], seed ^ 6),
    }
}

struct TapeResult {
    out: Tensor,
    dq: Tensor,
    dk: Tensor,
    dv: Tensor,
    dbias: Option<Tensor>,
    dgate: Option<Tensor>,
}

fn run_tape(inputs: &Inputs, fused: bool) -> TapeResult {
    let mut g = Graph::new();
    let q = g.param(inputs.q.clone());
    let k = g.param(inputs.k.clone());
    let v = g.param(inputs.v.clone());
    let bias = inputs.bias.as_ref().map(|b| g.param(b.clone()));
    let gate = inputs.gate.as_ref().map(|t| g.param(t.clone()));
    let out = if fused {
        let mask = inputs.mask.as_ref().map(|m| g.constant(m.clone()));
        g.attention_fused(q, k, v, bias, mask, gate, inputs.scale)
            .expect("fused attention")
    } else {
        // The composed chain the fused kernel replaces: materialize the
        // mask penalty into the bias, run the plain attention node, then
        // the separate sigmoid-gate multiply.
        let penalty = inputs
            .mask
            .as_ref()
            .map(|m| g.constant(m.map(|x| if x == 0.0 { MASK_NEG } else { 0.0 })));
        let bias_eff: Option<Var> = match (bias, penalty) {
            (Some(b), Some(p)) => Some(g.add(b, p).expect("bias + maskneg")),
            (Some(b), None) => Some(b),
            (None, p) => p,
        };
        let att = g
            .attention(q, k, v, bias_eff, inputs.scale)
            .expect("composed attention");
        match gate {
            Some(gt) => {
                let sig = g.sigmoid(gt).expect("gate sigmoid");
                g.mul(sig, att).expect("gate multiply")
            }
            None => att,
        }
    };
    g.backward_seeded(out, inputs.dy.clone()).expect("backward");
    TapeResult {
        out: g.value(out).clone(),
        dq: g.grad(q).expect("dq").clone(),
        dk: g.grad(k).expect("dk").clone(),
        dv: g.grad(v).expect("dv").clone(),
        dbias: bias.map(|b| g.grad(b).expect("dbias").clone()),
        dgate: gate.map(|gt| g.grad(gt).expect("dgate").clone()),
    }
}

fn assert_equivalent(inputs: &Inputs) {
    let fused = run_tape(inputs, true);
    let composed = run_tape(inputs, false);
    assert!(
        fused.out.allclose(&composed.out, TOL),
        "forward diverged"
    );
    assert!(fused.dq.allclose(&composed.dq, TOL), "dq diverged");
    assert!(fused.dk.allclose(&composed.dk, TOL), "dk diverged");
    assert!(fused.dv.allclose(&composed.dv, TOL), "dv diverged");
    match (&fused.dbias, &composed.dbias) {
        (Some(a), Some(b)) => assert!(a.allclose(b, TOL), "dbias diverged"),
        (None, None) => {}
        _ => panic!("dbias presence mismatch"),
    }
    match (&fused.dgate, &composed.dgate) {
        (Some(a), Some(b)) => assert!(a.allclose(b, TOL), "dgate diverged"),
        (None, None) => {}
        _ => panic!("dgate presence mismatch"),
    }
}

#[test]
fn fused_matches_composed_all_feature_combinations() {
    for bits in 0..8u8 {
        let inputs = make_inputs(
            (2, 2, 12, 8),
            99 + bits as u64,
            bits & 1 != 0,
            bits & 2 != 0,
            bits & 4 != 0,
        );
        assert_equivalent(&inputs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fused_matches_composed_any_shape(
        (b, h, s, d, seed, with_bias, with_mask, with_gate) in
            (1usize..3, 1usize..3, 1usize..16, 1usize..10, any::<u64>(),
             any::<bool>(), any::<bool>(), any::<bool>())
    ) {
        let inputs = make_inputs((b, h, s, d), seed, with_bias, with_mask, with_gate);
        assert_equivalent(&inputs);
    }
}

