//! Chrome `trace_event` JSON export and import.
//!
//! Exported files follow the "JSON Object Format" of the Trace Event
//! specification: a top-level object with a `traceEvents` array, loadable
//! in `chrome://tracing` and Perfetto. Spans are complete events
//! (`"ph":"X"` with `ts`/`dur` in microseconds), instants are `"i"`,
//! counters are `"C"`, and each process lane gets a `process_name`
//! metadata record so real (`pid` 0) and simulated (`pid` ≥ 1) timelines
//! are labeled side by side.

use crate::json::{self, write_num, write_str, JsonError, Value};
use crate::{Event, EventKind, Trace};
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A malformed trace file: either invalid JSON or valid JSON that violates
/// the `trace_event` schema.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceParseError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is JSON but not a trace (message says what is wrong).
    Schema(String),
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::Json(e) => write!(f, "{e}"),
            TraceParseError::Schema(m) => write!(f, "not a Chrome trace: {m}"),
        }
    }
}

impl std::error::Error for TraceParseError {}

impl From<JsonError> for TraceParseError {
    fn from(e: JsonError) -> Self {
        TraceParseError::Json(e)
    }
}

fn write_event(out: &mut String, e: &Event) {
    out.push_str("{\"name\":");
    write_str(out, &e.name);
    out.push_str(",\"cat\":");
    write_str(out, &e.cat);
    let ph = match e.kind {
        EventKind::Complete { .. } => "X",
        EventKind::Instant => "i",
        EventKind::Counter { .. } => "C",
    };
    let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":{}", e.ts_us);
    if let EventKind::Complete { dur_us } = e.kind {
        let _ = write!(out, ",\"dur\":{dur_us}");
    }
    if matches!(e.kind, EventKind::Instant) {
        // Instant scope: thread.
        out.push_str(",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"pid\":{},\"tid\":{}", e.pid, e.tid);
    let has_args = !e.args.is_empty() || matches!(e.kind, EventKind::Counter { .. });
    if has_args {
        out.push_str(",\"args\":{");
        let mut first = true;
        if let EventKind::Counter { value } = e.kind {
            out.push_str("\"value\":");
            write_num(out, value);
            first = false;
        }
        for (k, v) in &e.args {
            if !first {
                out.push(',');
            }
            write_str(out, k);
            out.push(':');
            write_num(out, *v);
            first = false;
        }
        out.push('}');
    }
    out.push('}');
}

impl Trace {
    /// Serializes the trace as Chrome `trace_event` JSON.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        // Label each process lane so real and simulated timelines are
        // distinguishable in the viewer.
        let pids: BTreeSet<u32> = self.events.iter().map(|e| e.pid).collect();
        for pid in pids {
            if !first {
                out.push(',');
            }
            let label = if pid == 0 { "scalefold" } else { "sf-gpusim (simulated)" };
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{label}\"}}}}"
            );
            first = false;
        }
        for e in &self.events {
            if !first {
                out.push(',');
            }
            write_event(&mut out, e);
            first = false;
        }
        out.push_str("],\"otherData\":{\"droppedEvents\":");
        let _ = write!(out, "{}", self.dropped);
        out.push_str("}}");
        out
    }

    /// Parses Chrome `trace_event` JSON (the format [`Trace::to_chrome_json`]
    /// writes; also accepts the bare-array form some tools emit). Metadata
    /// (`"ph":"M"`) records are validated but not materialized as events.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] on invalid JSON or schema violations
    /// (missing `name`/`ph`/`ts`, an `X` event without `dur`, an unknown
    /// `ph`, ...).
    pub fn from_chrome_json(input: &str) -> Result<Trace, TraceParseError> {
        let doc = json::parse(input)?;
        let (items, dropped) = match &doc {
            Value::Arr(items) => (items.as_slice(), 0u64),
            Value::Obj(_) => {
                let items = doc
                    .get("traceEvents")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| {
                        TraceParseError::Schema("missing 'traceEvents' array".to_string())
                    })?;
                let dropped = doc
                    .get("otherData")
                    .and_then(|o| o.get("droppedEvents"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0) as u64;
                (items, dropped)
            }
            _ => {
                return Err(TraceParseError::Schema(
                    "top level must be an object or array".to_string(),
                ))
            }
        };
        let mut events = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let obj = item
                .as_obj()
                .ok_or_else(|| TraceParseError::Schema(format!("event {i} is not an object")))?;
            let field_str = |key: &str| -> Result<&str, TraceParseError> {
                obj.get(key).and_then(Value::as_str).ok_or_else(|| {
                    TraceParseError::Schema(format!("event {i}: missing string field '{key}'"))
                })
            };
            let field_num = |key: &str| -> Result<f64, TraceParseError> {
                obj.get(key).and_then(Value::as_f64).ok_or_else(|| {
                    TraceParseError::Schema(format!("event {i}: missing numeric field '{key}'"))
                })
            };
            let ph = field_str("ph")?;
            if ph == "M" {
                continue; // metadata: names lanes, carries no timing
            }
            let name = field_str("name")?.to_string();
            let ts_us = field_num("ts")? as u64;
            let pid = field_num("pid")? as u32;
            let tid = field_num("tid")? as u32;
            let cat = obj
                .get("cat")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let args: Vec<(Cow<'static, str>, f64)> = obj
                .get("args")
                .and_then(Value::as_obj)
                .map(|m| {
                    m.iter()
                        .filter(|(k, _)| k.as_str() != "value")
                        .filter_map(|(k, v)| v.as_f64().map(|n| (Cow::Owned(k.clone()), n)))
                        .collect()
                })
                .unwrap_or_default();
            let kind = match ph {
                "X" => EventKind::Complete {
                    dur_us: field_num("dur")? as u64,
                },
                "i" | "I" => EventKind::Instant,
                "C" => EventKind::Counter {
                    value: obj
                        .get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Value::as_f64)
                        .ok_or_else(|| {
                            TraceParseError::Schema(format!(
                                "event {i}: counter without args.value"
                            ))
                        })?,
                },
                other => {
                    return Err(TraceParseError::Schema(format!(
                        "event {i}: unsupported ph '{other}'"
                    )))
                }
            };
            events.push(Event {
                name: Cow::Owned(name),
                cat: Cow::Owned(cat),
                kind,
                ts_us,
                pid,
                tid,
                args,
            });
        }
        events.sort_by_key(|e| e.ts_us);
        Ok(Trace { events, dropped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                Event {
                    name: Cow::Borrowed("step"),
                    cat: Cow::Borrowed("step"),
                    kind: EventKind::Complete { dur_us: 1000 },
                    ts_us: 10,
                    pid: 0,
                    tid: 1,
                    args: vec![(Cow::Borrowed("step"), 1.0)],
                },
                Event {
                    name: Cow::Borrowed("queue_depth"),
                    cat: Cow::Borrowed("counter"),
                    kind: EventKind::Counter { value: 3.0 },
                    ts_us: 20,
                    pid: 0,
                    tid: 2,
                    args: vec![],
                },
                Event {
                    name: Cow::Borrowed("marker"),
                    cat: Cow::Borrowed("loader"),
                    kind: EventKind::Instant,
                    ts_us: 30,
                    pid: 1,
                    tid: 0,
                    args: vec![],
                },
            ],
            dropped: 7,
        }
    }

    #[test]
    fn round_trip_preserves_events() {
        let t = sample_trace();
        let s = t.to_chrome_json();
        let back = Trace::from_chrome_json(&s).expect("parse");
        assert_eq!(back.dropped, 7);
        assert_eq!(back.events.len(), t.events.len());
        for (a, b) in t.events.iter().zip(back.events.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.cat, b.cat);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.ts_us, b.ts_us);
            assert_eq!(a.pid, b.pid);
            assert_eq!(a.tid, b.tid);
            for (k, v) in &a.args {
                assert_eq!(b.arg(k), Some(*v));
            }
        }
    }

    #[test]
    fn export_is_schema_shaped() {
        let s = sample_trace().to_chrome_json();
        let doc = json::parse(&s).expect("valid JSON");
        let evs = doc.get("traceEvents").and_then(Value::as_arr).expect("array");
        // 2 process_name metadata records (pid 0 and 1) + 3 events.
        assert_eq!(evs.len(), 5);
        for ev in evs {
            let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
            assert!(matches!(ph, "X" | "i" | "C" | "M"), "ph {ph}");
            assert!(ev.get("pid").and_then(Value::as_f64).is_some());
            if ph == "X" {
                assert!(ev.get("dur").and_then(Value::as_f64).is_some());
                assert!(ev.get("ts").and_then(Value::as_f64).is_some());
            }
        }
    }

    #[test]
    fn rejects_garbage_and_schema_violations() {
        assert!(matches!(
            Trace::from_chrome_json("not json"),
            Err(TraceParseError::Json(_))
        ));
        assert!(matches!(
            Trace::from_chrome_json("{\"foo\":1}"),
            Err(TraceParseError::Schema(_))
        ));
        // An X event without dur.
        let bad = r#"{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":0,"tid":0}]}"#;
        assert!(matches!(
            Trace::from_chrome_json(bad),
            Err(TraceParseError::Schema(_))
        ));
    }

    #[test]
    fn accepts_bare_array_form() {
        let t = Trace::from_chrome_json(
            r#"[{"name":"a","cat":"sim","ph":"X","ts":5,"dur":2,"pid":1,"tid":0}]"#,
        )
        .expect("parse");
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].end_us(), 7);
    }
}
