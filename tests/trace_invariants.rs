//! Structural invariants of traces captured from a *real* training run:
//! spans nest, the per-step phase breakdown accounts for the step's wall
//! time, and the Chrome `trace_event` export round-trips losslessly.
//!
//! Tracing state is process-global, so every test takes `TRACE_LOCK`,
//! resets the collector, and drains it before releasing.

use scalefold::{Trainer, TrainerConfig};
use sf_trace::json::Value;
use sf_trace::report::PhaseReport;
use sf_trace::{EventKind, Trace};
use std::sync::{Mutex, MutexGuard};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn traced_train(steps: u64) -> Trace {
    sf_trace::reset();
    sf_trace::enable();
    let mut cfg = TrainerConfig::tiny();
    cfg.model.evoformer_blocks = 1;
    cfg.model.extra_msa_blocks = 0;
    let mut trainer = Trainer::new(cfg);
    let reports = trainer.train(steps);
    assert_eq!(reports.len() as u64, steps, "training must run to completion");
    let trace = sf_trace::take();
    sf_trace::disable();
    trace
}

/// Complete spans on one thread either nest or are disjoint — a partial
/// overlap would mean a span guard outlived its enclosing scope.
#[test]
fn spans_nest_properly_per_thread() {
    let _g = lock();
    let trace = traced_train(3);
    let mut tids: Vec<u32> = trace.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    // Timestamps truncate to whole microseconds, so two adjacent siblings
    // can appear to overlap by a hair; anything beyond this is a real
    // nesting violation.
    const SLACK_US: u64 = 2;
    let mut checked = 0usize;
    for tid in tids {
        let mut spans: Vec<(u64, u64)> = trace
            .events
            .iter()
            .filter(|e| e.tid == tid && matches!(e.kind, EventKind::Complete { .. }))
            .map(|e| (e.ts_us, e.end_us()))
            .collect();
        // Start ascending, end descending: an enclosing span sorts before
        // the spans it contains.
        spans.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut open_ends: Vec<u64> = Vec::new();
        for (start, end) in spans {
            while open_ends.last().is_some_and(|&top| top <= start + SLACK_US) {
                open_ends.pop();
            }
            if let Some(&top) = open_ends.last() {
                assert!(
                    end <= top + SLACK_US,
                    "partial overlap on tid {tid}: [{start},{end}) escapes enclosing span ending at {top}"
                );
                checked += 1;
            }
            open_ends.push(end);
        }
    }
    assert!(checked > 10, "expected a non-trivial number of nested span pairs");
}

/// Every recorded phase lies inside its step, and the phases plus the
/// residual "other" bucket account for the step's wall time exactly.
#[test]
fn phase_durations_sum_to_step_wall_time() {
    let _g = lock();
    let trace = traced_train(4);
    let report = PhaseReport::from_trace(&trace);
    assert_eq!(report.steps.len(), 4, "one row per optimizer step");
    for s in &report.steps {
        let attributed: u64 = s.phase_us.iter().sum();
        assert!(
            attributed <= s.total_us,
            "step {}: phases ({attributed} us) exceed wall time ({} us)",
            s.step,
            s.total_us
        );
        // The instrumented phases must cover nearly the whole step: the
        // epsilon is the loop's own bookkeeping (report push, iterator
        // advance), bounded at 10% of the step.
        assert!(
            attributed * 10 >= s.total_us * 9,
            "step {}: phases cover only {attributed} of {} us",
            s.step,
            s.total_us
        );
        assert_eq!(
            attributed + s.other_us(),
            s.total_us,
            "step {}: 'other' must be the exact residual",
            s.step
        );
    }
    // Forward and backward are never free.
    let fwd = report.phase_total_us("forward");
    let bwd = report.phase_total_us("backward");
    assert!(fwd > 0 && bwd > 0, "forward {fwd} us / backward {bwd} us");
}

/// Export → import is lossless for every event kind the tracer emits.
#[test]
fn chrome_json_round_trips() {
    let _g = lock();
    let trace = traced_train(2);
    let json = trace.to_chrome_json();
    let back = Trace::from_chrome_json(&json).expect("exported trace must re-import");
    assert_eq!(back.events.len(), trace.events.len());
    for (a, b) in trace.events.iter().zip(&back.events) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.cat, b.cat);
        assert_eq!(a.ts_us, b.ts_us);
        assert_eq!(a.pid, b.pid);
        assert_eq!(a.tid, b.tid);
        assert_eq!(a.kind, b.kind);
    }
    // And the phase table computed before and after the round trip agrees.
    let before = PhaseReport::from_trace(&trace);
    let after = PhaseReport::from_trace(&back);
    assert_eq!(before.to_table(), after.to_table());
}

/// The exported JSON matches the Chrome trace_event schema: an object with
/// a `traceEvents` array whose entries carry `name`/`ph`/`ts`/`pid`/`tid`,
/// `ph` drawn from the phases we emit, and `dur` present exactly on "X".
#[test]
fn exported_json_matches_chrome_schema() {
    let _g = lock();
    let trace = traced_train(2);
    let root = sf_trace::json::parse(&trace.to_chrome_json()).expect("valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph field");
        assert!(
            matches!(ph, "X" | "i" | "C" | "M"),
            "unexpected phase type {ph:?}"
        );
        if ph == "M" {
            continue; // metadata records carry name + args only
        }
        for key in ["name", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing '{key}': {e:?}");
        }
        assert_eq!(
            e.get("dur").is_some(),
            ph == "X",
            "dur must be present exactly on complete events"
        );
        if ph == "C" {
            e.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Value::as_f64)
                .expect("counter events carry args.value");
        }
    }
}
