//! Optimizers for AlphaFold training, including the paper's fused kernels.
//!
//! ScaleFold found that the "ordinary training subroutines" — Adam, SWA
//! (stochastic weight averaging), and gradient clipping — together took 15%
//! of step time at <10% of theoretical throughput, because each launches
//! thousands of tiny kernels (one per parameter tensor; AlphaFold has >4000
//! gradient tensors). Its fixes, all reproduced here as real algorithms:
//!
//! - [`FusedAdamSwa`]: Adam + SWA + adjacent elementwise logic in **one
//!   pass** over a packed flat buffer (the paper packs all parameter and
//!   optimizer-state pointers into one buffer so a single kernel call
//!   touches every element). Verified bit-tolerant-identical to the naive
//!   [`Adam`] + [`Swa`] pair.
//! - [`clip::bucketed_global_norm`]: gradient-norm computation over a small
//!   number of flat **gradient buckets** (reusing the DDP communication
//!   buffers) instead of per-tensor kernels; the `sf-cluster` simulator
//!   additionally models hiding this latency under the all-reduce.
//! - [`LrSchedule`]: AlphaFold's warm-up + plateau + decay schedule.

pub mod adam;
pub mod clip;
pub mod fused;
pub mod schedule;
pub mod swa;

pub use adam::{Adam, AdamConfig};
pub use clip::{clip_by_global_norm, GradBuckets};
pub use fused::FusedAdamSwa;
pub use schedule::LrSchedule;
pub use swa::Swa;

use sf_tensor::Tensor;
use std::collections::BTreeMap;

/// Gradient map keyed by parameter name, as produced by
/// `sf_autograd::Graph::grads_by_name`.
pub type Grads = BTreeMap<String, Tensor>;
