//! Blocked general matrix multiplication with batch broadcasting, plus the
//! batched-GEMM bundling primitive the paper uses before MHA (§3.3.1,
//! "GEMM Batching").

use crate::{Result, Tensor, TensorError};

/// Cache-blocking tile edge for the inner GEMM. 32×32 f32 tiles (4 KiB per
/// operand tile) stay comfortably inside L1 on every x86-64 this runs on.
const TILE: usize = 32;

/// Batched matrix product `a @ b`.
///
/// Semantics (a subset of numpy `matmul` sufficient for AlphaFold):
/// - `[m, k] @ [k, n] -> [m, n]`
/// - `[..., m, k] @ [..., k, n] -> [..., m, n]` with identical leading dims
/// - `[..., m, k] @ [k, n] -> [..., m, n]` (rhs broadcast over the batch)
/// - 1-D operands are promoted: `[k] @ [k, n] -> [n]`, `[m, k] @ [k] -> [m]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if contraction dimensions disagree
/// or batch dims are incompatible.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    // Promote 1-D operands.
    if a.rank() == 1 {
        let a2 = a.reshape(&[1, a.dims()[0]])?;
        let out = matmul(&a2, b)?;
        let mut dims = out.dims().to_vec();
        dims.remove(dims.len() - 2);
        return out.reshape(&dims);
    }
    if b.rank() == 1 {
        let b2 = b.reshape(&[b.dims()[0], 1])?;
        let out = matmul(a, &b2)?;
        let mut dims = out.dims().to_vec();
        dims.pop();
        return out.reshape(&dims);
    }

    let (am, ak) = (a.dims()[a.rank() - 2], a.dims()[a.rank() - 1]);
    let (bk, bn) = (b.dims()[b.rank() - 2], b.dims()[b.rank() - 1]);
    if ak != bk {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }

    let a_batch = &a.dims()[..a.rank() - 2];
    let b_batch = &b.dims()[..b.rank() - 2];
    let (batch_dims, a_repeat, b_repeat) = if a_batch == b_batch {
        (a_batch.to_vec(), false, false)
    } else if b_batch.is_empty() {
        (a_batch.to_vec(), false, true)
    } else if a_batch.is_empty() {
        (b_batch.to_vec(), true, false)
    } else {
        return Err(TensorError::ShapeMismatch {
            op: "matmul batch",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    };

    let batch: usize = batch_dims.iter().product();
    let mut out_dims = batch_dims.clone();
    out_dims.push(am);
    out_dims.push(bn);
    let mut out = Tensor::zeros(&out_dims);

    let a_stride = am * ak;
    let b_stride = bk * bn;
    let o_stride = am * bn;
    for i in 0..batch {
        let a_off = if a_repeat { 0 } else { i * a_stride };
        let b_off = if b_repeat { 0 } else { i * b_stride };
        gemm_block(
            &a.data()[a_off..a_off + a_stride],
            &b.data()[b_off..b_off + b_stride],
            &mut out.data_mut()[i * o_stride..(i + 1) * o_stride],
            am,
            ak,
            bn,
        );
    }
    Ok(out)
}

/// `c += a @ b` on dense row-major buffers, cache-blocked with an i-k-j
/// inner order (streams `b` rows, accumulates into `c` rows).
pub fn gemm_block(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i0 in (0..m).step_by(TILE) {
        let i1 = (i0 + TILE).min(m);
        for k0 in (0..k).step_by(TILE) {
            let k1 = (k0 + TILE).min(k);
            for i in i0..i1 {
                let crow = &mut c[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

/// Result of [`batched_linear`]: the bundled projection outputs in input
/// order.
pub type BatchedOutputs = Vec<Tensor>;

/// Applies several independent linear layers (`x @ w_i^T + b_i`) to the same
/// input in one bundled batched GEMM — the paper's "GEMM Batching"
/// optimization for the four projections (Q, K, V, gate) preceding MHA.
///
/// Each `weights[i]` has shape `[out_i, in]` and each `biases[i]` (if given)
/// shape `[out_i]`. `x` has shape `[..., in]`. The implementation stacks the
/// weight matrices and performs a single GEMM, then splits the output —
/// numerically identical to looping, which the unit tests verify.
///
/// # Errors
///
/// Returns an error on dimension mismatch or if `weights` is empty.
pub fn batched_linear(
    x: &Tensor,
    weights: &[&Tensor],
    biases: &[Option<&Tensor>],
) -> Result<BatchedOutputs> {
    let first = weights.first().ok_or(TensorError::EmptyInput("batched_linear"))?;
    let in_dim = first.dims()[1];
    if x.dims().last() != Some(&in_dim) {
        return Err(TensorError::ShapeMismatch {
            op: "batched_linear",
            lhs: x.dims().to_vec(),
            rhs: first.dims().to_vec(),
        });
    }
    // Stack [out_total, in].
    let stacked = Tensor::concat(weights, 0)?;
    let rows: usize = x.len() / in_dim;
    let x2 = x.reshape(&[rows, in_dim])?;
    let big = x2.matmul(&stacked.transpose()?)?; // [rows, out_total]

    let mut outs = Vec::with_capacity(weights.len());
    let mut col = 0usize;
    for (w, bias) in weights.iter().zip(biases.iter()) {
        let out_dim = w.dims()[0];
        let mut piece = big.slice_axis(1, col, col + out_dim)?;
        if let Some(b) = bias {
            piece = piece.add(b)?;
        }
        let mut dims = x.dims().to_vec();
        *dims.last_mut().expect("x has rank >= 1") = out_dim;
        outs.push(piece.reshape(&dims)?);
        col += out_dim;
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                c.data_mut()[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::randn(&[17, 33], 1);
        let b = Tensor::randn(&[33, 9], 2);
        let c = matmul(&a, &b).unwrap();
        assert!(c.allclose(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::randn(&[5, 5], 3);
        let c = matmul(&a, &Tensor::eye(5)).unwrap();
        assert!(c.allclose(&a, 1e-6));
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::randn(&[2, 3, 4, 5], 4);
        let b = Tensor::randn(&[2, 3, 5, 6], 5);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 3, 4, 6]);
        // Spot-check one batch element against the 2-D path.
        let a0 = Tensor::from_vec(a.data()[..20].to_vec(), &[4, 5]).unwrap();
        let b0 = Tensor::from_vec(b.data()[..30].to_vec(), &[5, 6]).unwrap();
        let c0 = matmul(&a0, &b0).unwrap();
        assert!(Tensor::from_vec(c.data()[..24].to_vec(), &[4, 6])
            .unwrap()
            .allclose(&c0, 1e-5));
    }

    #[test]
    fn matmul_rhs_broadcast() {
        let a = Tensor::randn(&[3, 4, 5], 6);
        let b = Tensor::randn(&[5, 2], 7);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[3, 4, 2]);
        let a2 = Tensor::from_vec(a.data()[20..40].to_vec(), &[4, 5]).unwrap();
        let c1 = matmul(&a2, &b).unwrap();
        assert!(Tensor::from_vec(c.data()[8..16].to_vec(), &[4, 2])
            .unwrap()
            .allclose(&c1, 1e-5));
    }

    #[test]
    fn matmul_vector_promotion() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let m = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        assert_eq!(matmul(&a, &m).unwrap().dims(), &[2]);
        assert_eq!(matmul(&m, &a).unwrap().dims(), &[2]);
        assert_eq!(matmul(&a, &m).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul(&a, &b).is_err());
        let a3 = Tensor::zeros(&[2, 2, 3]);
        let b3 = Tensor::zeros(&[3, 3, 4]);
        assert!(matmul(&a3, &b3).is_err());
    }

    #[test]
    fn batched_linear_equals_loop() {
        let x = Tensor::randn(&[3, 7, 8], 10);
        let w1 = Tensor::randn(&[4, 8], 11);
        let w2 = Tensor::randn(&[6, 8], 12);
        let w3 = Tensor::randn(&[4, 8], 13);
        let b1 = Tensor::randn(&[4], 14);
        let outs =
            batched_linear(&x, &[&w1, &w2, &w3], &[Some(&b1), None, None]).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].dims(), &[3, 7, 4]);
        assert_eq!(outs[1].dims(), &[3, 7, 6]);

        // Reference: apply each projection individually.
        let flat = x.reshape(&[21, 8]).unwrap();
        let r1 = flat.matmul(&w1.transpose().unwrap()).unwrap().add(&b1).unwrap();
        assert!(outs[0].reshape(&[21, 4]).unwrap().allclose(&r1, 1e-5));
        let r2 = flat.matmul(&w2.transpose().unwrap()).unwrap();
        assert!(outs[1].reshape(&[21, 6]).unwrap().allclose(&r2, 1e-5));
    }

    #[test]
    fn batched_linear_rejects_mismatch() {
        let x = Tensor::zeros(&[2, 5]);
        let w = Tensor::zeros(&[3, 8]);
        assert!(batched_linear(&x, &[&w], &[None]).is_err());
        assert!(batched_linear(&x, &[], &[]).is_err());
    }
}
