//! Cross-crate integration tests: the real training stack end to end, the
//! data pipeline under stragglers, and consistency between the algorithmic
//! implementations and the performance model.

use scalefold::{build_graph, OptimizationSet, Trainer, TrainerConfig};
use sf_autograd::{Graph, ParamStore};
use sf_data::featurize::featurize;
use sf_data::loader::{BlockingLoader, Dataset, LoaderConfig, NonBlockingPipeline};
use sf_data::SyntheticDataset;
use sf_gpusim::{CpuModel, DeviceSpec};
use sf_model::metrics::lddt_ca;
use sf_model::{AlphaFold, ModelConfig};
use sf_opgraph::profile::step_time;
use std::sync::Arc;
use std::time::Duration;

fn tiny_model_cfg() -> ModelConfig {
    let mut cfg = ModelConfig::tiny();
    cfg.evoformer_blocks = 1;
    cfg.extra_msa_blocks = 0;
    cfg.template_blocks = 0;
    cfg
}

#[test]
fn end_to_end_real_training_step() {
    // Dataset -> featurization -> model forward -> backward -> optimizer,
    // across five crates, with gradients reaching every parameter.
    let cfg = tiny_model_cfg();
    let ds = SyntheticDataset::new(1, 4);
    let batch = featurize(&ds.record(0), &cfg, 1);
    batch.validate(&cfg).expect("featurized batch matches model config");

    let model = AlphaFold::new(cfg);
    let mut store = ParamStore::new();
    let mut g = Graph::new();
    let out = model.forward(&mut g, &mut store, &batch).expect("forward");
    assert!(out.loss_breakdown.total.is_finite());
    g.backward(out.loss).expect("backward");
    let grads = g.grads_by_name().expect("grads");
    assert_eq!(grads.len(), store.len(), "every parameter has a gradient");
    let lddt = lddt_ca(g.value(out.coords), &batch.true_coords, &batch.residue_mask);
    assert!((0.0..=1.0).contains(&lddt));
}

#[test]
fn trainer_improves_on_fixed_protein() {
    let mut tc = TrainerConfig::tiny();
    tc.model = tiny_model_cfg();
    tc.dataset_len = 2;
    tc.schedule.warmup_steps = 3;
    let mut trainer = Trainer::new(tc);
    let reports = trainer.train(16);
    let first4: f32 = reports[..4].iter().map(|r| r.loss).sum::<f32>() / 4.0;
    let last4: f32 = reports[12..].iter().map(|r| r.loss).sum::<f32>() / 4.0;
    assert!(
        last4 < first4,
        "training must reduce loss: {first4:.4} -> {last4:.4}"
    );
}

#[test]
fn pipeline_under_stragglers_delivers_exactly_once() {
    struct Sleepy;
    impl Dataset for Sleepy {
        type Item = usize;
        fn len(&self) -> usize {
            24
        }
        fn prepare(&self, index: usize) -> usize {
            // Every 6th batch is a straggler.
            let ms = if index.is_multiple_of(6) { 40 } else { 2 };
            std::thread::sleep(Duration::from_millis(ms));
            index
        }
    }
    let order: Vec<usize> = (0..24).collect();
    let nb: Vec<usize> =
        NonBlockingPipeline::new(Arc::new(Sleepy), order.clone(), LoaderConfig::default())
            .map(|item| item.expect("no faults").0)
            .collect();
    let mut sorted = nb.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, order, "exactly-once delivery");
    assert_ne!(nb, order, "stragglers should reorder delivery");

    let b: Vec<usize> = BlockingLoader::new(Arc::new(Sleepy), order.clone(), LoaderConfig::default())
        .map(|item| item.expect("no faults").0)
        .collect();
    assert_eq!(b, order, "blocking loader preserves order exactly");
}

#[test]
fn fused_kernels_agree_with_naive_at_model_scale() {
    // The real fused CPU kernels inside a real forward pass: run the same
    // model twice from one store; outputs must be deterministic and equal.
    let cfg = tiny_model_cfg();
    let batch = sf_model::FeatureBatch::synthetic(&cfg, 3);
    let model = AlphaFold::new(cfg);
    let mut store = ParamStore::new();
    let mut g1 = Graph::new();
    let o1 = model.forward(&mut g1, &mut store, &batch).expect("forward 1");
    let mut g2 = Graph::new();
    let o2 = model.forward(&mut g2, &mut store, &batch).expect("forward 2");
    assert_eq!(g1.value(o1.coords), g2.value(o2.coords));
    assert_eq!(o1.loss_breakdown.total, o2.loss_breakdown.total);
}

#[test]
fn optimization_set_speedup_composes_across_crates() {
    // opgraph fusions + gpusim stream + cluster semantics all plugged
    // together through the public API.
    let cfg = ModelConfig::paper();
    let dev = DeviceSpec::h100();
    let t = |opts: &OptimizationSet, graph_mode: bool| {
        step_time(&build_graph(&cfg, opts), &dev, CpuModel::healthy(), graph_mode).total_s
    };
    let reference = t(&OptimizationSet::none(), false);
    let fused_only = t(
        &OptimizationSet {
            triton_mha: true,
            triton_ln: true,
            fused_adam_swa: true,
            ..OptimizationSet::none()
        },
        false,
    );
    let everything = t(&OptimizationSet::scalefold(), true);
    assert!(fused_only < reference);
    assert!(everything < fused_only);
}

#[test]
fn checkpointing_memory_vs_speed_tradeoff_is_real() {
    // The real autograd: checkpointing cuts activation bytes; the graph
    // model: it adds recompute kernels. Both directions must hold.
    let mut cfg = tiny_model_cfg();
    let batch = sf_model::FeatureBatch::synthetic(&cfg, 4);
    let mut store = ParamStore::new();

    cfg.gradient_checkpointing = false;
    let mut g_plain = Graph::new();
    AlphaFold::new(cfg.clone())
        .forward(&mut g_plain, &mut store, &batch)
        .expect("plain forward");

    cfg.gradient_checkpointing = true;
    let mut g_ckpt = Graph::new();
    AlphaFold::new(cfg)
        .forward(&mut g_ckpt, &mut store, &batch)
        .expect("checkpointed forward");
    assert!(g_ckpt.activation_bytes() < g_plain.activation_bytes());

    // Performance model side.
    let paper = ModelConfig::paper();
    let with = sf_opgraph::builder::StepGraph::reference_checkpointed(&paper, 1);
    let without = sf_opgraph::builder::StepGraph::reference(&paper, 1);
    let dev = DeviceSpec::h100();
    let busy = |g: &sf_opgraph::builder::StepGraph| {
        step_time(g, &dev, CpuModel::healthy(), true).gpu_busy_s
    };
    assert!(busy(&with) > busy(&without));
}

#[test]
fn bf16_model_quantization_keeps_training_finite() {
    let mut tc = TrainerConfig::tiny();
    tc.model = tiny_model_cfg();
    tc.precision = sf_tensor::bf16::Precision::Bf16;
    tc.dataset_len = 2;
    let mut trainer = Trainer::new(tc);
    for r in trainer.train(4) {
        assert!(r.loss.is_finite());
        assert!(r.grad_norm.is_finite());
    }
}
