//! The real training loop: actual gradient descent on the actual AlphaFold
//! model (tiny scale), wired through the non-blocking data pipeline and the
//! fused Adam+SWA optimizer — every algorithm from the paper, executing for
//! real.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sf_autograd::{Graph, ParamStore};
use sf_data::featurize::featurize;
use sf_data::loader::{Dataset, LoaderConfig, NonBlockingPipeline};
use sf_data::SyntheticDataset;
use sf_model::loss::LossBreakdown;
use sf_model::metrics::lddt_ca;
use sf_model::{AlphaFold, FeatureBatch, ModelConfig};
use sf_optim::{clip_by_global_norm, AdamConfig, FusedAdamSwa, LrSchedule};
use sf_tensor::bf16::Precision;
use std::sync::Arc;

/// Trainer configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Model dimensions (use [`ModelConfig::tiny`]-scale on a CPU).
    pub model: ModelConfig,
    /// Adam hyper-parameters.
    pub adam: AdamConfig,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// SWA decay.
    pub swa_decay: f32,
    /// Global-norm gradient clip threshold.
    pub clip_norm: f32,
    /// Numeric precision for gradients/activations rounding.
    pub precision: Precision,
    /// Synthetic dataset size.
    pub dataset_len: usize,
    /// Data-loader worker threads.
    pub loader_workers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TrainerConfig {
    /// A CPU-friendly configuration for tests and examples.
    pub fn tiny() -> Self {
        TrainerConfig {
            model: ModelConfig::tiny(),
            adam: AdamConfig {
                lr: 1e-3,
                ..AdamConfig::default()
            },
            schedule: LrSchedule {
                peak_lr: 1e-3,
                warmup_steps: 10,
                decay_after: 10_000,
                decay_factor: 0.95,
            },
            swa_decay: 0.99,
            clip_norm: 1.0,
            precision: Precision::F32,
            dataset_len: 16,
            loader_workers: 2,
            seed: 7,
        }
    }
}

/// Per-step training report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// Optimizer step index.
    pub step: u64,
    /// Loss terms.
    pub loss: f32,
    /// Structural (distance-map) loss term.
    pub distance_loss: f32,
    /// Pre-clip global gradient norm.
    pub grad_norm: f32,
    /// lDDT-Cα of this step's prediction against the ground truth.
    pub lddt: f32,
    /// Learning rate used.
    pub lr: f32,
}

struct FeaturizingDataset {
    records: SyntheticDataset,
    cfg: ModelConfig,
    seed: u64,
}

impl Dataset for FeaturizingDataset {
    type Item = FeatureBatch;

    fn len(&self) -> usize {
        self.records.len()
    }

    fn prepare(&self, index: usize) -> FeatureBatch {
        featurize(&self.records.record(index), &self.cfg, self.seed ^ index as u64)
    }
}

/// The real trainer: owns parameters, optimizer state, and the data
/// pipeline.
///
/// # Example
///
/// ```
/// use scalefold::{Trainer, TrainerConfig};
///
/// let mut cfg = TrainerConfig::tiny();
/// cfg.model.evoformer_blocks = 1;
/// cfg.model.extra_msa_blocks = 0;
/// let mut trainer = Trainer::new(cfg);
/// let reports = trainer.train(2);
/// assert_eq!(reports.len(), 2);
/// assert!(reports.iter().all(|r| r.loss.is_finite()));
/// ```
pub struct Trainer {
    cfg: TrainerConfig,
    model: AlphaFold,
    store: ParamStore,
    optimizer: FusedAdamSwa,
    step: u64,
    rng: StdRng,
}

impl Trainer {
    /// Creates a trainer (parameters initialize lazily on the first step).
    pub fn new(cfg: TrainerConfig) -> Self {
        let model = AlphaFold::new(cfg.model.clone());
        let optimizer = FusedAdamSwa::new(cfg.adam, cfg.swa_decay);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Trainer {
            model,
            store: ParamStore::new(),
            optimizer,
            step: 0,
            rng,
            cfg,
        }
    }

    /// The parameter store (inspect or checkpoint weights).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Steps taken.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Runs one optimization step on `batch`.
    ///
    /// # Panics
    ///
    /// Panics if the batch shapes mismatch the model configuration (call
    /// [`FeatureBatch::validate`] upstream) or an internal op fails — both
    /// indicate programming errors rather than recoverable conditions.
    pub fn train_step(&mut self, batch: &FeatureBatch) -> StepReport {
        let mut g = Graph::new();
        let out = self
            .model
            .forward(&mut g, &mut self.store, batch)
            .expect("forward pass on validated batch");
        g.backward(out.loss).expect("scalar loss");
        let mut grads = g.grads_by_name().expect("consistent bindings");
        // Precision rounding of gradients (bf16 path of §3.4; fp16 shows
        // the NaN failure mode at larger scales).
        if self.cfg.precision != Precision::F32 {
            for grad in grads.values_mut() {
                *grad = self.cfg.precision.quantize(grad);
            }
        }
        let grad_norm = clip_by_global_norm(&mut grads, self.cfg.clip_norm);
        let lr = self.cfg.schedule.lr_at(self.step);
        self.optimizer.step(&mut self.store, &grads, lr);
        let lddt = lddt_ca(g.value(out.coords), &batch.true_coords, &batch.residue_mask);
        let LossBreakdown { total, distance, .. } = out.loss_breakdown;
        self.step += 1;
        StepReport {
            step: self.step,
            loss: total,
            distance_loss: distance,
            grad_norm,
            lddt,
            lr,
        }
    }

    /// Trains for `steps` steps, streaming batches through the real
    /// non-blocking pipeline (threads and all).
    pub fn train(&mut self, steps: u64) -> Vec<StepReport> {
        let dataset = Arc::new(FeaturizingDataset {
            records: SyntheticDataset::new(self.cfg.seed ^ 0xDA7A, self.cfg.dataset_len),
            cfg: self.cfg.model.clone(),
            seed: self.cfg.seed,
        });
        let mut reports = Vec::with_capacity(steps as usize);
        'outer: loop {
            let epoch = self.rng.gen::<u64>();
            let order = SyntheticDataset::new(self.cfg.seed ^ 0xDA7A, self.cfg.dataset_len)
                .epoch_order(epoch);
            let loader = NonBlockingPipeline::new(
                Arc::clone(&dataset),
                order,
                LoaderConfig {
                    num_workers: self.cfg.loader_workers,
                },
            );
            for (_, batch) in loader {
                reports.push(self.train_step(&batch));
                if reports.len() as u64 >= steps {
                    break 'outer;
                }
            }
        }
        reports
    }

    /// Saves the current weights to `path` (see
    /// `sf_autograd::checkpoint_io` for the format). Used for the MLPerf
    /// "initialized from predefined checkpoint" setting.
    ///
    /// # Errors
    ///
    /// Returns a [`sf_autograd::CheckpointError`] on I/O failure.
    pub fn save_checkpoint(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), sf_autograd::CheckpointError> {
        self.store.save_file(path)
    }

    /// Restores weights from a checkpoint produced by
    /// [`Trainer::save_checkpoint`]. Optimizer moments and the step counter
    /// reset (matching the MLPerf benchmark, which restarts the optimizer
    /// from the published weights).
    ///
    /// # Errors
    ///
    /// Returns a [`sf_autograd::CheckpointError`] if the file is missing or
    /// malformed.
    pub fn load_checkpoint(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), sf_autograd::CheckpointError> {
        self.store = ParamStore::load_file(path)?;
        Ok(())
    }

    /// Builds the in-memory evaluation cache (§3.4's "cached all evaluation
    /// data into the CPU DRAM instead of disk"): featurizes the held-out
    /// samples once, so every evaluation pass skips data preparation.
    pub fn build_eval_cache(&self, n: usize) -> Vec<FeatureBatch> {
        let eval_set = SyntheticDataset::new(self.cfg.seed ^ 0xE7A1, n.max(1));
        (0..n.max(1))
            .map(|i| featurize(&eval_set.record(i), &self.cfg.model, 0xE7A1 ^ i as u64))
            .collect()
    }

    /// Evaluates against a pre-built cache ([`Trainer::build_eval_cache`]).
    /// Identical scores to [`Trainer::evaluate`] on the same sample count —
    /// only the per-pass featurization cost disappears.
    pub fn evaluate_cached(&self, cache: &[FeatureBatch]) -> f32 {
        let mut store = self.optimizer.swa_store();
        if store.is_empty() {
            store = self.store.clone();
        }
        let mut total = 0.0f32;
        for batch in cache {
            let mut g = Graph::new();
            let out = self
                .model
                .forward(&mut g, &mut store, batch)
                .expect("forward pass on cached eval batch");
            total += lddt_ca(g.value(out.coords), &batch.true_coords, &batch.residue_mask);
        }
        total / cache.len().max(1) as f32
    }

    /// Asynchronous evaluation (§3.4): snapshots the SWA weights and runs
    /// the evaluation pass on a **separate thread**, so training can
    /// continue immediately — the functional analogue of offloading
    /// evaluation to dedicated nodes. Join the handle for the score.
    pub fn evaluate_async(&self, n: usize) -> std::thread::JoinHandle<f32> {
        let mut store = self.optimizer.swa_store();
        if store.is_empty() {
            store = self.store.clone();
        }
        let model_cfg = self.cfg.model.clone();
        let seed = self.cfg.seed;
        std::thread::spawn(move || {
            let model = AlphaFold::new(model_cfg.clone());
            let eval_set = SyntheticDataset::new(seed ^ 0xE7A1, n.max(1));
            let mut total = 0.0f32;
            for i in 0..n.max(1) {
                let batch = featurize(&eval_set.record(i), &model_cfg, 0xE7A1 ^ i as u64);
                let mut g = Graph::new();
                let out = model
                    .forward(&mut g, &mut store, &batch)
                    .expect("forward pass on synthetic eval batch");
                total += lddt_ca(g.value(out.coords), &batch.true_coords, &batch.residue_mask);
            }
            total / n.max(1) as f32
        })
    }

    /// Evaluates mean lDDT-Cα over `n` held-out samples using the
    /// SWA-averaged weights (as the MLPerf recipe evaluates).
    pub fn evaluate(&self, n: usize) -> f32 {
        let mut store = self.optimizer.swa_store();
        if store.is_empty() {
            store = self.store.clone();
        }
        let eval_set = SyntheticDataset::new(self.cfg.seed ^ 0xE7A1, n.max(1));
        let mut total = 0.0f32;
        for i in 0..n.max(1) {
            let batch = featurize(&eval_set.record(i), &self.cfg.model, 0xE7A1 ^ i as u64);
            let mut g = Graph::new();
            let out = self
                .model
                .forward(&mut g, &mut store, &batch)
                .expect("forward pass on synthetic eval batch");
            total += lddt_ca(g.value(out.coords), &batch.true_coords, &batch.residue_mask);
        }
        total / n.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> TrainerConfig {
        let mut cfg = TrainerConfig::tiny();
        cfg.model.evoformer_blocks = 1;
        cfg.model.extra_msa_blocks = 0;
        cfg.model.template_blocks = 0;
        cfg.model.n_templates = 1;
        cfg.model.structure_layers = 1;
        cfg.dataset_len = 4;
        cfg
    }

    #[test]
    fn single_step_produces_finite_report() {
        let mut t = Trainer::new(fast_cfg());
        let ds = SyntheticDataset::new(1, 4);
        let batch = featurize(&ds.record(0), &t.cfg.model.clone(), 1);
        let r = t.train_step(&batch);
        assert!(r.loss.is_finite());
        assert!(r.grad_norm > 0.0);
        assert!((0.0..=1.0).contains(&r.lddt));
        assert_eq!(r.step, 1);
    }

    #[test]
    fn loss_decreases_on_repeated_batch() {
        let mut t = Trainer::new(fast_cfg());
        let ds = SyntheticDataset::new(2, 4);
        let cfg = t.cfg.model.clone();
        let batch = featurize(&ds.record(0), &cfg, 2);
        let first = t.train_step(&batch).loss;
        let mut last = first;
        for _ in 0..14 {
            last = t.train_step(&batch).loss;
        }
        assert!(
            last < first,
            "loss should fall on a fixed batch: {first} -> {last}"
        );
    }

    #[test]
    fn train_uses_pipeline_and_counts_steps() {
        let mut t = Trainer::new(fast_cfg());
        let reports = t.train(3);
        assert_eq!(reports.len(), 3);
        assert_eq!(t.step_count(), 3);
        assert!(reports.iter().all(|r| r.loss.is_finite()));
    }

    #[test]
    fn warmup_schedule_applies() {
        let mut t = Trainer::new(fast_cfg());
        let reports = t.train(2);
        assert!(reports[0].lr < reports[1].lr);
    }

    #[test]
    fn bf16_training_stays_finite() {
        let mut cfg = fast_cfg();
        cfg.precision = Precision::Bf16;
        let mut t = Trainer::new(cfg);
        let reports = t.train(3);
        assert!(reports.iter().all(|r| r.loss.is_finite() && r.grad_norm.is_finite()));
    }

    #[test]
    fn checkpoint_restores_weights_exactly() {
        let mut t = Trainer::new(fast_cfg());
        let _ = t.train(2);
        let path = std::env::temp_dir().join("sf_trainer_ckpt.bin");
        t.save_checkpoint(&path).expect("save");

        // A fresh trainer restored from the checkpoint produces the same
        // forward outputs as the original.
        let mut fresh = Trainer::new(fast_cfg());
        fresh.load_checkpoint(&path).expect("load");
        let ds = SyntheticDataset::new(99, 2);
        let batch = featurize(&ds.record(0), &fresh.cfg.model.clone(), 99);
        let mut g1 = sf_autograd::Graph::new();
        let model = sf_model::AlphaFold::new(t.cfg.model.clone());
        let o1 = model.forward(&mut g1, &mut t.store.clone(), &batch).expect("fwd");
        let mut g2 = sf_autograd::Graph::new();
        let o2 = model
            .forward(&mut g2, &mut fresh.store.clone(), &batch)
            .expect("fwd");
        assert_eq!(o1.loss_breakdown.total, o2.loss_breakdown.total);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn evaluate_returns_sane_score() {
        let mut t = Trainer::new(fast_cfg());
        let _ = t.train(1);
        let score = t.evaluate(2);
        assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn cached_eval_matches_uncached() {
        let mut t = Trainer::new(fast_cfg());
        let _ = t.train(2);
        let cache = t.build_eval_cache(2);
        assert_eq!(t.evaluate_cached(&cache), t.evaluate(2));
        // The cache is reusable across further training.
        let _ = t.train(1);
        let s = t.evaluate_cached(&cache);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn async_eval_overlaps_training_and_matches_sync() {
        let mut t = Trainer::new(fast_cfg());
        let _ = t.train(2);
        // Launch evaluation, keep training while it runs, then join.
        let handle = t.evaluate_async(2);
        let sync_before = t.evaluate(2);
        let more = t.train(2); // training proceeds while eval runs
        let async_score = handle.join().expect("eval thread");
        assert_eq!(async_score, sync_before, "same snapshot, same score");
        assert_eq!(more.len(), 2);
        // Training moved on: a fresh evaluation now differs in general.
        assert!((0.0..=1.0).contains(&t.evaluate(2)));
    }
}
