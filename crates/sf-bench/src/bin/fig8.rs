//! Regenerates Figure 8: the cumulative optimization ladder.
fn main() {
    sf_bench::banner("Figure 8: optimization ladder");
    println!("{}", scalefold::experiments::fig8());
}
