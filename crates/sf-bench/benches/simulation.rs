//! Simulator-side benchmarks: building the 100k-kernel step graph, running
//! the fusion pipeline, and simulating cluster steps — the machinery behind
//! every figure. These guard against the harness itself becoming too slow
//! to iterate with.

use criterion::{criterion_group, criterion_main, Criterion};
use scalefold::{build_graph, OptimizationSet};
use sf_cluster::{ClusterConfig, ClusterSim};
use sf_model::ModelConfig;
use sf_opgraph::builder::StepGraph;
use std::hint::black_box;

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_graph");
    group.sample_size(10);
    let cfg = ModelConfig::paper();
    group.bench_function("build_reference", |b| {
        b.iter(|| black_box(StepGraph::reference(&cfg, 1)).ops.len())
    });
    group.bench_function("build_fully_optimized", |b| {
        b.iter(|| black_box(build_graph(&cfg, &OptimizationSet::scalefold())).ops.len())
    });
    group.finish();
}

fn bench_cluster_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    let cfg = ModelConfig::paper();
    let graph = StepGraph::reference(&cfg, 1);
    group.bench_function("simulate_40_steps_dp128_dap8", |b| {
        let sim = ClusterSim::new(&graph, ClusterConfig::eos(128, 8));
        b.iter(|| black_box(sim.mean_step_s(40)))
    });
    group.finish();
}

criterion_group!(benches, bench_graph_build, bench_cluster_sim);
criterion_main!(benches);
