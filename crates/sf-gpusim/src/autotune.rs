//! Triton-style autotuning: grid search over tile configurations against
//! the analytic kernel model.
//!
//! The paper (§3.3.2): "the OpenAI Triton compiler's auto tuning ability was
//! exploited to search for the optimal hyper-parameters for all workload
//! sizes that appear and target GPU architectures... particularly useful
//! when workload sizes were scaled down by DAP."

use crate::device::DeviceSpec;
use crate::kernel::Kernel;
use serde::{Deserialize, Serialize};

/// A candidate tiling / launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileConfig {
    /// Rows processed per thread block.
    pub block_m: usize,
    /// Columns processed per thread block per pass.
    pub block_n: usize,
    /// Warps per thread block.
    pub num_warps: usize,
}

impl TileConfig {
    /// The default (untuned) configuration Triton would start from.
    pub fn default_config() -> Self {
        TileConfig {
            block_m: 1,
            block_n: 128,
            num_warps: 4,
        }
    }
}

/// A tileable memory-bound kernel shape: `rows` independent rows of `cols`
/// elements (LayerNorm rows, attention query rows, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTemplate {
    /// Kernel name.
    pub name: String,
    /// Independent rows in the problem.
    pub rows: usize,
    /// Elements per row.
    pub cols: usize,
    /// Bytes moved per element (read + write, accounting precision).
    pub bytes_per_element: f64,
}

impl KernelTemplate {
    /// A LayerNorm-shaped problem.
    pub fn layer_norm(rows: usize, cols: usize, bytes_per_element: f64) -> Self {
        KernelTemplate {
            name: format!("layernorm_{rows}x{cols}"),
            rows,
            cols,
            bytes_per_element,
        }
    }

    /// Total bytes of useful traffic.
    pub fn useful_bytes(&self) -> f64 {
        self.rows as f64 * self.cols as f64 * self.bytes_per_element
    }

    /// Materializes a [`Kernel`] for a given config on a device.
    ///
    /// The model captures the three effects the paper's hand-tuned kernels
    /// exploit:
    /// - **wasted traffic**: row-padding in the last block and column tiles
    ///   wider than the row inflate the bytes actually moved;
    /// - **latency hiding**: memory latency is hidden *either* by enough
    ///   resident blocks (big launches) *or* by per-lane instruction-level
    ///   parallelism (≥4 elements per lane) — DAP-shrunk launches have few
    ///   blocks, so multi-row tiles (`block_m > 1`) restore the hiding;
    /// - **register pressure**: too many elements per lane spills.
    pub fn instantiate(&self, cfg: TileConfig, device: &DeviceSpec) -> Kernel {
        let blocks = self.rows.div_ceil(cfg.block_m.max(1)).max(1);
        // Row padding waste: the last block processes padding rows.
        let row_waste = (blocks * cfg.block_m) as f64 / self.rows.max(1) as f64;
        // Column tile waste: a tile wider than the row reads padding.
        let col_waste = if cfg.block_n > self.cols {
            cfg.block_n as f64 / self.cols.max(1) as f64
        } else {
            1.0
        };
        let bytes = self.useful_bytes() * row_waste * col_waste;

        let lanes = (32 * cfg.num_warps) as f64;
        let work = (cfg.block_m * cfg.block_n.min(self.cols.max(1))) as f64;
        let per_lane = work / lanes;
        // ILP-based hiding: want ≥4 elements in flight per lane.
        let ilp = (per_lane / 4.0).clamp(0.25, 1.0);
        // Block-count-based hiding: a launch with blocks ≫ SMs hides latency
        // regardless of per-lane ILP.
        let block_hiding = (blocks as f64 / (device.sm_count * 64) as f64).clamp(0.0, 1.0);
        let hiding = ilp.max(block_hiding);
        // Register pressure: too much work per lane causes spills.
        let spill = if per_lane > 64.0 { 64.0 / per_lane } else { 1.0 };
        let efficiency = (0.85 * hiding * spill).clamp(0.01, 1.0);

        // Parallelism for bandwidth occupancy: row-level parallelism is
        // preserved by multi-row blocks (each row streams independently).
        let parallelism = (blocks * cfg.block_m).min(self.rows.max(1));
        Kernel::memory(self.name.clone(), bytes, parallelism).with_efficiency(efficiency)
    }

    /// Modeled duration under `cfg` on `device`, including per-block
    /// scheduling cost (many tiny blocks pay dispatch overhead).
    pub fn duration_s(&self, cfg: TileConfig, device: &DeviceSpec) -> f64 {
        let blocks = self.rows.div_ceil(cfg.block_m.max(1)).max(1);
        // Per-block dispatch cost: tiny (~50 ps effective across the whole
        // chip), acts mostly as a tie-breaker towards fewer, fatter blocks.
        let sched = blocks as f64 * 5e-11;
        self.instantiate(cfg, device).duration_s(device) + sched
    }
}

/// The search space Triton-style autotuning sweeps.
pub fn search_space() -> Vec<TileConfig> {
    let mut out = Vec::new();
    for &block_m in &[1usize, 2, 4, 8, 16, 32] {
        for &block_n in &[32usize, 64, 128, 256, 512] {
            for &num_warps in &[1usize, 2, 4, 8] {
                out.push(TileConfig {
                    block_m,
                    block_n,
                    num_warps,
                });
            }
        }
    }
    out
}

/// Grid-searches the space, returning the best config and its modeled time.
pub fn autotune(template: &KernelTemplate, device: &DeviceSpec) -> (TileConfig, f64) {
    let mut best = (TileConfig::default_config(), f64::INFINITY);
    for cfg in search_space() {
        let t = template.duration_s(cfg, device);
        if t < best.1 {
            best = (cfg, t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_never_loses_to_default() {
        let dev = DeviceSpec::h100();
        for (rows, cols) in [(256 * 256, 128), (4096, 256), (128, 64), (64, 128)] {
            let t = KernelTemplate::layer_norm(rows, cols, 8.0);
            let (best, t_best) = autotune(&t, &dev);
            let t_default = t.duration_s(TileConfig::default_config(), &dev);
            assert!(
                t_best <= t_default + 1e-12,
                "{rows}x{cols}: tuned {t_best} vs default {t_default} (cfg {best:?})"
            );
        }
    }

    #[test]
    fn small_problems_prefer_multi_row_blocks() {
        // The paper's LN kernel lets each thread block process multiple
        // rows precisely because DAP-shrunk problems under-fill the GPU.
        let dev = DeviceSpec::h100();
        let small = KernelTemplate::layer_norm(512, 128, 8.0); // DAP-shrunk
        let (best_small, _) = autotune(&small, &dev);
        assert!(
            best_small.block_m > 1,
            "small problem should batch rows per block, got {best_small:?}"
        );
    }

    #[test]
    fn tuning_gain_larger_for_dap_shrunk_problems() {
        let dev = DeviceSpec::h100();
        let big = KernelTemplate::layer_norm(128 * 256 * 8, 128, 8.0);
        let small = KernelTemplate::layer_norm(128 * 256 / 8, 128, 8.0);
        let gain = |t: &KernelTemplate| {
            let (_, tuned) = autotune(t, &dev);
            t.duration_s(TileConfig::default_config(), &dev) / tuned
        };
        let g_big = gain(&big);
        let g_small = gain(&small);
        assert!(
            g_small > g_big,
            "tuning gain small {g_small:.2} must exceed big {g_big:.2}"
        );
    }

    #[test]
    fn oversized_column_tiles_waste_bandwidth() {
        let t = KernelTemplate::layer_norm(1024, 64, 8.0);
        let dev = DeviceSpec::h100();
        let narrow = t.instantiate(
            TileConfig { block_m: 4, block_n: 64, num_warps: 4 },
            &dev,
        );
        let wide = t.instantiate(
            TileConfig { block_m: 4, block_n: 512, num_warps: 4 },
            &dev,
        );
        assert!(wide.bytes > 4.0 * narrow.bytes);
    }

    #[test]
    fn autotune_is_deterministic() {
        let dev = DeviceSpec::a100();
        let t = KernelTemplate::layer_norm(1000, 256, 8.0);
        assert_eq!(autotune(&t, &dev).0, autotune(&t, &dev).0);
    }

    #[test]
    fn best_config_can_differ_across_devices_or_sizes() {
        let dev = DeviceSpec::h100();
        let t_small = KernelTemplate::layer_norm(256, 128, 8.0);
        let t_big = KernelTemplate::layer_norm(1_000_000, 128, 8.0);
        let (c_small, _) = autotune(&t_small, &dev);
        let (c_big, _) = autotune(&t_big, &dev);
        // Not a strict requirement that they differ, but the search must
        // produce valid members of the space.
        assert!(search_space().contains(&c_small));
        assert!(search_space().contains(&c_big));
    }
}
