//! **Real Dynamic Axial Parallelism** for the CPU training stack
//! (ScaleFold §3.3, after FastFold).
//!
//! [`DapGroup`] is the concrete executor behind
//! [`sf_model::AxialCollectives`]: it runs the Evoformer's axis switches
//! and re-gathers through the *functional* ring collectives in
//! [`sf_cluster::collective`] — the same algorithms the cluster simulator
//! prices analytically — and records per-collective
//! [`CollectiveStats`] so a training step's measured communication volume
//! can be checked against the analytic model ([`analytic_comm_volume`]).
//! Each collective also emits an `sf_trace` span (category `"collective"`)
//! so traced runs show the communication timeline.
//!
//! The split of labour with `sf-model`: the model crate owns the *tape*
//! expression of DAP (shard slices, verified external concats, the
//! transpose algebra of the axis switch), while this module owns the
//! *transport* (who actually produces the exchanged buffers) — mirroring
//! how a GPU implementation would swap NCCL in under the same graph.

use sf_cluster::collective::{all_gather, all_to_all, CollectiveStats};
use sf_model::{AxialCollectives, ModelConfig};
use std::cell::RefCell;

/// Accumulated communication of a DAP group, split by collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DapStats {
    /// Total elements sent across all ranks by all-gathers.
    pub all_gather_elements: usize,
    /// Total elements sent across all ranks by all-to-alls.
    pub all_to_all_elements: usize,
    /// Number of all-gather events.
    pub gathers: usize,
    /// Number of all-to-all (axis switch) events.
    pub switches: usize,
}

impl DapStats {
    /// Total elements sent across both collectives.
    pub fn total_elements(&self) -> usize {
        self.all_gather_elements + self.all_to_all_elements
    }

    /// Prices this volume on a fabric the way `ClusterSim` prices DAP
    /// communication: each event's per-rank bytes through the analytic
    /// collective formulas of [`sf_cluster::FabricSpec`]. `elem_bytes` is
    /// the activation element size (4 for f32).
    pub fn price_s(&self, fabric: &sf_cluster::FabricSpec, ranks: usize, elem_bytes: usize) -> f64 {
        if ranks <= 1 || (self.gathers == 0 && self.switches == 0) {
            return 0.0;
        }
        let n = ranks as f64;
        // Invert the measured totals back to the per-event buffer sizes
        // the analytic formulas take: a gather of shard size s sends
        // n(n-1)s in total; an all-to-all of per-rank buffers of b sends
        // (n-1)b in total (summed over the n ranks).
        let mut s = 0.0;
        if self.gathers > 0 {
            let shard_elems =
                self.all_gather_elements as f64 / (n * (n - 1.0) * self.gathers as f64);
            s += self.gathers as f64 * fabric.all_gather_s(shard_elems * elem_bytes as f64, ranks);
        }
        if self.switches > 0 {
            let buf_elems = self.all_to_all_elements as f64 / ((n - 1.0) * self.switches as f64);
            s += self.switches as f64
                * fabric.all_to_all_s(buf_elems * n * elem_bytes as f64, ranks);
        }
        s
    }
}

/// A DAP process group: `ranks` simulated devices sharding one sample's
/// Evoformer activations. Implements [`AxialCollectives`] with the real
/// functional collectives and accumulates [`DapStats`].
#[derive(Debug)]
pub struct DapGroup {
    ranks: usize,
    stats: RefCell<DapStats>,
}

impl DapGroup {
    /// Creates a group of `ranks` devices (0 is normalized to 1 = off).
    pub fn new(ranks: usize) -> Self {
        DapGroup {
            ranks: ranks.max(1),
            stats: RefCell::new(DapStats::default()),
        }
    }

    /// Checks that `cfg`'s axial dimensions divide evenly across `ranks`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the offending dimension.
    pub fn validate_config(cfg: &ModelConfig, ranks: usize) -> Result<(), String> {
        if ranks <= 1 {
            return Ok(());
        }
        if !cfg.n_seq.is_multiple_of(ranks) {
            return Err(format!(
                "DAP-{ranks} requires the MSA depth (n_seq = {}) to be divisible by the rank count",
                cfg.n_seq
            ));
        }
        if !cfg.n_res.is_multiple_of(ranks) {
            return Err(format!(
                "DAP-{ranks} requires the crop size (n_res = {}) to be divisible by the rank count",
                cfg.n_res
            ));
        }
        Ok(())
    }

    /// The accumulated communication stats since construction or the last
    /// [`DapGroup::take_stats`].
    pub fn stats(&self) -> DapStats {
        *self.stats.borrow()
    }

    /// Returns and resets the accumulated stats (call once per step).
    pub fn take_stats(&self) -> DapStats {
        std::mem::take(&mut self.stats.borrow_mut())
    }

    fn record_gather(&self, c: CollectiveStats) {
        let mut s = self.stats.borrow_mut();
        s.all_gather_elements += c.elements_sent;
        s.gathers += 1;
    }

    fn record_switch(&self, c: CollectiveStats) {
        let mut s = self.stats.borrow_mut();
        s.all_to_all_elements += c.elements_sent;
        s.switches += 1;
    }
}

impl AxialCollectives for DapGroup {
    fn ranks(&self) -> usize {
        self.ranks
    }

    fn gather_buffers(&self, shards: &[Vec<f32>]) -> Vec<f32> {
        let _span = sf_trace::span("collective", "dap_all_gather")
            .arg("ranks", self.ranks as f64)
            .arg("shard_elements", shards.first().map_or(0, Vec::len) as f64);
        let (mut outs, stats) = all_gather(shards);
        self.record_gather(stats);
        // Every rank's output is identical; hand back rank 0's.
        outs.swap_remove(0)
    }

    fn exchange_buffers(&self, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let _span = sf_trace::span("collective", "dap_all_to_all")
            .arg("ranks", self.ranks as f64)
            .arg("buffer_elements", inputs.first().map_or(0, Vec::len) as f64);
        let (outs, stats) = all_to_all(inputs);
        self.record_switch(stats);
        outs
    }
}

/// The communication volume one DAP-`ranks` training step *should* incur,
/// derived from the model dimensions — the same counting `ClusterSim`'s
/// analytic model prices (per-collective ring traffic factors:
/// `n(n-1)·shard` per all-gather, `(n-1)·buffer` per all-to-all).
///
/// Per main-stack block and recycling iteration the DAP Evoformer performs
/// 2 axis switches (MSA row→column on `[S,R,c_m]`, triangle start→end on
/// `[R,R,c_z]`) and 3 all-gathers (MSA after column attention, the full
/// transposed pair tensor for the ending-node bias, and the pair output).
/// Warm recycling iterations communicate exactly like the final one.
pub fn analytic_comm_volume(cfg: &ModelConfig, ranks: usize) -> DapStats {
    if ranks <= 1 {
        return DapStats::default();
    }
    let k = ranks;
    let msa = cfg.n_seq * cfg.n_res * cfg.c_m;
    let pair = cfg.n_res * cfg.n_res * cfg.c_z;
    // Per block: all-to-all moves everything but each rank's own chunk.
    let switch_elems = (msa / k) * (k - 1) + (pair / k) * (k - 1);
    // Per block: ring all-gathers move each shard n-1 times on each rank.
    let gather_elems = (k - 1) * msa + 2 * (k - 1) * pair;
    let events = cfg.evoformer_blocks * cfg.recycle_iters.max(1);
    DapStats {
        all_gather_elements: events * gather_elems,
        all_to_all_elements: events * switch_elems,
        gathers: 3 * events,
        switches: 2 * events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_autograd::{Graph, ParamStore};
    use sf_model::{AlphaFold, FeatureBatch};

    fn tiny() -> ModelConfig {
        // n_seq = 4, n_res = 12: both divisible by 2 and 4.
        ModelConfig::tiny()
    }

    #[test]
    fn config_validation_catches_uneven_axes() {
        let mut cfg = tiny();
        assert!(DapGroup::validate_config(&cfg, 2).is_ok());
        assert!(DapGroup::validate_config(&cfg, 4).is_ok());
        cfg.n_res = 13;
        assert!(DapGroup::validate_config(&cfg, 2).is_err());
        assert!(DapGroup::validate_config(&cfg, 1).is_ok());
    }

    #[test]
    fn dap_forward_matches_unsharded_through_real_collectives() {
        // The tentpole contract: DAP-k forward/backward equals the
        // unsharded path within 1e-5, k ∈ {1, 2, 4}, fused kernels on and
        // off — with the data moved by the *real* ring collectives.
        for fused in [true, false] {
            let mut cfg = tiny();
            cfg.fused_kernels = fused;
            let model = AlphaFold::new(cfg.clone());
            let batch = FeatureBatch::synthetic(&cfg, 11);

            let mut store = ParamStore::new();
            let mut g_ref = Graph::new();
            let out_ref = model.forward(&mut g_ref, &mut store, &batch).unwrap();
            g_ref.backward(out_ref.loss).unwrap();
            let grads_ref = g_ref.grads_by_name().unwrap();

            for k in [1usize, 2, 4] {
                let dap = DapGroup::new(k);
                let mut store_k = ParamStore::new();
                let mut g = Graph::new();
                let out = model
                    .forward_dap(&mut g, &mut store_k, &batch, Some(&dap))
                    .unwrap();
                let d_loss =
                    (out.loss_breakdown.total - out_ref.loss_breakdown.total).abs();
                assert!(
                    d_loss <= 1e-5,
                    "fused={fused} k={k}: loss diverged by {d_loss}"
                );
                g.backward(out.loss).unwrap();
                let grads = g.grads_by_name().unwrap();
                assert_eq!(grads.len(), grads_ref.len(), "k={k}: param set differs");
                for (name, gr) in &grads_ref {
                    assert!(
                        gr.allclose(&grads[name], 1e-5),
                        "fused={fused} k={k}: gradient mismatch at {name}"
                    );
                }
            }
        }
    }

    #[test]
    fn measured_comm_volume_matches_analytic_exactly() {
        // Element-exact agreement between the collectives' measured
        // traffic and the closed-form volume ClusterSim prices.
        for k in [2usize, 4] {
            let cfg = tiny();
            let model = AlphaFold::new(cfg.clone());
            let batch = FeatureBatch::synthetic(&cfg, 21);
            let dap = DapGroup::new(k);
            let mut store = ParamStore::new();
            let mut g = Graph::new();
            model
                .forward_dap(&mut g, &mut store, &batch, Some(&dap))
                .unwrap();
            let measured = dap.take_stats();
            let analytic = analytic_comm_volume(&cfg, k);
            assert_eq!(measured, analytic, "k={k}");
            // And the stats reset on take.
            assert_eq!(dap.stats(), DapStats::default());
        }
    }

    #[test]
    fn dap1_communicates_nothing() {
        let cfg = tiny();
        let model = AlphaFold::new(cfg.clone());
        let batch = FeatureBatch::synthetic(&cfg, 22);
        let dap = DapGroup::new(1);
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        model
            .forward_dap(&mut g, &mut store, &batch, Some(&dap))
            .unwrap();
        assert_eq!(dap.stats(), DapStats::default());
        assert_eq!(analytic_comm_volume(&cfg, 1), DapStats::default());
    }

    #[test]
    fn measured_volume_prices_on_the_fabric() {
        // The measured stats, pushed through FabricSpec's collective
        // formulas, give a positive communication time that grows with
        // the model and matches pricing the analytic volume (they are
        // element-identical).
        let cfg = tiny();
        let fabric = sf_cluster::FabricSpec::eos();
        let measured = {
            let model = AlphaFold::new(cfg.clone());
            let batch = FeatureBatch::synthetic(&cfg, 23);
            let dap = DapGroup::new(2);
            let mut store = ParamStore::new();
            let mut g = Graph::new();
            model
                .forward_dap(&mut g, &mut store, &batch, Some(&dap))
                .unwrap();
            dap.take_stats()
        };
        let analytic = analytic_comm_volume(&cfg, 2);
        let t_measured = measured.price_s(&fabric, 2, 4);
        let t_analytic = analytic.price_s(&fabric, 2, 4);
        assert!(t_measured > 0.0);
        assert!((t_measured - t_analytic).abs() < 1e-12 * t_analytic.max(1.0));
    }
}
