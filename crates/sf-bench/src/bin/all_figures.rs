//! Runs every table/figure reproduction in sequence — the command behind
//! EXPERIMENTS.md:
//! `cargo run --release -p sf-bench --bin all_figures`

fn main() {
    sf_bench::banner("Table 1");
    println!("{}", scalefold::experiments::table1());
    sf_bench::banner("Figure 3");
    println!("{}", scalefold::experiments::fig3());
    sf_bench::banner("Figure 4");
    println!("{}", scalefold::experiments::fig4(2000));
    sf_bench::banner("Figure 7");
    println!("{}", scalefold::experiments::fig7());
    sf_bench::banner("Figure 8");
    println!("{}", scalefold::experiments::fig8());
    sf_bench::banner("Figures 9 & 10");
    println!("{}", scalefold::experiments::fig9_fig10());
    sf_bench::banner("Figure 11");
    println!("{}", scalefold::experiments::fig11());
    sf_bench::banner("Extension: fine-tuning phase");
    println!("{}", scalefold::experiments::finetune_extension());
    sf_bench::banner("Scalability (headline claim)");
    print!("{}", scalefold::experiments::format_scaling(&scalefold::experiments::scaling()));
    println!("(Figure 5 uses real threads: run `cargo run -p sf-bench --bin fig5`)");
}
