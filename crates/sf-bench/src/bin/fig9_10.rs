//! Regenerates Figures 9 & 10: MLPerf time-to-train with/without async eval.
fn main() {
    sf_bench::banner("Figures 9 & 10: time to train");
    println!("{}", scalefold::experiments::fig9_fig10());
}
