//! Benchmark harness for the ScaleFold reproduction.
//!
//! Two kinds of targets:
//!
//! - **Figure/table binaries** (`src/bin/`): each regenerates one table or
//!   figure of the paper's evaluation and prints the same rows/series the
//!   paper reports, annotated with the paper's published numbers —
//!   `table1`, `fig3`, `fig4`, `fig5`, `fig7`, `fig8`, `fig9_10`, `fig11`,
//!   plus `all_figures` which runs the lot (this is what populates
//!   EXPERIMENTS.md).
//! - **Criterion microbenchmarks** (`benches/`): the *real* CPU
//!   implementations of the paper's fused kernels against their naive
//!   counterparts — LayerNorm, flash attention with pair bias, bundled
//!   GEMMs, fused Adam+SWA, bucketed gradient clipping, the two data
//!   pipelines, and whole-model forward/backward with and without gradient
//!   checkpointing.

/// Banner printed by every figure binary.
pub fn banner(title: &str) {
    println!("==============================================================");
    println!("ScaleFold-rs reproduction — {title}");
    println!("==============================================================");
}
