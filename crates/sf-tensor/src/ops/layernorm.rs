//! LayerNormalization kernels.
//!
//! The paper's custom Triton LN kernel (§3.3.1) differs from the stock
//! implementation in three ways, all of which are reproduced here as real
//! algorithms:
//!
//! 1. each "thread block" processes **multiple rows** (here: the row-chunked
//!    loop structure of [`fused_forward`]),
//! 2. normalization statistics are computed in a **single pass** (Welford's
//!    online mean/variance instead of the two-pass mean-then-variance),
//! 3. the backward pass computes weight/bias gradients with a **two-step
//!    reduction** (per-block partial sums into an intermediate buffer, then
//!    a column reduction) instead of atomics.
//!
//! [`naive_forward`]/[`naive_backward`] are the reference implementations;
//! tests assert bit-level-tolerant agreement.

use crate::{Result, Tensor, TensorError};

/// Default epsilon used by AlphaFold layer norms.
pub const LN_EPS: f32 = 1e-5;

/// Saved per-row statistics from an LN forward pass, needed for backward.
#[derive(Debug, Clone)]
pub struct LayerNormStats {
    /// Per-row mean, shape `[rows]`.
    pub mean: Vec<f32>,
    /// Per-row reciprocal standard deviation, shape `[rows]`.
    pub rstd: Vec<f32>,
}

fn check_ln_args(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> Result<usize> {
    let inner = *x.dims().last().ok_or(TensorError::EmptyInput("layernorm"))?;
    if gamma.dims() != [inner] || beta.dims() != [inner] {
        return Err(TensorError::ShapeMismatch {
            op: "layernorm params",
            lhs: x.dims().to_vec(),
            rhs: gamma.dims().to_vec(),
        });
    }
    if inner == 0 {
        return Err(TensorError::EmptyInput("layernorm"));
    }
    Ok(inner)
}

/// Reference two-pass LayerNorm over the last axis.
///
/// # Errors
///
/// Returns an error if `gamma`/`beta` do not have shape `[last_dim]`.
pub fn naive_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<(Tensor, LayerNormStats)> {
    let inner = check_ln_args(x, gamma, beta)?;
    let rows = x.len() / inner;
    let mut out = x.clone();
    let mut stats = LayerNormStats {
        mean: Vec::with_capacity(rows),
        rstd: Vec::with_capacity(rows),
    };
    for row in out.data_mut().chunks_mut(inner) {
        // Pass 1: mean. Pass 2: variance. (This is the "expensive iterative
        // method" the paper replaces.)
        let mean = row.iter().sum::<f32>() / inner as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / inner as f32;
        let rstd = 1.0 / (var + eps).sqrt();
        for (v, (&g, &b)) in row.iter_mut().zip(gamma.data().iter().zip(beta.data().iter())) {
            *v = (*v - mean) * rstd * g + b;
        }
        stats.mean.push(mean);
        stats.rstd.push(rstd);
    }
    Ok((out, stats))
}

/// Fused single-pass LayerNorm: Welford online statistics, rows processed in
/// chunks (mirroring the multi-row-per-thread-block Triton kernel).
///
/// # Errors
///
/// Returns an error if `gamma`/`beta` do not have shape `[last_dim]`.
pub fn fused_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<(Tensor, LayerNormStats)> {
    let inner = check_ln_args(x, gamma, beta)?;
    let rows = x.len() / inner;
    let mut out = x.clone();
    let mut stats = LayerNormStats {
        mean: Vec::with_capacity(rows),
        rstd: Vec::with_capacity(rows),
    };
    for row in out.data_mut().chunks_mut(inner) {
        // Single pass: Welford's recurrence for mean and M2.
        let mut mean = 0.0f32;
        let mut m2 = 0.0f32;
        for (i, &v) in row.iter().enumerate() {
            let delta = v - mean;
            mean += delta / (i + 1) as f32;
            m2 += delta * (v - mean);
        }
        let var = m2 / inner as f32;
        let rstd = 1.0 / (var + eps).sqrt();
        for (v, (&g, &b)) in row.iter_mut().zip(gamma.data().iter().zip(beta.data().iter())) {
            *v = (*v - mean) * rstd * g + b;
        }
        stats.mean.push(mean);
        stats.rstd.push(rstd);
    }
    Ok((out, stats))
}

/// Gradients of a LayerNorm: `(dx, dgamma, dbeta)`.
pub type LayerNormGrads = (Tensor, Tensor, Tensor);

/// Reference backward pass (direct accumulation of `dgamma`/`dbeta` — the
/// moral equivalent of the atomic-add kernel the paper avoids).
///
/// # Errors
///
/// Returns an error on shape mismatch between `dy`, `x`, params, and stats.
pub fn naive_backward(
    dy: &Tensor,
    x: &Tensor,
    gamma: &Tensor,
    stats: &LayerNormStats,
) -> Result<LayerNormGrads> {
    let inner = *x.dims().last().ok_or(TensorError::EmptyInput("layernorm"))?;
    let rows = x.len() / inner;
    if dy.dims() != x.dims() || stats.mean.len() != rows {
        return Err(TensorError::ShapeMismatch {
            op: "layernorm backward",
            lhs: dy.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let mut dx = Tensor::zeros(x.dims());
    let mut dgamma = Tensor::zeros(&[inner]);
    let mut dbeta = Tensor::zeros(&[inner]);
    for r in 0..rows {
        let xs = &x.data()[r * inner..(r + 1) * inner];
        let dys = &dy.data()[r * inner..(r + 1) * inner];
        let (mean, rstd) = (stats.mean[r], stats.rstd[r]);
        // xhat and the two row-reductions of the standard LN backward.
        let mut sum_dxhat = 0.0f32;
        let mut sum_dxhat_xhat = 0.0f32;
        for i in 0..inner {
            let xhat = (xs[i] - mean) * rstd;
            let dxhat = dys[i] * gamma.data()[i];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * xhat;
            dgamma.data_mut()[i] += dys[i] * xhat;
            dbeta.data_mut()[i] += dys[i];
        }
        let n = inner as f32;
        for i in 0..inner {
            let xhat = (xs[i] - mean) * rstd;
            let dxhat = dys[i] * gamma.data()[i];
            dx.data_mut()[r * inner + i] =
                rstd * (dxhat - sum_dxhat / n - xhat * sum_dxhat_xhat / n);
        }
    }
    Ok((dx, dgamma, dbeta))
}

/// Fused backward pass with the paper's **two-step reduction** for
/// `dgamma`/`dbeta`: rows are grouped into blocks of `block_rows`; each block
/// reduces its sub-region of upstream gradients into an intermediate
/// `[num_blocks, inner]` buffer; a second step reduces each column. This
/// avoids cross-block contention (atomics on a GPU) at the cost of one
/// intermediate buffer.
///
/// # Errors
///
/// Returns an error on shape mismatch, or if `block_rows == 0`.
pub fn fused_backward(
    dy: &Tensor,
    x: &Tensor,
    gamma: &Tensor,
    stats: &LayerNormStats,
    block_rows: usize,
) -> Result<LayerNormGrads> {
    if block_rows == 0 {
        return Err(TensorError::EmptyInput("fused_backward block_rows"));
    }
    let inner = *x.dims().last().ok_or(TensorError::EmptyInput("layernorm"))?;
    let rows = x.len() / inner;
    if dy.dims() != x.dims() || stats.mean.len() != rows {
        return Err(TensorError::ShapeMismatch {
            op: "layernorm backward",
            lhs: dy.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let num_blocks = rows.div_ceil(block_rows);
    // Step 1: per-block partial reductions into the intermediate buffer.
    let mut partial_g = vec![0.0f32; num_blocks * inner];
    let mut partial_b = vec![0.0f32; num_blocks * inner];
    let mut dx = Tensor::zeros(x.dims());
    for blk in 0..num_blocks {
        let r0 = blk * block_rows;
        let r1 = (r0 + block_rows).min(rows);
        for r in r0..r1 {
            let xs = &x.data()[r * inner..(r + 1) * inner];
            let dys = &dy.data()[r * inner..(r + 1) * inner];
            let (mean, rstd) = (stats.mean[r], stats.rstd[r]);
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for i in 0..inner {
                let xhat = (xs[i] - mean) * rstd;
                let dxhat = dys[i] * gamma.data()[i];
                sum_dxhat += dxhat;
                sum_dxhat_xhat += dxhat * xhat;
                partial_g[blk * inner + i] += dys[i] * xhat;
                partial_b[blk * inner + i] += dys[i];
            }
            let n = inner as f32;
            for i in 0..inner {
                let xhat = (xs[i] - mean) * rstd;
                let dxhat = dys[i] * gamma.data()[i];
                dx.data_mut()[r * inner + i] =
                    rstd * (dxhat - sum_dxhat / n - xhat * sum_dxhat_xhat / n);
            }
        }
    }
    // Step 2: column reduction of the intermediate buffer.
    let mut dgamma = Tensor::zeros(&[inner]);
    let mut dbeta = Tensor::zeros(&[inner]);
    for blk in 0..num_blocks {
        for i in 0..inner {
            dgamma.data_mut()[i] += partial_g[blk * inner + i];
            dbeta.data_mut()[i] += partial_b[blk * inner + i];
        }
    }
    Ok((dx, dgamma, dbeta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(rows: usize, inner: usize) -> (Tensor, Tensor, Tensor) {
        (
            Tensor::randn(&[rows, inner], 1).mul_scalar(2.0).add_scalar(0.5),
            Tensor::randn(&[inner], 2).mul_scalar(0.1).add_scalar(1.0),
            Tensor::randn(&[inner], 3).mul_scalar(0.1),
        )
    }

    #[test]
    fn forward_normalizes() {
        let x = Tensor::randn(&[8, 64], 4);
        let gamma = Tensor::ones(&[64]);
        let beta = Tensor::zeros(&[64]);
        let (y, _) = naive_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        for row in y.data().chunks(64) {
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn fused_matches_naive_forward() {
        let (x, gamma, beta) = setup(13, 128);
        let (y1, s1) = naive_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        let (y2, s2) = fused_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        assert!(y1.allclose(&y2, 1e-4));
        for (a, b) in s1.mean.iter().zip(s2.mean.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in s1.rstd.iter().zip(s2.rstd.iter()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn fused_backward_matches_naive() {
        let (x, gamma, beta) = setup(10, 32);
        let (_, stats) = fused_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        let dy = Tensor::randn(&[10, 32], 5);
        let (dx1, dg1, db1) = naive_backward(&dy, &x, &gamma, &stats).unwrap();
        for block_rows in [1, 3, 4, 10, 64] {
            let (dx2, dg2, db2) =
                fused_backward(&dy, &x, &gamma, &stats, block_rows).unwrap();
            assert!(dx1.allclose(&dx2, 1e-5));
            assert!(dg1.allclose(&dg2, 1e-4));
            assert!(db1.allclose(&db2, 1e-4));
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let inner = 8;
        let x = Tensor::randn(&[3, inner], 6);
        let gamma = Tensor::randn(&[inner], 7).add_scalar(1.0);
        let beta = Tensor::zeros(&[inner]);
        let loss = |x: &Tensor| -> f32 {
            let (y, _) = naive_forward(x, &gamma, &beta, LN_EPS).unwrap();
            // Loss = sum(y * w) for fixed w.
            y.data()
                .iter()
                .enumerate()
                .map(|(i, &v)| v * ((i % 5) as f32 - 2.0))
                .sum()
        };
        let dy = Tensor::from_vec(
            (0..x.len()).map(|i| (i % 5) as f32 - 2.0).collect(),
            &[3, inner],
        )
        .unwrap();
        let (_, stats) = naive_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        let (dx, _, _) = naive_backward(&dy, &x, &gamma, &stats).unwrap();
        let eps = 1e-2f32;
        for i in [0usize, 5, 11, 23] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let ana = dx.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "idx {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn rejects_bad_params() {
        let x = Tensor::zeros(&[2, 4]);
        let bad = Tensor::zeros(&[3]);
        let ok = Tensor::zeros(&[4]);
        assert!(naive_forward(&x, &bad, &ok, LN_EPS).is_err());
        assert!(fused_forward(&x, &ok, &bad, LN_EPS).is_err());
    }

    #[test]
    fn rejects_zero_block_rows() {
        let (x, gamma, beta) = setup(2, 4);
        let (_, stats) = fused_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        let dy = Tensor::ones(&[2, 4]);
        assert!(fused_backward(&dy, &x, &gamma, &stats, 0).is_err());
    }
}
