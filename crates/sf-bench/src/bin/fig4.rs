//! Regenerates Figure 4: sorted batch-preparation time distribution.
fn main() {
    sf_bench::banner("Figure 4: batch preparation time");
    println!("{}", scalefold::experiments::fig4(2000));
}
