//! Throughput of the two data pipelines under a straggler workload
//! (Figure 5 at benchmark scale), with real threads.

use criterion::{criterion_group, criterion_main, Criterion};
use sf_data::loader::{BlockingLoader, Dataset, LoaderConfig, NonBlockingPipeline};
use std::sync::Arc;
use std::time::Duration;

struct StragglerWorkload {
    n: usize,
}

impl Dataset for StragglerWorkload {
    type Item = usize;

    fn len(&self) -> usize {
        self.n
    }

    fn prepare(&self, index: usize) -> usize {
        // Every 8th batch is 10x slower.
        let ms = if index.is_multiple_of(8) { 10 } else { 1 };
        std::thread::sleep(Duration::from_millis(ms));
        index
    }
}

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_pipeline");
    group.sample_size(10);
    let n = 32usize;
    let train = Duration::from_millis(2);
    group.bench_function("blocking_loader", |b| {
        b.iter(|| {
            let ds = Arc::new(StragglerWorkload { n });
            let mut sum = 0usize;
            for item in
                BlockingLoader::new(ds, (0..n).collect(), LoaderConfig::with_workers(4))
            {
                let (i, _) = item.expect("no faults in benchmark workload");
                std::thread::sleep(train);
                sum += i;
            }
            sum
        })
    });
    group.bench_function("nonblocking_pipeline", |b| {
        b.iter(|| {
            let ds = Arc::new(StragglerWorkload { n });
            let mut sum = 0usize;
            for item in
                NonBlockingPipeline::new(ds, (0..n).collect(), LoaderConfig::with_workers(4))
            {
                let (i, _) = item.expect("no faults in benchmark workload");
                std::thread::sleep(train);
                sum += i;
            }
            sum
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
