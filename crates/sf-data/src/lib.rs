//! Data pipeline for the ScaleFold reproduction.
//!
//! Three pieces, mirroring §3.2 of the paper:
//!
//! - [`protein`]: a synthetic protein generator standing in for the OpenFold
//!   dataset (PDB structures + MSAs). Sequence lengths and MSA depths follow
//!   heavy-tailed distributions like the real data, because those two
//!   quantities drive batch-preparation time.
//! - [`prep_time`]: the batch-preparation cost model — calibrated so sorted
//!   prep times span about three orders of magnitude with a ~10% slow tail
//!   (the paper's Figure 4).
//! - [`loader`]: two *real threaded* data pipelines over any [`Dataset`]:
//!   [`loader::BlockingLoader`] reproduces PyTorch DataLoader's in-order
//!   delivery (a slow batch blocks everything behind it), and
//!   [`loader::NonBlockingPipeline`] is the paper's fix — a priority queue
//!   that yields the lowest-index *ready* batch immediately (best-effort
//!   order, every batch exactly once). Both loaders catch worker panics,
//!   retry with backoff, and deliver a typed [`loader::LoaderError`]
//!   instead of deadlocking (see `sf-faults` for deterministic fault
//!   injection against them).
//!
//! [`featurize`] turns synthetic proteins into `sf_model::FeatureBatch`es
//! (cropping, MSA sampling, BERT-style MSA masking).

pub mod featurize;
pub mod loader;
pub mod prep_time;
pub mod protein;

pub use loader::{BlockingLoader, Dataset, LoaderConfig, LoaderError, NonBlockingPipeline};
pub use prep_time::PrepTimeModel;
pub use protein::{ProteinRecord, SyntheticDataset};
