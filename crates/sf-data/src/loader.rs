//! The two data pipelines of the paper's Figure 5, with real worker threads.
//!
//! **Blocking** (PyTorch `DataLoader` semantics): batches are delivered in
//! sampler order, so one slow batch stalls the consumer even when later
//! batches are already prepared.
//!
//! **Non-blocking** (ScaleFold §3.2): prepared batches go into a priority
//! queue keyed by their sampler index, and the consumer takes the
//! *lowest-index ready* batch immediately — best-effort order, every batch
//! delivered exactly once, and a slow batch is simply yielded later.

use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A source of preparable items (the dataset side of the pipeline).
///
/// `prepare` runs on worker threads and may take wildly varying time — that
/// variance is exactly what the non-blocking pipeline absorbs.
pub trait Dataset: Send + Sync + 'static {
    /// The prepared batch type.
    type Item: Send + 'static;

    /// Number of items.
    fn len(&self) -> usize;

    /// True if the dataset has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prepares item `index` (expensive; called from worker threads).
    fn prepare(&self, index: usize) -> Self::Item;
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoaderConfig {
    /// Worker threads preparing batches concurrently.
    pub num_workers: usize,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        LoaderConfig { num_workers: 4 }
    }
}

struct Shared<T> {
    state: Mutex<SharedState<T>>,
    ready: Condvar,
    next_fetch: AtomicUsize,
}

struct SharedState<T> {
    /// Prepared items keyed by *position in the sampler order*.
    buffer: BTreeMap<usize, T>,
}

fn spawn_workers<D: Dataset>(
    dataset: Arc<D>,
    order: Arc<Vec<usize>>,
    shared: Arc<Shared<D::Item>>,
    num_workers: usize,
) -> Vec<JoinHandle<()>> {
    (0..num_workers.max(1))
        .map(|_| {
            let dataset = Arc::clone(&dataset);
            let order = Arc::clone(&order);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || loop {
                let pos = shared.next_fetch.fetch_add(1, Ordering::Relaxed);
                if pos >= order.len() {
                    return;
                }
                let item = dataset.prepare(order[pos]);
                let mut st = shared.state.lock();
                st.buffer.insert(pos, item);
                shared.ready.notify_all();
            })
        })
        .collect()
}

/// In-order pipeline (PyTorch `DataLoader` semantics): yields position 0,
/// then 1, ... — waiting for each even if later positions are ready.
///
/// Yields `(dataset_index, item)` pairs.
pub struct BlockingLoader<D: Dataset> {
    shared: Arc<Shared<D::Item>>,
    order: Arc<Vec<usize>>,
    next_yield: usize,
    workers: Vec<JoinHandle<()>>,
}

impl<D: Dataset> BlockingLoader<D> {
    /// Starts workers preparing `order` (a permutation of dataset indices).
    pub fn new(dataset: Arc<D>, order: Vec<usize>, cfg: LoaderConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(SharedState { buffer: BTreeMap::new() }),
            ready: Condvar::new(),
            next_fetch: AtomicUsize::new(0),
        });
        let order = Arc::new(order);
        let workers = spawn_workers(dataset, Arc::clone(&order), Arc::clone(&shared), cfg.num_workers);
        BlockingLoader {
            shared,
            order,
            next_yield: 0,
            workers,
        }
    }
}

impl<D: Dataset> Iterator for BlockingLoader<D> {
    type Item = (usize, D::Item);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_yield >= self.order.len() {
            return None;
        }
        let want = self.next_yield;
        let mut st = self.shared.state.lock();
        // Strict order: wait specifically for `want`, even if others are
        // ready — this is the blocking behaviour of Figure 5 (i).
        while !st.buffer.contains_key(&want) {
            self.shared.ready.wait(&mut st);
        }
        let item = st.buffer.remove(&want).expect("checked above");
        drop(st);
        self.next_yield += 1;
        Some((self.order[want], item))
    }
}

impl<D: Dataset> Drop for BlockingLoader<D> {
    fn drop(&mut self) {
        // Drain the fetch counter so workers exit, then join.
        self.shared.next_fetch.store(usize::MAX, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// ScaleFold's non-blocking pipeline: yields the lowest-index *ready* batch
/// as soon as any batch is ready (best-effort order; exactly-once
/// delivery).
///
/// Yields `(dataset_index, item)` pairs.
pub struct NonBlockingPipeline<D: Dataset> {
    shared: Arc<Shared<D::Item>>,
    order: Arc<Vec<usize>>,
    yielded: usize,
    workers: Vec<JoinHandle<()>>,
}

impl<D: Dataset> NonBlockingPipeline<D> {
    /// Starts workers preparing `order` (a permutation of dataset indices).
    pub fn new(dataset: Arc<D>, order: Vec<usize>, cfg: LoaderConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(SharedState { buffer: BTreeMap::new() }),
            ready: Condvar::new(),
            next_fetch: AtomicUsize::new(0),
        });
        let order = Arc::new(order);
        let workers = spawn_workers(dataset, Arc::clone(&order), Arc::clone(&shared), cfg.num_workers);
        NonBlockingPipeline {
            shared,
            order,
            yielded: 0,
            workers,
        }
    }
}

impl<D: Dataset> Iterator for NonBlockingPipeline<D> {
    type Item = (usize, D::Item);

    fn next(&mut self) -> Option<Self::Item> {
        if self.yielded >= self.order.len() {
            return None;
        }
        let mut st = self.shared.state.lock();
        // Priority queue semantics: take the lowest-index ready batch, the
        // moment anything is ready — Figure 5 (ii).
        while st.buffer.is_empty() {
            self.shared.ready.wait(&mut st);
        }
        let (&pos, _) = st.buffer.iter().next().expect("non-empty");
        let item = st.buffer.remove(&pos).expect("present");
        drop(st);
        self.yielded += 1;
        Some((self.order[pos], item))
    }
}

impl<D: Dataset> Drop for NonBlockingPipeline<D> {
    fn drop(&mut self) {
        self.shared.next_fetch.store(usize::MAX, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    /// Test dataset whose item `i` takes `delays[i]` to prepare.
    struct SleepyDataset {
        delays: Vec<Duration>,
    }

    impl Dataset for SleepyDataset {
        type Item = usize;

        fn len(&self) -> usize {
            self.delays.len()
        }

        fn prepare(&self, index: usize) -> usize {
            std::thread::sleep(self.delays[index]);
            index
        }
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn blocking_yields_in_exact_order() {
        let d = Arc::new(SleepyDataset {
            delays: vec![ms(30), ms(1), ms(1), ms(1)],
        });
        let loader = BlockingLoader::new(d, vec![0, 1, 2, 3], LoaderConfig { num_workers: 4 });
        let got: Vec<usize> = loader.map(|(i, _)| i).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn non_blocking_yields_fast_batches_first() {
        // Paper's Figure 5 scenario: batch "b" (position 0 here) is slow;
        // the pipeline must yield the ready batches before it.
        let d = Arc::new(SleepyDataset {
            delays: vec![ms(120), ms(5), ms(5), ms(5)],
        });
        let loader =
            NonBlockingPipeline::new(d, vec![0, 1, 2, 3], LoaderConfig { num_workers: 4 });
        let got: Vec<usize> = loader.map(|(i, _)| i).collect();
        assert_ne!(got[0], 0, "slow batch must not be yielded first: {got:?}");
        // Exactly-once delivery.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn non_blocking_is_faster_under_straggler() {
        // Consumer "trains" for 10 ms per batch; batch at position 1 takes
        // 80 ms to prepare. Blocking: the consumer stalls on it. Non-
        // blocking: the consumer keeps training on ready batches.
        let delays = vec![ms(5), ms(80), ms(5), ms(5), ms(5), ms(5)];
        let order: Vec<usize> = (0..delays.len()).collect();
        let run = |blocking: bool| -> Duration {
            let d = Arc::new(SleepyDataset { delays: delays.clone() });
            let start = Instant::now();
            let consume = |i: usize| {
                let _ = i;
                std::thread::sleep(ms(10));
            };
            if blocking {
                for (i, _) in BlockingLoader::new(d, order.clone(), LoaderConfig { num_workers: 2 }) {
                    consume(i);
                }
            } else {
                for (i, _) in
                    NonBlockingPipeline::new(d, order.clone(), LoaderConfig { num_workers: 2 })
                {
                    consume(i);
                }
            }
            start.elapsed()
        };
        let t_blocking = run(true);
        let t_nonblocking = run(false);
        assert!(
            t_nonblocking <= t_blocking + ms(5),
            "non-blocking {t_nonblocking:?} vs blocking {t_blocking:?}"
        );
    }

    #[test]
    fn both_loaders_respect_custom_order() {
        let d = Arc::new(SleepyDataset {
            delays: vec![ms(1); 5],
        });
        let order = vec![4, 2, 0, 1, 3];
        let got: Vec<usize> =
            BlockingLoader::new(Arc::clone(&d), order.clone(), LoaderConfig::default())
                .map(|(i, _)| i)
                .collect();
        assert_eq!(got, order);

        let mut got2: Vec<usize> = NonBlockingPipeline::new(d, order.clone(), LoaderConfig::default())
            .map(|(i, _)| i)
            .collect();
        got2.sort_unstable();
        assert_eq!(got2, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_order_yields_nothing() {
        let d = Arc::new(SleepyDataset { delays: vec![] });
        assert_eq!(
            BlockingLoader::new(Arc::clone(&d), vec![], LoaderConfig::default()).count(),
            0
        );
        assert_eq!(
            NonBlockingPipeline::new(d, vec![], LoaderConfig::default()).count(),
            0
        );
    }

    #[test]
    fn single_worker_still_completes() {
        let d = Arc::new(SleepyDataset {
            delays: vec![ms(2); 6],
        });
        let got: Vec<usize> =
            NonBlockingPipeline::new(d, (0..6).collect(), LoaderConfig { num_workers: 1 })
                .map(|(i, _)| i)
                .collect();
        assert_eq!(got, (0..6).collect::<Vec<_>>()); // 1 worker => in order
    }

    #[test]
    fn dropping_mid_iteration_joins_workers() {
        let d = Arc::new(SleepyDataset {
            delays: vec![ms(5); 20],
        });
        let mut loader = NonBlockingPipeline::new(d, (0..20).collect(), LoaderConfig::default());
        let _ = loader.next();
        drop(loader); // must not hang or panic
    }
}
