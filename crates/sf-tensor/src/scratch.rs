//! Thread-local reusable scratch buffers for kernel temporaries.
//!
//! The hot kernels need short-lived `f32` workspaces — packed GEMM panels,
//! attention logit blocks, backward-pass intermediates. Allocating a fresh
//! `Vec` per call costs an allocator round-trip per op *per thread*; this
//! module keeps a small per-thread stack of retired buffers and hands them
//! back out, so steady-state training performs no scratch allocations.
//!
//! Buffers are **not** cleared between uses: [`with_scratch`] hands the
//! closure a slice with arbitrary stale contents, which every current caller
//! fully overwrites before reading. Use [`with_zeroed_scratch`] when the
//! kernel accumulates into the buffer.

use std::cell::RefCell;

thread_local! {
    static FREE: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Retired buffers kept per thread. More than this simply get freed.
const MAX_RETIRED: usize = 8;

fn take(len: usize) -> Vec<f32> {
    FREE.with(|free| {
        let mut free = free.borrow_mut();
        // Prefer the smallest retired buffer that already fits.
        let mut best: Option<usize> = None;
        for (i, buf) in free.iter().enumerate() {
            if buf.capacity() >= len && best.is_none_or(|b| buf.capacity() < free[b].capacity()) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => free.swap_remove(i),
            None => Vec::with_capacity(len),
        }
    })
}

fn recycle(buf: Vec<f32>) {
    FREE.with(|free| {
        let mut free = free.borrow_mut();
        if free.len() < MAX_RETIRED {
            free.push(buf);
        }
    })
}

/// Runs `f` with a scratch slice of length `len` whose contents are
/// arbitrary (possibly stale from a previous use). The buffer returns to
/// this thread's free list afterwards.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = take(len);
    // `resize` only writes the gap beyond the current length; reused
    // buffers of sufficient length skip the fill entirely.
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    let out = f(&mut buf[..len]);
    recycle(buf);
    out
}

/// Like [`with_scratch`] but the slice is zero-filled.
pub fn with_zeroed_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    with_scratch(len, |buf| {
        buf.fill(0.0);
        f(buf)
    })
}

/// Two independent scratch slices (e.g. packed panel + logits block).
pub fn with_scratch2<R>(l1: usize, l2: usize, f: impl FnOnce(&mut [f32], &mut [f32]) -> R) -> R {
    with_scratch(l1, |a| with_scratch(l2, |b| f(a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_reused() {
        let ptr1 = with_scratch(1024, |buf| buf.as_ptr() as usize);
        let ptr2 = with_scratch(512, |buf| buf.as_ptr() as usize);
        // The second, smaller request must reuse the first allocation.
        assert_eq!(ptr1, ptr2);
    }

    #[test]
    fn zeroed_scratch_really_is_zero() {
        with_scratch(64, |buf| buf.fill(7.0));
        with_zeroed_scratch(64, |buf| assert!(buf.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn nested_scratch_gets_distinct_buffers() {
        with_scratch2(128, 128, |a, b| {
            a.fill(1.0);
            b.fill(2.0);
            assert!(a.iter().all(|&v| v == 1.0));
        });
    }
}
