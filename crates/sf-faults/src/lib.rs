//! Deterministic fault injection for the ScaleFold reproduction.
//!
//! At 2080-GPU scale (the paper's headline run) worker stalls, rank
//! failures, and corrupted state are routine, not exceptional. This crate
//! provides the *fault side* of that reality so the rest of the stack can
//! prove it survives it:
//!
//! - [`FaultPlan`]: a declarative, deterministic schedule of faults —
//!   data-worker panics, slow ("straggler") samples, NaN-gradient steps,
//!   checkpoint corruption, and simulated rank failures.
//! - [`FaultInjector`]: a cheap shared handle the stack queries at the
//!   right choke points (`Dataset::prepare`, `Trainer::train_step`,
//!   checkpoint write paths). Every fault that actually fires is recorded
//!   in an event log for post-mortem assertions.
//! - [`FaultyDataset`]: wraps any `sf_data::Dataset` so the scheduled
//!   data-pipeline faults fire inside real worker threads.
//! - [`corrupt`]: byte-level checkpoint corruption helpers (bit flips and
//!   truncation) for crash/corruption drills.
//!
//! Everything is deterministic: the same plan against the same stack
//! produces the same recovery log, which is what makes fault drills
//! assertable in CI.

use sf_data::loader::Dataset;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub mod corrupt;

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// `Dataset::prepare(dataset_index)` panics on its first `times`
    /// attempts (use `u32::MAX` for a permanently poisoned sample).
    WorkerPanic {
        /// Dataset index whose preparation panics.
        dataset_index: usize,
        /// Number of attempts that panic before the sample recovers.
        times: u32,
    },
    /// `Dataset::prepare(dataset_index)` sleeps `delay` before returning —
    /// a deterministic straggler.
    SlowSample {
        /// Dataset index to slow down.
        dataset_index: usize,
        /// Added preparation latency.
        delay: Duration,
    },
    /// The gradient of optimizer step `step` (0-based) is poisoned with a
    /// NaN before the update, exercising the trainer's non-finite guard.
    NanGrad {
        /// 0-based optimizer step to poison.
        step: u64,
    },
    /// A simulated rank fails at cluster-simulation step `step`
    /// (consumed by `sf-cluster`'s failure model).
    RankFailure {
        /// Failing rank id.
        rank: usize,
        /// 0-based simulation step of the failure.
        step: u64,
    },
}

/// A deterministic schedule of faults.
///
/// Build one with the `with_*` methods; hand it to a [`FaultInjector`]
/// (and, for rank failures, to `sf-cluster`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults fire; the injector becomes a no-op).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a permanent worker panic on `dataset_index`.
    pub fn with_worker_panic(mut self, dataset_index: usize) -> Self {
        self.faults.push(FaultKind::WorkerPanic {
            dataset_index,
            times: u32::MAX,
        });
        self
    }

    /// Adds a transient worker panic on `dataset_index` that recovers
    /// after `times` panicking attempts.
    pub fn with_transient_worker_panic(mut self, dataset_index: usize, times: u32) -> Self {
        self.faults
            .push(FaultKind::WorkerPanic { dataset_index, times });
        self
    }

    /// Adds a deterministic straggler: `prepare(dataset_index)` gains
    /// `delay` of latency.
    pub fn with_slow_sample(mut self, dataset_index: usize, delay: Duration) -> Self {
        self.faults
            .push(FaultKind::SlowSample { dataset_index, delay });
        self
    }

    /// Poisons the gradients of optimizer step `step` with a NaN.
    pub fn with_nan_grad(mut self, step: u64) -> Self {
        self.faults.push(FaultKind::NanGrad { step });
        self
    }

    /// Schedules rank `rank` to fail at simulation step `step`.
    pub fn with_rank_failure(mut self, rank: usize, step: u64) -> Self {
        self.faults.push(FaultKind::RankFailure { rank, step });
        self
    }

    /// All scheduled faults.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Scheduled `(step, rank)` failures, for the cluster simulator.
    pub fn rank_failures(&self) -> Vec<(u64, usize)> {
        let mut v: Vec<(u64, usize)> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                FaultKind::RankFailure { rank, step } => Some((*step, *rank)),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v
    }
}

/// A fault that actually fired, for the recovery log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// An injected panic fired in `prepare(dataset_index)`.
    InjectedPanic {
        /// Poisoned dataset index.
        dataset_index: usize,
        /// 1-based attempt number that panicked.
        attempt: u32,
    },
    /// An injected delay fired in `prepare(dataset_index)`.
    InjectedDelay {
        /// Slowed dataset index.
        dataset_index: usize,
        /// The injected latency.
        delay: Duration,
    },
    /// A NaN gradient was injected at optimizer step `step`.
    InjectedNanGrad {
        /// Poisoned step.
        step: u64,
    },
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEvent::InjectedPanic {
                dataset_index,
                attempt,
            } => write!(f, "injected panic in prepare({dataset_index}) attempt {attempt}"),
            FaultEvent::InjectedDelay {
                dataset_index,
                delay,
            } => write!(f, "injected {delay:?} delay in prepare({dataset_index})"),
            FaultEvent::InjectedNanGrad { step } => {
                write!(f, "injected NaN gradient at step {step}")
            }
        }
    }
}

struct PanicState {
    dataset_index: usize,
    remaining_and_total: (AtomicU32, u32),
}

struct InjectorInner {
    plan: FaultPlan,
    panic_states: Vec<PanicState>,
    log: Mutex<Vec<FaultEvent>>,
}

/// Shared, thread-safe handle that fires the faults of a [`FaultPlan`]
/// at the stack's choke points. Cloning shares state (attempt counters
/// and the event log).
#[derive(Clone)]
pub struct FaultInjector {
    inner: Arc<InjectorInner>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.inner.plan)
            .finish()
    }
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let panic_states = plan
            .faults
            .iter()
            .filter_map(|f| match f {
                FaultKind::WorkerPanic {
                    dataset_index,
                    times,
                } => Some(PanicState {
                    dataset_index: *dataset_index,
                    remaining_and_total: (AtomicU32::new(*times), *times),
                }),
                _ => None,
            })
            .collect();
        FaultInjector {
            inner: Arc::new(InjectorInner {
                plan,
                panic_states,
                log: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A no-op injector (empty plan).
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan::none())
    }

    /// The plan this injector fires.
    pub fn plan(&self) -> &FaultPlan {
        &self.inner.plan
    }

    /// Called from `Dataset::prepare`: sleeps through any scheduled delay,
    /// then panics if this index still has scheduled panic attempts.
    ///
    /// # Panics
    ///
    /// Panics deliberately when a scheduled [`FaultKind::WorkerPanic`]
    /// fires — that is the injected fault.
    pub fn on_prepare(&self, dataset_index: usize) {
        for fault in &self.inner.plan.faults {
            if let FaultKind::SlowSample {
                dataset_index: idx,
                delay,
            } = fault
            {
                if *idx == dataset_index {
                    self.record(FaultEvent::InjectedDelay {
                        dataset_index,
                        delay: *delay,
                    });
                    std::thread::sleep(*delay);
                }
            }
        }
        for state in &self.inner.panic_states {
            if state.dataset_index != dataset_index {
                continue;
            }
            let (remaining, total) = &state.remaining_and_total;
            let prev = remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
                .unwrap_or(0);
            if prev > 0 {
                let attempt = if *total == u32::MAX {
                    0
                } else {
                    total - prev + 1
                };
                self.record(FaultEvent::InjectedPanic {
                    dataset_index,
                    attempt,
                });
                panic!("sf-faults: injected panic in prepare({dataset_index})");
            }
        }
    }

    /// Called from the trainer before the optimizer update: returns `true`
    /// exactly when step `step` is scheduled for NaN-gradient poisoning.
    pub fn poison_grads_at(&self, step: u64) -> bool {
        let hit = self
            .inner
            .plan
            .faults
            .iter()
            .any(|f| matches!(f, FaultKind::NanGrad { step: s } if *s == step));
        if hit {
            self.record(FaultEvent::InjectedNanGrad { step });
        }
        hit
    }

    /// Appends `event` to the recovery log.
    pub fn record(&self, event: FaultEvent) {
        self.inner
            .log
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(event);
    }

    /// Everything that fired so far, in firing order.
    pub fn log(&self) -> Vec<FaultEvent> {
        self.inner
            .log
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

/// Wraps a [`Dataset`] so the injector's data-pipeline faults fire inside
/// the real worker threads of `sf-data`'s loaders.
pub struct FaultyDataset<D: Dataset> {
    inner: D,
    injector: FaultInjector,
}

impl<D: Dataset> FaultyDataset<D> {
    /// Wraps `inner` with `injector`.
    pub fn new(inner: D, injector: FaultInjector) -> Self {
        FaultyDataset { inner, injector }
    }
}

impl<D: Dataset> Dataset for FaultyDataset<D> {
    type Item = D::Item;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn prepare(&self, index: usize) -> D::Item {
        self.injector.on_prepare(index);
        self.inner.prepare(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_data::loader::{LoaderConfig, LoaderError, NonBlockingPipeline};

    struct TrivialDataset(usize);

    impl Dataset for TrivialDataset {
        type Item = usize;

        fn len(&self) -> usize {
            self.0
        }

        fn prepare(&self, index: usize) -> usize {
            index * 10
        }
    }

    #[test]
    fn empty_plan_is_transparent() {
        let inj = FaultInjector::disabled();
        let d = FaultyDataset::new(TrivialDataset(3), inj.clone());
        assert_eq!(d.prepare(2), 20);
        assert!(inj.log().is_empty());
    }

    #[test]
    fn permanent_panic_surfaces_as_loader_error() {
        let inj = FaultInjector::new(FaultPlan::none().with_worker_panic(1));
        let d = Arc::new(FaultyDataset::new(TrivialDataset(4), inj.clone()));
        let cfg = LoaderConfig {
            num_workers: 2,
            max_retries: 1,
            retry_backoff: Duration::from_millis(1),
        };
        let results: Vec<_> = NonBlockingPipeline::new(d, (0..4).collect(), cfg).collect();
        let errs: Vec<_> = results.into_iter().filter_map(Result::err).collect();
        assert_eq!(errs.len(), 1);
        assert!(matches!(
            &errs[0],
            LoaderError::PreparePanicked { index: 1, attempts: 2, .. }
        ));
        assert!(inj
            .log()
            .iter()
            .any(|e| matches!(e, FaultEvent::InjectedPanic { dataset_index: 1, .. })));
    }

    #[test]
    fn transient_panic_recovers_after_scheduled_attempts() {
        let inj = FaultInjector::new(FaultPlan::none().with_transient_worker_panic(0, 2));
        let d = Arc::new(FaultyDataset::new(TrivialDataset(2), inj));
        let cfg = LoaderConfig {
            num_workers: 1,
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
        };
        let results: Vec<_> = NonBlockingPipeline::new(d, (0..2).collect(), cfg).collect();
        assert!(results.iter().all(Result::is_ok), "{results:?}");
    }

    #[test]
    fn nan_poisoning_fires_exactly_on_scheduled_step() {
        let inj = FaultInjector::new(FaultPlan::none().with_nan_grad(3));
        assert!(!inj.poison_grads_at(2));
        assert!(inj.poison_grads_at(3));
        assert!(!inj.poison_grads_at(4));
        assert_eq!(inj.log(), vec![FaultEvent::InjectedNanGrad { step: 3 }]);
    }

    #[test]
    fn slow_sample_delays_and_logs() {
        let inj =
            FaultInjector::new(FaultPlan::none().with_slow_sample(0, Duration::from_millis(20)));
        let d = FaultyDataset::new(TrivialDataset(1), inj.clone());
        let start = std::time::Instant::now();
        let _ = d.prepare(0);
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(inj.log().len(), 1);
    }

    #[test]
    fn rank_failures_sorted_by_step() {
        let plan = FaultPlan::none()
            .with_rank_failure(7, 30)
            .with_rank_failure(2, 10);
        assert_eq!(plan.rank_failures(), vec![(10, 2), (30, 7)]);
    }
}
