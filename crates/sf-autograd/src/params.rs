//! Named parameter storage shared across training steps.
//!
//! The tape is rebuilt every step, but parameters persist. A [`ParamStore`]
//! owns the master `f32` copies; [`Graph::use_param`] binds one into the
//! current tape, and [`Graph::grads_by_name`] maps gradients back to names
//! for the optimizer (multiple uses of the same parameter — e.g. AlphaFold
//! recycling iterations — accumulate correctly).

use crate::graph::{Graph, Var};
use crate::{AutogradError, Result};
use sf_tensor::Tensor;
use std::collections::BTreeMap;

/// Master storage of named trainable parameters.
///
/// `BTreeMap` keeps iteration deterministic, which matters for bitwise
/// reproducible training runs.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: BTreeMap<String, Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Returns the tensor for `name`, initializing it with `init` on first
    /// access.
    pub fn get_or_init(&mut self, name: &str, init: impl FnOnce() -> Tensor) -> &Tensor {
        self.params.entry(name.to_string()).or_insert_with(init)
    }

    /// Looks up an existing parameter.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.params.get(name)
    }

    /// Mutable access to an existing parameter (used by optimizers).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Tensor> {
        self.params.get_mut(name)
    }

    /// Overwrites (or inserts) a parameter tensor.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) {
        self.params.insert(name.into(), value);
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar element count across all parameters.
    pub fn num_elements(&self) -> usize {
        self.params.values().map(Tensor::len).sum()
    }

    /// Iterates `(name, tensor)` pairs in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates mutably in deterministic order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut Tensor)> {
        self.params.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Sorted parameter names.
    pub fn names(&self) -> Vec<String> {
        self.params.keys().cloned().collect()
    }

    /// Global L2 norm over all parameters (diagnostic).
    pub fn global_norm(&self) -> f32 {
        self.params
            .values()
            .map(|t| {
                let n = t.norm() as f64;
                n * n
            })
            .sum::<f64>()
            .sqrt() as f32
    }
}

impl Graph {
    /// Binds a stored parameter into this tape as a trainable leaf,
    /// recording the name so gradients can be read back by name.
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::UnknownParam`] if `name` is absent.
    pub fn use_param(&mut self, store: &ParamStore, name: &str) -> Result<Var> {
        let tensor = store
            .get(name)
            .ok_or_else(|| AutogradError::UnknownParam(name.to_string()))?
            .clone();
        let var = self.param(tensor);
        self.bindings.push((name.to_string(), var));
        Ok(var)
    }

    /// Like [`Graph::use_param`] but initializes the parameter on first use.
    pub fn use_param_or_init(
        &mut self,
        store: &mut ParamStore,
        name: &str,
        init: impl FnOnce() -> Tensor,
    ) -> Var {
        let tensor = store.get_or_init(name, init).clone();
        let var = self.param(tensor);
        self.bindings.push((name.to_string(), var));
        var
    }

    /// Gradients accumulated per bound parameter name. Parameters bound
    /// multiple times (weight sharing / recycling) have their gradients
    /// summed.
    ///
    /// # Errors
    ///
    /// Returns an error only if gradient shapes for the same name disagree
    /// (which would indicate tape corruption).
    pub fn grads_by_name(&self) -> Result<BTreeMap<String, Tensor>> {
        let mut out: BTreeMap<String, Tensor> = BTreeMap::new();
        for (name, var) in &self.bindings {
            let Some(g) = self.grad(*var) else { continue };
            match out.get_mut(name) {
                Some(acc) => *acc = acc.add(g)?,
                None => {
                    out.insert(name.clone(), g.clone());
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_init_and_lookup() {
        let mut store = ParamStore::new();
        let t = store.get_or_init("w", || Tensor::ones(&[2, 2])).clone();
        assert_eq!(t.sum_all(), 4.0);
        // Second init closure must not run.
        let t2 = store.get_or_init("w", || panic!("should not init twice"));
        assert_eq!(t2.sum_all(), 4.0);
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_elements(), 4);
    }

    #[test]
    fn grads_by_name_single_use() {
        let mut store = ParamStore::new();
        store.insert("w", Tensor::from_vec(vec![3.0], &[1]).unwrap());
        let mut g = Graph::new();
        let w = g.use_param(&store, "w").unwrap();
        let y = g.square(w).unwrap();
        let loss = g.sum_all(y).unwrap();
        g.backward(loss).unwrap();
        let grads = g.grads_by_name().unwrap();
        assert_eq!(grads["w"].data(), &[6.0]);
    }

    #[test]
    fn shared_weight_grads_accumulate() {
        // loss = w*x1 + w*x2 -> dL/dw = x1 + x2 via two separate bindings.
        let mut store = ParamStore::new();
        store.insert("w", Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let mut g = Graph::new();
        let w1 = g.use_param(&store, "w").unwrap();
        let w2 = g.use_param(&store, "w").unwrap();
        let x1 = g.constant(Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let x2 = g.constant(Tensor::from_vec(vec![5.0], &[1]).unwrap());
        let t1 = g.mul(w1, x1).unwrap();
        let t2 = g.mul(w2, x2).unwrap();
        let s = g.add(t1, t2).unwrap();
        let loss = g.sum_all(s).unwrap();
        g.backward(loss).unwrap();
        let grads = g.grads_by_name().unwrap();
        assert_eq!(grads["w"].data(), &[7.0]);
    }

    #[test]
    fn unknown_param_errors() {
        let store = ParamStore::new();
        let mut g = Graph::new();
        assert!(matches!(
            g.use_param(&store, "missing"),
            Err(AutogradError::UnknownParam(_))
        ));
    }

    #[test]
    fn global_norm() {
        let mut store = ParamStore::new();
        store.insert("a", Tensor::from_vec(vec![3.0], &[1]).unwrap());
        store.insert("b", Tensor::from_vec(vec![4.0], &[1]).unwrap());
        assert!((store.global_norm() - 5.0).abs() < 1e-6);
    }
}
