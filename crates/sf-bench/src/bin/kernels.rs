//! Kernel benchmark baseline: seed-serial vs optimized-serial vs parallel
//! timings for batched GEMM, LayerNorm, softmax, flash attention, and the
//! fused gated attention kernel at AlphaFold-like shapes. Writes
//! `BENCH_kernels.json` in the working directory (override with
//! `--out PATH`; pick threads with `--threads N` or `SF_THREADS`).
//!
//! `--no-fused` times the composed attention op chain instead of the fused
//! kernel (and defaults the output to `BENCH_kernels_nofused.json`).
//! `--check` additionally enforces the CI regression bounds: vectorized
//! softmax must beat the seed scalar path and the fused attention kernel
//! must not fall behind the composed chain.

use std::process::ExitCode;

use scalefold::kernel_bench::{run_mode, BenchScale};

fn main() -> ExitCode {
    sf_bench::banner("Kernel baseline");

    let mut threads = 0usize; // 0 = auto (SF_THREADS / core count)
    let mut out: Option<String> = None;
    let mut fused = true;
    let mut check = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => {
                    threads = n;
                    i += 2;
                }
                _ => {
                    eprintln!("error: --threads expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.get(i + 1) {
                Some(path) => {
                    out = Some(path.clone());
                    i += 2;
                }
                None => {
                    eprintln!("error: --out expects a path");
                    return ExitCode::FAILURE;
                }
            },
            "--no-fused" => {
                fused = false;
                i += 1;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            other => {
                eprintln!(
                    "error: unknown argument `{other}` \
                     (expected --threads N, --out PATH, --no-fused, --check)"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        String::from(if fused {
            "BENCH_kernels.json"
        } else {
            "BENCH_kernels_nofused.json"
        })
    });

    let report = run_mode(threads, BenchScale::Full, fused);
    println!("{}", report.to_table());
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out} ({} threads{})",
        report.threads,
        if fused { "" } else { ", --no-fused" }
    );
    if check {
        match report.check_fused() {
            Ok(()) => println!("fused-kernel regression check passed"),
            Err(e) => {
                eprintln!("error: fused-kernel regression check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
