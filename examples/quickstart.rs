//! Quickstart: build a tiny AlphaFold, run one real training step on
//! synthetic data, then estimate what the paper-scale step would cost on an
//! H100 with and without ScaleFold's optimizations.
//!
//! Run with: `cargo run --release --example quickstart`

use scalefold::{build_graph, OptimizationSet, Trainer, TrainerConfig};
use sf_gpusim::{CpuModel, DeviceSpec};
use sf_model::ModelConfig;
use sf_opgraph::profile::step_time;

fn main() {
    // --- Part 1: real training on the CPU (tiny dimensions) -------------
    let mut cfg = TrainerConfig::tiny();
    cfg.model.evoformer_blocks = 1;
    cfg.model.extra_msa_blocks = 0;
    println!("training a tiny AlphaFold for 3 real steps...");
    let mut trainer = Trainer::new(cfg);
    for report in trainer.train(3) {
        println!(
            "  step {:>2}: loss {:>7.4}  distance {:>7.4}  grad-norm {:>7.3}  lDDT-Ca {:.3}",
            report.step, report.loss, report.distance_loss, report.grad_norm, report.lddt
        );
    }

    // --- Part 2: paper-scale performance model --------------------------
    let paper = ModelConfig::paper();
    let dev = DeviceSpec::h100();
    let reference = build_graph(&paper, &OptimizationSet::none());
    let optimized = build_graph(&paper, &OptimizationSet::scalefold());
    let t_ref = step_time(&reference, &dev, CpuModel::healthy(), false).total_s;
    let t_opt = step_time(&optimized, &dev, CpuModel::healthy(), true).total_s;
    println!();
    println!("paper-scale step on one H100 (performance model):");
    println!("  reference (OpenFold-like): {t_ref:.2} s  ({} kernels)", reference.ops.len());
    println!("  ScaleFold optimizations  : {t_opt:.2} s  ({} kernels)", optimized.ops.len());
    println!("  node-local speedup       : {:.2}x", t_ref / t_opt);
}
