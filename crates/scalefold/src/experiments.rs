//! One runner per table/figure of the paper's evaluation. Each returns a
//! plain data structure with a `Display` that prints rows the way the paper
//! reports them; the `sf-bench` binaries wrap these.

use crate::baselines::{
    baseline_step_s, fastfold_graph, openfold_graph, scalefold_graph,
};
use crate::convergence::{ConvergenceModel, CurvePoint, PretrainSchedule};
use crate::ladder::{dap8_without_cuda_graph, ladder_stages, LadderEntry};
use crate::optimizations::{build_graph, OptimizationSet};
use serde::{Deserialize, Serialize};
use sf_cluster::{
    ClusterConfig, ClusterSim, EvalConfig, ScalabilityBreakdown, TrainTimeline,
};
use sf_data::{PrepTimeModel, SyntheticDataset};
use sf_gpusim::{CpuModel, DeviceSpec};
use sf_model::ModelConfig;
use sf_opgraph::profile::{ModuleProfile, Table1};
use std::fmt;

// ----------------------------------------------------------------------
// Table 1
// ----------------------------------------------------------------------

/// Table 1: kernel-class breakdown of the reference training step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// The classification/runtime rows.
    pub table: Table1,
    /// The §2.2 per-pattern profile (Evoformer/MHA/LN/optimizer shares).
    pub profile: ModuleProfile,
    /// Reference step time on A100, seconds.
    pub a100_step_s: f64,
}

/// Runs the Table-1 experiment.
pub fn table1() -> Table1Result {
    let cfg = ModelConfig::paper();
    // Profile at the paper's conditions: full recycling (3 warm forwards)
    // with OpenFold's gradient checkpointing.
    let g = sf_opgraph::builder::StepGraph::reference_checkpointed(&cfg, 3);
    let dev = DeviceSpec::a100();
    let table = Table1::compute(&g, &dev, CpuModel::healthy());
    let profile = ModuleProfile::compute(&g, &dev);
    let a100_step_s =
        sf_opgraph::profile::step_time(&g, &dev, CpuModel::healthy(), false).total_s;
    Table1Result {
        table,
        profile,
        a100_step_s,
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: kernel breakdown (A100 reference, {:.2} s/step)", self.a100_step_s)?;
        writeln!(f, "{:<18} {:>11} {:>9}", "Kernel type", "Runtime (%)", "#Calls")?;
        writeln!(f, "{:<18} {:>11.2} {:>9}", "CPU Overhead", self.table.cpu_overhead_pct, "-")?;
        writeln!(f, "{:<18} {:>11.2} {:>9}", "Math-bounded", self.table.math_pct, self.table.math_calls)?;
        writeln!(f, "{:<18} {:>11.2} {:>9}", "Memory-bounded", self.table.memory_pct, self.table.memory_calls)?;
        writeln!(f, "{:<18} {:>11.2} {:>9}", "Memory-operation", self.table.memop_pct, self.table.memop_calls)?;
        writeln!(f, "(paper: 9.10/- , 24.06/18147, 65.03/97749, 1.82/34991)")?;
        writeln!(f)?;
        writeln!(f, "S2.2 pattern profile (% of GPU busy time):")?;
        writeln!(f, "  Evoformer {:.1}%  MHA {:.1}%  LayerNorm {:.1}%", self.profile.evoformer_pct, self.profile.mha_pct, self.profile.layernorm_pct)?;
        writeln!(f, "  Adam {:.1}%  SWA {:.1}%  grad-clip {:.1}%  structure {:.1}%", self.profile.adam_pct, self.profile.swa_pct, self.profile.grad_clip_pct, self.profile.structure_pct)?;
        writeln!(f, "(paper: Evoformer 72, MHA 34, LN 14, Adam 6, SWA 6, clip 3)")
    }
}

// ----------------------------------------------------------------------
// Figure 3
// ----------------------------------------------------------------------

/// Figure 3: the scalability-barrier decomposition for DAP-2/4/8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Rows for DAP 2, 4, 8.
    pub rows: Vec<ScalabilityBreakdown>,
    /// Baseline DAP speedups vs DAP-1 (paper: 1.42x / 1.57x / ~1.57x).
    pub speedups: Vec<(usize, f64)>,
}

/// Runs the Figure-3 experiment.
pub fn fig3() -> Fig3Result {
    let cfg = ModelConfig::paper();
    let g = sf_opgraph::builder::StepGraph::reference_checkpointed(&cfg, 1);
    let rows: Vec<ScalabilityBreakdown> = [2usize, 4, 8]
        .iter()
        .map(|&dap| ScalabilityBreakdown::compute(&g, 128, dap))
        .collect();
    let t1 = ClusterSim::new(&g, ClusterConfig::eos(128, 1)).mean_step_s(40);
    let speedups = [2usize, 4, 8]
        .iter()
        .map(|&dap| {
            let t = ClusterSim::new(&g, ClusterConfig::eos(128, dap)).mean_step_s(40);
            (dap, t1 / t)
        })
        .collect();
    Fig3Result { rows, speedups }
}

impl fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: scalability-barrier breakdown (seconds/step)")?;
        writeln!(
            f,
            "{:<7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "DAP", "actual", "ideal", "cpu", "serial", "kernel", "comm", "imbal"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<7} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                format!("DAP-{}", r.dap),
                r.actual_s,
                r.ideal_s,
                r.cpu_overhead_s,
                r.serial_modules_s,
                r.kernel_scalability_s,
                r.comm_overhead_s,
                r.imbalance_s
            )?;
        }
        writeln!(f, "baseline DAP speedups vs DAP-1 (paper: 1.42 / 1.57 / ~1.57):")?;
        for (dap, s) in &self.speedups {
            writeln!(f, "  DAP-{dap}: {s:.2}x")?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Figure 4
// ----------------------------------------------------------------------

/// Figure 4: sorted batch-preparation times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Sorted prep times, seconds.
    pub sorted_s: Vec<f64>,
    /// Fraction of batches slower than one (reference) training step.
    pub slow_fraction: f64,
}

/// Runs the Figure-4 experiment over `n` samples.
pub fn fig4(n: usize) -> Fig4Result {
    let ds = SyntheticDataset::new(0xF164, n);
    let prep = PrepTimeModel::default();
    let sorted_s = prep.sorted_prep_times(&ds, n);
    let slow_fraction = prep.slow_fraction(&ds, n, 2.0);
    Fig4Result {
        sorted_s,
        slow_fraction,
    }
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4: sorted batch preparation time ({} samples)", self.sorted_s.len())?;
        let n = self.sorted_s.len();
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let idx = ((n - 1) as f64 * q) as usize;
            writeln!(f, "  p{:<4} {:>9.3} s", (q * 100.0) as u32, self.sorted_s[idx])?;
        }
        writeln!(
            f,
            "slow (>1 training step of 2 s): {:.1}% of batches (paper: ~10%)",
            100.0 * self.slow_fraction
        )
    }
}

// ----------------------------------------------------------------------
// Figure 7
// ----------------------------------------------------------------------

/// Figure 7: step-time comparison vs the published baselines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// (label, step seconds) on A100.
    pub a100: Vec<(String, f64)>,
    /// (label, step seconds) for ScaleFold DAP-n on H100.
    pub h100: Vec<(String, f64)>,
}

/// Runs the Figure-7 experiment.
pub fn fig7() -> Fig7Result {
    let cfg = ModelConfig::paper();
    let a100 = vec![
        (
            "OpenFold (no DAP)".to_string(),
            baseline_step_s(&openfold_graph(&cfg), DeviceSpec::a100(), 1, false, false),
        ),
        (
            "FastFold DAP-2".to_string(),
            baseline_step_s(&fastfold_graph(&cfg), DeviceSpec::a100(), 2, false, false),
        ),
        (
            "ScaleFold DAP-2".to_string(),
            baseline_step_s(&scalefold_graph(&cfg, 2), DeviceSpec::a100(), 2, true, true),
        ),
    ];
    let h100 = [1usize, 2, 4, 8]
        .iter()
        .map(|&dap| {
            (
                format!("ScaleFold DAP-{dap}"),
                baseline_step_s(&scalefold_graph(&cfg, dap), DeviceSpec::h100(), dap, true, true),
            )
        })
        .collect();
    Fig7Result { a100, h100 }
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 7: step time, batch size 128")?;
        writeln!(f, "A100 (paper: OpenFold 6.19 s, FastFold DAP-2 2.49 s, ScaleFold DAP-2 1.88 s):")?;
        for (name, t) in &self.a100 {
            writeln!(f, "  {name:<22} {t:>6.2} s")?;
        }
        writeln!(f, "H100 (paper: DAP-1/2/4/8 = 1.80 / 1.12 / 0.75 / 0.65 s):")?;
        let base = self.h100.first().map(|x| x.1).unwrap_or(1.0);
        for (name, t) in &self.h100 {
            writeln!(f, "  {name:<22} {t:>6.2} s  ({:.2}x)", base / t)?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Figure 8
// ----------------------------------------------------------------------

/// Figure 8: the cumulative optimization ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Ladder rows.
    pub entries: Vec<LadderEntry>,
    /// (DAP-8 without CUDA graph, with CUDA graph) H100 step seconds — the
    /// paper's 1.52x-vs-1.79x counterfactual.
    pub dap8_graph_ablation: (f64, f64),
}

/// Runs the Figure-8 experiment.
pub fn fig8() -> Fig8Result {
    let cfg = ModelConfig::paper();
    Fig8Result {
        entries: ladder_stages(&cfg),
        dap8_graph_ablation: dap8_without_cuda_graph(&cfg),
    }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8: step-by-step optimization ladder (cumulative)")?;
        writeln!(
            f,
            "{:<36} {:>9} {:>9} {:>8} {:>8}",
            "stage", "A100 (s)", "H100 (s)", "A100 x", "H100 x"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<36} {:>9.2} {:>9.2} {:>8.2} {:>8.2}",
                e.name, e.a100_step_s, e.h100_step_s, e.a100_speedup, e.h100_speedup
            )?;
        }
        let (without, with) = self.dap8_graph_ablation;
        writeln!(
            f,
            "DAP-8 ablation: without CUDA graph {without:.2} s, with {with:.2} s (paper: 1.52x vs 1.79x stage speedup)"
        )?;
        writeln!(f, "(paper final: ~6.2x on H100)")
    }
}

// ----------------------------------------------------------------------
// Figure 9 / 10: time to train (MLPerf setting)
// ----------------------------------------------------------------------

/// Figures 9 & 10: MLPerf time-to-train with and without async eval, and
/// the reference-vs-ScaleFold comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TtTResult {
    /// ScaleFold with async evaluation (the 7.51-minute configuration).
    pub scalefold_async_s: f64,
    /// ScaleFold with synchronous evaluation (paper: ~11 minutes).
    pub scalefold_sync_s: f64,
    /// Reference model on 256 H100 (paper: ~6x slower).
    pub reference_s: f64,
    /// Init / train / eval split of the async configuration.
    pub async_breakdown: (f64, f64, f64),
    /// Evaluation share before/after step-time optimization (paper:
    /// 22% -> 43%) under synchronous eval.
    pub eval_share_before_after: (f64, f64),
}

/// Runs the MLPerf time-to-train experiment (Figures 9 and 10).
pub fn fig9_fig10() -> TtTResult {
    let cfg = ModelConfig::paper();
    let conv = ConvergenceModel::default();
    // MLPerf partial convergence: from a checkpoint at lDDT ~0.78 to 0.8,
    // global batch 256.
    let start = conv.samples_to(0.78, 256).expect("below asymptote");
    let steps = conv.steps_to(start, 0.80, 256).expect("reachable");

    // ScaleFold on 2048 training GPUs: DP 256 x DAP-8.
    let sf_graph = scalefold_graph(&cfg, 8);
    let sf_cfg = ClusterConfig {
        dp: 256,
        dap: 8,
        cuda_graph: true,
        bf16_comm: true,
        straggler: sf_cluster::StragglerModel::optimized(),
        ..ClusterConfig::eos(256, 8)
    };
    let sf_step = ClusterSim::new(&sf_graph, sf_cfg).mean_step_s(40);

    // Reference on 256 H100: DP 256, eager, fp32, blocking loader.
    let ref_graph = openfold_graph(&cfg);
    let ref_step = ClusterSim::new(&ref_graph, ClusterConfig::eos(256, 1)).mean_step_s(40);

    // Initialization derived from mechanism: compile + 4 recycling-shape
    // graph captures (at roughly the reference eager step) + NCCL init.
    let init_s = sf_cluster::eval::init_time_s(ref_step, 4, 2080);
    let timeline = |step_s: f64, eval: EvalConfig| TrainTimeline {
        init_s,
        steps,
        step_s,
        eval,
    };
    let sf_async = timeline(sf_step, EvalConfig::scalefold_async()).time_to_train();
    let sf_sync = timeline(sf_step, EvalConfig::mlperf_sync()).time_to_train();
    let reference = timeline(ref_step, EvalConfig::mlperf_sync()).time_to_train();

    let before = timeline(ref_step, EvalConfig::mlperf_sync()).eval_fraction();
    let after = timeline(sf_step, EvalConfig::mlperf_sync()).eval_fraction();

    TtTResult {
        scalefold_async_s: sf_async.total_s,
        scalefold_sync_s: sf_sync.total_s,
        reference_s: reference.total_s,
        async_breakdown: (sf_async.init_s, sf_async.train_s, sf_async.eval_s),
        eval_share_before_after: (before, after),
    }
}

impl fmt::Display for TtTResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figures 9 & 10: MLPerf HPC v3.0 time-to-train (from checkpoint, batch 256)")?;
        writeln!(f, "  ScaleFold + async eval : {:>7.1} min (paper: 7.51 min on 2080 H100)", self.scalefold_async_s / 60.0)?;
        writeln!(f, "  ScaleFold, sync eval   : {:>7.1} min (paper: ~11 min)", self.scalefold_sync_s / 60.0)?;
        writeln!(f, "  Reference (256 H100)   : {:>7.1} min", self.reference_s / 60.0)?;
        writeln!(f, "  speedup vs reference   : {:>7.1}x (paper: 6x)", self.reference_s / self.scalefold_async_s)?;
        let (i, t, e) = self.async_breakdown;
        writeln!(f, "  async breakdown: init {:.1} min, train {:.1} min, eval-block {:.1} min", i / 60.0, t / 60.0, e / 60.0)?;
        let (b, a) = self.eval_share_before_after;
        writeln!(f, "  sync eval share grows {:.0}% -> {:.0}% as steps shrink (paper: 22% -> 43%)", b * 100.0, a * 100.0)
    }
}

// ----------------------------------------------------------------------
// Figure 11: pretraining from scratch
// ----------------------------------------------------------------------

/// Figure 11: from-scratch pretraining curve and total time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Result {
    /// lDDT-Cα vs step curve.
    pub curve: Vec<CurvePoint>,
    /// Steps to 0.9 lDDT (paper: 50k–60k).
    pub steps_to_target: u64,
    /// Total wall-clock hours (paper: < 10 h).
    pub total_hours: f64,
    /// Phase step times: (phase-1 on 1024 training GPUs, phase-2 on 2048).
    pub phase_step_s: (f64, f64),
}

/// Runs the Figure-11 experiment.
pub fn fig11() -> Fig11Result {
    let cfg = ModelConfig::paper();
    let conv = ConvergenceModel::default();
    let schedule = PretrainSchedule::default();
    let curve = schedule.curve(&conv, 1000, 200_000);
    let steps_to_target = schedule.steps_to_target(&conv);

    // Phase 1: 1056 H100 (1024 training = DP 128 x DAP-8), batch 128.
    let g = scalefold_graph(&cfg, 8);
    let mut p1_cfg = ClusterConfig::eos(128, 8);
    p1_cfg.cuda_graph = true;
    p1_cfg.bf16_comm = true;
    p1_cfg.straggler = sf_cluster::StragglerModel::optimized();
    let p1_step = ClusterSim::new(&g, p1_cfg).mean_step_s(40);

    // Phase 2: 2080 H100 (2048 training = DP 256 x DAP-8), batch 256,
    // Triton MHA disabled per the paper ("disable Triton mha kernel") —
    // costed by rebuilding without that one fusion.
    let mut opts = OptimizationSet::scalefold_dap(8);
    opts.triton_mha = false;
    let g2 = build_graph(&cfg, &opts);
    let mut p2_cfg = ClusterConfig::eos(256, 8);
    p2_cfg.cuda_graph = true;
    p2_cfg.bf16_comm = true;
    p2_cfg.straggler = sf_cluster::StragglerModel::optimized();
    let p2_step = ClusterSim::new(&g2, p2_cfg).mean_step_s(40);

    let p1_s = schedule.phase1_steps as f64 * p1_step;
    let p2_steps = steps_to_target.saturating_sub(schedule.phase1_steps);
    let p2_s = p2_steps as f64 * p2_step;
    let init_s = sf_cluster::eval::init_time_s(4.0, 4, 2080);
    let total_hours = (init_s + p1_s + p2_s) / 3600.0;

    Fig11Result {
        curve,
        steps_to_target,
        total_hours,
        phase_step_s: (p1_step, p2_step),
    }
}

impl fmt::Display for Fig11Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 11: AlphaFold pretraining from scratch")?;
        writeln!(f, "  phase 1 (bs 128, 1056 H100): step {:.2} s", self.phase_step_s.0)?;
        writeln!(f, "  phase 2 (bs 256, 2080 H100): step {:.2} s", self.phase_step_s.1)?;
        writeln!(f, "  steps to 0.9 avg_lddt_ca: {} (paper: 50k-60k)", self.steps_to_target)?;
        writeln!(f, "  total: {:.1} h (paper: < 10 h; original AlphaFold: ~7 days)", self.total_hours)?;
        writeln!(f, "  curve (every 5k steps):")?;
        for p in self.curve.iter().step_by(5) {
            writeln!(f, "    step {:>6}  lddt {:.3}", p.step, p.lddt)?;
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Extension: the fine-tuning phase (beyond the paper's scope)
// ----------------------------------------------------------------------

/// Extension result: what ScaleFold's optimizations imply for the
/// fine-tuning phase the paper leaves unoptimized (original AlphaFold:
/// ~4 additional days).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FinetuneResult {
    /// Steps needed at crop 384 / batch 128.
    pub steps: u64,
    /// Per-step time at the larger crop, seconds.
    pub step_s: f64,
    /// Total fine-tuning hours.
    pub hours: f64,
}

/// Runs the fine-tuning extension estimate.
pub fn finetune_extension() -> FinetuneResult {
    let conv = ConvergenceModel::default();
    let ext = crate::convergence::FinetuneExtension::default();
    let start = conv.samples_to(0.9, 256).expect("initial training endpoint");
    let steps = ext.steps_from(&conv, start).expect("reachable");
    // ScaleFold's optimized phase-2 step (0.67 s at crop 256) scaled by the
    // crop multiplier.
    let base_step = 0.67;
    let step_s = base_step * ext.step_multiplier();
    FinetuneResult {
        steps,
        step_s,
        hours: steps as f64 * step_s / 3600.0,
    }
}

impl fmt::Display for FinetuneResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Extension: fine-tuning phase (crop 384, beyond the paper's scope)")?;
        writeln!(f, "  steps: {}  step: {:.2} s  total: {:.1} h", self.steps, self.step_s, self.hours)?;
        writeln!(f, "  (original AlphaFold fine-tuning: ~4 days; ScaleFold-style optimizations")?;
        writeln!(f, "   would compress it to hours, same as the initial phase)")
    }
}

// ----------------------------------------------------------------------
// Scaling (the abstract's headline claim)
// ----------------------------------------------------------------------

/// One point of the strong-scaling sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// System label.
    pub system: String,
    /// Total training GPUs.
    pub gpus: usize,
    /// DP × DAP decomposition.
    pub dp: usize,
    /// DAP degree.
    pub dap: usize,
    /// Throughput in samples per second.
    pub samples_per_s: f64,
    /// Scaling efficiency vs the system's smallest configuration.
    pub efficiency: f64,
}

/// The headline scalability claim: ScaleFold reaches 2048 training GPUs
/// (DP 256 × DAP-8) where data-parallel-only training is capped at 256
/// GPUs by the batch-size convergence limit and FastFold stopped at 512.
pub fn scaling() -> Vec<ScalingPoint> {
    let cfg = ModelConfig::paper();
    let conv = ConvergenceModel::default();
    let mut out = Vec::new();

    // OpenFold: DP only; the batch limit (256) caps the GPU count.
    let of_graph = crate::baselines::openfold_graph(&cfg);
    for dp in [64usize, 128, 256] {
        let t = ClusterSim::new(&of_graph, ClusterConfig::eos(dp, 1)).mean_step_s(30);
        out.push(ScalingPoint {
            system: "OpenFold (DP only)".into(),
            gpus: dp,
            dp,
            dap: 1,
            samples_per_s: dp as f64 / t,
            efficiency: 0.0,
        });
    }
    // FastFold: DAP-2 doubles the GPUs per sample (their 512-GPU limit).
    let ff_graph = crate::baselines::fastfold_graph(&cfg);
    for (dp, dap) in [(128usize, 2usize), (256, 2)] {
        let t = ClusterSim::new(&ff_graph, ClusterConfig::eos(dp, dap)).mean_step_s(30);
        out.push(ScalingPoint {
            system: "FastFold".into(),
            gpus: dp * dap,
            dp,
            dap,
            samples_per_s: dp as f64 / t,
            efficiency: 0.0,
        });
    }
    // ScaleFold: DAP up to 8 under the 256-way batch limit -> 2048 GPUs.
    for (dp, dap) in [(256usize, 1usize), (256, 2), (256, 4), (256, 8)] {
        let graph = crate::baselines::scalefold_graph(&cfg, dap);
        let mut cc = ClusterConfig::eos(dp, dap);
        cc.cuda_graph = true;
        cc.bf16_comm = true;
        cc.autotune = true;
        cc.straggler = sf_cluster::StragglerModel::optimized();
        let t = ClusterSim::new(&graph, cc).mean_step_s(30);
        out.push(ScalingPoint {
            system: "ScaleFold".into(),
            gpus: dp * dap,
            dp,
            dap,
            samples_per_s: dp as f64 / t,
            efficiency: 0.0,
        });
    }
    // Efficiency vs each system's smallest configuration (per-GPU basis).
    let mut by_system: std::collections::BTreeMap<String, (usize, f64)> =
        std::collections::BTreeMap::new();
    for p in &out {
        let e = by_system
            .entry(p.system.clone())
            .or_insert((p.gpus, p.samples_per_s));
        if p.gpus < e.0 {
            *e = (p.gpus, p.samples_per_s);
        }
    }
    for p in &mut out {
        let (g0, s0) = by_system[&p.system];
        let per_gpu0 = s0 / g0 as f64;
        p.efficiency = (p.samples_per_s / p.gpus as f64) / per_gpu0;
    }
    let _ = conv;
    out
}

/// Pretty-prints the scaling sweep.
pub fn format_scaling(points: &[ScalingPoint]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Scalability: throughput vs GPU count (batch-size limit 256 caps DP)"
    );
    let _ = writeln!(
        s,
        "{:<22} {:>6} {:>10} {:>12} {:>11}",
        "system", "GPUs", "DP x DAP", "samples/s", "efficiency"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:<22} {:>6} {:>10} {:>12.1} {:>10.0}%",
            p.system,
            p.gpus,
            format!("{}x{}", p.dp, p.dap),
            p.samples_per_s,
            100.0 * p.efficiency
        );
    }
    let _ = writeln!(
        s,
        "(paper: prior art scaled to 512 GPUs; ScaleFold to 2080 incl. eval nodes)"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // Heavier experiment runners are covered by tests/figures.rs; keep the
    // cheap invariants here.

    #[test]
    fn fig4_result_is_sorted_with_slow_tail() {
        let r = fig4(500);
        assert!(r.sorted_s.windows(2).all(|w| w[0] <= w[1]));
        assert!((0.01..0.35).contains(&r.slow_fraction));
    }

    #[test]
    fn finetune_extension_is_hours_not_days() {
        let r = finetune_extension();
        assert!(r.steps > 1000);
        assert!(r.hours < 24.0, "fine-tune {:.1} h", r.hours);
        assert!(r.step_s > 0.67, "crop 384 must be slower per step");
    }

    #[test]
    fn fig11_reaches_target_under_ten_hours() {
        let r = fig11();
        assert!((45_000..65_000).contains(&r.steps_to_target));
        assert!(r.total_hours < 12.0, "total {:.1} h", r.total_hours);
        assert!(r.total_hours > 2.0, "suspiciously fast: {:.1} h", r.total_hours);
        // Curve ends at the target.
        assert!(r.curve.last().expect("nonempty").lddt >= 0.9);
    }
}
