//! The fused Adam + SWA kernel (§3.3.1 "Adam and SWA Optimization").
//!
//! The paper's kernel: pack all parameter / gradient / optimizer-state
//! pointers into one buffer, hand it to a single CUDA kernel whose thread
//! blocks each own a contiguous element range, keep the intermediate values
//! between the Adam math and the SWA math in registers, and write each
//! output once. This module reproduces the algorithm faithfully on the CPU:
//! one pass over a packed flat view, Adam intermediates staying in locals
//! ("registers"), SWA folded in the same loop — and tests prove it is
//! numerically identical to running [`crate::Adam`] followed by
//! [`crate::Swa`].

use crate::adam::AdamConfig;
use crate::Grads;
use sf_autograd::ParamStore;
use sf_tensor::Tensor;
use std::collections::BTreeMap;

/// Fused Adam + SWA optimizer: single pass per step over all elements.
#[derive(Debug, Clone)]
pub struct FusedAdamSwa {
    cfg: AdamConfig,
    swa_decay: f32,
    /// Packed per-parameter state, keyed by name: (m, v, swa_average).
    state: BTreeMap<String, (Tensor, Tensor, Tensor)>,
    step: u64,
}

impl FusedAdamSwa {
    /// Creates the fused optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `swa_decay` is outside `(0, 1)`.
    pub fn new(cfg: AdamConfig, swa_decay: f32) -> Self {
        assert!(
            swa_decay > 0.0 && swa_decay < 1.0,
            "SWA decay must be in (0, 1), got {swa_decay}"
        );
        FusedAdamSwa {
            cfg,
            swa_decay,
            state: BTreeMap::new(),
            step: 0,
        }
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// One fused update: for every element, Adam moments, bias-corrected
    /// update, parameter write, and SWA fold happen in a single loop
    /// iteration with intermediates in locals.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Grads, lr: f32) {
        self.step += 1;
        let t = self.step as i32;
        let bc1 = 1.0 - self.cfg.beta1.powi(t);
        let bc2 = 1.0 - self.cfg.beta2.powi(t);
        let (b1, b2, eps) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps);
        let decay = self.swa_decay;
        for (name, grad) in grads {
            let Some(param) = store.get_mut(name) else {
                continue;
            };
            let first_touch = !self.state.contains_key(name);
            let (m, v, avg) = self.state.entry(name.clone()).or_insert_with(|| {
                (
                    Tensor::zeros(grad.dims()),
                    Tensor::zeros(grad.dims()),
                    Tensor::zeros(grad.dims()),
                )
            });
            // The single fused pass. On the GPU this is one kernel whose
            // blocks each own a contiguous sub-range; here, one zipped loop
            // with every intermediate in registers.
            let iter = param
                .data_mut()
                .iter_mut()
                .zip(grad.data().iter())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
                .zip(avg.data_mut().iter_mut());
            for (((p, &g), (mi, vi)), a) in iter {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let update = lr * (*mi / bc1) / ((*vi / bc2).sqrt() + eps);
                let p_new = *p - update;
                *p = p_new;
                // SWA folded in the same pass; first touch copies (matching
                // the standalone Swa semantics).
                *a = if first_touch {
                    p_new
                } else {
                    decay * *a + (1.0 - decay) * p_new
                };
            }
        }
        // Parameters with no gradient this step still fold into SWA (they
        // did not move, but the average must track them).
        for (name, param) in store.iter() {
            if grads.contains_key(name) {
                continue;
            }
            match self.state.get_mut(name) {
                Some((_, _, avg)) => {
                    for (a, p) in avg.data_mut().iter_mut().zip(param.data().iter()) {
                        *a = decay * *a + (1.0 - decay) * p;
                    }
                }
                None => {
                    self.state.insert(
                        name.to_string(),
                        (
                            Tensor::zeros(param.dims()),
                            Tensor::zeros(param.dims()),
                            param.clone(),
                        ),
                    );
                }
            }
        }
    }

    /// The SWA-averaged value of one parameter.
    pub fn averaged(&self, name: &str) -> Option<&Tensor> {
        self.state.get(name).map(|(_, _, a)| a)
    }

    /// Materializes the averaged weights (what evaluation runs on).
    pub fn swa_store(&self) -> ParamStore {
        let mut s = ParamStore::new();
        for (name, (_, _, avg)) in &self.state {
            s.insert(name.clone(), avg.clone());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Swa};

    fn random_grads(store: &ParamStore, seed: u64) -> Grads {
        let mut g = Grads::new();
        for (i, (name, p)) in store.iter().enumerate() {
            g.insert(
                name.to_string(),
                Tensor::randn(p.dims(), seed.wrapping_add(i as u64)),
            );
        }
        g
    }

    #[test]
    fn fused_matches_unfused_over_many_steps() {
        let mut fused_store = ParamStore::new();
        fused_store.insert("w1", Tensor::randn(&[4, 3], 1));
        fused_store.insert("w2", Tensor::randn(&[7], 2));
        fused_store.insert("b", Tensor::zeros(&[3]));
        let mut plain_store = fused_store.clone();

        let cfg = AdamConfig::default();
        let mut fused = FusedAdamSwa::new(cfg, 0.99);
        let mut adam = Adam::new(cfg);
        let mut swa = Swa::new(0.99);

        for step in 0..50u64 {
            let grads = random_grads(&fused_store, 1000 + step);
            fused.step(&mut fused_store, &grads, 0.01);
            adam.step(&mut plain_store, &grads, 0.01);
            swa.update(&plain_store);
        }
        for (name, p) in plain_store.iter() {
            assert!(
                fused_store.get(name).unwrap().allclose(p, 1e-5),
                "param {name} diverged"
            );
            assert!(
                fused.averaged(name).unwrap().allclose(swa.averaged(name).unwrap(), 1e-5),
                "SWA average {name} diverged"
            );
        }
    }

    #[test]
    fn fused_minimizes_quadratic() {
        let mut store = ParamStore::new();
        store.insert("x", Tensor::from_vec(vec![-4.0], &[1]).unwrap());
        let mut opt = FusedAdamSwa::new(AdamConfig::default(), 0.9);
        for _ in 0..3000 {
            let x = store.get("x").unwrap().data()[0];
            let mut grads = Grads::new();
            grads.insert("x".into(), Tensor::from_vec(vec![2.0 * (x - 1.0)], &[1]).unwrap());
            opt.step(&mut store, &grads, 0.01);
        }
        let x = store.get("x").unwrap().data()[0];
        assert!((x - 1.0).abs() < 0.05, "x = {x}");
        // SWA average trails the converged value.
        let avg = opt.averaged("x").unwrap().data()[0];
        assert!((avg - 1.0).abs() < 0.2, "avg = {avg}");
    }

    #[test]
    fn params_without_grads_still_average() {
        let mut store = ParamStore::new();
        store.insert("frozen", Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let mut opt = FusedAdamSwa::new(AdamConfig::default(), 0.5);
        opt.step(&mut store, &Grads::new(), 0.1);
        assert_eq!(opt.averaged("frozen").unwrap().data(), &[2.0]);
        assert_eq!(store.get("frozen").unwrap().data(), &[2.0]);
    }

    #[test]
    fn swa_store_contains_all_params() {
        let mut store = ParamStore::new();
        store.insert("a", Tensor::ones(&[2]));
        let mut opt = FusedAdamSwa::new(AdamConfig::default(), 0.9);
        let grads = random_grads(&store, 7);
        opt.step(&mut store, &grads, 0.01);
        let s = opt.swa_store();
        assert_eq!(s.len(), 1);
        assert!(s.get("a").is_some());
    }
}
