//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `criterion_group!`/`criterion_main!` — and actually times the
//! closures (a short warm-up, then `sample_size` timed iterations,
//! reporting the mean). No outlier statistics, no HTML reports.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup cost.
    SmallInput,
    /// Large per-iteration setup cost.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("name", parameter)`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    iters: u64,
    /// Mean wall-clock per iteration, filled in by `iter`/`iter_batched`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.iters.max(1) as u32;
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / self.iters.max(1) as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{:<40} {:>12.3?}/iter ({} iters)",
            self.name, id, b.mean, b.iters
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.id.clone(), |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counted", |b| b.iter(|| runs += 1));
        // warm-up + 3 timed iterations
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.benchmarks_run, 2);
    }
}
