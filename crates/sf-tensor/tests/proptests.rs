//! Property-based tests for the tensor substrate: algebraic identities of
//! GEMM, softmax invariants, fused-vs-naive kernel agreement, and
//! reduced-precision round-trip laws.

use proptest::prelude::*;
use sf_tensor::bf16::{Bf16, Fp16};
use sf_tensor::ops::{attention, layernorm, softmax};
use sf_tensor::Tensor;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..9
}

fn finite_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|x| x)
}

fn tensor_2d() -> impl Strategy<Value = Tensor> {
    (small_dim(), small_dim()).prop_flat_map(|(m, n)| {
        proptest::collection::vec(finite_f32(), m * n)
            .prop_map(move |data| Tensor::from_vec(data, &[m, n]).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity_is_identity(t in tensor_2d()) {
        let n = t.dims()[1];
        let out = t.matmul(&Tensor::eye(n)).unwrap();
        prop_assert!(out.allclose(&t, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_addition(
        (m, k, n, s1, s2, s3) in (small_dim(), small_dim(), small_dim(), any::<u64>(), any::<u64>(), any::<u64>())
    ) {
        let a = Tensor::randn(&[m, k], s1);
        let b = Tensor::randn(&[k, n], s2);
        let c = Tensor::randn(&[k, n], s3);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn matmul_associativity(
        (m, k, n, p, s1, s2, s3) in
            (1usize..6, 1usize..6, 1usize..6, 1usize..6, any::<u64>(), any::<u64>(), any::<u64>())
    ) {
        let a = Tensor::randn(&[m, k], s1);
        let b = Tensor::randn(&[k, n], s2);
        let c = Tensor::randn(&[n, p], s3);
        let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-2));
    }

    #[test]
    fn transpose_involution(t in tensor_2d()) {
        let back = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn softmax_rows_are_distributions(t in tensor_2d()) {
        let s = softmax::softmax(&t).unwrap();
        let n = t.dims()[1];
        for row in s.data().chunks(n) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn softmax_shift_invariant(t in tensor_2d(), shift in -50.0f32..50.0) {
        let a = softmax::softmax(&t).unwrap();
        let b = softmax::softmax(&t.add_scalar(shift)).unwrap();
        prop_assert!(a.allclose(&b, 1e-4));
    }

    #[test]
    fn fused_layernorm_equals_naive(
        (rows, inner, seed) in (1usize..8, 2usize..40, any::<u64>())
    ) {
        let x = Tensor::randn(&[rows, inner], seed).mul_scalar(3.0);
        let gamma = Tensor::randn(&[inner], seed ^ 1).add_scalar(1.0);
        let beta = Tensor::randn(&[inner], seed ^ 2);
        let (y1, _) = layernorm::naive_forward(&x, &gamma, &beta, layernorm::LN_EPS).unwrap();
        let (y2, _) = layernorm::fused_forward(&x, &gamma, &beta, layernorm::LN_EPS).unwrap();
        prop_assert!(y1.allclose(&y2, 1e-3));
    }

    #[test]
    fn flash_attention_equals_naive(
        (b, s, d, seed) in (1usize..3, 1usize..40, 1usize..9, any::<u64>())
    ) {
        let q = Tensor::randn(&[b, s, d], seed);
        let k = Tensor::randn(&[b, s, d], seed ^ 3);
        let v = Tensor::randn(&[b, s, d], seed ^ 5);
        let bias = Tensor::randn(&[s, s], seed ^ 7);
        let scale = 1.0 / (d as f32).sqrt();
        let naive = attention::naive_attention(&q, &k, &v, Some(&bias), scale).unwrap();
        let flash = attention::flash_attention(&q, &k, &v, Some(&bias), scale).unwrap();
        prop_assert!(naive.allclose(&flash, 1e-3));
    }

    #[test]
    fn bf16_round_trip_relative_error(x in -1.0e30f32..1.0e30) {
        let r = Bf16::from_f32(x).to_f32();
        if x != 0.0 {
            prop_assert!(((r - x) / x).abs() <= 1.0 / 256.0);
        }
    }

    #[test]
    fn bf16_monotone(a in -1.0e6f32..1.0e6, b in -1.0e6f32..1.0e6) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::from_f32(lo).to_f32() <= Bf16::from_f32(hi).to_f32());
    }

    #[test]
    fn fp16_round_trip_within_range(x in -60000.0f32..60000.0) {
        let r = Fp16::from_f32(x).to_f32();
        prop_assert!(r.is_finite());
        if x.abs() > 1e-3 {
            // fp16 has 11 significand bits -> relative error <= 2^-11.
            prop_assert!(((r - x) / x).abs() <= 1.0 / 2048.0);
        }
    }

    #[test]
    fn broadcast_then_reduce_scales_by_count(
        (n, m, seed) in (small_dim(), small_dim(), any::<u64>())
    ) {
        let t = Tensor::randn(&[n], seed);
        let big = t.broadcast_to(&[m, n]).unwrap();
        let back = big.reduce_to(&[n]).unwrap();
        prop_assert!(back.allclose(&t.mul_scalar(m as f32), 1e-4));
    }

    #[test]
    fn concat_slice_round_trip(
        (rows, cols, cut, seed) in
            (2usize..8, 1usize..8, 0usize..8, any::<u64>())
    ) {
        let t = Tensor::randn(&[rows, cols], seed);
        let cut = cut.min(rows);
        let a = t.slice_axis(0, 0, cut).unwrap();
        let b = t.slice_axis(0, cut, rows).unwrap();
        let back = Tensor::concat(&[&a, &b], 0).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn sum_axis_agrees_with_sum_all(t in tensor_2d()) {
        let by_rows = t.sum_axis(0).unwrap().sum_all();
        prop_assert!((by_rows - t.sum_all()).abs() <= 1e-3 * (1.0 + t.sum_all().abs()));
    }
}
