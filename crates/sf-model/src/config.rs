//! Model hyper-parameters.

use serde::{Deserialize, Serialize};

/// Number of amino-acid types (20 standard + unknown).
pub const NUM_AA_TYPES: usize = 21;

/// Extra per-position MSA feature channels (has-deletion flag, deletion
/// value) on top of the one-hot residue identity.
pub const MSA_EXTRA_CHANNELS: usize = 2;

/// Cluster-profile channels on the clustered MSA: the residue-type
/// distribution of the extra sequences assigned to each cluster
/// (`NUM_AA_TYPES`) plus the mean deletion value (1) — AlphaFold's cluster
/// featurization.
pub const MSA_PROFILE_CHANNELS: usize = NUM_AA_TYPES + 1;

/// Distogram bins used for template pair features and the distogram head.
pub const DISTOGRAM_BINS: usize = 15;

/// Hyper-parameters of the AlphaFold model.
///
/// Field names follow the AlphaFold supplementary notation (`c_m` = MSA
/// channel width, `c_z` = pair channel width, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Cropped sequence length (residues), `N_res`.
    pub n_res: usize,
    /// Clustered MSA depth fed to the main Evoformer stack, `N_seq`.
    pub n_seq: usize,
    /// Extra (unclustered) MSA depth for the extra-MSA stack.
    pub n_extra_seq: usize,
    /// Number of templates.
    pub n_templates: usize,
    /// MSA representation channels.
    pub c_m: usize,
    /// Pair representation channels.
    pub c_z: usize,
    /// Single representation channels (structure module input).
    pub c_s: usize,
    /// Channels of the extra-MSA stack's MSA representation.
    pub c_e: usize,
    /// Template pair embedding channels.
    pub c_t: usize,
    /// Attention heads in MSA attention.
    pub msa_heads: usize,
    /// Attention heads in triangle/pair attention.
    pub pair_heads: usize,
    /// Per-head hidden width for MSA attention.
    pub c_hidden_msa: usize,
    /// Per-head hidden width for pair attention.
    pub c_hidden_pair: usize,
    /// Hidden channels of the triangle multiplicative updates.
    pub c_hidden_mul: usize,
    /// Hidden channels of the outer product mean (32 in AlphaFold).
    pub c_opm: usize,
    /// Expansion factor of the transition (feed-forward) layers.
    pub transition_factor: usize,
    /// Evoformer blocks in the main stack (48 in AlphaFold).
    pub evoformer_blocks: usize,
    /// Evoformer blocks in the extra-MSA stack (4 in AlphaFold).
    pub extra_msa_blocks: usize,
    /// Evoformer blocks in the template pair stack (2 in AlphaFold).
    pub template_blocks: usize,
    /// Structure module refinement layers (8 in AlphaFold).
    pub structure_layers: usize,
    /// Recycling iterations per training step.
    pub recycle_iters: usize,
    /// Run each Evoformer block as a gradient-checkpointed segment
    /// (OpenFold's memory workaround; ScaleFold disables it under DAP).
    pub gradient_checkpointing: bool,
    /// Dropout probability inside attention modules (0 disables).
    pub dropout: f32,
    /// Route gated axis attention through the fused
    /// attention-softmax-gate kernel (`attention_fused`). Disable
    /// (`--no-fused`) to fall back to the composed
    /// scale→bias→softmax→gate op chain for A/B comparison and debugging.
    #[serde(default)]
    pub fused_kernels: bool,
}

impl ModelConfig {
    /// AlphaFold's published dimensions: the workload the performance model
    /// costs out. Do **not** try to train this on a CPU.
    pub fn paper() -> Self {
        ModelConfig {
            n_res: 256,
            n_seq: 128,
            n_extra_seq: 1024,
            n_templates: 4,
            c_m: 256,
            c_z: 128,
            c_s: 384,
            c_e: 64,
            c_t: 64,
            msa_heads: 8,
            pair_heads: 4,
            c_hidden_msa: 32,
            c_hidden_pair: 32,
            c_hidden_mul: 128,
            c_opm: 32,
            transition_factor: 4,
            evoformer_blocks: 48,
            extra_msa_blocks: 4,
            template_blocks: 2,
            structure_layers: 8,
            recycle_iters: 3,
            gradient_checkpointing: true,
            dropout: 0.0,
            fused_kernels: true,
        }
    }

    /// A CPU-trainable miniature with the identical topology.
    pub fn tiny() -> Self {
        ModelConfig {
            n_res: 12,
            n_seq: 4,
            n_extra_seq: 8,
            n_templates: 1,
            c_m: 16,
            c_z: 8,
            c_s: 16,
            c_e: 8,
            c_t: 8,
            msa_heads: 2,
            pair_heads: 2,
            c_hidden_msa: 4,
            c_hidden_pair: 4,
            c_hidden_mul: 8,
            c_opm: 4,
            transition_factor: 2,
            evoformer_blocks: 2,
            extra_msa_blocks: 1,
            template_blocks: 1,
            structure_layers: 2,
            recycle_iters: 1,
            gradient_checkpointing: false,
            dropout: 0.0,
            fused_kernels: true,
        }
    }

    /// Per-position clustered-MSA feature width: one-hot identity +
    /// deletion channels + cluster profile (44 channels; AlphaFold uses a
    /// similar 49-channel layout).
    pub fn msa_feat_dim(&self) -> usize {
        NUM_AA_TYPES + MSA_EXTRA_CHANNELS + MSA_PROFILE_CHANNELS
    }

    /// Per-position extra-MSA feature width (no profile channels).
    pub fn extra_msa_feat_dim(&self) -> usize {
        NUM_AA_TYPES + MSA_EXTRA_CHANNELS
    }

    /// Per-position target feature width (one-hot residue identity).
    pub fn target_feat_dim(&self) -> usize {
        NUM_AA_TYPES
    }

    /// Approximate trainable parameter count for these dimensions
    /// (analytic; used as a sanity check against the paper's 97 M figure).
    pub fn approx_param_count(&self) -> usize {
        let evo = |c_m: usize, c_z: usize, cfg: &ModelConfig| -> usize {
            let att_msa = 4 * c_m * cfg.msa_heads * cfg.c_hidden_msa
                + cfg.msa_heads * cfg.c_hidden_msa * c_m
                + c_z * cfg.msa_heads;
            let att_col = 4 * c_m * cfg.msa_heads * cfg.c_hidden_msa
                + cfg.msa_heads * cfg.c_hidden_msa * c_m;
            let msa_trans = 2 * c_m * c_m * cfg.transition_factor;
            let opm = 2 * c_m * cfg.c_opm + cfg.c_opm * cfg.c_opm * c_z;
            let tri_mul = 2 * (4 * c_z * cfg.c_hidden_mul + cfg.c_hidden_mul * c_z + c_z * c_z);
            let tri_att = 2
                * (4 * c_z * cfg.pair_heads * cfg.c_hidden_pair
                    + cfg.pair_heads * cfg.c_hidden_pair * c_z
                    + c_z * cfg.pair_heads);
            let pair_trans = 2 * c_z * c_z * cfg.transition_factor;
            att_msa + att_col + msa_trans + opm + tri_mul + tri_att + pair_trans
        };
        let main = self.evoformer_blocks * evo(self.c_m, self.c_z, self);
        let extra = self.extra_msa_blocks * evo(self.c_e, self.c_z, self);
        let templ = self.template_blocks * evo(self.c_t, self.c_t, self);
        let structure = self.structure_layers * (3 * self.c_s * self.c_s + self.c_s * 3);
        let embed = self.msa_feat_dim() * self.c_m
            + 2 * self.target_feat_dim() * self.c_z
            + 65 * self.c_z;
        main + extra + templ + structure + embed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_dimensions() {
        let c = ModelConfig::paper();
        assert_eq!(c.evoformer_blocks, 48);
        assert_eq!(c.c_m, 256);
        assert_eq!(c.c_z, 128);
        assert_eq!(c.n_res, 256);
    }

    #[test]
    fn paper_param_count_order_of_magnitude() {
        // AlphaFold has ~97M parameters; our analytic estimate of the same
        // dimensions must land in the tens of millions (the estimate omits
        // some heads/embedders, so accept a broad band around it).
        let c = ModelConfig::paper();
        let n = c.approx_param_count();
        assert!(
            (30_000_000..200_000_000).contains(&n),
            "estimated {n} params"
        );
    }

    #[test]
    fn tiny_is_much_smaller() {
        assert!(ModelConfig::tiny().approx_param_count() < 1_000_000);
    }

    #[test]
    fn feature_dims() {
        let c = ModelConfig::tiny();
        assert_eq!(c.msa_feat_dim(), 45);
        assert_eq!(c.extra_msa_feat_dim(), 23);
        assert_eq!(c.target_feat_dim(), 21);
    }
}
