//! Functional data-parallel training: three model replicas, per-replica
//! batches, a real ring all-reduce over the gradients, bucketed clipping,
//! and identical optimizer steps — the algorithms the cluster simulator
//! prices, executed for real.
//!
//! Run with: `cargo run --release --example dp_training`

use scalefold::distributed::{dp_test_model, DataParallelTrainer};
use scalefold::TrainerConfig;

fn main() {
    let mut cfg = TrainerConfig::tiny();
    cfg.model = dp_test_model();
    cfg.schedule.warmup_steps = 3;
    let ranks = 3;

    println!("data-parallel training: {ranks} replicas, ring all-reduce per step");
    let mut dp = DataParallelTrainer::new(cfg, ranks);
    let reports = dp.train(8);
    println!(
        "{:>4} {:>10} {:>10} {:>14} {:>12}",
        "step", "mean loss", "grad norm", "elems reduced", "divergence"
    );
    for r in &reports {
        println!(
            "{:>4} {:>10.4} {:>10.3} {:>14} {:>12.2e}",
            r.step, r.mean_loss, r.grad_norm, r.elements_all_reduced, r.max_replica_divergence
        );
    }
    let first = reports.first().expect("steps").mean_loss;
    let last = reports.last().expect("steps").mean_loss;
    println!();
    println!("mean loss {first:.4} -> {last:.4} over {} DP steps", reports.len());
    println!(
        "replica divergence stayed at {:.2e} — the DP contract holds",
        reports.iter().map(|r| r.max_replica_divergence).fold(0.0f32, f32::max)
    );
    println!(
        "per-step ring traffic: {} elements across {} params",
        reports[0].elements_all_reduced,
        dp.store(0).num_elements()
    );
}
