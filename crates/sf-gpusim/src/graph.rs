//! CUDA Graph capture/replay with a shape-keyed cache.
//!
//! The paper (§3.2): "if the CUDA kernels within this scope are modified due
//! to dynamic computation graph, such as in the case of recycling in the
//! AlphaFold training, CUDA Graph needs to be recaptured. To address this,
//! we designed a CUDA Graph cache that can capture multiple graphs for
//! different recycling scenarios."

use crate::kernel::Kernel;
use crate::stream::{Stream, StreamStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A captured graph: a frozen kernel sequence.
#[derive(Debug, Clone)]
pub struct CudaGraph {
    kernels: Vec<Kernel>,
    /// One-time capture cost in seconds (running the sequence once in
    /// capture mode plus instantiation).
    capture_cost_s: f64,
}

impl CudaGraph {
    /// Captures a kernel sequence on `stream`. Capture executes the work
    /// eagerly once and pays an instantiation surcharge.
    pub fn capture(stream: &Stream, kernels: &[Kernel]) -> Self {
        let eager = stream.run_eager(kernels);
        // Instantiation: roughly proportional to kernel count (node
        // creation), ~1 µs per node on real drivers.
        let instantiate = kernels.len() as f64 * 1e-6;
        CudaGraph {
            kernels: kernels.to_vec(),
            capture_cost_s: eager.total_s + instantiate,
        }
    }

    /// Capture cost paid when this graph was created.
    pub fn capture_cost_s(&self) -> f64 {
        self.capture_cost_s
    }

    /// Replays the graph: single launch, back-to-back kernels.
    pub fn replay(&self, stream: &Stream) -> StreamStats {
        stream.run_graph(&self.kernels)
    }
}

/// Statistics of a [`GraphCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Replays served from cache.
    pub hits: usize,
    /// Captures performed.
    pub misses: usize,
}

/// A cache of captured graphs keyed by shape signature (e.g. the recycling
/// iteration count, crop size, and DAP degree that determine the step's
/// kernel sequence).
#[derive(Debug, Default)]
pub struct GraphCache {
    graphs: HashMap<String, CudaGraph>,
    stats: CacheStats,
}

impl GraphCache {
    /// An empty cache.
    pub fn new() -> Self {
        GraphCache::default()
    }

    /// Executes `kernels` under the cache: first sighting of `key` captures
    /// (paying the capture cost), subsequent sightings replay.
    /// Returns the stats of this execution including any capture surcharge
    /// in `total_s`.
    pub fn run(&mut self, stream: &Stream, key: &str, kernels: &[Kernel]) -> StreamStats {
        if let Some(g) = self.graphs.get(key) {
            self.stats.hits += 1;
            return g.replay(stream);
        }
        self.stats.misses += 1;
        let g = CudaGraph::capture(stream, kernels);
        let mut stats = g.replay(stream);
        // First execution pays capture instead of replay.
        stats.total_s = g.capture_cost_s();
        self.graphs.insert(key.to_string(), g);
        stats
    }

    /// Cache hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of distinct captured graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::stream::CpuModel;

    fn kernels() -> Vec<Kernel> {
        (0..200).map(|i| Kernel::memory(format!("k{i}"), 1e5, 64)).collect()
    }

    #[test]
    fn capture_then_replay_amortizes() {
        let s = Stream::new(DeviceSpec::h100(), CpuModel::healthy());
        let ks = kernels();
        let mut cache = GraphCache::new();
        let first = cache.run(&s, "recycle=3", &ks);
        let second = cache.run(&s, "recycle=3", &ks);
        assert!(second.total_s < first.total_s, "replay must beat capture");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn different_keys_capture_separately() {
        let s = Stream::new(DeviceSpec::h100(), CpuModel::healthy());
        let ks = kernels();
        let mut cache = GraphCache::new();
        for key in ["recycle=1", "recycle=2", "recycle=3", "recycle=2"] {
            cache.run(&s, key, &ks);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 3 });
    }

    #[test]
    fn replay_beats_eager_under_contention() {
        let contended = Stream::new(DeviceSpec::h100(), CpuModel::contended(5.0));
        let ks = kernels();
        let g = CudaGraph::capture(&contended, &ks);
        let eager = contended.run_eager(&ks);
        let replay = g.replay(&contended);
        assert!(replay.total_s < 0.5 * eager.total_s);
    }
}
