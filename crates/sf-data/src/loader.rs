//! The two data pipelines of the paper's Figure 5, with real worker threads
//! — hardened against worker faults.
//!
//! **Blocking** (PyTorch `DataLoader` semantics): batches are delivered in
//! sampler order, so one slow batch stalls the consumer even when later
//! batches are already prepared.
//!
//! **Non-blocking** (ScaleFold §3.2): prepared batches go into a priority
//! queue keyed by their sampler index, and the consumer takes the
//! *lowest-index ready* batch immediately — best-effort order, every batch
//! delivered exactly once, and a slow batch is simply yielded later.
//!
//! **Fault tolerance** (this crate's fault model): `prepare` runs under
//! `catch_unwind`, a panicking sample is retried up to
//! [`LoaderConfig::max_retries`] times with exponential backoff, and a
//! sample that keeps failing is delivered to the consumer as a typed
//! [`LoaderError`] in sampler order — the pipeline never deadlocks and
//! never silently drops a position. Dropping a loader mid-iteration wakes
//! and joins every worker, panicked or not.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// A source of preparable items (the dataset side of the pipeline).
///
/// `prepare` runs on worker threads and may take wildly varying time — that
/// variance is exactly what the non-blocking pipeline absorbs. `prepare`
/// may also panic (a poisoned sample, a failing storage backend): the
/// loaders catch the panic, retry, and surface a [`LoaderError`] if the
/// sample never prepares.
pub trait Dataset: Send + Sync + 'static {
    /// The prepared batch type.
    type Item: Send + 'static;

    /// Number of items.
    fn len(&self) -> usize;

    /// True if the dataset has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prepares item `index` (expensive; called from worker threads).
    fn prepare(&self, index: usize) -> Self::Item;
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoaderConfig {
    /// Worker threads preparing batches concurrently.
    pub num_workers: usize,
    /// How many times a panicking `prepare` is retried before the sample
    /// is reported failed. `0` fails on the first panic.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub retry_backoff: Duration,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        LoaderConfig {
            num_workers: 4,
            max_retries: 2,
            retry_backoff: Duration::from_millis(5),
        }
    }
}

impl LoaderConfig {
    /// Default fault handling with `num_workers` threads.
    pub fn with_workers(num_workers: usize) -> Self {
        LoaderConfig {
            num_workers,
            ..LoaderConfig::default()
        }
    }
}

/// A data-pipeline fault surfaced to the consumer instead of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoaderError {
    /// `Dataset::prepare(index)` panicked on every attempt.
    PreparePanicked {
        /// The dataset index that failed.
        index: usize,
        /// Total attempts made (1 + retries).
        attempts: u32,
        /// Panic payload of the final attempt, if it was a string.
        message: String,
    },
    /// All workers exited while positions were still undelivered (a
    /// loader-internal invariant violation; reported rather than
    /// deadlocking the consumer).
    WorkersDisconnected {
        /// Sampler position the consumer was waiting on.
        position: usize,
    },
}

impl std::fmt::Display for LoaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoaderError::PreparePanicked {
                index,
                attempts,
                message,
            } => write!(
                f,
                "prepare({index}) panicked on all {attempts} attempts: {message}"
            ),
            LoaderError::WorkersDisconnected { position } => {
                write!(f, "all workers exited before position {position} was prepared")
            }
        }
    }
}

impl std::error::Error for LoaderError {}

enum Slot<T> {
    Ready(T),
    Failed(LoaderError),
}

struct SharedState<T> {
    /// Prepared (or failed) items keyed by *position in sampler order*.
    buffer: BTreeMap<usize, Slot<T>>,
    /// Workers still running; guards the consumer against waiting on a
    /// position nobody will ever produce.
    live_workers: usize,
}

struct Shared<T> {
    state: Mutex<SharedState<T>>,
    ready: Condvar,
    next_fetch: AtomicUsize,
    shutdown: AtomicBool,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, SharedState<T>> {
        // A worker panic outside `catch_unwind` could poison the mutex;
        // the state it guards (a buffer map and a counter) stays
        // consistent across our short critical sections, so keep going.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Decrements `live_workers` and wakes the consumer even if the worker
/// thread unwinds unexpectedly.
struct WorkerExitGuard<T: Send> {
    shared: Arc<Shared<T>>,
}

impl<T: Send> Drop for WorkerExitGuard<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.live_workers -= 1;
        drop(st);
        self.shared.ready.notify_all();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `prepare` under `catch_unwind` with bounded retries and
/// exponential backoff.
fn prepare_with_retries<D: Dataset>(
    dataset: &Arc<D>,
    index: usize,
    cfg: &LoaderConfig,
) -> Result<D::Item, LoaderError> {
    let attempts = cfg.max_retries + 1;
    let mut last_message = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            let backoff = cfg.retry_backoff * 2u32.saturating_pow(attempt - 1);
            std::thread::sleep(backoff);
        }
        match catch_unwind(AssertUnwindSafe(|| dataset.prepare(index))) {
            Ok(item) => return Ok(item),
            Err(payload) => last_message = panic_message(payload.as_ref()),
        }
    }
    Err(LoaderError::PreparePanicked {
        index,
        attempts,
        message: last_message,
    })
}

fn spawn_workers<D: Dataset>(
    dataset: Arc<D>,
    order: Arc<Vec<usize>>,
    shared: Arc<Shared<D::Item>>,
    cfg: LoaderConfig,
) -> Vec<JoinHandle<()>> {
    let num_workers = cfg.num_workers.max(1);
    shared.lock().live_workers = num_workers;
    (0..num_workers)
        .map(|_| {
            let dataset = Arc::clone(&dataset);
            let order = Arc::clone(&order);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let _exit = WorkerExitGuard {
                    shared: Arc::clone(&shared),
                };
                loop {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let pos = shared.next_fetch.fetch_add(1, Ordering::Relaxed);
                    if pos >= order.len() {
                        return;
                    }
                    let slot = {
                        let _prep = sf_trace::span("loader", "prepare")
                            .arg("index", order[pos] as f64)
                            .arg("position", pos as f64);
                        match prepare_with_retries(&dataset, order[pos], &cfg) {
                            Ok(item) => Slot::Ready(item),
                            Err(e) => Slot::Failed(e),
                        }
                    };
                    let mut st = shared.lock();
                    st.buffer.insert(pos, slot);
                    let depth = st.buffer.len();
                    drop(st);
                    sf_trace::counter("loader.queue_depth", depth as f64);
                    shared.ready.notify_all();
                }
            })
        })
        .collect()
}

fn new_shared<T>() -> Arc<Shared<T>> {
    Arc::new(Shared {
        state: Mutex::new(SharedState {
            buffer: BTreeMap::new(),
            live_workers: 0,
        }),
        ready: Condvar::new(),
        next_fetch: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
    })
}

fn shutdown_and_join<T>(shared: &Shared<T>, workers: &mut Vec<JoinHandle<()>>) {
    shared.shutdown.store(true, Ordering::Release);
    shared.next_fetch.store(usize::MAX, Ordering::Relaxed);
    shared.ready.notify_all();
    for w in workers.drain(..) {
        let _ = w.join();
    }
}

fn deliver<T>(order: &[usize], pos: usize, slot: Slot<T>) -> Result<(usize, T), LoaderError> {
    match slot {
        Slot::Ready(item) => Ok((order[pos], item)),
        Slot::Failed(e) => Err(e),
    }
}

/// In-order pipeline (PyTorch `DataLoader` semantics): yields position 0,
/// then 1, ... — waiting for each even if later positions are ready.
///
/// Yields `Ok((dataset_index, item))` pairs, or `Err(LoaderError)` for a
/// position whose sample could not be prepared.
pub struct BlockingLoader<D: Dataset> {
    shared: Arc<Shared<D::Item>>,
    order: Arc<Vec<usize>>,
    next_yield: usize,
    workers: Vec<JoinHandle<()>>,
}

impl<D: Dataset> BlockingLoader<D> {
    /// Starts workers preparing `order` (a permutation of dataset indices).
    pub fn new(dataset: Arc<D>, order: Vec<usize>, cfg: LoaderConfig) -> Self {
        let shared = new_shared();
        let order = Arc::new(order);
        let workers = spawn_workers(dataset, Arc::clone(&order), Arc::clone(&shared), cfg);
        BlockingLoader {
            shared,
            order,
            next_yield: 0,
            workers,
        }
    }
}

impl<D: Dataset> Iterator for BlockingLoader<D> {
    type Item = Result<(usize, D::Item), LoaderError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_yield >= self.order.len() {
            return None;
        }
        // Everything from here until return is consumer time lost to the
        // pipeline — the "data-wait" bucket of the paper's Table 1.
        let _wait = sf_trace::span("data_wait", "loader.next").arg("position", self.next_yield as f64);
        let want = self.next_yield;
        let mut st = self.shared.lock();
        // Strict order: wait specifically for `want`, even if others are
        // ready — this is the blocking behaviour of Figure 5 (i).
        let slot = loop {
            if let Some(slot) = st.buffer.remove(&want) {
                break slot;
            }
            if st.live_workers == 0 {
                // Every position gets exactly one Ready/Failed slot while
                // workers live; reaching this means the workers are gone.
                // Report instead of deadlocking.
                self.next_yield += 1;
                return Some(Err(LoaderError::WorkersDisconnected { position: want }));
            }
            st = self
                .shared
                .ready
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        };
        drop(st);
        self.next_yield += 1;
        Some(deliver(&self.order, want, slot))
    }
}

impl<D: Dataset> Drop for BlockingLoader<D> {
    fn drop(&mut self) {
        shutdown_and_join(&self.shared, &mut self.workers);
    }
}

/// ScaleFold's non-blocking pipeline: yields the lowest-index *ready* batch
/// as soon as any batch is ready (best-effort order; exactly-once
/// delivery).
///
/// Yields `Ok((dataset_index, item))` pairs, or `Err(LoaderError)` for a
/// sample that could not be prepared.
pub struct NonBlockingPipeline<D: Dataset> {
    shared: Arc<Shared<D::Item>>,
    order: Arc<Vec<usize>>,
    yielded: usize,
    workers: Vec<JoinHandle<()>>,
}

impl<D: Dataset> NonBlockingPipeline<D> {
    /// Starts workers preparing `order` (a permutation of dataset indices).
    pub fn new(dataset: Arc<D>, order: Vec<usize>, cfg: LoaderConfig) -> Self {
        let shared = new_shared();
        let order = Arc::new(order);
        let workers = spawn_workers(dataset, Arc::clone(&order), Arc::clone(&shared), cfg);
        NonBlockingPipeline {
            shared,
            order,
            yielded: 0,
            workers,
        }
    }
}

impl<D: Dataset> Iterator for NonBlockingPipeline<D> {
    type Item = Result<(usize, D::Item), LoaderError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.yielded >= self.order.len() {
            return None;
        }
        // Consumer time lost to the pipeline; with warm workers this span
        // is nanoseconds — exactly the claim the phase report verifies.
        let _wait = sf_trace::span("data_wait", "loader.next").arg("position", self.yielded as f64);
        let mut st = self.shared.lock();
        // Priority queue semantics: take the lowest-index ready batch, the
        // moment anything is ready — Figure 5 (ii).
        let (pos, slot) = loop {
            if let Some((&pos, _)) = st.buffer.iter().next() {
                let slot = st.buffer.remove(&pos).expect("key just observed");
                break (pos, slot);
            }
            if st.live_workers == 0 {
                self.yielded += 1;
                return Some(Err(LoaderError::WorkersDisconnected {
                    position: self.yielded - 1,
                }));
            }
            st = self
                .shared
                .ready
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        };
        drop(st);
        self.yielded += 1;
        Some(deliver(&self.order, pos, slot))
    }
}

impl<D: Dataset> Drop for NonBlockingPipeline<D> {
    fn drop(&mut self) {
        shutdown_and_join(&self.shared, &mut self.workers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::{Duration, Instant};

    /// Test dataset whose item `i` takes `delays[i]` to prepare.
    struct SleepyDataset {
        delays: Vec<Duration>,
    }

    impl Dataset for SleepyDataset {
        type Item = usize;

        fn len(&self) -> usize {
            self.delays.len()
        }

        fn prepare(&self, index: usize) -> usize {
            std::thread::sleep(self.delays[index]);
            index
        }
    }

    /// Panics on the given index — permanently or only the first `n`
    /// attempts.
    struct PanickyDataset {
        len: usize,
        panic_index: usize,
        panic_attempts: u32,
        attempts: AtomicU32,
    }

    impl PanickyDataset {
        fn permanent(len: usize, panic_index: usize) -> Self {
            PanickyDataset {
                len,
                panic_index,
                panic_attempts: u32::MAX,
                attempts: AtomicU32::new(0),
            }
        }

        fn transient(len: usize, panic_index: usize, attempts: u32) -> Self {
            PanickyDataset {
                len,
                panic_index,
                panic_attempts: attempts,
                attempts: AtomicU32::new(0),
            }
        }
    }

    impl Dataset for PanickyDataset {
        type Item = usize;

        fn len(&self) -> usize {
            self.len
        }

        fn prepare(&self, index: usize) -> usize {
            if index == self.panic_index {
                let seen = self.attempts.fetch_add(1, Ordering::SeqCst);
                if seen < self.panic_attempts {
                    panic!("injected panic on sample {index}");
                }
            }
            index
        }
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// Runs `f` on a helper thread and panics if it exceeds `timeout` —
    /// converts a would-be deadlock into a test failure.
    fn with_deadline<T: Send + 'static>(timeout: Duration, f: impl FnOnce() -> T + Send + 'static) -> T {
        let (tx, rx) = std::sync::mpsc::channel();
        let h = std::thread::spawn(move || {
            let _ = tx.send(f());
        });
        let out = rx
            .recv_timeout(timeout)
            .expect("pipeline hung: deadline exceeded");
        h.join().expect("helper thread");
        out
    }

    fn fast_retry_cfg(num_workers: usize) -> LoaderConfig {
        LoaderConfig {
            num_workers,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
        }
    }

    #[test]
    fn blocking_yields_in_exact_order() {
        let d = Arc::new(SleepyDataset {
            delays: vec![ms(30), ms(1), ms(1), ms(1)],
        });
        let loader = BlockingLoader::new(d, vec![0, 1, 2, 3], LoaderConfig::with_workers(4));
        let got: Vec<usize> = loader.map(|r| r.expect("no faults").0).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn non_blocking_yields_fast_batches_first() {
        // Paper's Figure 5 scenario: batch "b" (position 0 here) is slow;
        // the pipeline must yield the ready batches before it.
        let d = Arc::new(SleepyDataset {
            delays: vec![ms(120), ms(5), ms(5), ms(5)],
        });
        let loader =
            NonBlockingPipeline::new(d, vec![0, 1, 2, 3], LoaderConfig::with_workers(4));
        let got: Vec<usize> = loader.map(|r| r.expect("no faults").0).collect();
        assert_ne!(got[0], 0, "slow batch must not be yielded first: {got:?}");
        // Exactly-once delivery.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn non_blocking_is_faster_under_straggler() {
        // Consumer "trains" for 10 ms per batch; batch at position 1 takes
        // 80 ms to prepare. Blocking: the consumer stalls on it. Non-
        // blocking: the consumer keeps training on ready batches.
        let delays = vec![ms(5), ms(80), ms(5), ms(5), ms(5), ms(5)];
        let order: Vec<usize> = (0..delays.len()).collect();
        let run = |blocking: bool| -> Duration {
            let d = Arc::new(SleepyDataset { delays: delays.clone() });
            let start = Instant::now();
            let consume = |i: usize| {
                let _ = i;
                std::thread::sleep(ms(10));
            };
            if blocking {
                for r in BlockingLoader::new(d, order.clone(), LoaderConfig::with_workers(2)) {
                    consume(r.expect("no faults").0);
                }
            } else {
                for r in
                    NonBlockingPipeline::new(d, order.clone(), LoaderConfig::with_workers(2))
                {
                    consume(r.expect("no faults").0);
                }
            }
            start.elapsed()
        };
        let t_blocking = run(true);
        let t_nonblocking = run(false);
        assert!(
            t_nonblocking <= t_blocking + ms(5),
            "non-blocking {t_nonblocking:?} vs blocking {t_blocking:?}"
        );
    }

    #[test]
    fn both_loaders_respect_custom_order() {
        let d = Arc::new(SleepyDataset {
            delays: vec![ms(1); 5],
        });
        let order = vec![4, 2, 0, 1, 3];
        let got: Vec<usize> =
            BlockingLoader::new(Arc::clone(&d), order.clone(), LoaderConfig::default())
                .map(|r| r.expect("no faults").0)
                .collect();
        assert_eq!(got, order);

        let mut got2: Vec<usize> = NonBlockingPipeline::new(d, order.clone(), LoaderConfig::default())
            .map(|r| r.expect("no faults").0)
            .collect();
        got2.sort_unstable();
        assert_eq!(got2, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_order_yields_nothing() {
        let d = Arc::new(SleepyDataset { delays: vec![] });
        assert_eq!(
            BlockingLoader::new(Arc::clone(&d), vec![], LoaderConfig::default()).count(),
            0
        );
        assert_eq!(
            NonBlockingPipeline::new(d, vec![], LoaderConfig::default()).count(),
            0
        );
    }

    #[test]
    fn single_worker_still_completes() {
        let d = Arc::new(SleepyDataset {
            delays: vec![ms(2); 6],
        });
        let got: Vec<usize> =
            NonBlockingPipeline::new(d, (0..6).collect(), LoaderConfig::with_workers(1))
                .map(|r| r.expect("no faults").0)
                .collect();
        assert_eq!(got, (0..6).collect::<Vec<_>>()); // 1 worker => in order
    }

    #[test]
    fn dropping_mid_iteration_joins_workers() {
        let d = Arc::new(SleepyDataset {
            delays: vec![ms(5); 20],
        });
        let mut loader = NonBlockingPipeline::new(d, (0..20).collect(), LoaderConfig::default());
        let _ = loader.next();
        drop(loader); // must not hang or panic
    }

    #[test]
    fn panicking_sample_yields_error_not_hang_nonblocking() {
        let (got, errs) = with_deadline(Duration::from_secs(20), || {
            let d = Arc::new(PanickyDataset::permanent(5, 2));
            let mut got = Vec::new();
            let mut errs = Vec::new();
            for r in NonBlockingPipeline::new(d, (0..5).collect(), fast_retry_cfg(2)) {
                match r {
                    Ok((i, _)) => got.push(i),
                    Err(e) => errs.push(e),
                }
            }
            (got, errs)
        });
        got.iter().for_each(|&i| assert_ne!(i, 2));
        assert_eq!(got.len(), 4);
        assert_eq!(errs.len(), 1);
        match &errs[0] {
            LoaderError::PreparePanicked {
                index,
                attempts,
                message,
            } => {
                assert_eq!(*index, 2);
                assert_eq!(*attempts, 3); // 1 try + 2 retries
                assert!(message.contains("injected panic"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn panicking_sample_yields_error_not_hang_blocking() {
        let results = with_deadline(Duration::from_secs(20), || {
            let d = Arc::new(PanickyDataset::permanent(4, 0));
            BlockingLoader::new(d, (0..4).collect(), fast_retry_cfg(2)).collect::<Vec<_>>()
        });
        assert_eq!(results.len(), 4);
        // Blocking loader preserves order, so position 0 is the failure.
        assert!(matches!(
            results[0],
            Err(LoaderError::PreparePanicked { index: 0, .. })
        ));
        assert!(results[1..].iter().all(|r| r.is_ok()));
    }

    #[test]
    fn transient_panic_recovers_via_retry() {
        let results = with_deadline(Duration::from_secs(20), || {
            let d = Arc::new(PanickyDataset::transient(4, 1, 2));
            NonBlockingPipeline::new(d, (0..4).collect(), fast_retry_cfg(1)).collect::<Vec<_>>()
        });
        // 2 panics < 1 + 2 retries, so every sample eventually delivers.
        assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 4);
    }

    #[test]
    fn drop_with_panicked_worker_does_not_hang() {
        with_deadline(Duration::from_secs(20), || {
            let d = Arc::new(PanickyDataset::permanent(20, 0));
            let mut loader =
                NonBlockingPipeline::new(d, (0..20).collect(), fast_retry_cfg(3));
            let _ = loader.next();
            drop(loader);
        });
    }

    #[test]
    fn zero_retries_fails_fast() {
        let results = with_deadline(Duration::from_secs(20), || {
            let d = Arc::new(PanickyDataset::permanent(3, 1));
            let cfg = LoaderConfig {
                num_workers: 2,
                max_retries: 0,
                retry_backoff: Duration::from_millis(1),
            };
            NonBlockingPipeline::new(d, (0..3).collect(), cfg).collect::<Vec<_>>()
        });
        let errs: Vec<_> = results.iter().filter(|r| r.is_err()).collect();
        assert_eq!(errs.len(), 1);
        assert!(matches!(
            errs[0],
            Err(LoaderError::PreparePanicked { attempts: 1, .. })
        ));
    }
}
