//! Triton-style kernel autotuning across DAP-scaled problem sizes: the
//! §3.3.2 story — hand-picked configurations lose exactly when DAP shrinks
//! the workload, and the tuner claws the efficiency back.
//!
//! Run with: `cargo run --release --example autotune`

use sf_gpusim::{autotune, DeviceSpec, KernelTemplate, TileConfig};

fn main() {
    let rows_full = 128 * 256; // MSA LayerNorm rows at paper scale
    for dev in [DeviceSpec::a100(), DeviceSpec::h100()] {
        println!("=== {} ===", dev.name);
        println!(
            "{:<10} {:>12} {:>22} {:>12} {:>8}",
            "DAP", "default (us)", "best config", "tuned (us)", "gain"
        );
        for dap in [1usize, 2, 4, 8] {
            let t = KernelTemplate::layer_norm(rows_full / dap, 128, 8.0);
            let default = t.duration_s(TileConfig::default_config(), &dev);
            let (best, tuned) = autotune(&t, &dev);
            println!(
                "{:<10} {:>12.2} {:>22} {:>12.2} {:>7.2}x",
                format!("DAP-{dap}"),
                default * 1e6,
                format!("m{} n{} w{}", best.block_m, best.block_n, best.num_warps),
                tuned * 1e6,
                default / tuned
            );
        }
        println!();
    }
    println!("note how the tuning gain grows as DAP shrinks the launch — the");
    println!("paper found autotuning \"particularly useful when workload sizes");
    println!("were scaled down by DAP\" (S3.3.2).");
}
