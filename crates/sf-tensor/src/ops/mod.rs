//! Numerical kernels: GEMM, softmax, LayerNorm, and fused attention.
//!
//! The `layernorm` and `attention` modules each provide both a *naive*
//! multi-pass implementation (the reference) and a *fused* single-pass
//! implementation mirroring the paper's custom Triton kernels. Tests assert
//! the two agree to within f32 tolerance; the GPU-side performance effect of
//! the fusion is modelled in `sf-gpusim`.

pub mod attention;
pub mod layernorm;
pub mod matmul;
pub mod softmax;
pub mod vexp;
