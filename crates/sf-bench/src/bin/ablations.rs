//! Ablation sweeps over the design choices DESIGN.md calls out: DDP
//! overlap fraction, data-loader worker counts, gradient-bucket size,
//! straggler sensitivity, and the per-optimization contribution of the
//! ScaleFold set (leave-one-out).

use scalefold::{build_graph, OptimizationSet};
use sf_cluster::{ClusterConfig, ClusterSim, StragglerModel};
use sf_gpusim::DeviceSpec;
use sf_model::ModelConfig;
use sf_optim::{GradBuckets, Grads};
use sf_tensor::Tensor;

fn sim(opts: &OptimizationSet, mutate: impl FnOnce(&mut ClusterConfig)) -> f64 {
    let cfg = ModelConfig::paper();
    let graph = build_graph(&cfg, opts);
    let mut cc = ClusterConfig::eos(128, opts.dap);
    cc.cuda_graph = opts.cuda_graph;
    cc.bf16_comm = opts.bf16;
    cc.autotune = opts.triton_ln;
    cc.straggler = if opts.nonblocking_loader {
        StragglerModel::optimized()
    } else {
        StragglerModel::baseline()
    };
    cc.straggler.gc_enabled = !opts.disable_gc;
    mutate(&mut cc);
    ClusterSim::new(&graph, cc).mean_step_s(40)
}

fn main() {
    sf_bench::banner("Ablations");
    let full = OptimizationSet::scalefold();

    // --- Leave-one-out over the optimization set -----------------------
    println!("leave-one-out (H100, DP 128 x DAP-8; higher delta = more important):");
    let baseline = sim(&full, |_| {});
    println!("  {:<28} {:>8.3} s", "all optimizations", baseline);
    type Toggle = Box<dyn Fn(&mut OptimizationSet)>;
    let ablations: Vec<(&str, Toggle)> = vec![
        ("- GEMM batching", Box::new(|o| o.gemm_batching = false)),
        ("- non-blocking loader", Box::new(|o| o.nonblocking_loader = false)),
        ("- bfloat16", Box::new(|o| o.bf16 = false)),
        ("- Triton MHA", Box::new(|o| o.triton_mha = false)),
        ("- Triton LayerNorm", Box::new(|o| o.triton_ln = false)),
        ("- fused Adam+SWA", Box::new(|o| o.fused_adam_swa = false)),
        ("- CUDA graph", Box::new(|o| o.cuda_graph = false)),
        ("- no-ckpt (re-enable ckpt)", Box::new(|o| o.no_grad_checkpointing = false)),
        ("- disable GC (re-enable GC)", Box::new(|o| o.disable_gc = false)),
        ("- torch.compile", Box::new(|o| o.torch_compile = false)),
    ];
    for (name, apply) in ablations {
        let mut o = full;
        apply(&mut o);
        let t = sim(&o, |_| {});
        println!("  {:<28} {:>8.3} s  (+{:>5.1}%)", name, t, 100.0 * (t - baseline) / baseline);
    }

    // --- Overlap fraction of the gradient all-reduce --------------------
    println!();
    println!("DDP overlap fraction (reference model, DP 128):");
    for overlap in [0.0, 0.25, 0.5, 0.75, 0.95] {
        let t = sim(&OptimizationSet::none(), |cc| cc.overlap_fraction = overlap);
        println!("  overlap {overlap:>4.2}: {t:>7.3} s/step");
    }

    // --- Data-loader workers under the blocking loader ------------------
    println!();
    println!("blocking-loader workers (reference model):");
    for workers in [1usize, 2, 4, 8, 16] {
        let t = sim(&OptimizationSet::none(), |cc| cc.straggler.data_workers = workers);
        println!("  workers {workers:>2}: {t:>7.3} s/step");
    }

    // --- Gradient bucket size (real kernels) ----------------------------
    println!();
    println!("gradient-clip bucket size (real CPU kernels, 2000 tensors):");
    let mut grads = Grads::new();
    for i in 0..2000 {
        grads.insert(format!("p{i:04}"), Tensor::randn(&[64], i as u64));
    }
    for kib in [16usize, 256, 4096, 25 * 1024] {
        let b = GradBuckets::pack(&grads, kib * 1024);
        println!("  bucket {kib:>6} KiB -> {:>4} buckets (kernel launches: {})", b.num_buckets(), 2 * b.num_buckets());
    }

    // --- Device sensitivity ---------------------------------------------
    println!();
    println!("device sweep (full optimization set, DAP-8):");
    for dev in [DeviceSpec::a100(), DeviceSpec::h100()] {
        let name = dev.name.clone();
        let t = sim(&full, move |cc| cc.device = dev);
        println!("  {name:<6}: {t:>7.3} s/step");
    }
}
