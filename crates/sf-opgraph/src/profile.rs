//! Profiling of a step graph: the paper's Table 1 classification, the §2.2
//! per-pattern breakdown, and step-time estimation.

use crate::builder::StepGraph;
use crate::ops::{ModuleTag, OpKind};
use serde::{Deserialize, Serialize};
use sf_gpusim::{CpuModel, DeviceSpec, Kernel, KernelClass, Stream, StreamStats};

/// The rows of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// CPU overhead share of step time (paper: 9.10%).
    pub cpu_overhead_pct: f64,
    /// Math-bound runtime share (paper: 24.06%).
    pub math_pct: f64,
    /// Math-bound kernel calls (paper: 18,147).
    pub math_calls: usize,
    /// Memory-bound runtime share (paper: 65.03%).
    pub memory_pct: f64,
    /// Memory-bound kernel calls (paper: 97,749).
    pub memory_calls: usize,
    /// Memory-operation runtime share (paper: 1.82%).
    pub memop_pct: f64,
    /// Memory-operation calls (paper: 34,991).
    pub memop_calls: usize,
}

impl Table1 {
    /// Classifies and times `graph` on `device`, reproducing Table 1.
    pub fn compute(graph: &StepGraph, device: &DeviceSpec, cpu: CpuModel) -> Self {
        let mut math_t = 0.0;
        let mut mem_t = 0.0;
        let mut memop_t = 0.0;
        let (mut math_c, mut mem_c, mut memop_c) = (0usize, 0usize, 0usize);
        for op in &graph.ops {
            let d = op.kernel.duration_s(device);
            // Classify by operator type, as the paper does: "matrix-matrix
            // multiplications and convolutions are categorized as
            // math-bounded kernels. Memory copy and set are categorized as
            // memory-operation. The rests ... memory-bounded."
            let class = if op.kind == OpKind::MemOp {
                // Transposes/permutes execute as compute kernels; only true
                // copies/memsets/casts are "memory-operations" in Table 1.
                if op.kernel.name.starts_with("permute") {
                    KernelClass::MemoryBound
                } else {
                    KernelClass::MemoryOp
                }
            } else if op.kernel.flops > 0.0 {
                KernelClass::MathBound
            } else {
                KernelClass::MemoryBound
            };
            match class {
                KernelClass::MathBound => {
                    math_t += d;
                    math_c += 1;
                }
                KernelClass::MemoryBound => {
                    mem_t += d;
                    mem_c += 1;
                }
                KernelClass::MemoryOp => {
                    memop_t += d;
                    memop_c += 1;
                }
            }
        }
        let stats = step_time(graph, device, cpu, false);
        let total = stats.total_s.max(1e-12);
        Table1 {
            cpu_overhead_pct: 100.0 * stats.cpu_exposed_s / total,
            math_pct: 100.0 * math_t / total,
            math_calls: math_c,
            memory_pct: 100.0 * mem_t / total,
            memory_calls: mem_c,
            memop_pct: 100.0 * memop_t / total,
            memop_calls: memop_c,
        }
    }

    /// Total kernel calls.
    pub fn total_calls(&self) -> usize {
        self.math_calls + self.memory_calls + self.memop_calls
    }
}

/// Runtime shares of the performance-critical patterns (§2.2): Evoformer
/// 72% of step time, MHA 34%, LayerNorm 14%, weight update 6%, SWA 6%,
/// gradient clipping 3%.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleProfile {
    /// Evoformer-type compute share (main + extra-MSA + template stacks).
    pub evoformer_pct: f64,
    /// Multi-head-attention share (all attention-core kernels).
    pub mha_pct: f64,
    /// LayerNorm share.
    pub layernorm_pct: f64,
    /// Adam weight-update share.
    pub adam_pct: f64,
    /// SWA share.
    pub swa_pct: f64,
    /// Gradient-clipping share.
    pub grad_clip_pct: f64,
    /// Structure-module share (part of the paper's 11% serial modules).
    pub structure_pct: f64,
}

impl ModuleProfile {
    /// Computes the per-pattern breakdown on `device` (shares of GPU busy
    /// time).
    pub fn compute(graph: &StepGraph, device: &DeviceSpec) -> Self {
        let mut total = 0.0;
        let mut evo = 0.0;
        let mut mha = 0.0;
        let mut ln = 0.0;
        let mut adam = 0.0;
        let mut swa = 0.0;
        let mut clip = 0.0;
        let mut structure = 0.0;
        for op in &graph.ops {
            let d = op.kernel.duration_s(device);
            total += d;
            if matches!(
                op.module,
                ModuleTag::Evoformer | ModuleTag::ExtraMsa | ModuleTag::Template
            ) {
                evo += d;
            }
            if op.module == ModuleTag::Structure {
                structure += d;
            }
            match op.kind {
                OpKind::AttentionGemm | OpKind::Softmax | OpKind::AttentionElementwise => {
                    mha += d;
                }
                OpKind::LayerNorm => ln += d,
                OpKind::AdamUpdate => adam += d,
                OpKind::SwaUpdate => swa += d,
                OpKind::GradClip => clip += d,
                OpKind::Fused => {
                    // Fused kernels keep their pattern identity via name.
                    let n = &op.kernel.name;
                    if n.starts_with("mha") {
                        mha += d;
                    } else if n.starts_with("ln") {
                        ln += d;
                    } else if n.contains("adam") {
                        adam += d;
                    } else if n.contains("clip") {
                        clip += d;
                    }
                }
                _ => {}
            }
        }
        let total = total.max(1e-12);
        ModuleProfile {
            evoformer_pct: 100.0 * evo / total,
            mha_pct: 100.0 * mha / total,
            layernorm_pct: 100.0 * ln / total,
            adam_pct: 100.0 * adam / total,
            swa_pct: 100.0 * swa / total,
            grad_clip_pct: 100.0 * clip / total,
            structure_pct: 100.0 * structure / total,
        }
    }
}

/// Times the whole step on a stream (eager launches or CUDA-graph replay).
pub fn step_time(
    graph: &StepGraph,
    device: &DeviceSpec,
    cpu: CpuModel,
    cuda_graph: bool,
) -> StreamStats {
    let kernels: Vec<Kernel> = graph.ops.iter().map(|o| o.kernel.clone()).collect();
    let stream = Stream::new(device.clone(), cpu);
    if cuda_graph {
        stream.run_graph(&kernels)
    } else {
        stream.run_eager_with_syncs(&kernels, &graph.syncs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_model::ModelConfig;

    fn reference() -> StepGraph {
        // MLPerf-style average: ~3 warm recycling forwards.
        StepGraph::reference(&ModelConfig::paper(), 3)
    }

    #[test]
    fn table1_shape_matches_paper() {
        let g = reference();
        let t = Table1::compute(&g, &DeviceSpec::a100(), CpuModel::healthy());
        // Paper: CPU 9.10 / math 24.06 / memory 65.03 / memop 1.82.
        // Exposed CPU share is the hardest number to reproduce in a
        // queue-model: the paper's 9.10% counts full profiler-visible CPU
        // time; our run-ahead stream model only exposes what actually
        // stalls the GPU. Accept a broad band (see EXPERIMENTS.md).
        assert!(
            (0.5..20.0).contains(&t.cpu_overhead_pct),
            "cpu {:.2}%",
            t.cpu_overhead_pct
        );
        assert!((14.0..36.0).contains(&t.math_pct), "math {:.2}%", t.math_pct);
        assert!(
            (50.0..80.0).contains(&t.memory_pct),
            "memory {:.2}%",
            t.memory_pct
        );
        assert!((0.2..8.0).contains(&t.memop_pct), "memop {:.2}%", t.memop_pct);
        // Memory-bound kernels dominate the call count.
        assert!(t.memory_calls > 3 * t.math_calls);
        assert!(t.total_calls() > 100_000);
    }

    #[test]
    fn pattern_profile_matches_paper() {
        let g = reference();
        let p = ModuleProfile::compute(&g, &DeviceSpec::a100());
        // Paper: Evoformer 72%, MHA 34%, LN 14%, Adam 6%, SWA 6%, clip 3%.
        assert!((55.0..88.0).contains(&p.evoformer_pct), "evo {:.1}", p.evoformer_pct);
        assert!((22.0..46.0).contains(&p.mha_pct), "mha {:.1}", p.mha_pct);
        assert!((7.0..22.0).contains(&p.layernorm_pct), "ln {:.1}", p.layernorm_pct);
        assert!((2.0..12.0).contains(&p.adam_pct), "adam {:.1}", p.adam_pct);
        assert!((2.0..12.0).contains(&p.swa_pct), "swa {:.1}", p.swa_pct);
        assert!((1.0..8.0).contains(&p.grad_clip_pct), "clip {:.1}", p.grad_clip_pct);
        assert!(p.structure_pct < 15.0, "structure {:.1}", p.structure_pct);
    }

    #[test]
    fn a100_reference_step_time_magnitude() {
        // Paper: reference model 6.76 s/step on A100 (local batch 1).
        let g = reference();
        let t = step_time(&g, &DeviceSpec::a100(), CpuModel::healthy(), false).total_s;
        assert!((3.0..12.0).contains(&t), "A100 step {t:.2} s");
    }

    #[test]
    fn h100_is_faster_but_memory_bound_limits_gain() {
        // Paper: 6.76 -> 4.07 s = 1.66x (far under the 3x math ratio).
        let g = reference();
        let a = step_time(&g, &DeviceSpec::a100(), CpuModel::healthy(), false).total_s;
        let h = step_time(&g, &DeviceSpec::h100(), CpuModel::healthy(), false).total_s;
        let speedup = a / h;
        assert!(
            (1.3..2.2).contains(&speedup),
            "H100 speedup {speedup:.2} (a={a:.2}, h={h:.2})"
        );
    }

    #[test]
    fn cuda_graph_removes_cpu_exposure() {
        let g = reference();
        let eager = step_time(&g, &DeviceSpec::h100(), CpuModel::contended(3.0), false);
        let graph = step_time(&g, &DeviceSpec::h100(), CpuModel::contended(3.0), true);
        assert!(graph.total_s < eager.total_s);
        assert!(graph.cpu_exposed_s < 0.01 * eager.cpu_exposed_s.max(1e-9));
    }
}
