//! The per-step cluster simulation: DP × DAP grid, compute + collectives +
//! stragglers, with the synchronization semantics that make one slow worker
//! everyone's problem.

use crate::fabric::FabricSpec;
use crate::straggler::{DataPipeState, StragglerModel};
use serde::{Deserialize, Serialize};
use rand::Rng;
use sf_data::{PrepTimeModel, SyntheticDataset};
use sf_gpusim::{CpuModel, DeviceSpec};
use sf_opgraph::builder::StepGraph;
use sf_opgraph::dap::{shard, DapCommPlan};
use sf_opgraph::profile::step_time;

/// Cluster/job configuration for one training setup.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// GPU model.
    pub device: DeviceSpec,
    /// Interconnect.
    pub fabric: FabricSpec,
    /// Data-parallel degree (number of sample groups; global batch size).
    pub dp: usize,
    /// DAP degree inside each group (GPUs cooperating on one sample).
    pub dap: usize,
    /// Capture the step in CUDA graphs.
    pub cuda_graph: bool,
    /// Gradients communicated in bf16 (halves all-reduce bytes).
    pub bf16_comm: bool,
    /// Fraction of the gradient all-reduce overlapped with backward
    /// compute (PyTorch DDP bucketing achieves ~0.5 for this model).
    pub overlap_fraction: f64,
    /// Apply Triton-style autotuning to the fused kernels after DAP
    /// sharding (§3.3.2).
    pub autotune: bool,
    /// Sample the per-step recycling count uniformly from 0..=3 (the
    /// AlphaFold training recipe) instead of a fixed count. Varies compute
    /// per DP group and, under CUDA graphs, exercises the shape-keyed
    /// graph cache: the first sighting of each recycling count per group
    /// pays a capture.
    pub variable_recycling: bool,
    /// Straggler injection model.
    pub straggler: StragglerModel,
    /// RNG seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// MLPerf-style baseline on H100s/Eos at `dp × dap` ranks.
    pub fn eos(dp: usize, dap: usize) -> Self {
        ClusterConfig {
            device: DeviceSpec::h100(),
            fabric: FabricSpec::eos(),
            dp,
            dap,
            cuda_graph: false,
            bf16_comm: false,
            overlap_fraction: 0.5,
            autotune: false,
            variable_recycling: false,
            straggler: StragglerModel::baseline(),
            seed: 0x5CA1EF01D,
        }
    }

    /// Total GPU count.
    pub fn total_ranks(&self) -> usize {
        self.dp * self.dap
    }
}

/// Mean per-step timing decomposition over a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StepBreakdown {
    /// On-GPU compute (including exposed CPU launch overhead), seconds.
    pub compute_s: f64,
    /// Data-pipeline wait, seconds.
    pub data_wait_s: f64,
    /// DAP collective cost (balanced part), seconds.
    pub dap_comm_s: f64,
    /// Extra time from stragglers forcing synchronization waits, seconds.
    pub imbalance_s: f64,
    /// Exposed (non-overlapped) gradient all-reduce, seconds.
    pub dp_comm_s: f64,
    /// Total step wall-clock, seconds.
    pub total_s: f64,
}

/// The simulator: owns the (already-fused or reference) step graph and the
/// cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    cfg: ClusterConfig,
    /// Per-rank compute time for one step (graph DAP-sharded).
    base_compute_s: f64,
    /// DAP collective plan.
    dap_plan: DapCommPlan,
    /// Gradient bytes all-reduced across DP ranks.
    grad_bytes: f64,
    dataset: SyntheticDataset,
    prep: PrepTimeModel,
}

impl ClusterSim {
    /// Builds a simulator for `graph` (unsharded; the simulator applies
    /// DAP-`cfg.dap` itself) under `cfg`.
    pub fn new(graph: &StepGraph, cfg: ClusterConfig) -> Self {
        let mut sharded = shard(graph, cfg.dap);
        if cfg.autotune {
            sharded = sf_opgraph::fusion::autotune_fused(&sharded, &cfg.device).0;
        }
        let cpu = CpuModel::healthy();
        let stats = step_time(&sharded, &cfg.device, cpu, cfg.cuda_graph);
        let dap_plan = DapCommPlan::from_graph(graph, cfg.dap);
        let grad_bytes =
            graph.param_elements * if cfg.bf16_comm { 2.0 } else { 4.0 };
        ClusterSim {
            base_compute_s: stats.total_s,
            dap_plan,
            grad_bytes,
            dataset: SyntheticDataset::new(cfg.seed ^ 0xDA7A, 4096),
            prep: PrepTimeModel::default(),
            cfg,
        }
    }

    /// The cluster configuration this simulator was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The per-rank compute time (no communication, no stragglers).
    pub fn base_compute_s(&self) -> f64 {
        self.base_compute_s
    }

    /// Balanced DAP collective cost per step.
    pub fn dap_comm_s(&self) -> f64 {
        self.dap_plan.events as f64
            * self
                .cfg
                .fabric
                .all_gather_s(self.dap_plan.bytes_per_event, self.cfg.dap)
    }

    /// Exposed (non-overlapped) gradient all-reduce cost per step.
    pub fn dp_comm_exposed_s(&self) -> f64 {
        let full = self.cfg.fabric.all_reduce_s(self.grad_bytes, self.cfg.dp);
        full * (1.0 - self.cfg.overlap_fraction)
    }

    /// Simulates `steps` training steps; returns per-step breakdowns.
    ///
    /// Synchronization semantics: within a DAP group every collective waits
    /// for the slowest member, so the group's step is delayed by the *max*
    /// of its members' host delays; the global gradient all-reduce then
    /// waits for the slowest group.
    pub fn simulate(&self, steps: u64) -> Vec<StepBreakdown> {
        let dap_comm = self.dap_comm_s();
        let dp_comm = self.dp_comm_exposed_s();
        let mut out = Vec::with_capacity(steps as usize);
        // Per-group RNGs and persistent loader queues: group = dp index.
        let mut group_rngs: Vec<_> = (0..self.cfg.dp)
            .map(|g| StragglerModel::rank_rng(self.cfg.seed, g))
            .collect();
        let mut pipes = vec![DataPipeState::new(); self.cfg.dp];
        // Per-group CUDA-graph caches keyed by recycling count (§3.2's
        // "capture multiple graphs for different recycling scenarios").
        let mut captured: Vec<[bool; 4]> = vec![[false; 4]; self.cfg.dp];
        for step in 0..steps {
            let mut slowest_group = 0.0f64;
            let mut sum_groups = 0.0f64;
            let mut max_data_wait = 0.0f64;
            for ((g_idx, rng), pipe) in group_rngs.iter_mut().enumerate().zip(pipes.iter_mut()) {
                // Host delay: max over the DAP group members. CUDA-graph
                // replay decouples the GPU from the host, so CPU peaks and
                // GC pauses barely touch the step (§3.2: "greatly improves
                // training performance robustness against CPU usage
                // peaks"); only a small residual (data handoff) remains.
                let host_scale = if self.cfg.cuda_graph { 0.15 } else { 1.0 };
                let host: f64 = (0..self.cfg.dap)
                    .map(|_| self.cfg.straggler.host_delay_s(rng, step) * host_scale)
                    .fold(0.0, f64::max);
                let prep = StragglerModel::sample_prep_s(&self.dataset, &self.prep, rng);
                let data = pipe.step(&self.cfg.straggler, prep, self.base_compute_s);
                // Recycling variability: the base graph is costed at one
                // warm forward; each forward is ~28% of the step, so the
                // per-step compute scales with the sampled count.
                let mut compute = self.base_compute_s;
                if self.cfg.variable_recycling {
                    let r = (rng.gen::<f64>() * 4.0).floor().min(3.0) as usize;
                    compute *= 1.0 + 0.28 * (r as f64 - 1.0);
                    if self.cfg.cuda_graph && !captured[g_idx][r] {
                        // First sighting of this shape: capture (one eager
                        // pass) before the graph can replay.
                        captured[g_idx][r] = true;
                        compute *= 2.0;
                    }
                }
                let group_time = compute + host + data + dap_comm;
                slowest_group = slowest_group.max(group_time);
                sum_groups += group_time;
                max_data_wait = max_data_wait.max(data);
            }
            let mean_group = sum_groups / self.cfg.dp as f64;
            let total = slowest_group + dp_comm;
            out.push(StepBreakdown {
                compute_s: self.base_compute_s,
                data_wait_s: max_data_wait,
                dap_comm_s: dap_comm,
                imbalance_s: slowest_group - mean_group,
                dp_comm_s: dp_comm,
                total_s: total,
            });
        }
        out
    }

    /// Mean step time over `steps` simulated steps.
    pub fn mean_step_s(&self, steps: u64) -> f64 {
        let runs = self.simulate(steps);
        runs.iter().map(|b| b.total_s).sum::<f64>() / runs.len().max(1) as f64
    }

    /// Mean breakdown over `steps`.
    pub fn mean_breakdown(&self, steps: u64) -> StepBreakdown {
        let runs = self.simulate(steps);
        let n = runs.len().max(1) as f64;
        let mut acc = StepBreakdown::default();
        for b in &runs {
            acc.compute_s += b.compute_s / n;
            acc.data_wait_s += b.data_wait_s / n;
            acc.dap_comm_s += b.dap_comm_s / n;
            acc.imbalance_s += b.imbalance_s / n;
            acc.dp_comm_s += b.dp_comm_s / n;
            acc.total_s += b.total_s / n;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_model::ModelConfig;

    fn graph() -> StepGraph {
        StepGraph::reference(&ModelConfig::paper(), 1)
    }

    #[test]
    fn dap_reduces_compute_but_adds_comm() {
        let g = graph();
        let s1 = ClusterSim::new(&g, ClusterConfig::eos(16, 1));
        let s4 = ClusterSim::new(&g, ClusterConfig::eos(16, 4));
        assert!(s4.base_compute_s() < s1.base_compute_s());
        assert_eq!(s1.dap_comm_s(), 0.0);
        assert!(s4.dap_comm_s() > 0.0);
    }

    #[test]
    fn bigger_dp_does_not_change_per_step_compute() {
        let g = graph();
        let a = ClusterSim::new(&g, ClusterConfig::eos(8, 2));
        let b = ClusterSim::new(&g, ClusterConfig::eos(64, 2));
        assert!((a.base_compute_s() - b.base_compute_s()).abs() < 1e-9);
        // But the bigger job suffers more imbalance (more chances for a
        // straggler among more groups).
        let ia = a.mean_breakdown(40).imbalance_s;
        let ib = b.mean_breakdown(40).imbalance_s;
        assert!(ib > ia, "imbalance dp8 {ia:.3} vs dp64 {ib:.3}");
    }

    #[test]
    fn non_blocking_pipeline_removes_data_waits() {
        let g = graph();
        let mut cfg = ClusterConfig::eos(32, 2);
        cfg.straggler = StragglerModel::baseline();
        let blocking = ClusterSim::new(&g, cfg.clone()).mean_breakdown(60);
        cfg.straggler.non_blocking_pipeline = true;
        let non_blocking = ClusterSim::new(&g, cfg).mean_breakdown(60);
        assert!(
            non_blocking.data_wait_s < 0.25 * blocking.data_wait_s + 1e-9,
            "nb {:.3} vs b {:.3}",
            non_blocking.data_wait_s,
            blocking.data_wait_s
        );
        assert!(non_blocking.total_s < blocking.total_s);
    }

    #[test]
    fn cuda_graph_shrinks_step_under_dap() {
        let g = graph();
        let mut cfg = ClusterConfig::eos(16, 8);
        cfg.straggler = StragglerModel::none();
        let eager = ClusterSim::new(&g, cfg.clone()).base_compute_s();
        cfg.cuda_graph = true;
        let graphed = ClusterSim::new(&g, cfg).base_compute_s();
        assert!(graphed < eager, "graph {graphed:.3} vs eager {eager:.3}");
    }

    #[test]
    fn bf16_comm_halves_allreduce() {
        let g = graph();
        let mut cfg = ClusterConfig::eos(128, 1);
        cfg.overlap_fraction = 0.0;
        let f32c = ClusterSim::new(&g, cfg.clone()).dp_comm_exposed_s();
        cfg.bf16_comm = true;
        let bf16c = ClusterSim::new(&g, cfg).dp_comm_exposed_s();
        assert!(bf16c < 0.70 * f32c, "bf16 {bf16c:.4} vs f32 {f32c:.4}");
        assert!(bf16c > 0.40 * f32c); // latency term does not shrink
    }

    #[test]
    fn simulation_is_deterministic() {
        let g = graph();
        let sim = ClusterSim::new(&g, ClusterConfig::eos(8, 2));
        assert_eq!(sim.simulate(10), sim.simulate(10));
    }

    #[test]
    fn variable_recycling_adds_imbalance() {
        let g = graph();
        let mut cfg = ClusterConfig::eos(32, 1);
        cfg.straggler = crate::StragglerModel::none();
        let fixed = ClusterSim::new(&g, cfg.clone()).mean_breakdown(60);
        cfg.variable_recycling = true;
        let varied = ClusterSim::new(&g, cfg).mean_breakdown(60);
        assert!(
            varied.imbalance_s > fixed.imbalance_s + 0.01,
            "varied {:.3} vs fixed {:.3}",
            varied.imbalance_s,
            fixed.imbalance_s
        );
    }

    #[test]
    fn graph_capture_cost_amortizes() {
        // With CUDA graphs + variable recycling, early steps pay captures
        // (one per recycling shape per group); later steps are all hits.
        let g = graph();
        let mut cfg = ClusterConfig::eos(4, 1);
        cfg.straggler = crate::StragglerModel::none();
        cfg.cuda_graph = true;
        cfg.variable_recycling = true;
        let sim = ClusterSim::new(&g, cfg);
        let runs = sim.simulate(80);
        let early: f64 = runs[..10].iter().map(|b| b.total_s).sum::<f64>() / 10.0;
        let late: f64 = runs[70..].iter().map(|b| b.total_s).sum::<f64>() / 10.0;
        assert!(
            late < early,
            "steady-state {late:.3} should beat warm-up {early:.3}"
        );
    }

    #[test]
    fn totals_compose_from_parts() {
        let g = graph();
        let sim = ClusterSim::new(&g, ClusterConfig::eos(4, 2));
        for b in sim.simulate(20) {
            assert!(b.total_s >= b.compute_s + b.dap_comm_s + b.dp_comm_s - 1e-9);
            assert!(b.imbalance_s >= 0.0);
        }
    }
}
