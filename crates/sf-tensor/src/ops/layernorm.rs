//! LayerNormalization kernels.
//!
//! The paper's custom Triton LN kernel (§3.3.1) differs from the stock
//! implementation in three ways, all of which are reproduced here as real
//! algorithms:
//!
//! 1. each "thread block" processes **multiple rows** (here: the row-chunked
//!    loop structure of [`fused_forward`]),
//! 2. normalization statistics come out of the **same kernel** as the
//!    normalized output (no separate mean/variance launches; on this CPU
//!    backend the row statistics use a deterministic striped-lane
//!    reduction, the vectorizable stand-in for Triton's in-block Welford),
//! 3. the backward pass computes weight/bias gradients with a **two-step
//!    reduction** (per-block partial sums into an intermediate buffer, then
//!    a column reduction) instead of atomics.
//!
//! [`naive_forward`]/[`naive_backward`] are the reference implementations;
//! tests assert bit-level-tolerant agreement.
//!
//! The fused kernels run on the parallel CPU backend ([`crate::pool`]):
//! the forward pass partitions rows, the backward pass partitions
//! reduction blocks (step 1) and columns (step 2). Every per-element
//! accumulation order is independent of the partition, so output is
//! bit-identical for every thread count.

use crate::pool::{parallel_for, SendPtr};
use crate::scratch;
use crate::{Result, Tensor, TensorError};

/// Default epsilon used by AlphaFold layer norms.
pub const LN_EPS: f32 = 1e-5;

/// Saved per-row statistics from an LN forward pass, needed for backward.
#[derive(Debug, Clone)]
pub struct LayerNormStats {
    /// Per-row mean, shape `[rows]`.
    pub mean: Vec<f32>,
    /// Per-row reciprocal standard deviation, shape `[rows]`.
    pub rstd: Vec<f32>,
}

fn check_ln_args(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> Result<usize> {
    let inner = *x.dims().last().ok_or(TensorError::EmptyInput("layernorm"))?;
    if gamma.dims() != [inner] || beta.dims() != [inner] {
        return Err(TensorError::ShapeMismatch {
            op: "layernorm params",
            lhs: x.dims().to_vec(),
            rhs: gamma.dims().to_vec(),
        });
    }
    if inner == 0 {
        return Err(TensorError::EmptyInput("layernorm"));
    }
    Ok(inner)
}

/// Reference two-pass LayerNorm over the last axis.
///
/// # Errors
///
/// Returns an error if `gamma`/`beta` do not have shape `[last_dim]`.
pub fn naive_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<(Tensor, LayerNormStats)> {
    let inner = check_ln_args(x, gamma, beta)?;
    let rows = x.len() / inner;
    let mut out = x.clone();
    let mut stats = LayerNormStats {
        mean: Vec::with_capacity(rows),
        rstd: Vec::with_capacity(rows),
    };
    for row in out.data_mut().chunks_mut(inner) {
        // Pass 1: mean. Pass 2: variance. (This is the "expensive iterative
        // method" the paper replaces.)
        let mean = row.iter().sum::<f32>() / inner as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / inner as f32;
        let rstd = 1.0 / (var + eps).sqrt();
        for (v, (&g, &b)) in row.iter_mut().zip(gamma.data().iter().zip(beta.data().iter())) {
            *v = (*v - mean) * rstd * g + b;
        }
        stats.mean.push(mean);
        stats.rstd.push(rstd);
    }
    Ok((out, stats))
}

/// Fused LayerNorm: one kernel produces the normalized output *and* the
/// `(mean, rstd)` statistics the backward pass needs (mirroring the
/// multi-row-per-thread-block Triton kernel — no separate mean/var/normalize
/// launches). Row statistics use the deterministic 8-lane striped reduction
/// of [`lane_sum`]: a scalar Welford recurrence would carry a divide on the
/// loop, which serializes on a CPU, while the striped two-pass vectorizes.
///
/// # Errors
///
/// Returns an error if `gamma`/`beta` do not have shape `[last_dim]`.
pub fn fused_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<(Tensor, LayerNormStats)> {
    let inner = check_ln_args(x, gamma, beta)?;
    let rows = x.len() / inner;
    let mut out = x.clone();
    let mut stats = LayerNormStats {
        mean: vec![0.0; rows],
        rstd: vec![0.0; rows],
    };
    let out_ptr = SendPtr::new(out.data_mut());
    let mean_ptr = SendPtr::new(&mut stats.mean);
    let rstd_ptr = SendPtr::new(&mut stats.rstd);
    let (gd, bd) = (gamma.data(), beta.data());
    // ~8 scalar ops per element: two reduction passes + normalize pass.
    parallel_for(rows, inner * 8, |range| {
        for r in range {
            // SAFETY: row ranges from parallel_for are disjoint.
            let row = unsafe { out_ptr.slice_mut(r * inner, inner) };
            let mean = lane_sum(row, |v| v) / inner as f32;
            let var = lane_sum(row, |v| (v - mean) * (v - mean)) / inner as f32;
            let rstd = 1.0 / (var + eps).sqrt();
            for (v, (&g, &b)) in row.iter_mut().zip(gd.iter().zip(bd.iter())) {
                *v = (*v - mean) * rstd * g + b;
            }
            // SAFETY: one stats slot per row, rows are disjoint.
            unsafe {
                mean_ptr.slice_mut(r, 1)[0] = mean;
                rstd_ptr.slice_mut(r, 1)[0] = rstd;
            }
        }
    });
    Ok((out, stats))
}

/// Deterministic vectorizable row reduction: accumulates `f(x)` into 8
/// fixed lanes (lane `j` owns elements `j mod 8`) and combines them in a
/// fixed tree, so the result depends only on the data — never on thread
/// count or partitioning. The scalar `iter().sum()` chain this replaces
/// cannot vectorize (FP addition is not reassociable); striping the sum
/// across 8 lanes makes the reduction order explicit *and* SIMD-friendly.
#[inline]
fn lane_sum<F: Fn(f32) -> f32>(xs: &[f32], f: F) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut chunks = xs.chunks_exact(8);
    for c in chunks.by_ref() {
        for (lane, &v) in lanes.iter_mut().zip(c.iter()) {
            *lane += f(v);
        }
    }
    let mut s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for &v in chunks.remainder() {
        s += f(v);
    }
    s
}

/// Gradients of a LayerNorm: `(dx, dgamma, dbeta)`.
pub type LayerNormGrads = (Tensor, Tensor, Tensor);

/// Reference backward pass (direct accumulation of `dgamma`/`dbeta` — the
/// moral equivalent of the atomic-add kernel the paper avoids).
///
/// # Errors
///
/// Returns an error on shape mismatch between `dy`, `x`, params, and stats.
pub fn naive_backward(
    dy: &Tensor,
    x: &Tensor,
    gamma: &Tensor,
    stats: &LayerNormStats,
) -> Result<LayerNormGrads> {
    let inner = *x.dims().last().ok_or(TensorError::EmptyInput("layernorm"))?;
    let rows = x.len() / inner;
    if dy.dims() != x.dims() || stats.mean.len() != rows {
        return Err(TensorError::ShapeMismatch {
            op: "layernorm backward",
            lhs: dy.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let mut dx = Tensor::zeros(x.dims());
    let mut dgamma = Tensor::zeros(&[inner]);
    let mut dbeta = Tensor::zeros(&[inner]);
    for r in 0..rows {
        let xs = &x.data()[r * inner..(r + 1) * inner];
        let dys = &dy.data()[r * inner..(r + 1) * inner];
        let (mean, rstd) = (stats.mean[r], stats.rstd[r]);
        // xhat and the two row-reductions of the standard LN backward.
        let mut sum_dxhat = 0.0f32;
        let mut sum_dxhat_xhat = 0.0f32;
        for i in 0..inner {
            let xhat = (xs[i] - mean) * rstd;
            let dxhat = dys[i] * gamma.data()[i];
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * xhat;
            dgamma.data_mut()[i] += dys[i] * xhat;
            dbeta.data_mut()[i] += dys[i];
        }
        let n = inner as f32;
        for i in 0..inner {
            let xhat = (xs[i] - mean) * rstd;
            let dxhat = dys[i] * gamma.data()[i];
            dx.data_mut()[r * inner + i] =
                rstd * (dxhat - sum_dxhat / n - xhat * sum_dxhat_xhat / n);
        }
    }
    Ok((dx, dgamma, dbeta))
}

/// Fused backward pass with the paper's **two-step reduction** for
/// `dgamma`/`dbeta`: rows are grouped into blocks of `block_rows`; each block
/// reduces its sub-region of upstream gradients into an intermediate
/// `[num_blocks, inner]` buffer; a second step reduces each column. This
/// avoids cross-block contention (atomics on a GPU) at the cost of one
/// intermediate buffer.
///
/// # Errors
///
/// Returns an error on shape mismatch, or if `block_rows == 0`.
pub fn fused_backward(
    dy: &Tensor,
    x: &Tensor,
    gamma: &Tensor,
    stats: &LayerNormStats,
    block_rows: usize,
) -> Result<LayerNormGrads> {
    if block_rows == 0 {
        return Err(TensorError::EmptyInput("fused_backward block_rows"));
    }
    let inner = *x.dims().last().ok_or(TensorError::EmptyInput("layernorm"))?;
    let rows = x.len() / inner;
    if dy.dims() != x.dims() || stats.mean.len() != rows {
        return Err(TensorError::ShapeMismatch {
            op: "layernorm backward",
            lhs: dy.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let num_blocks = rows.div_ceil(block_rows);
    let mut dx = Tensor::zeros(x.dims());
    let mut dgamma = Tensor::zeros(&[inner]);
    let mut dbeta = Tensor::zeros(&[inner]);
    // Step 1: per-block partial reductions into the intermediate buffer.
    // Blocks are the parallel unit; block boundaries depend only on
    // `block_rows`, never on the thread count, so the reduction order per
    // partial element is fixed.
    scratch::with_zeroed_scratch(2 * num_blocks * inner, |partial| {
        let partial_ptr = SendPtr::new(partial);
        let dx_ptr = SendPtr::new(dx.data_mut());
        let (xd, dyd, gd) = (x.data(), dy.data(), gamma.data());
        parallel_for(num_blocks, block_rows.min(rows) * inner * 12, |range| {
            for blk in range {
                let r0 = blk * block_rows;
                let r1 = (r0 + block_rows).min(rows);
                // SAFETY: each block owns its partial rows and dx rows.
                let pg = unsafe { partial_ptr.slice_mut(blk * inner, inner) };
                let pb = unsafe { partial_ptr.slice_mut((num_blocks + blk) * inner, inner) };
                for r in r0..r1 {
                    let xs = &xd[r * inner..(r + 1) * inner];
                    let dys = &dyd[r * inner..(r + 1) * inner];
                    let dxs = unsafe { dx_ptr.slice_mut(r * inner, inner) };
                    let (mean, rstd) = (stats.mean[r], stats.rstd[r]);
                    let mut sum_dxhat = 0.0f32;
                    let mut sum_dxhat_xhat = 0.0f32;
                    for i in 0..inner {
                        let xhat = (xs[i] - mean) * rstd;
                        let dxhat = dys[i] * gd[i];
                        sum_dxhat += dxhat;
                        sum_dxhat_xhat += dxhat * xhat;
                        pg[i] += dys[i] * xhat;
                        pb[i] += dys[i];
                    }
                    let n = inner as f32;
                    for i in 0..inner {
                        let xhat = (xs[i] - mean) * rstd;
                        let dxhat = dys[i] * gd[i];
                        dxs[i] = rstd * (dxhat - sum_dxhat / n - xhat * sum_dxhat_xhat / n);
                    }
                }
            }
        });
        // Step 2: column reduction of the intermediate buffer, parallel
        // over columns; each column sums blocks in ascending order.
        let dg_ptr = SendPtr::new(dgamma.data_mut());
        let db_ptr = SendPtr::new(dbeta.data_mut());
        let partial_ro: &[f32] = partial;
        parallel_for(inner, num_blocks * 2, |range| {
            for i in range {
                let mut g = 0.0f32;
                let mut b = 0.0f32;
                for blk in 0..num_blocks {
                    g += partial_ro[blk * inner + i];
                    b += partial_ro[(num_blocks + blk) * inner + i];
                }
                // SAFETY: one column slot per item.
                unsafe {
                    dg_ptr.slice_mut(i, 1)[0] = g;
                    db_ptr.slice_mut(i, 1)[0] = b;
                }
            }
        });
    });
    Ok((dx, dgamma, dbeta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(rows: usize, inner: usize) -> (Tensor, Tensor, Tensor) {
        (
            Tensor::randn(&[rows, inner], 1).mul_scalar(2.0).add_scalar(0.5),
            Tensor::randn(&[inner], 2).mul_scalar(0.1).add_scalar(1.0),
            Tensor::randn(&[inner], 3).mul_scalar(0.1),
        )
    }

    #[test]
    fn forward_normalizes() {
        let x = Tensor::randn(&[8, 64], 4);
        let gamma = Tensor::ones(&[64]);
        let beta = Tensor::zeros(&[64]);
        let (y, _) = naive_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        for row in y.data().chunks(64) {
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn fused_matches_naive_forward() {
        let (x, gamma, beta) = setup(13, 128);
        let (y1, s1) = naive_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        let (y2, s2) = fused_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        assert!(y1.allclose(&y2, 1e-4));
        for (a, b) in s1.mean.iter().zip(s2.mean.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in s1.rstd.iter().zip(s2.rstd.iter()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn fused_backward_matches_naive() {
        let (x, gamma, beta) = setup(10, 32);
        let (_, stats) = fused_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        let dy = Tensor::randn(&[10, 32], 5);
        let (dx1, dg1, db1) = naive_backward(&dy, &x, &gamma, &stats).unwrap();
        for block_rows in [1, 3, 4, 10, 64] {
            let (dx2, dg2, db2) =
                fused_backward(&dy, &x, &gamma, &stats, block_rows).unwrap();
            assert!(dx1.allclose(&dx2, 1e-5));
            assert!(dg1.allclose(&dg2, 1e-4));
            assert!(db1.allclose(&db2, 1e-4));
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let inner = 8;
        let x = Tensor::randn(&[3, inner], 6);
        let gamma = Tensor::randn(&[inner], 7).add_scalar(1.0);
        let beta = Tensor::zeros(&[inner]);
        let loss = |x: &Tensor| -> f32 {
            let (y, _) = naive_forward(x, &gamma, &beta, LN_EPS).unwrap();
            // Loss = sum(y * w) for fixed w.
            y.data()
                .iter()
                .enumerate()
                .map(|(i, &v)| v * ((i % 5) as f32 - 2.0))
                .sum()
        };
        let dy = Tensor::from_vec(
            (0..x.len()).map(|i| (i % 5) as f32 - 2.0).collect(),
            &[3, inner],
        )
        .unwrap();
        let (_, stats) = naive_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        let (dx, _, _) = naive_backward(&dy, &x, &gamma, &stats).unwrap();
        let eps = 1e-2f32;
        for i in [0usize, 5, 11, 23] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            let ana = dx.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "idx {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn rejects_bad_params() {
        let x = Tensor::zeros(&[2, 4]);
        let bad = Tensor::zeros(&[3]);
        let ok = Tensor::zeros(&[4]);
        assert!(naive_forward(&x, &bad, &ok, LN_EPS).is_err());
        assert!(fused_forward(&x, &ok, &bad, LN_EPS).is_err());
    }

    #[test]
    fn rejects_zero_block_rows() {
        let (x, gamma, beta) = setup(2, 4);
        let (_, stats) = fused_forward(&x, &gamma, &beta, LN_EPS).unwrap();
        let dy = Tensor::ones(&[2, 4]);
        assert!(fused_backward(&dy, &x, &gamma, &stats, 0).is_err());
    }
}
