//! `scalefold` — command-line front end for the reproduction.
//!
//! ```text
//! scalefold train [STEPS]            real CPU training on the tiny model
//! scalefold simulate [DAP]           simulated cluster step time at DAP-n
//! scalefold memory [DAP]             per-rank memory footprint at DAP-n
//! scalefold ladder                   the Figure-8 optimization ladder
//! scalefold figures                  every table/figure reproduction
//! ```

use scalefold::{experiments, ladder_stages, OptimizationSet, Trainer, TrainerConfig};
use sf_cluster::{ClusterConfig, ClusterSim, StragglerModel};
use sf_model::ModelConfig;
use sf_opgraph::memory;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "train" => train(parse_num(&args, 1, 20)),
        "simulate" => simulate(parse_num(&args, 1, 8) as usize),
        "memory" => memory_report(parse_num(&args, 1, 8) as usize),
        "ladder" => ladder(),
        "figures" => figures(),
        _ => help(),
    }
}

fn parse_num(args: &[String], idx: usize, default: u64) -> u64 {
    args.get(idx).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn help() {
    println!("scalefold — a Rust reproduction of 'ScaleFold: Reducing AlphaFold");
    println!("Initial Training Time to 10 Hours' (DAC 2024)\n");
    println!("usage: scalefold <command> [arg]\n");
    println!("  train [STEPS=20]    real CPU training of the tiny AlphaFold");
    println!("  simulate [DAP=8]    simulated H100 cluster step time at DAP-n");
    println!("  memory [DAP=8]      per-rank memory footprint at DAP-n");
    println!("  ladder              the Figure-8 optimization ladder");
    println!("  figures             regenerate every table/figure");
}

fn train(steps: u64) {
    let mut cfg = TrainerConfig::tiny();
    cfg.model.evoformer_blocks = 1;
    cfg.model.extra_msa_blocks = 0;
    println!("training the tiny AlphaFold for {steps} steps...");
    let mut trainer = Trainer::new(cfg);
    for r in trainer.train(steps) {
        println!(
            "  step {:>4}  loss {:>8.4}  lDDT-Ca {:.3}  lr {:.2e}",
            r.step, r.loss, r.lddt, r.lr
        );
    }
    println!("eval (SWA weights): lDDT-Ca {:.3}", trainer.evaluate(3));
}

fn simulate(dap: usize) {
    let cfg = ModelConfig::paper();
    println!("simulating H100 cluster step time (DP 128 x DAP-{dap})...");
    for (label, opts) in [
        ("reference", OptimizationSet::none()),
        ("ScaleFold", OptimizationSet::scalefold_dap(dap.max(1))),
    ] {
        let graph = scalefold::build_graph(&cfg, &opts);
        let mut cc = ClusterConfig::eos(128, opts.dap);
        cc.cuda_graph = opts.cuda_graph;
        cc.bf16_comm = opts.bf16;
        cc.autotune = opts.triton_ln;
        cc.straggler = if opts.nonblocking_loader {
            StragglerModel::optimized()
        } else {
            StragglerModel::baseline()
        };
        let t = ClusterSim::new(&graph, cc).mean_step_s(40);
        println!("  {label:<10} {t:>7.3} s/step");
    }
}

fn memory_report(dap: usize) {
    let cfg = ModelConfig::paper();
    let dev = sf_gpusim::DeviceSpec::h100();
    println!("per-rank memory at paper scale, DAP-{dap} (H100, 80 GiB):");
    for (label, ckpt, bf16) in [
        ("fp32, no checkpointing", false, false),
        ("bf16, no checkpointing", false, true),
        ("bf16, checkpointing", true, true),
    ] {
        let f = memory::estimate(&cfg, dap.max(1), ckpt, bf16);
        println!(
            "  {label:<26} {:>7.1} GiB  ({})",
            f.total_gib(),
            if f.fits(&dev) { "fits" } else { "DOES NOT FIT" }
        );
    }
}

fn ladder() {
    for e in ladder_stages(&ModelConfig::paper()) {
        println!(
            "{:<36} A100 {:>6.2}s ({:>5.2}x)  H100 {:>6.2}s ({:>5.2}x)",
            e.name, e.a100_step_s, e.a100_speedup, e.h100_step_s, e.h100_speedup
        );
    }
}

fn figures() {
    println!("{}", experiments::table1());
    println!("{}", experiments::fig3());
    println!("{}", experiments::fig4(2000));
    println!("{}", experiments::fig7());
    println!("{}", experiments::fig8());
    println!("{}", experiments::fig9_fig10());
    println!("{}", experiments::fig11());
}
